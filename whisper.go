// Package whisper is the public API of this reproduction of "Whisper:
// Profile-Guided Branch Misprediction Elimination for Data Center
// Applications" (Khan et al., MICRO 2022).
//
// The package re-exports the pieces a downstream user needs to run the
// full usage model of the paper's Fig 10:
//
//  1. pick or synthesize an application workload (Apps, NewApp),
//  2. profile it in "production" under a deployed predictor and train
//     Whisper hints offline (Optimize),
//  3. evaluate the updated binary on another input against the baseline
//     (Build.Evaluate), and
//  4. reproduce any of the paper's tables and figures (the Experiments
//     aliases, or the cmd/experiments binary).
//
// Implementation packages live under internal/; the aliases here are the
// supported surface.
package whisper

import (
	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/mtage"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/workload"
)

// App is a synthetic data-center application (see internal/workload).
type App = workload.App

// AppConfig parameterizes a custom application.
type AppConfig = workload.Config

// Mix is an application's branch behaviour class mix.
type Mix = workload.Mix

// Params are Whisper's design parameters (paper Table III).
type Params = core.Params

// Build is the output of the offline flow: profile, trained hints,
// dynamic CFG, and the updated binary.
type Build = sim.WhisperBuild

// Result is a simulation result with IPC/MPKI accessors.
type Result = pipeline.Result

// Predictor is a conditional branch direction predictor.
type Predictor = bpu.Predictor

// BuildOptions parameterize Optimize.
type BuildOptions = sim.BuildOptions

// MachineConfig is the simulated machine (paper Table II).
type MachineConfig = pipeline.Config

// NewApp synthesizes an application from a configuration.
func NewApp(cfg AppConfig) (*App, error) { return workload.New(cfg) }

// Apps returns the 12 data center applications of the paper's Table I.
func Apps() []*App { return workload.DataCenterApps() }

// AppByName returns one Table I application (nil if unknown).
func AppByName(name string) *App { return workload.DataCenterApp(name) }

// SpecApps returns the SPEC2017-like comparison family (paper Fig 5a).
func SpecApps() []*App { return workload.SpecApps() }

// DefaultParams returns the paper's Table III parameters.
func DefaultParams() Params { return core.DefaultParams() }

// DefaultBuildOptions mirrors the paper's setup: profile input #0 under a
// 64KB TAGE-SC-L with the Table III parameters.
func DefaultBuildOptions() BuildOptions { return sim.DefaultBuildOptions() }

// DefaultMachine returns the Table II machine model.
func DefaultMachine() MachineConfig { return pipeline.DefaultConfig() }

// NewTageSCL builds a TAGE-SC-L baseline predictor with the given storage
// budget in kilobytes (the paper's baseline uses 64).
func NewTageSCL(sizeKB int) Predictor { return tage.New(tage.Config{SizeKB: sizeKB}) }

// NewMTageSC builds the unlimited-storage MTAGE-SC comparison predictor.
func NewMTageSC() Predictor { return mtage.New() }

// NewOracle builds the ideal direction predictor of the limit study.
func NewOracle() Predictor { return &bpu.Oracle{} }

// Optimize runs the full offline flow for one application: in-production
// profiling, Algorithm 1 training with hashed history correlation and
// randomized formula testing, and link-time brhint injection.
func Optimize(app *App, opt BuildOptions) (*Build, error) {
	return sim.BuildWhisper(app, opt)
}

// Evaluation compares the Whisper-updated binary against the baseline on
// one workload input.
type Evaluation struct {
	Baseline, Whisper Result
	// HintPredictions counts predictions served from the hint buffer;
	// HintExecutions counts retired brhint instructions.
	HintPredictions, HintExecutions uint64
}

// Reduction returns the fraction of baseline mispredictions eliminated.
func (e *Evaluation) Reduction() float64 { return sim.MispReduction(e.Baseline, e.Whisper) }

// Speedup returns the IPC improvement fraction.
func (e *Evaluation) Speedup() float64 { return sim.Speedup(e.Baseline, e.Whisper) }

// Evaluate measures a build on the given input with records records and
// warmupFrac of them used to warm structures before measuring. The
// baseline (and the predictor underneath Whisper) is the paper's 64KB
// TAGE-SC-L; use EvaluateWith for other baselines.
func Evaluate(b *Build, app *App, input, records int, warmupFrac float64) *Evaluation {
	return EvaluateWith(b, app, input, records, warmupFrac, nil)
}

// EvaluateWith is Evaluate with a custom baseline predictor factory (used
// both standalone and underneath the Whisper runtime). A nil factory
// selects the 64KB TAGE-SC-L.
func EvaluateWith(b *Build, app *App, input, records int, warmupFrac float64, baseline func() Predictor) *Evaluation {
	factory := sim.PredictorFactory(sim.Tage64KB)
	if baseline != nil {
		factory = sim.PredictorFactory(baseline)
	}
	popt := pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(records) * warmupFrac),
	}
	base := sim.RunApp(app, input, records, factory(), popt)
	res, rt := b.RunWhisperWarm(app, input, records, factory, popt)
	return &Evaluation{
		Baseline:        base,
		Whisper:         res,
		HintPredictions: rt.HintPredictions,
		HintExecutions:  rt.HintExecutions,
	}
}

// Measure runs any predictor over an application input and returns the
// pipeline result (IPC, MPKI, cycle attribution).
func Measure(app *App, input, records int, pred Predictor, warmupFrac float64) Result {
	return sim.RunApp(app, input, records, pred, pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(records) * warmupFrac),
	})
}
