// Package whisper is the public API of this reproduction of "Whisper:
// Profile-Guided Branch Misprediction Elimination for Data Center
// Applications" (Khan et al., MICRO 2022).
//
// The package exports the pieces a downstream user needs to run the
// full usage model of the paper's Fig 10:
//
//  1. pick or synthesize an application workload (Apps, NewApp),
//  2. profile it in "production" under a deployed predictor and train
//     Whisper hints offline (Optimize, configured with functional
//     options: WithParams, WithPredictor, WithTelemetry, ...),
//  3. persist the profile or trained hints between those stages
//     (Save, Load),
//  4. evaluate the updated binary on another input against the baseline
//     (Build.Evaluate), and
//  5. reproduce any of the paper's tables and figures (the
//     cmd/experiments binary).
//
// Implementation packages live under internal/; the exports here are the
// supported surface. The functional-options generation is the only API:
// the v1 entry points (bare BuildOptions, the package-level
// Evaluate/EvaluateWith/Measure) were removed after a deprecation cycle —
// measure a bare predictor by reading Evaluation.Baseline from a Build
// configured with WithPredictor.
package whisper

import (
	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/mtage"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/workload"
)

// App is a synthetic data-center application (see internal/workload).
type App = workload.App

// AppConfig parameterizes a custom application.
type AppConfig = workload.Config

// Mix is an application's branch behaviour class mix.
type Mix = workload.Mix

// Params are Whisper's design parameters (paper Table III).
type Params = core.Params

// Result is a simulation result with IPC/MPKI accessors.
type Result = pipeline.Result

// Predictor is a conditional branch direction predictor.
type Predictor = bpu.Predictor

// MachineConfig is the simulated machine (paper Table II).
type MachineConfig = pipeline.Config

// Registry is a metrics registry: counters, gauges and histograms with
// Prometheus-text and snapshot renderings. Pass one to Optimize via
// WithTelemetry to observe a run's pipeline and cache activity without
// touching the process-wide default.
type Registry = telemetry.Registry

// NewRegistry returns an empty metrics registry for WithTelemetry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewApp synthesizes an application from a configuration.
func NewApp(cfg AppConfig) (*App, error) { return workload.New(cfg) }

// Apps returns the 12 data center applications of the paper's Table I.
func Apps() []*App { return workload.DataCenterApps() }

// AppByName returns one catalogued application — Table I, the extra
// workload families ("interp-dispatch", "gc-mark", "rpc-chain"), or
// the SPEC-like family ("spec-gcc", ...) — or nil if unknown.
func AppByName(name string) *App { return workload.AppByName(name) }

// FamilyApps returns the extra workload families used by the
// cross-workload hint-transfer study.
func FamilyApps() []*App { return workload.FamilyApps() }

// SpecApps returns the SPEC2017-like comparison family (paper Fig 5a).
func SpecApps() []*App { return workload.SpecApps() }

// DefaultParams returns the paper's Table III parameters.
func DefaultParams() Params { return core.DefaultParams() }

// DefaultMachine returns the Table II machine model.
func DefaultMachine() MachineConfig { return pipeline.DefaultConfig() }

// NewTageSCL builds a TAGE-SC-L baseline predictor with the given storage
// budget in kilobytes (the paper's baseline uses 64).
func NewTageSCL(sizeKB int) Predictor { return tage.New(tage.Config{SizeKB: sizeKB}) }

// NewMTageSC builds the unlimited-storage MTAGE-SC comparison predictor.
func NewMTageSC() Predictor { return mtage.New() }

// NewOracle builds the ideal direction predictor of the limit study.
func NewOracle() Predictor { return &bpu.Oracle{} }

// --- options ----------------------------------------------------------

// config is everything Optimize captures: the offline build stage's
// options plus the evaluation defaults the returned Build reuses.
type config struct {
	build   sim.BuildOptions
	machine pipeline.Config
	warmup  float64
	block   int
	simJ    int
	simWin  int
	metrics *telemetry.Registry
}

func defaultConfig() config {
	return config{
		build:   sim.DefaultBuildOptions(),
		machine: pipeline.DefaultConfig(),
		warmup:  0.3,
	}
}

// Option configures Optimize and the evaluations of the Build it
// returns. Options compose left to right; later options win.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithParams overrides Whisper's design parameters (paper Table III).
func WithParams(p Params) Option {
	return optionFunc(func(c *config) { c.build.Params = p })
}

// WithPredictor sets the baseline predictor factory: the predictor
// profiled in production, deployed underneath the Whisper runtime, and
// measured standalone by Build.Evaluate. The default is the paper's
// 64KB TAGE-SC-L.
func WithPredictor(baseline func() Predictor) Option {
	return optionFunc(func(c *config) { c.build.Baseline = sim.PredictorFactory(baseline) })
}

// WithTrainInput selects the workload input profiled in production
// (paper §V-A: optimize with one input, test with another; default #0).
func WithTrainInput(input int) Option {
	return optionFunc(func(c *config) { c.build.TrainInput = input })
}

// WithRecords sets the profiled window length in trace records, and the
// default evaluation window of Build.Evaluate.
func WithRecords(n int) Option {
	return optionFunc(func(c *config) { c.build.Records = n })
}

// WithMachine overrides the simulated machine (paper Table II) used by
// Build.Evaluate.
func WithMachine(m MachineConfig) Option {
	return optionFunc(func(c *config) { c.machine = m })
}

// WithWarmup sets the fraction of evaluation records used to warm
// predictors and frontend structures before measuring (default 0.3).
func WithWarmup(frac float64) Option {
	return optionFunc(func(c *config) { c.warmup = frac })
}

// WithBlockSize selects the pipeline's record-block granularity for
// evaluations: 0 (the default) runs the batched engine at its default
// block size, positive values set an explicit size, and negative values
// force the scalar reference loop. Results are bit-identical at every
// setting; this is a performance/debugging knob.
func WithBlockSize(n int) Option {
	return optionFunc(func(c *config) { c.block = n })
}

// WithParallelism runs each evaluation simulation on the windowed
// parallel engine with n goroutines (n <= 1 keeps the serial batched
// engine). windowSize sets the window length in records; 0 selects the
// engine default. Results are bit-identical at every setting — the
// engine speculates ahead over checkpointed windows and verifies every
// boundary before committing (see docs/parallel-sim.md) — so, like
// WithBlockSize, this is purely a wall-clock knob.
func WithParallelism(n, windowSize int) Option {
	return optionFunc(func(c *config) {
		c.simJ = n
		c.simWin = windowSize
	})
}

// WithTelemetry routes the run's metrics (pipeline spans, cache
// counters, runner series) into r for the duration of Optimize and of
// each Build.Evaluate call. The registry can then be snapshotted or
// rendered as Prometheus text. Not safe to combine with concurrent runs
// that use a different registry.
func WithTelemetry(r *Registry) Option {
	return optionFunc(func(c *config) { c.metrics = r })
}

// installMetrics swaps r in as the process metrics registry and returns
// the restore function (a no-op for nil).
func installMetrics(r *telemetry.Registry) func() {
	if r == nil {
		return func() {}
	}
	prev := telemetry.Default()
	telemetry.Install(r)
	return func() { telemetry.Install(prev) }
}

// --- the offline flow -------------------------------------------------

// Build is the output of the offline flow: the production profile, the
// trained hints, the dynamic CFG, and the updated binary, plus the
// evaluation configuration captured at Optimize time.
type Build struct {
	sim.WhisperBuild

	app *App
	cfg config
}

// Optimize runs the full offline flow for one application: in-production
// profiling, Algorithm 1 training with hashed history correlation and
// randomized formula testing, and link-time brhint injection.
//
// With no options it mirrors the paper's setup (input #0, 64KB
// TAGE-SC-L, Table III parameters).
func Optimize(app *App, opts ...Option) (*Build, error) {
	c := defaultConfig()
	for _, o := range opts {
		if o != nil {
			o.apply(&c)
		}
	}
	restore := installMetrics(c.metrics)
	defer restore()
	wb, err := sim.BuildWhisper(app, c.build)
	if err != nil {
		return nil, err
	}
	return &Build{WhisperBuild: *wb, app: app, cfg: c}, nil
}

// Evaluation compares the Whisper-updated binary against the baseline on
// one workload input.
type Evaluation struct {
	Baseline, Whisper Result
	// HintPredictions counts predictions served from the hint buffer;
	// HintExecutions counts retired brhint instructions.
	HintPredictions, HintExecutions uint64
}

// Reduction returns the fraction of baseline mispredictions eliminated.
func (e *Evaluation) Reduction() float64 { return sim.MispReduction(e.Baseline, e.Whisper) }

// Speedup returns the IPC improvement fraction.
func (e *Evaluation) Speedup() float64 { return sim.Speedup(e.Baseline, e.Whisper) }

// Evaluate measures the updated binary against the baseline on the
// given workload input (paper Fig 10 step 3: deploy the optimized
// binary and test on an input the profile never saw), using the
// configuration captured at Optimize time — baseline predictor,
// machine model, warmup fraction, engine knobs (block size, windowed
// parallelism), and telemetry registry.
// records <= 0 reuses the training window length.
func (b *Build) Evaluate(input, records int) *Evaluation {
	c := b.cfg
	if records <= 0 {
		records = c.build.Records
	}
	factory := sim.PredictorFactory(sim.Tage64KB)
	if c.build.Baseline != nil {
		factory = c.build.Baseline
	}
	popt := pipeline.Options{
		Config:        c.machine,
		WarmupRecords: uint64(float64(records) * c.warmup),
		BlockSize:     c.block,
		Parallelism:   c.simJ,
		WindowSize:    c.simWin,
	}
	restore := installMetrics(c.metrics)
	defer restore()
	base := sim.RunApp(b.app, input, records, factory(), popt)
	res, rt := b.RunWhisperWarm(b.app, input, records, factory, popt)
	return &Evaluation{
		Baseline:        base,
		Whisper:         res,
		HintPredictions: rt.HintPredictions,
		HintExecutions:  rt.HintExecutions,
	}
}

// --- artifacts --------------------------------------------------------

// Artifact is a versioned on-disk bundle: window metadata plus a profile
// snapshot and/or a trained hint bundle (see internal/store for the
// format).
type Artifact = store.Artifact

// ArtifactMeta identifies the workload window an artifact covers.
type ArtifactMeta = store.Meta

// Save persists a build's profile and trained hint bundle as one
// artifact file. This is the durability the paper's Fig 10 deployment
// model needs: the profile is collected on the production fleet
// (step 1), training runs offline elsewhere (step 2), and only the
// trained hints ship to the link step (step 3) — each arrow in that
// diagram is an artifact crossing a process or machine boundary.
// Artifacts are CRC-checked and versioned; Load rejects damage with
// typed errors instead of consuming garbage.
func Save(path string, b *Build) error {
	return store.WriteFile(path, &Artifact{
		Meta: ArtifactMeta{
			App:     b.app.Name(),
			Input:   b.cfg.build.TrainInput,
			Records: b.cfg.build.Records,
		},
		Profile:      b.Profile,
		Train:        b.Train,
		WindowInstrs: b.Profile.Instrs,
	})
}

// Load reads an artifact written by Save (or by the whisper CLI's
// staged profile/train/apply flow — same format). The profile side can
// be retrained with different parameters; the hint side can be
// re-injected into a binary without the profile (Fig 10's
// "apply-only" arrow).
func Load(path string) (*Artifact, error) { return store.ReadFile(path) }
