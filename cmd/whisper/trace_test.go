package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTrace is the committed worked-example trace fixture.
const sampleTrace = "../../examples/traces/sample.txt"

// TestTraceStagedMatchesOneShot drives profile -> train -> apply over
// the committed example trace through artifact files and requires the
// evaluation block to be byte-identical to the fused -trace-file run's.
func TestTraceStagedMatchesOneShot(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "trace.profile.wspa")
	hintPath := filepath.Join(dir, "trace.hints.wspa")

	code, oneShot, errOut := runCLI(t, "-trace-file", sampleTrace)
	if code != 0 {
		t.Fatalf("one-shot exit %d: %s", code, errOut)
	}

	code, _, errOut = runCLI(t, "profile", "-trace-file", sampleTrace, "-o", profPath)
	if code != 0 {
		t.Fatalf("profile exit %d: %s", code, errOut)
	}
	code, _, errOut = runCLI(t, "train", "-profile", profPath, "-o", hintPath)
	if code != 0 {
		t.Fatalf("train exit %d: %s", code, errOut)
	}
	code, applyOut, errOut := runCLI(t, "apply", "-hints", hintPath, "-trace-file", sampleTrace)
	if code != 0 {
		t.Fatalf("apply exit %d: %s", code, errOut)
	}

	want := evaluationBlock(t, oneShot)
	got := evaluationBlock(t, applyOut)
	if got != want {
		t.Fatalf("staged trace evaluation differs from one-shot:\n--- one-shot\n%s\n--- staged\n%s", want, got)
	}
	if !strings.Contains(oneShot, "hints trained") {
		t.Fatalf("trace flow trained nothing:\n%s", oneShot)
	}
}

// TestTraceApplyGuards: trace-trained hints refuse to run without the
// trace, and refuse a different trace (fingerprint mismatch).
func TestTraceApplyGuards(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "p.wspa")
	hintPath := filepath.Join(dir, "h.wspa")
	if code, _, errOut := runCLI(t, "profile", "-trace-file", sampleTrace, "-o", profPath); code != 0 {
		t.Fatalf("profile exit %d: %s", code, errOut)
	}
	if code, _, errOut := runCLI(t, "train", "-profile", profPath, "-o", hintPath); code != 0 {
		t.Fatalf("train exit %d: %s", code, errOut)
	}

	code, _, errOut := runCLI(t, "apply", "-hints", hintPath)
	if code != 2 || !strings.Contains(errOut, "-trace-file is required") {
		t.Fatalf("missing -trace-file: exit %d, err %q", code, errOut)
	}

	// A different (truncated) trace must be rejected by fingerprint.
	data, err := os.ReadFile(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	other := filepath.Join(dir, "other.txt")
	if err := os.WriteFile(other, []byte(strings.Join(lines[:len(lines)/2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCLI(t, "apply", "-hints", hintPath, "-trace-file", other)
	if code != 1 || !strings.Contains(errOut, "does not match the trace") {
		t.Fatalf("wrong trace: exit %d, err %q", code, errOut)
	}
}

// TestConvertRoundTripFixture locks the committed fixtures: sample.wspt
// is exactly sample.txt converted to binary, and converting it back
// reproduces sample.txt bit for bit.
func TestConvertRoundTripFixture(t *testing.T) {
	dir := t.TempDir()
	wspt := filepath.Join(dir, "sample.wspt")
	back := filepath.Join(dir, "back.txt")

	code, out, errOut := runCLI(t, "convert", "-i", sampleTrace, "-o", wspt, "-to", "binary")
	if code != 0 {
		t.Fatalf("convert exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "(text -> binary)") {
		t.Fatalf("unexpected convert output: %q", out)
	}
	want, err := os.ReadFile("../../examples/traces/sample.wspt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(wspt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("converted binary differs from the committed sample.wspt")
	}

	if code, _, errOut := runCLI(t, "convert", "-i", wspt, "-o", back, "-to", "text"); code != 0 {
		t.Fatalf("convert back exit %d: %s", code, errOut)
	}
	text, err := os.ReadFile(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	round, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(round, text) {
		t.Fatal("text -> binary -> text is not bit-exact on the fixture")
	}
}

// TestConvertErrors: bad flags and malformed inputs exit non-zero and
// leave no partial output behind.
func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.wspt")

	if code, _, _ := runCLI(t, "convert", "-i", sampleTrace, "-o", out); code != 2 {
		t.Fatal("missing -to accepted")
	}
	if code, _, _ := runCLI(t, "convert", "-i", sampleTrace, "-o", out, "-to", "auto"); code != 2 {
		t.Fatal("-to auto accepted")
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("400010 400070 cond T 5\nbroken line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "convert", "-i", bad, "-o", out, "-to", "binary")
	if code != 1 || !strings.Contains(errOut, "line 2") {
		t.Fatalf("malformed input: exit %d, err %q", code, errOut)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("failed convert left a partial output file")
	}
}

// TestProfileFlagConflicts: -app and -trace-file are mutually
// exclusive, and one of them is required.
func TestProfileFlagConflicts(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.wspa")
	if code, _, _ := runCLI(t, "profile", "-o", out); code != 2 {
		t.Fatal("profile without -app or -trace-file accepted")
	}
	code, _, _ := runCLI(t, "profile", "-app", "kafka", "-trace-file", sampleTrace, "-o", out)
	if code != 2 {
		t.Fatal("profile with both -app and -trace-file accepted")
	}
}
