package main

// The shared-flag contract: every subcommand registers the
// cliflags.Common observability set, and every subcommand that accepts
// an imported trace spells the -trace-file/-trace-format pair
// canonically. The test drives each subcommand's real flag parser (an
// unknown flag makes it print its defaults), so a flag renamed or
// re-worded in one subcommand fails here instead of drifting.

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/cliflags"
)

// subcommands maps every whisper subcommand to its entry point and
// whether it takes the canonical trace-input pair.
var subcommands = map[string]struct {
	run        func([]string, io.Writer, io.Writer) int
	traceInput bool
}{
	"profile": {cmdProfile, true},
	"train":   {cmdTrain, false},
	"apply":   {cmdApply, true},
	"oneshot": {cmdOneShot, true},
	"report":  {cmdReport, true},
	"convert": {cmdConvert, false}, // -i/-from name its input pair
	"serve":   {cmdServe, false},
	"fleet":   {cmdFleet, false},
}

// usageFor parses an unknown flag through the subcommand, capturing the
// defaults listing its flag set prints on the error path.
func usageFor(t *testing.T, run func([]string, io.Writer, io.Writer) int) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
	return stderr.String()
}

func TestEverySubcommandRegistersCommonFlags(t *testing.T) {
	for name, sub := range subcommands {
		t.Run(name, func(t *testing.T) {
			usage := usageFor(t, sub.run)
			for _, fname := range cliflags.CommonNames() {
				if !strings.Contains(usage, "-"+fname) {
					t.Errorf("%s does not register -%s", name, fname)
				}
				if want := cliflags.Usage()[fname]; !strings.Contains(usage, want) {
					t.Errorf("%s: -%s usage drifted from the canonical wording %q", name, fname, want)
				}
			}
		})
	}
}

func TestTraceInputSubcommandsUseCanonicalPair(t *testing.T) {
	for name, sub := range subcommands {
		t.Run(name, func(t *testing.T) {
			usage := usageFor(t, sub.run)
			for _, fname := range cliflags.TraceNames() {
				has := strings.Contains(usage, "-"+fname)
				if sub.traceInput && !has {
					t.Errorf("%s should register -%s", name, fname)
				}
				if sub.traceInput {
					if want := cliflags.Usage()[fname]; !strings.Contains(usage, want) {
						t.Errorf("%s: -%s usage drifted from the canonical wording %q", name, fname, want)
					}
				}
			}
		})
	}
}
