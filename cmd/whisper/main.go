// Command whisper drives the paper's usage model (Fig 10) on one
// application, either fused or as separately persisted stages:
//
//	whisper [-app mysql] [-records 400000] [-input 0] [-test-input 1]
//	        [-explore 0.05] [-trace out.wbt] [-hints] [-v]
//	whisper profile -app mysql -o mysql.profile.wspa [-input 0] [-records N]
//	whisper train -profile mysql.profile.wspa -o mysql.hints.wspa [-explore F]
//	whisper apply -hints mysql.hints.wspa [-test-input 1] [-warmup 0.3] [-dump]
//	whisper convert -i trace.txt -o trace.wspt -to binary [-from auto]
//	whisper report [-app mysql] [-records N] [-top 20] [-json FILE]
//	               [-chrome-trace FILE] [-trace-file FILE]
//
// The default (no subcommand) runs the whole flow in one process. The
// profile/train/apply subcommands run the identical stages through
// versioned artifact files (package store), so the three-step pipeline
// reproduces the fused run bit for bit.
//
// Imported traces: -trace-file FILE (on the one-shot flow, profile and
// apply) drives the same pipeline from an external branch trace —
// perf-script/LBR-style text, the compact WSPT binary format, or a
// legacy WBT export — instead of a synthetic application; -trace-format
// overrides the auto-detection. The convert subcommand transcodes
// between the formats (see docs/traces.md).
//
// With -trace the tool additionally writes the application's branch trace
// in the compact binary format (a stand-in for a decoded Intel PT file).
// With -hints (or apply -dump) it dumps the trained brhint program.
//
// The report subcommand runs the whole flow and prints the attribution
// report instead of the evaluation summary: the ranked per-branch
// misprediction table and the per-hint effectiveness scoreboard, with
// optional canonical JSON (-json) and Chrome trace-event span export
// (-chrome-trace); see docs/attribution.md.
//
// Every subcommand accepts -debug-addr ADDR, which enables the process
// telemetry registry and serves /metrics (Prometheus text), /debug/vars
// (expvar) and /debug/pprof on that address for the duration of the run;
// see docs/observability.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/whisper-sim/whisper/internal/cliflags"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
	"github.com/whisper-sim/whisper/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommands; no subcommand means the fused one-shot
// flow. It returns the process exit code so tests can drive the CLI
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "profile":
			return cmdProfile(args[1:], stdout, stderr)
		case "train":
			return cmdTrain(args[1:], stdout, stderr)
		case "apply":
			return cmdApply(args[1:], stdout, stderr)
		case "convert":
			return cmdConvert(args[1:], stdout, stderr)
		case "report":
			return cmdReport(args[1:], stdout, stderr)
		case "serve":
			return cmdServe(args[1:], stdout, stderr)
		case "fleet":
			return cmdFleet(args[1:], stdout, stderr)
		}
	}
	return cmdOneShot(args, stdout, stderr)
}

// lookupApp resolves an application name, reporting failures on stderr.
func lookupApp(name string, stderr io.Writer) *workload.App {
	app := workload.AppByName(name)
	if app == nil {
		fmt.Fprintf(stderr, "unknown app %q (try -app list)\n", name)
	}
	return app
}

// traceMetaPrefix marks artifacts whose window came from an imported
// trace file instead of a synthetic application.
const traceMetaPrefix = "trace:"

// loadTrace imports an external trace file and validates there is
// something to predict in it (traceio.CheckRecords — an empty or
// conditional-free window is a typed error, not an all-zero run). It
// returns the records and the detected format; on failure it reports to
// stderr and returns nil records.
func loadTrace(path, format string, stderr io.Writer) ([]trace.Record, traceio.Format) {
	f, err := traceio.ParseFormat(format)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return nil, f
	}
	recs, detected, err := traceio.LoadFile(path, f)
	if err != nil {
		fmt.Fprintf(stderr, "reading trace: %v\n", err)
		return nil, detected
	}
	if err := traceio.CheckRecords(path, recs); err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return nil, detected
	}
	return recs, detected
}

// cmdProfile collects a profile artifact (the in-production stage),
// from either a synthetic application or an imported trace file.
func cmdProfile(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appFlag := fs.String("app", "", "application name (see Table I)")
	inputFlag := fs.Int("input", 0, "training input")
	recordsFlag := fs.Int("records", 400000, "records per window")
	ti := cliflags.TraceInput(fs)
	outFlag := fs.String("o", "", "output artifact file (required)")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *outFlag == "" || (*appFlag == "") == (*ti.File == "") {
		fmt.Fprintln(stderr, "whisper profile: -o and exactly one of -app or -trace-file are required")
		return 2
	}
	sess, ok := startObs(obs, "whisper profile",
		map[string]any{"app": *appFlag, "records": *recordsFlag, "trace_file": *ti.File}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()

	if *ti.File != "" {
		recs, _ := loadTrace(*ti.File, *ti.Format, stderr)
		if recs == nil {
			return 2
		}
		opt := sim.DefaultBuildOptions()
		opt.Records = len(recs)
		prof, err := sim.ProfileTrace(recs, opt)
		if err != nil {
			fmt.Fprintf(stderr, "profile: %v\n", err)
			return 1
		}
		name := traceMetaPrefix + filepath.Base(*ti.File)
		art := &store.Artifact{
			Meta: store.Meta{
				App:     name,
				Records: len(recs),
				Key:     traceMetaPrefix + traceio.Fingerprint(recs),
			},
			Profile: prof,
		}
		if err := store.WriteFile(*outFlag, art); err != nil {
			fmt.Fprintf(stderr, "profile: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "== %s: profiling imported trace (%d records) ==\n", name, len(recs))
		printProfileLine(stdout, prof)
		fmt.Fprintf(stdout, "wrote profile artifact to %s\n", *outFlag)
		return 0
	}

	app := lookupApp(*appFlag, stderr)
	if app == nil {
		return 2
	}
	opt := sim.DefaultBuildOptions()
	opt.TrainInput = *inputFlag
	opt.Records = *recordsFlag
	prof, err := sim.ProfileApp(app, opt)
	if err != nil {
		fmt.Fprintf(stderr, "profile: %v\n", err)
		return 1
	}
	art := &store.Artifact{
		Meta:    store.Meta{App: app.Name(), Input: *inputFlag, Records: *recordsFlag},
		Profile: prof,
	}
	if err := store.WriteFile(*outFlag, art); err != nil {
		fmt.Fprintf(stderr, "profile: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "== %s: profiling input #%d (%d records) ==\n",
		app.Name(), *inputFlag, *recordsFlag)
	printProfileLine(stdout, prof)
	fmt.Fprintf(stdout, "wrote profile artifact to %s\n", *outFlag)
	return 0
}

// cmdTrain runs formula search over a persisted profile (the offline
// stage) and writes the hint bundle.
func cmdTrain(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profFlag := fs.String("profile", "", "input profile artifact (required)")
	outFlag := fs.String("o", "", "output hint artifact (required)")
	exploreFlag := fs.Float64("explore", 0.05, "fraction of formulas explored (>=1 is exhaustive)")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *profFlag == "" || *outFlag == "" {
		fmt.Fprintln(stderr, "whisper train: -profile and -o are required")
		return 2
	}
	sess, ok := startObs(obs, "whisper train",
		map[string]any{"profile": *profFlag, "explore": *exploreFlag}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()
	art, err := store.ReadFile(*profFlag)
	if err != nil {
		fmt.Fprintf(stderr, "train: reading %s: %v\n", *profFlag, err)
		return 1
	}
	if art.Profile == nil {
		fmt.Fprintf(stderr, "train: %s carries no profile section\n", *profFlag)
		return 1
	}
	params := core.DefaultParams()
	params.ExploreFraction = *exploreFlag
	tr, err := core.Train(art.Profile, params)
	if err != nil {
		fmt.Fprintf(stderr, "train: %v\n", err)
		return 1
	}
	out := &store.Artifact{
		Meta:         art.Meta,
		Train:        tr,
		WindowInstrs: art.Profile.Instrs,
	}
	if err := store.WriteFile(*outFlag, out); err != nil {
		fmt.Fprintf(stderr, "train: %v\n", err)
		return 1
	}
	printAnalysisLine(stdout, art.Profile, tr)
	fmt.Fprintf(stdout, "wrote hint artifact to %s\n", *outFlag)
	return 0
}

// cmdApply injects a persisted hint bundle into the binary and evaluates
// it (the link-time + deployment stage).
func cmdApply(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper apply", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hintsFlag := fs.String("hints", "", "input hint artifact (required)")
	testFlag := fs.Int("test-input", 1, "evaluation input")
	ti := cliflags.TraceInput(fs)
	warmFlag := fs.Float64("warmup", 0.3, "warm-up fraction of the measured window")
	dumpFlag := fs.Bool("dump", false, "dump the injected brhint program")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hintsFlag == "" {
		fmt.Fprintln(stderr, "whisper apply: -hints is required")
		return 2
	}
	sess, ok := startObs(obs, "whisper apply",
		map[string]any{"hints": *hintsFlag, "trace_file": *ti.File}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()
	art, err := store.ReadFile(*hintsFlag)
	if err != nil {
		fmt.Fprintf(stderr, "apply: reading %s: %v\n", *hintsFlag, err)
		return 1
	}
	if art.Train == nil {
		fmt.Fprintf(stderr, "apply: %s carries no hint section (run 'whisper train' first)\n", *hintsFlag)
		return 1
	}
	if strings.HasPrefix(art.Meta.App, traceMetaPrefix) {
		if *ti.File == "" {
			fmt.Fprintf(stderr, "apply: %s was trained on an imported trace (%s); -trace-file is required\n",
				*hintsFlag, art.Meta.App)
			return 2
		}
		recs, _ := loadTrace(*ti.File, *ti.Format, stderr)
		if recs == nil {
			return 2
		}
		if key := traceMetaPrefix + traceio.Fingerprint(recs); key != art.Meta.Key {
			fmt.Fprintf(stderr, "apply: %s does not match the trace the hints were trained on (fingerprint %s, artifact %s)\n",
				*ti.File, key, art.Meta.Key)
			return 1
		}
		b := sim.AssembleTraceHints(recs, art.Train, art.WindowInstrs, sim.DefaultBuildOptions())
		printInjectionLine(stdout, b)
		if *dumpFlag {
			dumpHints(stdout, b)
		}
		printTraceEvaluation(stdout, recs, b, *warmFlag)
		return 0
	}
	app := lookupApp(art.Meta.App, stderr)
	if app == nil {
		return 1
	}
	opt := sim.DefaultBuildOptions()
	opt.TrainInput = art.Meta.Input
	opt.Records = art.Meta.Records
	b := sim.AssembleHints(app, art.Train, art.WindowInstrs, opt)
	printInjectionLine(stdout, b)
	if *dumpFlag {
		dumpHints(stdout, b)
	}
	printEvaluation(stdout, app, b, *testFlag, art.Meta.Records, *warmFlag)
	return 0
}

// cmdOneShot is the fused flow: profile, train, inject and evaluate in
// one process.
func cmdOneShot(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appFlag := fs.String("app", "mysql", "application name (see Table I) or 'list'")
	recordsFlag := fs.Int("records", 400000, "records per window")
	inputFlag := fs.Int("input", 0, "training input")
	testFlag := fs.Int("test-input", 1, "evaluation input")
	exploreFlag := fs.Float64("explore", 0.05, "fraction of formulas explored (>=1 is exhaustive)")
	traceFlag := fs.String("trace", "", "write the training trace to this file")
	fromTraceFlag := fs.String("from-trace", "", "simulate the baseline over a previously exported trace file and exit")
	ti := cliflags.TraceInput(fs)
	hintsFlag := fs.Bool("hints", false, "dump the injected brhint program")
	warmFlag := fs.Float64("warmup", 0.3, "warm-up fraction of the measured window")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sess, ok := startObs(obs, "whisper",
		map[string]any{"app": *appFlag, "records": *recordsFlag, "trace_file": *ti.File}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()

	if *fromTraceFlag != "" {
		if err := simulateTrace(stdout, *fromTraceFlag, *warmFlag); err != nil {
			fmt.Fprintf(stderr, "trace simulation: %v\n", err)
			return 1
		}
		return 0
	}

	if *ti.File != "" {
		recs, _ := loadTrace(*ti.File, *ti.Format, stderr)
		if recs == nil {
			return 2
		}
		name := traceMetaPrefix + filepath.Base(*ti.File)
		fmt.Fprintf(stdout, "== %s: profiling imported trace (%d records) ==\n", name, len(recs))
		bopt := sim.DefaultBuildOptions()
		bopt.Records = len(recs)
		bopt.Params.ExploreFraction = *exploreFlag
		b, err := sim.BuildWhisperTrace(recs, bopt)
		if err != nil {
			fmt.Fprintf(stderr, "build: %v\n", err)
			return 1
		}
		printProfileLine(stdout, b.Profile)
		printAnalysisLine(stdout, b.Profile, b.Train)
		printInjectionLine(stdout, b)
		if *hintsFlag {
			dumpHints(stdout, b)
		}
		printTraceEvaluation(stdout, recs, b, *warmFlag)
		return 0
	}

	if *appFlag == "list" {
		for _, spec := range workload.DataCenterSpecs() {
			fmt.Fprintf(stdout, "%-16s %s\n", spec.Config.Name, spec.Workload)
		}
		return 0
	}
	app := lookupApp(*appFlag, stderr)
	if app == nil {
		return 2
	}

	if *traceFlag != "" {
		if err := exportTrace(app, *inputFlag, *recordsFlag, *traceFlag); err != nil {
			fmt.Fprintf(stderr, "trace export: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d records to %s\n", *recordsFlag, *traceFlag)
	}

	fmt.Fprintf(stdout, "== %s: profiling input #%d (%d records) ==\n",
		app.Name(), *inputFlag, *recordsFlag)
	bopt := sim.DefaultBuildOptions()
	bopt.TrainInput = *inputFlag
	bopt.Records = *recordsFlag
	bopt.Params.ExploreFraction = *exploreFlag
	b, err := sim.BuildWhisper(app, bopt)
	if err != nil {
		fmt.Fprintf(stderr, "build: %v\n", err)
		return 1
	}
	printProfileLine(stdout, b.Profile)
	printAnalysisLine(stdout, b.Profile, b.Train)
	printInjectionLine(stdout, b)

	if *hintsFlag {
		dumpHints(stdout, b)
	}

	printEvaluation(stdout, app, b, *testFlag, *recordsFlag, *warmFlag)
	return 0
}

// printProfileLine summarizes the collected profile.
func printProfileLine(w io.Writer, prof *profiler.Profile) {
	fmt.Fprintf(w, "profile: %d instructions, %d conditional executions, baseline MPKI %.2f\n",
		prof.Instrs, prof.CondExecs, prof.MPKI())
}

// printAnalysisLine summarizes the formula search.
func printAnalysisLine(w io.Writer, prof *profiler.Profile, tr *core.TrainResult) {
	fmt.Fprintf(w, "analysis: %d hard branches, %d hints trained in %v (%d formula scorings)\n",
		len(prof.Hard), len(tr.Hints), tr.Duration.Round(1e6), tr.FormulaEvals)
}

// printInjectionLine summarizes the link-time hint placement.
func printInjectionLine(w io.Writer, b *sim.WhisperBuild) {
	fmt.Fprintf(w, "injection: %d hints placed, %d dropped (12-bit pointer range), static +%.1f%%, dynamic +%.1f%%\n",
		b.Binary.Placed, b.Binary.Dropped,
		b.Binary.StaticOverhead()*100, b.Binary.DynamicOverhead()*100)
}

// printEvaluation measures baseline and Whisper on the test input; the
// fused flow and the apply subcommand share it so their outputs match
// bit for bit.
func printEvaluation(w io.Writer, app *workload.App, b *sim.WhisperBuild, testInput, records int, warmFrac float64) {
	popt := pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(records) * warmFrac),
	}
	base := sim.RunApp(app, testInput, records, sim.Tage64KB(), popt)
	res, rt := b.RunWhisperWarm(app, testInput, records, sim.Tage64KB, popt)

	fmt.Fprintf(w, "\n== evaluation on input #%d ==\n", testInput)
	fmt.Fprintf(w, "baseline : IPC %.3f  MPKI %.2f  mispredictions %d\n",
		base.IPC(), base.MPKI(), base.CondMisp)
	fmt.Fprintf(w, "whisper  : IPC %.3f  MPKI %.2f  mispredictions %d\n",
		res.IPC(), res.MPKI(), res.CondMisp)
	fmt.Fprintf(w, "reduction %.1f%%  speedup %.2f%%  (hint buffer hit rate %.2f, %d hint executions)\n",
		sim.MispReduction(base, res)*100, sim.Speedup(base, res)*100,
		rt.Buffer().HitRate(), rt.HintExecutions)
}

// printTraceEvaluation measures baseline and Whisper over an imported
// record window; the fused trace flow and the apply subcommand share
// it so their outputs match bit for bit. The window is its own test
// input — external traces carry one window — so the reduction is the
// paper's profile-window framing.
func printTraceEvaluation(w io.Writer, recs []trace.Record, b *sim.WhisperBuild, warmFrac float64) {
	popt := pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(len(recs)) * warmFrac),
	}
	base := sim.RunTrace(recs, sim.Tage64KB(), popt)
	res, rt := b.RunWhisperTrace(recs, sim.Tage64KB, popt)

	fmt.Fprintf(w, "\n== evaluation on the profiled window ==\n")
	fmt.Fprintf(w, "baseline : IPC %.3f  MPKI %.2f  mispredictions %d\n",
		base.IPC(), base.MPKI(), base.CondMisp)
	fmt.Fprintf(w, "whisper  : IPC %.3f  MPKI %.2f  mispredictions %d\n",
		res.IPC(), res.MPKI(), res.CondMisp)
	fmt.Fprintf(w, "reduction %.1f%%  speedup %.2f%%  (hint buffer hit rate %.2f, %d hint executions)\n",
		sim.MispReduction(base, res)*100, sim.Speedup(base, res)*100,
		rt.Buffer().HitRate(), rt.HintExecutions)
}

// cmdConvert transcodes a trace file between the interchange formats.
func cmdConvert(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inFlag := fs.String("i", "", "input trace file (required)")
	outFlag := fs.String("o", "", "output trace file (required)")
	fromFlag := fs.String("from", "auto", "input format: auto, text, binary or wbt")
	toFlag := fs.String("to", "", "output format: text, binary or wbt (required)")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *inFlag == "" || *outFlag == "" || *toFlag == "" {
		fmt.Fprintln(stderr, "whisper convert: -i, -o and -to are required")
		return 2
	}
	sess, ok := startObs(obs, "whisper convert",
		map[string]any{"in": *inFlag, "to": *toFlag}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()
	from, err := traceio.ParseFormat(*fromFlag)
	if err != nil {
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 2
	}
	to, err := traceio.ParseFormat(*toFlag)
	if err != nil || to == traceio.FormatAuto {
		fmt.Fprintf(stderr, "convert: -to must be text, binary or wbt\n")
		return 2
	}
	in, err := os.Open(*inFlag)
	if err != nil {
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 1
	}
	defer in.Close()
	out, err := os.Create(*outFlag)
	if err != nil {
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 1
	}
	n, detected, err := traceio.Convert(out, in, from, to)
	if err != nil {
		out.Close()
		os.Remove(*outFlag)
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 1
	}
	if err := out.Close(); err != nil {
		fmt.Fprintf(stderr, "convert: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "converted %d records (%s -> %s) to %s\n", n, detected, to, *outFlag)
	return 0
}

// exportTrace writes the training window in the binary trace format.
func exportTrace(app *workload.App, input, records int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	s := app.Stream(input, records)
	var rec trace.Record
	for s.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			return err
		}
	}
	return w.Flush()
}

// dumpHints prints the brhint program sorted by host PC.
func dumpHints(w io.Writer, b *sim.WhisperBuild) {
	type row struct {
		host uint64
		ph   core.PlacedHint
	}
	var rows []row
	for host, hs := range b.Binary.ByHost {
		for _, ph := range hs {
			rows = append(rows, row{host, ph})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].host < rows[j].host })
	fmt.Fprintln(w, "\nhost PC    -> branch PC   enc         hint")
	for _, r := range rows {
		enc, _ := r.ph.Encoded.Encode()
		desc := "formula " + r.ph.Hint.Formula.String()
		switch r.ph.Encoded.Bias {
		case hint.BiasTaken:
			desc = "always-taken"
		case hint.BiasNotTaken:
			desc = "never-taken"
		default:
			desc = fmt.Sprintf("L=%d %s", b.Train.Lengths[r.ph.Hint.LengthIdx], desc)
		}
		fmt.Fprintf(w, "%#08x -> %#08x  %#09x  %s\n", r.host, r.ph.Hint.PC, enc, desc)
	}
}

// simulateTrace replays a binary trace file through the baseline machine
// model — the "decoded Intel PT file" input path. Traces with nothing to
// predict are an error, not an all-zero table: an empty or
// conditional-free file almost always means a broken export.
func simulateTrace(w io.Writer, path string, warmFrac float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	// The pipeline consumes the stream once; warm-up needs the record
	// count, so buffer the records (trace files are modest).
	recs := trace.Collect(r, 0)
	if err := r.Err(); err != nil {
		return err
	}
	if err := traceio.CheckRecords(path, recs); err != nil {
		return err
	}
	res := pipeline.Run(trace.NewSliceStream(recs), sim.Tage64KB(), pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(len(recs)) * warmFrac),
	})
	fmt.Fprintf(w, "trace %s: %d records, %d instructions\n", path, len(recs), trace.CountInstructions(recs))
	fmt.Fprintf(w, "baseline: IPC %.3f  MPKI %.2f  cond execs %d  mispredictions %d\n",
		res.IPC(), res.MPKI(), res.CondExecs, res.CondMisp)
	fmt.Fprintf(w, "cycles: base %d  squash %d  frontend %d\n",
		res.BaseCycles, res.SquashCycles, res.FrontendCycles)
	return nil
}
