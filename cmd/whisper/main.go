// Command whisper drives the paper's usage model (Fig 10) step by step on
// one application: trace export, in-production profiling, offline branch
// analysis, link-time hint injection, and simulation of the updated
// binary.
//
// Usage:
//
//	whisper -app mysql [-records 400000] [-input 0] [-test-input 1]
//	        [-explore 0.05] [-trace out.wbt] [-hints] [-v]
//
// With -trace the tool additionally writes the application's branch trace
// in the compact binary format (a stand-in for a decoded Intel PT file).
// With -hints it dumps the trained brhint program.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

func main() {
	appFlag := flag.String("app", "mysql", "application name (see Table I) or 'list'")
	recordsFlag := flag.Int("records", 400000, "records per window")
	inputFlag := flag.Int("input", 0, "training input")
	testFlag := flag.Int("test-input", 1, "evaluation input")
	exploreFlag := flag.Float64("explore", 0.05, "fraction of formulas explored (>=1 is exhaustive)")
	traceFlag := flag.String("trace", "", "write the training trace to this file")
	fromTraceFlag := flag.String("from-trace", "", "simulate the baseline over a previously exported trace file and exit")
	hintsFlag := flag.Bool("hints", false, "dump the injected brhint program")
	warmFlag := flag.Float64("warmup", 0.3, "warm-up fraction of the measured window")
	flag.Parse()

	if *fromTraceFlag != "" {
		if err := simulateTrace(*fromTraceFlag, *warmFlag); err != nil {
			fmt.Fprintf(os.Stderr, "trace simulation: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *appFlag == "list" {
		for _, spec := range workload.DataCenterSpecs() {
			fmt.Printf("%-16s %s\n", spec.Config.Name, spec.Workload)
		}
		return
	}
	app := workload.DataCenterApp(*appFlag)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q (try -app list)\n", *appFlag)
		os.Exit(2)
	}

	if *traceFlag != "" {
		if err := exportTrace(app, *inputFlag, *recordsFlag, *traceFlag); err != nil {
			fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", *recordsFlag, *traceFlag)
	}

	fmt.Printf("== %s: profiling input #%d (%d records) ==\n", app.Name(), *inputFlag, *recordsFlag)
	bopt := sim.DefaultBuildOptions()
	bopt.TrainInput = *inputFlag
	bopt.Records = *recordsFlag
	bopt.Params.ExploreFraction = *exploreFlag
	b, err := sim.BuildWhisper(app, bopt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("profile: %d instructions, %d conditional executions, baseline MPKI %.2f\n",
		b.Profile.Instrs, b.Profile.CondExecs, b.Profile.MPKI())
	fmt.Printf("analysis: %d hard branches, %d hints trained in %v (%d formula scorings)\n",
		len(b.Profile.Hard), len(b.Train.Hints), b.Train.Duration.Round(1e6), b.Train.FormulaEvals)
	fmt.Printf("injection: %d hints placed, %d dropped (12-bit pointer range), static +%.1f%%, dynamic +%.1f%%\n",
		b.Binary.Placed, b.Binary.Dropped,
		b.Binary.StaticOverhead()*100, b.Binary.DynamicOverhead()*100)

	if *hintsFlag {
		dumpHints(b)
	}

	popt := pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(*recordsFlag) * *warmFlag),
	}
	base := sim.RunApp(app, *testFlag, *recordsFlag, sim.Tage64KB(), popt)
	res, rt := b.RunWhisperWarm(app, *testFlag, *recordsFlag, sim.Tage64KB, popt)

	fmt.Printf("\n== evaluation on input #%d ==\n", *testFlag)
	fmt.Printf("baseline : IPC %.3f  MPKI %.2f  mispredictions %d\n",
		base.IPC(), base.MPKI(), base.CondMisp)
	fmt.Printf("whisper  : IPC %.3f  MPKI %.2f  mispredictions %d\n",
		res.IPC(), res.MPKI(), res.CondMisp)
	fmt.Printf("reduction %.1f%%  speedup %.2f%%  (hint buffer hit rate %.2f, %d hint executions)\n",
		sim.MispReduction(base, res)*100, sim.Speedup(base, res)*100,
		rt.Buffer().HitRate(), rt.HintExecutions)
}

// exportTrace writes the training window in the binary trace format.
func exportTrace(app *workload.App, input, records int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	s := app.Stream(input, records)
	var rec trace.Record
	for s.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			return err
		}
	}
	return w.Flush()
}

// dumpHints prints the brhint program sorted by host PC.
func dumpHints(b *sim.WhisperBuild) {
	type row struct {
		host uint64
		ph   core.PlacedHint
	}
	var rows []row
	for host, hs := range b.Binary.ByHost {
		for _, ph := range hs {
			rows = append(rows, row{host, ph})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].host < rows[j].host })
	fmt.Println("\nhost PC    -> branch PC   enc         hint")
	for _, r := range rows {
		enc, _ := r.ph.Encoded.Encode()
		desc := "formula " + r.ph.Hint.Formula.String()
		switch r.ph.Encoded.Bias {
		case hint.BiasTaken:
			desc = "always-taken"
		case hint.BiasNotTaken:
			desc = "never-taken"
		default:
			desc = fmt.Sprintf("L=%d %s", b.Train.Lengths[r.ph.Hint.LengthIdx], desc)
		}
		fmt.Printf("%#08x -> %#08x  %#09x  %s\n", r.host, r.ph.Hint.PC, enc, desc)
	}
}

// simulateTrace replays a binary trace file through the baseline machine
// model — the "decoded Intel PT file" input path.
func simulateTrace(path string, warmFrac float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	// The pipeline consumes the stream once; warm-up needs the record
	// count, so buffer the records (trace files are modest).
	recs := trace.Collect(r, 0)
	if err := r.Err(); err != nil {
		return err
	}
	res := pipeline.Run(trace.NewSliceStream(recs), sim.Tage64KB(), pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(len(recs)) * warmFrac),
	})
	fmt.Printf("trace %s: %d records, %d instructions\n", path, len(recs), trace.CountInstructions(recs))
	fmt.Printf("baseline: IPC %.3f  MPKI %.2f  cond execs %d  mispredictions %d\n",
		res.IPC(), res.MPKI(), res.CondExecs, res.CondMisp)
	fmt.Printf("cycles: base %d  squash %d  frontend %d\n",
		res.BaseCycles, res.SquashCycles, res.FrontendCycles)
	return nil
}
