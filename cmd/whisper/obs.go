package main

// Shared observability bootstrap: every whisper subcommand registers
// the cliflags.Common set (-journal, -debug-addr, -chrome-trace) and
// activates it through startObs, so the flags mean exactly the same
// thing everywhere — the same JSONL journal schema, the same debug
// endpoints, the same Chrome trace-event export cmd/experiments ships
// (see docs/observability.md).

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/whisper-sim/whisper/internal/cliflags"
	"github.com/whisper-sim/whisper/internal/telemetry"
)

// obsSession is the live observability state of one subcommand run.
// Close (usually deferred) unwinds it: spans and the final snapshot go
// to the journal, files are flushed, the debug listener stops, and the
// previous process-wide registry/tracer are restored.
type obsSession struct {
	Journal *telemetry.Journal

	journalFile *os.File
	journalPath string
	tracebuf    *telemetry.TraceBuffer
	chromePath  string
	stderr      io.Writer
	closers     []func() // LIFO
}

// startObs activates the -journal/-debug-addr/-chrome-trace surface for
// one subcommand. tool names the run in the journal manifest ("whisper
// profile", ...); cfg carries the subcommand's key flags into the
// manifest. ok is false when a listener or file could not be opened —
// the caller should exit 2 (the session is already unwound).
func startObs(o cliflags.Obs, tool string, cfg map[string]any, stderr io.Writer) (*obsSession, bool) {
	s := &obsSession{stderr: stderr}
	// A journal or debug endpoint needs the process-wide registry; a
	// fresh one scopes the final snapshot to exactly this run.
	if *o.Journal != "" || *o.DebugAddr != "" {
		prev := telemetry.Default()
		telemetry.Install(telemetry.NewRegistry())
		s.closers = append(s.closers, func() { telemetry.Install(prev) })
	}
	// Tracer before journal: the journal's close writes the spans the
	// tracer gathered.
	if *o.ChromeTrace != "" {
		s.tracebuf = telemetry.NewTraceBuffer()
		s.chromePath = *o.ChromeTrace
		prev := telemetry.InstallTracer(s.tracebuf)
		s.closers = append(s.closers, func() { telemetry.InstallTracer(prev) })
	}
	if *o.DebugAddr != "" {
		srv, err := telemetry.ServeDebug(*o.DebugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "debug endpoint: %v\n", err)
			s.unwind()
			return nil, false
		}
		fmt.Fprintf(stderr, "debug endpoint: http://%s/metrics\n", srv.Addr())
		s.closers = append(s.closers, func() { srv.Close() })
	}
	if *o.Journal != "" {
		f, err := os.Create(*o.Journal)
		if err != nil {
			fmt.Fprintf(stderr, "journal: %v\n", err)
			s.unwind()
			return nil, false
		}
		s.journalFile = f
		s.journalPath = *o.Journal
		s.Journal = telemetry.NewJournal(f)
		s.Journal.WriteManifest(telemetry.Manifest{
			Tool:       tool,
			Go:         runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Config:     cfg,
		})
	}
	return s, true
}

// unwind runs the accumulated closers newest-first.
func (s *obsSession) unwind() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
	s.closers = nil
}

// Close finalizes the session and returns a non-zero exit code when an
// export failed (0 otherwise). Safe to call once, usually as
//
//	defer func() { code = sess.CloseCode(code) }()
func (s *obsSession) Close() int {
	code := 0
	if s.Journal != nil {
		s.Journal.WriteTraceSpans(s.tracebuf)
		s.Journal.WriteSnapshot(telemetry.Default())
		if err := s.Journal.Err(); err != nil {
			fmt.Fprintf(s.stderr, "journal: %v\n", err)
			code = 1
		}
		if err := s.journalFile.Close(); err != nil && code == 0 {
			fmt.Fprintf(s.stderr, "journal: %v\n", err)
			code = 1
		}
		if code == 0 {
			fmt.Fprintf(s.stderr, "wrote journal to %s\n", s.journalPath)
		}
	}
	if s.tracebuf != nil {
		if err := writeChromeTrace(s.chromePath, s.tracebuf); err != nil {
			fmt.Fprintf(s.stderr, "chrome trace: %v\n", err)
			code = 1
		} else {
			fmt.Fprintf(s.stderr, "wrote Chrome trace to %s (load in about://tracing or Perfetto)\n", s.chromePath)
		}
	}
	s.unwind()
	return code
}

// CloseCode folds Close's exit code into a subcommand's: the export
// failure surfaces unless the run already failed harder.
func (s *obsSession) CloseCode(code int) int {
	if c := s.Close(); code == 0 {
		return c
	}
	return code
}
