package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
)

const testRecords = "20000"

// runCLI drives the CLI in-process and returns (exit code, stdout,
// stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// evaluationBlock cuts everything from the "== evaluation" banner on.
func evaluationBlock(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "== evaluation")
	if i < 0 {
		t.Fatalf("no evaluation block in output:\n%s", out)
	}
	return out[i:]
}

// TestStagedMatchesOneShot runs profile → train → apply through artifact
// files and requires the evaluation block to be byte-identical to the
// fused one-shot run's.
func TestStagedMatchesOneShot(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "mysql.profile.wspa")
	hintPath := filepath.Join(dir, "mysql.hints.wspa")

	code, oneShot, errOut := runCLI(t, "-app", "mysql", "-records", testRecords)
	if code != 0 {
		t.Fatalf("one-shot exit %d: %s", code, errOut)
	}

	code, _, errOut = runCLI(t, "profile", "-app", "mysql", "-records", testRecords, "-o", profPath)
	if code != 0 {
		t.Fatalf("profile exit %d: %s", code, errOut)
	}
	code, _, errOut = runCLI(t, "train", "-profile", profPath, "-o", hintPath)
	if code != 0 {
		t.Fatalf("train exit %d: %s", code, errOut)
	}
	code, applyOut, errOut := runCLI(t, "apply", "-hints", hintPath)
	if code != 0 {
		t.Fatalf("apply exit %d: %s", code, errOut)
	}

	want := evaluationBlock(t, oneShot)
	got := evaluationBlock(t, applyOut)
	if got != want {
		t.Fatalf("staged evaluation differs from one-shot:\n--- one-shot\n%s\n--- staged\n%s", want, got)
	}
}

// writeTrace writes records in the binary trace format.
func writeTrace(t *testing.T, path string, recs []trace.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestFromTraceEmpty: a record-free trace must be a clear error, not an
// all-zero result table.
func TestFromTraceEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.wbt")
	writeTrace(t, path, nil)
	code, _, errOut := runCLI(t, "-from-trace", path)
	if code == 0 {
		t.Fatal("empty trace accepted")
	}
	if !strings.Contains(errOut, "no records") {
		t.Fatalf("unhelpful error: %q", errOut)
	}
}

// TestFromTraceNoConditionals: a trace without conditional branches has
// nothing to predict and must also error.
func TestFromTraceNoConditionals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jumps.wbt")
	writeTrace(t, path, []trace.Record{
		{PC: 0x400000, Target: 0x400100, Kind: trace.UncondDirect, Taken: true, Instrs: 4},
		{PC: 0x400100, Target: 0x400000, Kind: trace.Call, Taken: true, Instrs: 7},
	})
	code, _, errOut := runCLI(t, "-from-trace", path)
	if code == 0 {
		t.Fatal("conditional-free trace accepted")
	}
	if !strings.Contains(errOut, "no conditional branches") {
		t.Fatalf("unhelpful error: %q", errOut)
	}
}

// TestApplyRejectsCorrupt: a corrupted artifact must fail apply with a
// store error, never load partially.
func TestApplyRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "p.wspa")
	hintPath := filepath.Join(dir, "h.wspa")
	if code, _, errOut := runCLI(t, "profile", "-app", "kafka", "-records", "4000", "-o", profPath); code != 0 {
		t.Fatalf("profile exit %d: %s", code, errOut)
	}
	if code, _, errOut := runCLI(t, "train", "-profile", profPath, "-o", hintPath); code != 0 {
		t.Fatalf("train exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(hintPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(hintPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "apply", "-hints", hintPath)
	if code != 1 {
		t.Fatalf("corrupt artifact exit %d (want 1): %s", code, errOut)
	}
	if !strings.Contains(errOut, "apply: reading") {
		t.Fatalf("unhelpful error: %q", errOut)
	}
}

// TestTrainRequiresProfileSection: feeding a hint bundle back into train
// is a clear error.
func TestTrainRequiresProfileSection(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "p.wspa")
	hintPath := filepath.Join(dir, "h.wspa")
	if code, _, errOut := runCLI(t, "profile", "-app", "kafka", "-records", "4000", "-o", profPath); code != 0 {
		t.Fatalf("profile exit %d: %s", code, errOut)
	}
	if code, _, errOut := runCLI(t, "train", "-profile", profPath, "-o", hintPath); code != 0 {
		t.Fatalf("train exit %d: %s", code, errOut)
	}
	code, _, errOut := runCLI(t, "train", "-profile", hintPath, "-o", filepath.Join(dir, "x.wspa"))
	if code != 1 || !strings.Contains(errOut, "no profile section") {
		t.Fatalf("exit %d, err %q", code, errOut)
	}
}
