package main

// whisper report: the attribution surface of the CLI. It runs the full
// offline flow (profile, train, inject) plus a baseline and a hinted
// evaluation of the same window with per-branch attribution collectors
// attached, and explains where the MPKI goes: which static branches
// carry the baseline mispredictions, which of them the hint program
// covers, and what each placed hint bought at run time.
//
// The stdout report (header, ranked branch table, hint scoreboard) is
// canonical: byte-identical whichever pipeline engine ran (-block,
// -sim-j, -sim-window are pure wall-clock knobs here, like everywhere
// else), locked by golden and cross-engine tests. -json additionally
// writes the machine-readable attrib.Report document; -chrome-trace
// writes the run's phase and per-window spans in the Chrome trace-event
// format (load in about://tracing or Perfetto; see docs/attribution.md).

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/whisper-sim/whisper/internal/attrib"
	"github.com/whisper-sim/whisper/internal/classify"
	"github.com/whisper-sim/whisper/internal/cliflags"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
)

// reportBaselineName labels the baseline run in report documents.
const reportBaselineName = "tage-scl-64kb"

// reportWhisperName labels the hinted run in report documents.
const reportWhisperName = "whisper+tage-scl-64kb"

// cmdReport builds and prints the attribution report for one workload.
func cmdReport(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appFlag := fs.String("app", "mysql", "application name (see Table I)")
	recordsFlag := fs.Int("records", 400000, "records per window")
	inputFlag := fs.Int("input", 0, "training input")
	testFlag := fs.Int("test-input", 1, "evaluation input")
	exploreFlag := fs.Float64("explore", 0.05, "fraction of formulas explored (>=1 is exhaustive)")
	ti := cliflags.TraceInput(fs)
	warmFlag := fs.Float64("warmup", 0.3, "warm-up fraction of the measured window")
	topFlag := fs.Int("top", 20, "branches listed in the attribution table")
	topHintsFlag := fs.Int("top-hints", 20, "hints listed in the scoreboard")
	classesFlag := fs.Bool("classes", true, "attach each branch's dominant misprediction class (one extra classification pass)")
	jsonFlag := fs.String("json", "", "also write the canonical report JSON to this file")
	blockFlag := fs.Int("block", 0, "pipeline record-block size (0 = batched default, <0 = scalar reference)")
	simJFlag := fs.Int("sim-j", 0, "windowed-engine goroutines per simulation (<=1 = off)")
	simWindowFlag := fs.Int("sim-window", 0, "windowed-engine window length in records (0 = default)")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// The session's tracer observes every span from here on (-journal
	// and -chrome-trace both consume them).
	sess, ok := startObs(obs, "whisper report",
		map[string]any{"app": *appFlag, "records": *recordsFlag, "trace_file": *ti.File}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()
	// The replay-length quantiles need a registry when the windowed
	// engine runs.
	if *simJFlag > 1 && telemetry.Default() == nil {
		prev := telemetry.Install(telemetry.NewRegistry())
		defer telemetry.Install(prev)
	}

	// Resolve the evaluation window to a buffered record slice: the
	// fingerprint, both measured runs and the classification pass all
	// consume the identical records.
	var recs []trace.Record
	var workload string
	var b *sim.WhisperBuild
	if *ti.File != "" {
		recs, _ = loadTrace(*ti.File, *ti.Format, stderr)
		if recs == nil {
			return 2
		}
		workload = traceMetaPrefix + filepath.Base(*ti.File)
		bopt := sim.DefaultBuildOptions()
		bopt.Records = len(recs)
		bopt.Params.ExploreFraction = *exploreFlag
		var err error
		b, err = sim.BuildWhisperTrace(recs, bopt)
		if err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return 1
		}
	} else {
		app := lookupApp(*appFlag, stderr)
		if app == nil {
			return 2
		}
		workload = app.Name()
		bopt := sim.DefaultBuildOptions()
		bopt.TrainInput = *inputFlag
		bopt.Records = *recordsFlag
		bopt.Params.ExploreFraction = *exploreFlag
		var err error
		b, err = sim.BuildWhisper(app, bopt)
		if err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return 1
		}
		recs = trace.Collect(app.Stream(*testFlag, *recordsFlag), 0)
	}

	popt := pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(len(recs)) * *warmFlag),
		BlockSize:     *blockFlag,
		Parallelism:   *simJFlag,
		WindowSize:    *simWindowFlag,
	}
	baseC := attrib.NewCollector(0)
	popt.Attrib = baseC
	baseRes := sim.RunTrace(recs, sim.Tage64KB(), popt)

	whisperC := attrib.NewCollector(0)
	popt.Attrib = whisperC
	// The run fills whisperC; the report reads the collectors, not the
	// Result, so both runs are summarized from the identical source.
	_, _ = b.RunWhisperTrace(recs, sim.Tage64KB, popt)

	var classes map[uint64]string
	if *classesFlag {
		cl := classify.DefaultClassifier()
		cl.TrackBranches = attrib.DefaultCapacity
		counts := cl.Run(trace.NewSliceStream(recs), sim.Tage64KB())
		classes = counts.DominantLabels()
	}

	rep := attrib.Build(attrib.Inputs{
		Workload:      workload,
		Fingerprint:   traceio.Fingerprint(recs),
		Records:       baseRes.Records,
		Instrs:        baseRes.Instrs,
		WarmupRecords: baseRes.WarmupRecords,
		BaselineName:  reportBaselineName,
		WhisperName:   reportWhisperName,
		Base:          baseC,
		Whisper:       whisperC,
		HintedPCs:     b.Binary.HintedPCs(),
		Trained:       len(b.Train.Hints),
		Placed:        b.Binary.Placed,
		Dropped:       b.Binary.Dropped,
		Classes:       classes,
		TopN:          *topFlag,
		TopHints:      *topHintsFlag,
	})

	fmt.Fprintf(stdout, "== %s: misprediction attribution ==\n", workload)
	rep.SummaryLines(stdout)
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, rep.BranchTable().String())
	fmt.Fprintln(stdout, rep.HintTable().String())

	// Scheduling-dependent diagnostics stay on stderr: the canonical
	// stdout must not change with the engine knobs.
	if *simJFlag > 1 {
		if h := telemetry.Default().Histogram("whisper_sim_replay_records"); h != nil {
			fmt.Fprintf(stderr, "windowed engine: replay length p50 %.0f  p90 %.0f  p99 %.0f records (approx, log-bucket upper bounds)\n",
				h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
		}
	}

	if *jsonFlag != "" {
		if err := writeReportJSON(*jsonFlag, rep); err != nil {
			fmt.Fprintf(stderr, "report: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote report JSON to %s\n", *jsonFlag)
	}
	return 0
}

// writeReportJSON writes the canonical attribution document to path.
func writeReportJSON(path string, rep *attrib.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeChromeTrace writes the collected span buffer to path in the
// Chrome trace-event JSON format.
func writeChromeTrace(path string, tb *telemetry.TraceBuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
