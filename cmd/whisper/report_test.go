package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/attrib"
	"github.com/whisper-sim/whisper/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// reportArgs is the fixed configuration every report test runs; small
// enough for CI, large enough that hints place and the tables fill.
var reportArgs = []string{"report", "-app", "mysql", "-records", "20000"}

// TestReportGolden locks the report's canonical stdout byte for byte.
// Refresh intentionally with: go test ./cmd/whisper -run ReportGolden -update
func TestReportGolden(t *testing.T) {
	code, out, errOut := runCLI(t, reportArgs...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	golden := filepath.Join("testdata", "golden-report.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if out != string(want) {
		t.Fatalf("report output differs from %s (rerun with -update if intended):\n--- got\n%s\n--- want\n%s",
			golden, out, want)
	}
}

// TestReportEngineInvariance: the attribution report's stdout is
// byte-identical whichever pipeline engine resolves the branches —
// scalar reference, degenerate blocks, batched default, or the windowed
// parallel engine at several worker counts. This is the CLI-level lock
// on the attribution determinism contract.
func TestReportEngineInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine CLI comparison is not a -short test")
	}
	runWith := func(extra ...string) string {
		code, out, errOut := runCLI(t, append(append([]string{}, reportArgs...), extra...)...)
		if code != 0 {
			t.Fatalf("%v: exit %d: %s", extra, code, errOut)
		}
		return out
	}
	want := runWith("-block", "-1") // scalar reference
	for _, extra := range [][]string{
		{"-block", "1"},
		{"-block", "7"},
		{"-block", "0"},
		{"-sim-j", "2", "-sim-window", "613"},
		{"-sim-j", "4"},
	} {
		if got := runWith(extra...); got != want {
			t.Errorf("%v: report differs from scalar reference:\n--- got\n%s\n--- want\n%s", extra, got, want)
		}
	}
}

// TestReportJSONAndChromeTrace drives -json and -chrome-trace: the JSON
// round-trips through DecodeReport and is byte-identical across engines;
// the trace file is valid Chrome trace-event JSON with complete events.
func TestReportJSONAndChromeTrace(t *testing.T) {
	dir := t.TempDir()
	jsonA := filepath.Join(dir, "a.json")
	jsonB := filepath.Join(dir, "b.json")
	tracePath := filepath.Join(dir, "trace.json")

	code, _, errOut := runCLI(t, append(append([]string{}, reportArgs...),
		"-json", jsonA, "-chrome-trace", tracePath)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	code, _, errOut = runCLI(t, append(append([]string{}, reportArgs...),
		"-json", jsonB, "-block", "-1")...)
	if code != 0 {
		t.Fatalf("scalar run exit %d: %s", code, errOut)
	}

	a, err := os.ReadFile(jsonA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(jsonB)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("report JSON differs across engines:\n--- batched\n%s\n--- scalar\n%s", a, b)
	}
	rep, err := attrib.DecodeReport(a)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if rep.Workload != "mysql" || rep.Records == 0 || len(rep.Branches) == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	for _, br := range rep.Branches {
		if !strings.HasPrefix(br.PC, "0x") {
			t.Fatalf("branch PC not hex: %q", br.PC)
		}
	}

	// The Chrome export must load as the trace-event object format with
	// complete "X" events covering the pipeline phases.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"profile", "train", "simulate"} {
		if !names[want] {
			t.Fatalf("chrome trace missing %q span (got %v)", want, names)
		}
	}
}

// TestReportTraceFile: the report runs over an imported trace file, and
// the workload label and fingerprint identify the window.
func TestReportTraceFile(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "win.wbt")
	jsonPath := filepath.Join(dir, "rep.json")

	// Export a window first, then attribute it.
	code, _, errOut := runCLI(t, "-app", "kafka", "-records", "8000", "-trace", tracePath)
	if code != 0 {
		t.Fatalf("export exit %d: %s", code, errOut)
	}
	code, out, errOut := runCLI(t, "report", "-trace-file", tracePath, "-json", jsonPath)
	if code != 0 {
		t.Fatalf("report exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "trace:win.wbt") {
		t.Fatalf("missing trace workload label:\n%s", out)
	}
	if !strings.Contains(out, "trace fingerprint ") {
		t.Fatalf("missing fingerprint line:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := attrib.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "trace:win.wbt" || rep.Fingerprint == "" {
		t.Fatalf("report identity wrong: %+v", rep)
	}
}

// TestReportRejectsBadTrace: a conditional-free trace is an error, not
// an empty report.
func TestReportRejectsBadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jumps.wbt")
	writeTrace(t, path, []trace.Record{
		{PC: 0x400000, Target: 0x400100, Kind: trace.UncondDirect, Taken: true, Instrs: 4},
	})
	code, _, errOut := runCLI(t, "report", "-trace-file", path)
	if code == 0 {
		t.Fatal("conditional-free trace accepted")
	}
	if !strings.Contains(errOut, "no conditional branches") {
		t.Fatalf("unhelpful error: %q", errOut)
	}
}
