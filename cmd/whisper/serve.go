package main

// whisper serve / whisper fleet: the multi-tenant serving surface.
//
// serve runs the hint daemon from internal/server: tenants stream
// trace shards in, the daemon keeps a rolling profile per tenant,
// retrains when the window drifts past the threshold, and serves
// versioned WSPA bundles with content-fingerprint ETags (the HTTP
// contract is documented in docs/serving.md).
//
// fleet is the matching client load driver from internal/fleet: it
// simulates N tenants streaming catalog shards, switching application
// mid-stream to force drift retrains, and hot-reloading bundles
// through conditional GETs.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/whisper-sim/whisper/internal/cliflags"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/fleet"
	"github.com/whisper-sim/whisper/internal/server"
)

// cmdServe runs the hint daemon until SIGINT/SIGTERM, then drains
// in-flight requests and exits.
func cmdServe(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addrFlag := fs.String("addr", "127.0.0.1:9180", "listen address (host:port; port 0 picks a free port)")
	dirFlag := fs.String("dir", "", "bundle artifact directory (required)")
	exploreFlag := fs.Float64("explore", 0.05, "fraction of formulas explored per retrain (>=1 is exhaustive)")
	driftFlag := fs.Float64("drift-threshold", 0, "retrain when window drift exceeds this (0 = default)")
	minRetrainFlag := fs.Int("min-retrain-records", 0, "window records required before a drift retrain (0 = default)")
	inflightFlag := fs.Int("max-inflight", 0, "per-tenant concurrent shard uploads (0 = default)")
	bodyFlag := fs.Int64("max-body-bytes", 0, "largest accepted shard body in bytes (0 = default)")
	tenantsFlag := fs.Int("max-tenants", 0, "tenant table capacity (0 = default)")
	cacheFlag := fs.Int("cache-entries", 0, "bundle LRU cache entries (0 = default, <0 disables)")
	timeoutFlag := fs.Duration("request-timeout", 0, "per-request deadline (0 = default, <0 disables)")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dirFlag == "" {
		fmt.Fprintln(stderr, "serve: -dir is required (bundle artifacts need a home)")
		return 2
	}
	sess, ok := startObs(obs, "whisper serve",
		map[string]any{"addr": *addrFlag, "dir": *dirFlag, "explore": *exploreFlag}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()

	params := core.DefaultParams()
	params.ExploreFraction = *exploreFlag
	srv, err := server.NewServer(server.Config{
		Dir:                *dirFlag,
		Params:             params,
		DriftThreshold:     *driftFlag,
		MinRetrainRecords:  *minRetrainFlag,
		MaxInflight:        *inflightFlag,
		MaxBodyBytes:       *bodyFlag,
		MaxTenants:         *tenantsFlag,
		BundleCacheEntries: *cacheFlag,
		RequestTimeout:     *timeoutFlag,
		Journal:            sess.Journal,
	})
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		errc <- srv.ListenAndServe(*addrFlag, func(addr net.Addr) {
			fmt.Fprintf(stdout, "whisper serve: listening on http://%s\n", addr)
		})
	}()
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 1
		}
		return 0
	case <-ctx.Done():
		stop()
		fmt.Fprintln(stdout, "whisper serve: shutting down (draining in-flight requests)")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(stderr, "serve: shutdown: %v\n", err)
			return 1
		}
		if err := <-errc; err != nil {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 1
		}
		return 0
	}
}

// cmdFleet drives a simulated tenant fleet against a running daemon.
func cmdFleet(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("whisper fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addrFlag := fs.String("addr", "127.0.0.1:9180", "daemon address (host:port or http:// URL)")
	tenantsFlag := fs.Int("tenants", 0, "simulated tenants (0 = default)")
	shardsFlag := fs.Int("shards", 0, "shards streamed per tenant (0 = default)")
	recordsFlag := fs.Int("shard-records", 0, "records per shard (0 = default)")
	appsFlag := fs.String("apps", "", "comma-separated catalog apps the tenants draw from (default: the Table I set)")
	switchFlag := fs.Int("switch-at", 0, "shard index where tenants switch application (0 = half-way, <0 never)")
	jsonFlag := fs.String("json", "", "also write the fleet report JSON to this file")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sess, ok := startObs(obs, "whisper fleet",
		map[string]any{"addr": *addrFlag, "tenants": *tenantsFlag, "shards": *shardsFlag}, stderr)
	if !ok {
		return 2
	}
	defer func() { code = sess.CloseCode(code) }()

	base := *addrFlag
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	var apps []string
	if *appsFlag != "" {
		for _, a := range strings.Split(*appsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				apps = append(apps, a)
			}
		}
	}
	rep, err := fleet.Run(fleet.Config{
		BaseURL:      base,
		Client:       &http.Client{Timeout: 120 * time.Second},
		Tenants:      *tenantsFlag,
		Shards:       *shardsFlag,
		ShardRecords: *recordsFlag,
		Apps:         apps,
		SwitchAt:     *switchFlag,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "fleet: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "== fleet: %d tenants ==\n", len(rep.Tenants))
	for _, tr := range rep.Tenants {
		fmt.Fprintf(stdout, "%-12s  shards %-3d records %-8d retrains %-3d reloads %-3d 304s %-3d final v%d (%d hints)\n",
			tr.Tenant, tr.Shards, tr.Records, tr.Retrains, tr.Reloads, tr.NotModified, tr.FinalVersion, tr.FinalHints)
	}
	fmt.Fprintf(stdout, "total: shards %d  records %d  retrains %d  reloads %d  304s %d  rejected %d\n",
		rep.Shards, rep.Records, rep.Retrains, rep.Reloads, rep.NotModified, rep.Rejected)
	// Retrains beyond the per-tenant initial train are drift-triggered.
	fmt.Fprintf(stdout, "drift retrains: %d\n", rep.Retrains-len(rep.Tenants))

	if *jsonFlag != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonFlag, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "fleet: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote fleet report JSON to %s\n", *jsonFlag)
	}
	return 0
}
