// Command bench measures the pipeline's scalar reference loop against
// the batched record-block engine over a pinned workload/predictor
// matrix and writes a BENCH_<name>.json report in the benchio schema.
//
// Usage:
//
//	bench [-name N] [-o FILE] [-records N] [-reps N] [-block N]
//	      [-sim-j N] [-sim-window N]
//	      [-apps mysql,kafka] [-predictors tage-sc-l-64KB,...]
//	      [-smoke] [-check]
//
// Each matrix cell replays one pre-collected record stream through both
// engines with a fresh predictor per repetition. An untimed warmup
// repetition per engine precedes measurement, and scalar/batched timed
// repetitions are interleaved so machine noise (frequency steps, noisy
// neighbours) hits both engines alike; the report carries the medians.
// Every repetition's pipeline.Result is also compared against the
// scalar reference — the benchmark refuses to time two engines that
// disagree on a single counter.
//
// -sim-j N with N >= 2 additionally times the windowed parallel engine
// (docs/parallel-sim.md) at that goroutine count, interleaved with the
// other two, and reports its speedup over the serial batched engine
// plus the speculation replay rate observed across the timed reps.
//
// -smoke shrinks the matrix and scale for CI; -check exits nonzero if
// any cell's batched engine is slower than the scalar one, or — on a
// multi-core host — if a windowed cell is slower than the batched
// engine (single-core hosts report windowed numbers but cannot expect
// a parallel win, so the windowed gate is skipped).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/whisper-sim/whisper/internal/benchio"
	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/mtage"
	"github.com/whisper-sim/whisper/internal/perceptron"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// predictorFactories is the pinned predictor menu. Keys are the names
// used in reports and on the -predictors flag.
var predictorFactories = map[string]func() bpu.Predictor{
	"tage-sc-l-64KB":  func() bpu.Predictor { return tage.New(tage.DefaultConfig()) },
	"tage-sc-l-8KB":   func() bpu.Predictor { return tage.New(tage.Config{SizeKB: 8}) },
	"mtage-sc":        func() bpu.Predictor { return mtage.New() },
	"perceptron-64KB": func() bpu.Predictor { return perceptron.New(perceptron.DefaultConfig()) },
	"bimodal":         func() bpu.Predictor { return bpu.NewBimodal(14) },
}

// defaultMatrix is the pinned full-run matrix; smokeMatrix the CI one.
var (
	defaultApps       = []string{"mysql", "kafka"}
	defaultPredictors = []string{"tage-sc-l-64KB", "tage-sc-l-8KB", "mtage-sc", "perceptron-64KB", "bimodal"}
	// The smoke matrix pins predictors with native batch fast paths:
	// those are the cells -check gates on, and the ones whose regression
	// would mean the batching machinery broke. bimodal rides through the
	// scalar-adapter fallback, so its batched cost legitimately hovers
	// around 1.0x and belongs in full runs only.
	smokeApps       = []string{"mysql"}
	smokePredictors = []string{"tage-sc-l-64KB", "tage-sc-l-8KB", "mtage-sc"}
)

type config struct {
	name       string
	out        string
	records    int
	reps       int
	block      int
	simJ       int
	simWindow  int
	apps       []string
	predictors []string
	smoke      bool
	check      bool
	validate   string
}

func parseConfig(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nameFlag := fs.String("name", "batched_core", "report name (file defaults to BENCH_<name>.json)")
	outFlag := fs.String("o", "", "output path (default BENCH_<name>.json; \"-\" suppresses the file)")
	recordsFlag := fs.Int("records", 200000, "records per measured repetition")
	repsFlag := fs.Int("reps", 5, "timed repetitions per engine (medians are reported)")
	blockFlag := fs.Int("block", 0, "batched engine block size (0 = default)")
	simJFlag := fs.Int("sim-j", 0, "also time the windowed parallel engine with this many goroutines (<2 = off)")
	simWindowFlag := fs.Int("sim-window", 0, "windowed engine window length in records (0 = default)")
	appsFlag := fs.String("apps", "", "comma-separated app subset (default mysql,kafka)")
	predFlag := fs.String("predictors", "", "comma-separated predictor subset")
	smokeFlag := fs.Bool("smoke", false, "CI smoke run: tiny matrix and scale")
	checkFlag := fs.Bool("check", false, "exit nonzero if any batched cell is slower than scalar")
	validateFlag := fs.String("validate", "", "validate an existing report FILE and exit (no benchmarking)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	c := &config{
		name:       *nameFlag,
		out:        *outFlag,
		records:    *recordsFlag,
		reps:       *repsFlag,
		block:      *blockFlag,
		simJ:       *simJFlag,
		simWindow:  *simWindowFlag,
		apps:       defaultApps,
		predictors: defaultPredictors,
		smoke:      *smokeFlag,
		check:      *checkFlag,
		validate:   *validateFlag,
	}
	if c.simJ >= 2 && c.simWindow == 0 {
		c.simWindow = pipeline.DefaultWindowSize
	}
	if c.validate != "" {
		return c, nil // validation mode ignores the matrix flags
	}
	if c.smoke {
		c.apps, c.predictors = smokeApps, smokePredictors
		if !flagSet(fs, "records") {
			c.records = 20000
		}
		if !flagSet(fs, "reps") {
			c.reps = 2
		}
	}
	if *appsFlag != "" {
		c.apps = splitList(*appsFlag)
	}
	if *predFlag != "" {
		c.predictors = splitList(*predFlag)
	}
	if c.records < 1 || c.reps < 1 {
		return nil, fmt.Errorf("bench: -records and -reps must be positive")
	}
	for _, p := range c.predictors {
		if predictorFactories[p] == nil {
			return nil, fmt.Errorf("bench: unknown predictor %q (have %s)",
				p, strings.Join(knownPredictors(), ", "))
		}
	}
	if c.out == "" {
		c.out = "BENCH_" + c.name + ".json"
	}
	return c, nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func knownPredictors() []string {
	names := make([]string, 0, len(predictorFactories))
	for name := range predictorFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// measure times one engine pass over recs with a fresh predictor.
// block < 0 selects the scalar reference loop.
func measure(recs []trace.Record, mk func() bpu.Predictor, block int) (time.Duration, pipeline.Result) {
	opt := pipeline.Options{Config: pipeline.DefaultConfig(), BlockSize: block}
	p := mk()
	start := time.Now()
	res := pipeline.Run(trace.NewSliceStream(recs), p, opt)
	return time.Since(start), res
}

// measureWindowed times one windowed-engine pass with a fresh predictor.
func measureWindowed(recs []trace.Record, mk func() bpu.Predictor, c *config) (time.Duration, pipeline.Result, pipeline.WindowedStats) {
	opt := pipeline.Options{
		Config:      pipeline.DefaultConfig(),
		Parallelism: c.simJ,
		WindowSize:  c.simWindow,
	}
	p := mk()
	start := time.Now()
	res, ws := pipeline.RunWindowedStats(trace.NewSliceStream(recs), p, opt)
	return time.Since(start), res, ws
}

// median of a small sample, destructive on order.
func median(d []time.Duration) time.Duration {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	n := len(d)
	if n%2 == 1 {
		return d[n/2]
	}
	return (d[n/2-1] + d[n/2]) / 2
}

// benchCell measures one (app, predictor) cell: an untimed warmup pass
// per engine, then interleaved timed repetitions.
func benchCell(c *config, recs []trace.Record, appName, predName string) (benchio.Result, error) {
	mk := predictorFactories[predName]
	_, want := measure(recs, mk, -1) // scalar warmup doubles as the reference result
	if _, got := measure(recs, mk, c.block); got != want {
		return benchio.Result{}, fmt.Errorf("%s/%s: batched result diverges from scalar:\nbatched %+v\nscalar  %+v",
			appName, predName, got, want)
	}
	windowedOn := c.simJ >= 2
	if windowedOn {
		if _, got, _ := measureWindowed(recs, mk, c); got != want {
			return benchio.Result{}, fmt.Errorf("%s/%s: windowed result diverges from scalar:\nwindowed %+v\nscalar   %+v",
				appName, predName, got, want)
		}
	}
	scalar := make([]time.Duration, c.reps)
	batched := make([]time.Duration, c.reps)
	windowed := make([]time.Duration, c.reps)
	var replayedSum, recordsSum uint64
	for r := 0; r < c.reps; r++ {
		var res pipeline.Result
		scalar[r], res = measure(recs, mk, -1)
		if res != want {
			return benchio.Result{}, fmt.Errorf("%s/%s: scalar rep %d nondeterministic", appName, predName, r)
		}
		batched[r], res = measure(recs, mk, c.block)
		if res != want {
			return benchio.Result{}, fmt.Errorf("%s/%s: batched rep %d diverges from scalar", appName, predName, r)
		}
		if windowedOn {
			var ws pipeline.WindowedStats
			windowed[r], res, ws = measureWindowed(recs, mk, c)
			if res != want {
				return benchio.Result{}, fmt.Errorf("%s/%s: windowed rep %d diverges from scalar", appName, predName, r)
			}
			replayedSum += ws.ReplayedRecords
			recordsSum += uint64(len(recs))
		}
	}
	sNS := float64(median(scalar)) / float64(len(recs))
	bNS := float64(median(batched)) / float64(len(recs))
	cell := benchio.Result{
		App:                  appName,
		Predictor:            predName,
		Records:              len(recs),
		Reps:                 c.reps,
		BlockSize:            c.block,
		ScalarNSPerRecord:    sNS,
		BatchedNSPerRecord:   bNS,
		ScalarRecordsPerSec:  1e9 / sNS,
		BatchedRecordsPerSec: 1e9 / bNS,
		Speedup:              sNS / bNS,
	}
	if windowedOn {
		wNS := float64(median(windowed)) / float64(len(recs))
		cell.SimJ = c.simJ
		cell.WindowSize = c.simWindow
		cell.WindowedNSPerRecord = wNS
		cell.WindowedRecordsPerSec = 1e9 / wNS
		cell.WindowedSpeedup = bNS / wNS
		cell.ReplayRate = float64(replayedSum) / float64(recordsSum)
	}
	return cell, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseConfig(args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if c.validate != "" {
		r, err := benchio.Read(c.validate)
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: valid (schema %d, %d results)\n", c.validate, r.Schema, len(r.Results))
		return 0
	}
	report := &benchio.Report{
		Schema:     benchio.Schema,
		Name:       c.name,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Smoke:      c.smoke,
	}
	fmt.Fprintf(stdout, "bench %s: %d records x %d reps per engine (interleaved, medians reported)\n",
		c.name, c.records, c.reps)
	if c.simJ >= 2 {
		fmt.Fprintf(stdout, "windowed engine: sim-j=%d window=%d\n", c.simJ, c.simWindow)
		fmt.Fprintf(stdout, "%-8s %-16s %14s %14s %8s %15s %8s %7s\n",
			"app", "predictor", "scalar ns/rec", "batched ns/rec", "speedup",
			"windowed ns/rec", "vs batch", "replay")
	} else {
		fmt.Fprintf(stdout, "%-8s %-16s %14s %14s %12s %8s\n",
			"app", "predictor", "scalar ns/rec", "batched ns/rec", "batched rec/s", "speedup")
	}
	slower := 0
	windowedSlower := 0
	for _, appName := range c.apps {
		app := workload.AppByName(appName)
		if app == nil {
			fmt.Fprintf(stderr, "bench: unknown app %q\n", appName)
			return 2
		}
		// One stream collection serves every predictor and repetition:
		// the engines replay identical slices, so timing differences are
		// pure engine cost.
		recs := trace.Collect(app.Stream(0, c.records), c.records+1)
		for _, predName := range c.predictors {
			cell, err := benchCell(c, recs, appName, predName)
			if err != nil {
				fmt.Fprintf(stderr, "bench: %v\n", err)
				return 1
			}
			if cell.Speedup < 1 {
				slower++
			}
			if c.simJ >= 2 {
				if cell.WindowedSpeedup < 1 {
					windowedSlower++
				}
				fmt.Fprintf(stdout, "%-8s %-16s %14.1f %14.1f %7.2fx %15.1f %7.2fx %6.1f%%\n",
					cell.App, cell.Predictor, cell.ScalarNSPerRecord, cell.BatchedNSPerRecord,
					cell.Speedup, cell.WindowedNSPerRecord, cell.WindowedSpeedup, cell.ReplayRate*100)
			} else {
				fmt.Fprintf(stdout, "%-8s %-16s %14.1f %14.1f %12.0f %7.2fx\n",
					cell.App, cell.Predictor, cell.ScalarNSPerRecord, cell.BatchedNSPerRecord,
					cell.BatchedRecordsPerSec, cell.Speedup)
			}
			report.Results = append(report.Results, cell)
		}
	}
	if c.out != "-" {
		if err := benchio.Write(c.out, report); err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "report: %s\n", c.out)
	} else if err := benchio.Validate(report); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	if c.check && slower > 0 {
		fmt.Fprintf(stderr, "bench: %d cell(s) slower batched than scalar\n", slower)
		return 1
	}
	// The windowed gate needs real cores: on a single-core host the
	// engine's goroutines time-slice one CPU and a parallel win is
	// impossible, so only report.
	if c.check && windowedSlower > 0 && runtime.GOMAXPROCS(0) > 1 {
		fmt.Fprintf(stderr, "bench: %d cell(s) slower windowed than batched\n", windowedSlower)
		return 1
	}
	return 0
}
