package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/benchio"
)

// TestSmokeRun drives the full CLI in-process at a tiny scale: the
// matrix runs, the table prints, and the report file validates.
func TestSmokeRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-smoke", "-records", "3000", "-reps", "1", "-o", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	r, err := benchio.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Smoke || len(r.Results) != len(smokeApps)*len(smokePredictors) {
		t.Fatalf("unexpected report: smoke=%v results=%d", r.Smoke, len(r.Results))
	}
	for _, cell := range r.Results {
		if !strings.Contains(stdout.String(), cell.Predictor) {
			t.Errorf("stdout missing row for %s", cell.Predictor)
		}
	}
}

// TestValidateMode checks "-validate FILE" accepts a report the tool
// just wrote and rejects a damaged one without running any benchmark.
func TestValidateMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_v.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-smoke", "-records", "2000", "-reps", "1",
		"-predictors", "bimodal", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("bench run: exit %d: %s", code, stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"-validate", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("validate: exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "valid") {
		t.Fatalf("validate output: %s", stdout.String())
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":1,"name":""}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-validate", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad report: exit %d", code)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-predictors", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown predictor: exit %d", code)
	}
	if code := run([]string{"-apps", "nope", "-records", "10", "-reps", "1"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown app: exit %d", code)
	}
	if code := run([]string{"-records", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("zero records: exit %d", code)
	}
}

// TestNoFileDash checks "-o -" suppresses the report file but still
// validates the in-memory report.
func TestNoFileDash(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-smoke", "-records", "2000", "-reps", "1",
		"-predictors", "bimodal", "-o", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "report:") {
		t.Fatalf("report file written despite -o -: %s", stdout.String())
	}
}
