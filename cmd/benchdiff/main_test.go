package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/benchio"
)

// fixtureReport builds a small valid report with consistent derived
// fields.
func fixtureReport(name string) *benchio.Report {
	mk := func(app string, scalar, batched float64) benchio.Result {
		return benchio.Result{
			App: app, Predictor: "tage-sc-l-64KB",
			Records: 100000, Reps: 5,
			ScalarNSPerRecord:    scalar,
			BatchedNSPerRecord:   batched,
			ScalarRecordsPerSec:  1e9 / scalar,
			BatchedRecordsPerSec: 1e9 / batched,
			Speedup:              scalar / batched,
		}
	}
	return &benchio.Report{
		Schema: benchio.Schema, Name: name,
		Go: "go1.22", GOMAXPROCS: 8,
		Results: []benchio.Result{
			mk("kafka", 100, 50),
			mk("mysql", 200, 80),
		},
	}
}

// writeReport writes a report fixture and returns its path.
func writeReport(t *testing.T, dir, name string, r *benchio.Report) string {
	t.Helper()
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := benchio.Write(path, r); err != nil {
		t.Fatal(err)
	}
	return path
}

// diff drives the CLI in-process.
func diff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestSelfDiffPasses: a report diffed against itself has zero delta and
// exits 0 — the CI gate over the committed baselines.
func TestSelfDiffPasses(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "base", fixtureReport("base"))
	code, out, errOut := diff(t, path, path)
	if code != 0 {
		t.Fatalf("self-diff exit %d: %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "within thresholds") {
		t.Fatalf("missing pass summary:\n%s", out)
	}
}

// TestRegressionFails: a per-record cost grown beyond the threshold
// exits non-zero and names the offending cell and metric.
func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base", fixtureReport("base"))
	worse := fixtureReport("new")
	worse.Results[0].BatchedNSPerRecord = 60 // +20% over 50
	worse.Results[0].BatchedRecordsPerSec = 1e9 / 60
	worse.Results[0].Speedup = 100.0 / 60
	next := writeReport(t, dir, "new", worse)

	code, out, errOut := diff(t, base, next)
	if code != 1 {
		t.Fatalf("regression exit %d, want 1:\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "REGRESS  kafka/tage-sc-l-64KB batched ns/record") {
		t.Fatalf("regression not named:\n%s", out)
	}
	if !strings.Contains(errOut, "regression(s) beyond thresholds") {
		t.Fatalf("missing failure summary: %q", errOut)
	}

	// The same change passes with looser thresholds (the cost growth
	// also drags the speedup ratio down, so both must be raised).
	if code, out, _ := diff(t, "-ns-threshold", "25", "-speedup-threshold", "25", base, next); code != 0 {
		t.Fatalf("loose-threshold exit %d:\n%s", code, out)
	}
}

// TestSpeedupDropFails: a speedup ratio drop beyond its threshold is a
// regression even when absolute costs improved.
func TestSpeedupDropFails(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base", fixtureReport("base"))
	worse := fixtureReport("new")
	// Scalar got much faster but batched stayed put: the batched-engine
	// speedup collapses from 2.0 to 1.2.
	worse.Results[0].ScalarNSPerRecord = 60
	worse.Results[0].ScalarRecordsPerSec = 1e9 / 60
	worse.Results[0].Speedup = 60.0 / 50
	next := writeReport(t, dir, "new", worse)

	code, out, _ := diff(t, base, next)
	if code != 1 {
		t.Fatalf("speedup drop exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESS  kafka/tage-sc-l-64KB batched speedup") {
		t.Fatalf("speedup regression not named:\n%s", out)
	}
}

// TestMissingCellFails: losing a benchmark cell is a regression.
func TestMissingCellFails(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base", fixtureReport("base"))
	smaller := fixtureReport("new")
	smaller.Results = smaller.Results[:1]
	next := writeReport(t, dir, "new", smaller)

	code, out, _ := diff(t, base, next)
	if code != 1 {
		t.Fatalf("missing cell exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "MISSING  mysql/tage-sc-l-64KB") {
		t.Fatalf("missing cell not named:\n%s", out)
	}
}

// TestNewCellPasses: extra coverage in the new report is reported but
// never fails.
func TestNewCellPasses(t *testing.T) {
	dir := t.TempDir()
	base := fixtureReport("base")
	base.Results = base.Results[:1]
	basePath := writeReport(t, dir, "base", base)
	next := writeReport(t, dir, "new", fixtureReport("new"))

	code, out, _ := diff(t, basePath, next)
	if code != 0 {
		t.Fatalf("new cell exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "new      mysql/tage-sc-l-64KB") {
		t.Fatalf("new cell not reported:\n%s", out)
	}
}

// TestUsageAndReadErrors: bad invocations exit 2, unreadable reports 1.
func TestUsageAndReadErrors(t *testing.T) {
	if code, _, _ := diff(t); code != 2 {
		t.Fatal("no-arg invocation accepted")
	}
	if code, _, _ := diff(t, "one.json"); code != 2 {
		t.Fatal("single-arg invocation accepted")
	}
	if code, _, _ := diff(t, "-ns-threshold", "-1", "a.json", "b.json"); code != 2 {
		t.Fatal("negative threshold accepted")
	}
	dir := t.TempDir()
	ok := writeReport(t, dir, "ok", fixtureReport("ok"))
	if code, _, errOut := diff(t, filepath.Join(dir, "absent.json"), ok); code != 1 || errOut == "" {
		t.Fatalf("unreadable base exit %d", code)
	}
}

// TestCommittedBaselinesSelfDiff runs the exact CI gate: every
// committed BENCH_*.json must self-diff clean.
func TestCommittedBaselinesSelfDiff(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed baselines")
	}
	for _, path := range matches {
		if code, out, errOut := diff(t, path, path); code != 0 {
			t.Errorf("%s: self-diff exit %d:\n%s%s", path, code, out, errOut)
		}
	}
}
