// Command benchdiff compares two cmd/bench reports (BENCH_<name>.json,
// see internal/benchio) and fails on throughput regressions:
//
//	benchdiff [-ns-threshold 10] [-speedup-threshold 10] BASE.json NEW.json
//
// Results are matched by (app, predictor) cell. A cell regresses when a
// per-record cost grew by more than -ns-threshold percent (scalar,
// batched, and windowed ns/record each checked with the same threshold)
// or when an engine speedup ratio dropped by more than
// -speedup-threshold percent. Cells present in the base but missing
// from the new report count as regressions too (lost coverage); new
// cells are reported but never fail.
//
// The exit code is the contract: 0 when every matched cell is within
// thresholds, 1 on any regression (or unreadable report), 2 on usage
// errors. CI runs it in the bench-smoke job so a committed baseline
// cannot silently drift; absolute nanoseconds are machine-specific, so
// cross-machine comparisons should raise the thresholds or stick to the
// speedup ratios.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/whisper-sim/whisper/internal/benchio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cell keys one benchmark matrix entry.
type cell struct{ app, predictor string }

// metric is one compared quantity of a matched cell.
type metric struct {
	// name labels the metric in output ("batched ns/record").
	name string
	// base and new are the two reports' values; zero means absent.
	baseV, newV float64
	// lowerIsBetter: ns/record regresses upward, speedups downward.
	lowerIsBetter bool
	// threshold is the allowed relative change, as a fraction.
	threshold float64
}

// deltaPct is the signed relative change in percent.
func (m *metric) deltaPct() float64 { return (m.newV - m.baseV) / m.baseV * 100 }

// regressed reports whether the change exceeds the metric's threshold
// in the bad direction. Metrics absent from either side never regress.
func (m *metric) regressed() bool {
	if m.baseV == 0 || m.newV == 0 {
		return false
	}
	if m.lowerIsBetter {
		return m.newV > m.baseV*(1+m.threshold)
	}
	return m.newV < m.baseV*(1-m.threshold)
}

// run executes the diff; separated from main so tests drive it
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nsThr := fs.Float64("ns-threshold", 10, "allowed per-record cost growth in percent")
	spThr := fs.Float64("speedup-threshold", 10, "allowed engine-speedup drop in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-ns-threshold PCT] [-speedup-threshold PCT] BASE.json NEW.json")
		return 2
	}
	if *nsThr < 0 || *spThr < 0 {
		fmt.Fprintln(stderr, "benchdiff: thresholds must be non-negative")
		return 2
	}
	base, err := benchio.Read(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}
	next, err := benchio.Read(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}
	if base.Smoke != next.Smoke {
		fmt.Fprintf(stderr, "benchdiff: warning: comparing a smoke report against a full report; absolute numbers are not comparable\n")
	}

	baseCells := index(base)
	newCells := index(next)
	keys := make([]cell, 0, len(baseCells))
	for k := range baseCells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].app != keys[j].app {
			return keys[i].app < keys[j].app
		}
		return keys[i].predictor < keys[j].predictor
	})

	fmt.Fprintf(stdout, "benchdiff: %s (%s) vs %s (%s)\n", fs.Arg(0), base.Name, fs.Arg(1), next.Name)
	regressions := 0
	for _, k := range keys {
		b := baseCells[k]
		n, ok := newCells[k]
		if !ok {
			fmt.Fprintf(stdout, "MISSING  %s/%s: present in base, absent in new\n", k.app, k.predictor)
			regressions++
			continue
		}
		for _, m := range cellMetrics(b, n, *nsThr/100, *spThr/100) {
			if m.baseV == 0 || m.newV == 0 {
				continue
			}
			status := "ok      "
			if m.regressed() {
				status = "REGRESS "
				regressions++
			}
			fmt.Fprintf(stdout, "%s %s/%s %s: %.1f -> %.1f (%+.1f%%)\n",
				status, k.app, k.predictor, m.name, m.baseV, m.newV, m.deltaPct())
		}
	}
	for k := range newCells {
		if _, ok := baseCells[k]; !ok {
			fmt.Fprintf(stdout, "new      %s/%s: not in base\n", k.app, k.predictor)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) beyond thresholds (ns %+.0f%%, speedup -%.0f%%)\n",
			regressions, *nsThr, *spThr)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d cell(s) within thresholds\n", len(keys))
	return 0
}

// index maps a report's results by cell; duplicate cells keep the last,
// matching how readers of the JSON would overwrite.
func index(r *benchio.Report) map[cell]*benchio.Result {
	out := make(map[cell]*benchio.Result, len(r.Results))
	for i := range r.Results {
		res := &r.Results[i]
		out[cell{res.App, res.Predictor}] = res
	}
	return out
}

// cellMetrics builds the compared metrics of one matched cell.
func cellMetrics(b, n *benchio.Result, nsThr, spThr float64) []metric {
	return []metric{
		{"scalar ns/record", b.ScalarNSPerRecord, n.ScalarNSPerRecord, true, nsThr},
		{"batched ns/record", b.BatchedNSPerRecord, n.BatchedNSPerRecord, true, nsThr},
		{"windowed ns/record", b.WindowedNSPerRecord, n.WindowedNSPerRecord, true, nsThr},
		{"batched speedup", b.Speedup, n.Speedup, false, spThr},
		{"windowed speedup", b.WindowedSpeedup, n.WindowedSpeedup, false, spThr},
	}
}
