package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCleanTree(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "README.md"), `
See [the docs](docs/guide.md#setup), [an image](img/logo.png),
[external](https://example.com/x.md), [mail](mailto:a@b.c),
[section](#local), and [site](/absolute/path.md).
`)
	write(t, filepath.Join(dir, "docs", "guide.md"), "[back](../README.md)\n")
	write(t, filepath.Join(dir, "img", "logo.png"), "png")

	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(dir, "README.md"), filepath.Join(dir, "docs")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	// Only the two real relative links count; external/fragment/absolute
	// targets are skipped.
	if !strings.Contains(stdout.String(), "3 relative link(s)") {
		t.Fatalf("unexpected summary: %s", stdout.String())
	}
}

func TestBrokenLinkFails(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"), "line one\n[gone](missing.md)\n")

	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "a.md:2") || !strings.Contains(stderr.String(), "missing.md") {
		t.Fatalf("unhelpful report: %s", stderr.String())
	}
}

func TestDirectoryWalkFindsNestedMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "deep", "x.md"), "[bad](nope.md)\n")
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, stderr.String())
	}
}

func TestUsageAndMissingArg(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "ghost.md")}, &stdout, &stderr); code != 2 {
		t.Fatal("missing argument should exit 2")
	}
}
