// Command doccheck validates the repository's markdown cross-links:
//
//	doccheck README.md docs
//
// Each argument is a markdown file or a directory (walked for *.md).
// Every inline link or image whose target is a relative path must
// resolve to an existing file or directory; fragments (#section) are
// stripped before the check, pure-fragment and external (scheme:) links
// are skipped. CI runs it over README.md and docs/ so a renamed or
// deleted file cannot leave dangling references behind.
package main

import (
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Nested brackets in the text are out of scope — the
// repository's docs don't use them.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// run checks every markdown file reachable from args and returns the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: doccheck FILE|DIR...")
		return 2
	}
	files, err := collect(args)
	if err != nil {
		fmt.Fprintf(stderr, "doccheck: %v\n", err)
		return 2
	}
	var broken []string
	links := 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "doccheck: %v\n", err)
			return 2
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target, ok := relativeTarget(m[1])
				if !ok {
					continue
				}
				links++
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)",
						path, lineNo+1, m[1], resolved))
				}
			}
		}
	}
	for _, b := range broken {
		fmt.Fprintln(stderr, b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(stderr, "doccheck: %d broken link(s) in %d file(s)\n", len(broken), len(files))
		return 1
	}
	fmt.Fprintf(stdout, "doccheck: %d file(s), %d relative link(s), all resolve\n", len(files), links)
	return 0
}

// relativeTarget reports whether a link target is a checkable relative
// path, returning it with any fragment stripped.
func relativeTarget(target string) (string, bool) {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return "", false // pure fragment: same-file section link
	}
	if u, err := url.Parse(target); err == nil && (u.Scheme != "" || u.Host != "") {
		return "", false // external: http(s), mailto, ...
	}
	if strings.HasPrefix(target, "/") {
		return "", false // site-absolute: nothing to resolve locally
	}
	return target, true
}

// collect expands the argument list into a sorted, de-duplicated set of
// markdown files; directories are walked recursively.
func collect(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.EqualFold(filepath.Ext(p), ".md") {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
