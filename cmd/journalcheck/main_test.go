package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/whisper-sim/whisper/internal/telemetry"
)

// writeJournal builds a minimal valid journal on disk.
func writeJournal(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := telemetry.NewJournal(f)
	j.WriteManifest(telemetry.Manifest{Tool: "test"})
	j.WriteUnit("u0", time.Millisecond, 100, 40)
	j.WriteUnit("u1", time.Millisecond, 200, 80)
	j.WriteSnapshot(nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeJournal(t, path)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok (2 unit events)") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestRunInvalidJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"type\":\"unit\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), path) {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestRunUsageAndMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "absent")}, &out, &errb); code != 1 {
		t.Fatal("missing file should exit 1")
	}
}

func TestRunJournalWithSpanAndAttribLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := telemetry.NewJournal(f)
	j.WriteManifest(telemetry.Manifest{Tool: "test"})
	j.WriteUnit("u0", time.Millisecond, 100, 40)
	j.WriteSpan("simulate", 0, 1500)
	j.WriteAttrib("mysql", map[string]any{"schema": 1})
	j.WriteSnapshot(nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok (1 unit events)") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestRunRejectsBrokenSpanLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "badspan.jsonl")
	body := `{"type":"manifest","schema":2,"manifest":{"tool":"t"}}` + "\n" +
		`{"type":"span","wall_ns":5}` + "\n" +
		`{"type":"snapshot","metrics":{}}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "span without label") {
		t.Fatalf("stderr = %q", errb.String())
	}
}
