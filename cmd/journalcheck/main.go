// Command journalcheck validates a JSONL run journal produced by
// `experiments -journal` (or any telemetry.Journal writer):
//
//	journalcheck run.jsonl
//
// It checks the structural contract — a manifest first; unit, span
// (phase trace export), and attrib (per-branch attribution) events with
// labels and non-negative times; exactly one final snapshot carrying a
// metrics map, nothing after it; and a schema version this build
// understands — and reports the unit-event count on success. CI runs it
// over the journal of a tiny golden sweep so the format cannot drift
// silently.
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/whisper-sim/whisper/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run validates each journal file argument; any invalid file fails the
// whole invocation.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: journalcheck FILE...")
		return 2
	}
	code := 0
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "journalcheck: %v\n", err)
			code = 1
			continue
		}
		units, err := telemetry.ValidateJournal(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "journalcheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "%s: ok (%d unit events)\n", path, units)
	}
	return code
}
