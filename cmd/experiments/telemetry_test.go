package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"github.com/whisper-sim/whisper/internal/telemetry"
)

// journalRow mirrors the journal line shape for test-side decoding.
type journalRow struct {
	Type    string         `json:"type"`
	Label   string         `json:"label"`
	Instrs  uint64         `json:"instrs"`
	Metrics map[string]any `json:"metrics"`
}

// TestJournalDoesNotPerturbStdout is the acceptance gate for the
// telemetry layer: running with -journal (and -timing, at -j 8) must
// leave stdout byte-identical to a plain run, and the journal itself
// must validate with a snapshot whose instruction total matches both
// the per-unit events and the -timing summary on stderr.
func TestJournalDoesNotPerturbStdout(t *testing.T) {
	// fig1 runs full pipeline simulations (so the whisper_sim_* counters
	// populate); fig6 adds a second driver to the same journal.
	base := []string{
		"-scale", "tiny", "-records", "2000", "-apps", "mysql",
		"-only", "fig1,fig6", "-no-cache",
	}

	// The journal run goes first: later runs of the same configuration
	// hit the in-process baseline memo and skip the actual simulations,
	// which would leave the whisper_sim_* counters empty.
	journalPath := filepath.Join(t.TempDir(), "run.jsonl")
	var telOut, telErr bytes.Buffer
	args := append([]string{"-j", "8", "-journal", journalPath, "-timing"}, base...)
	if code := run(args, &telOut, &telErr); code != 0 {
		t.Fatalf("journal run exit %d: %s", code, telErr.String())
	}

	var plainOut, plainErr bytes.Buffer
	if code := run(append([]string{"-j", "2"}, base...), &plainOut, &plainErr); code != 0 {
		t.Fatalf("plain run exit %d: %s", code, plainErr.String())
	}

	plain := completedRe.ReplaceAllString(plainOut.String(), "completed in X]")
	tel := completedRe.ReplaceAllString(telOut.String(), "completed in X]")
	if plain != tel {
		t.Fatalf("stdout changed with -journal -timing -j 8:\n--- plain\n%s\n--- telemetry\n%s", plain, tel)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	units, err := telemetry.ValidateJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	if units == 0 {
		t.Fatal("journal carries no unit events")
	}

	var unitInstrs uint64
	var snapshot map[string]any
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row journalRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatal(err)
		}
		switch row.Type {
		case "unit":
			unitInstrs += row.Instrs
		case "snapshot":
			snapshot = row.Metrics
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	total := metricValue(t, snapshot, "whisper_runner_instructions_total")
	if total != unitInstrs {
		t.Fatalf("snapshot whisper_runner_instructions_total = %d, unit events sum to %d", total, unitInstrs)
	}
	simTotal := metricValue(t, snapshot, "whisper_sim_instructions_total")
	if simTotal == 0 {
		t.Fatal("snapshot whisper_sim_instructions_total is zero")
	}

	// The -timing summary and the journal must agree on what ran.
	m := regexp.MustCompile(`runner: (\d+) units in `).FindStringSubmatch(telErr.String())
	if m == nil {
		t.Fatalf("no timing summary on stderr: %q", telErr.String())
	}
	if got, _ := strconv.Atoi(m[1]); got != units {
		t.Fatalf("timing summary reports %s units, journal has %d unit events", m[1], units)
	}
	wantLine := fmt.Sprintf("runner: %.1fM instructions simulated", float64(total)/1e6)
	if !bytes.Contains(telErr.Bytes(), []byte(wantLine)) {
		t.Fatalf("timing summary does not render the snapshot total %d (%q missing from %q)",
			total, wantLine, telErr.String())
	}
}

// metricValue extracts a numeric metric from a decoded snapshot, where
// JSON numbers arrive as float64.
func metricValue(t *testing.T, snapshot map[string]any, name string) uint64 {
	t.Helper()
	if snapshot == nil {
		t.Fatal("journal has no snapshot metrics")
	}
	v, ok := snapshot[name]
	if !ok {
		t.Fatalf("snapshot is missing %s (have %d metrics)", name, len(snapshot))
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("%s = %T(%v), want number", name, v, v)
	}
	return uint64(f)
}

// TestTimingWithoutProgressPrintsCacheStats locks the -timing contract:
// cache statistics appear even when no progress writer exists, and also
// on runs where no monitor is constructed at all paths that report
// timing.
func TestTimingWithoutProgressPrintsCacheStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-records", "2000", "-apps", "mysql",
		"-only", "table1", "-timing", "-no-cache",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("baseline cache:")) {
		t.Fatalf("-timing did not print baseline cache stats: %q", stderr.String())
	}
}

// TestDebugAddrServesMetrics starts a run with -debug-addr on an
// ephemeral port; the deferred server teardown and registry restore
// must leave the process clean, and the flag must not perturb stdout.
func TestDebugAddrServesMetrics(t *testing.T) {
	var plainOut, e1 bytes.Buffer
	base := []string{
		"-scale", "tiny", "-records", "2000", "-apps", "mysql",
		"-only", "table1,fig6", "-no-cache",
	}
	if code := run(base, &plainOut, &e1); code != 0 {
		t.Fatalf("plain run exit %d: %s", code, e1.String())
	}
	var debugOut, e2 bytes.Buffer
	if code := run(append([]string{"-debug-addr", "127.0.0.1:0"}, base...), &debugOut, &e2); code != 0 {
		t.Fatalf("debug run exit %d: %s", code, e2.String())
	}
	if !bytes.Contains(e2.Bytes(), []byte("debug endpoint: http://")) {
		t.Fatalf("no endpoint announcement on stderr: %q", e2.String())
	}
	plain := completedRe.ReplaceAllString(plainOut.String(), "completed in X]")
	debug := completedRe.ReplaceAllString(debugOut.String(), "completed in X]")
	if plain != debug {
		t.Fatalf("stdout changed with -debug-addr:\n--- plain\n%s\n--- debug\n%s", plain, debug)
	}
}
