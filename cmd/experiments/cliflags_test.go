package main

// The experiments binary shares the whisper CLI's flag vocabulary: the
// cliflags.Common observability set and the canonical
// -trace-file/-trace-format pair must register with exactly the shared
// usage wording (see internal/cliflags and the twin test in
// cmd/whisper).

import (
	"bytes"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/cliflags"
)

func TestExperimentsRegistersSharedFlags(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseConfig([]string{"-definitely-not-a-flag"}, &stderr); err == nil {
		t.Fatal("parseConfig accepted an unknown flag")
	}
	usage := stderr.String()
	names := append(cliflags.CommonNames(), cliflags.TraceNames()...)
	for _, fname := range names {
		if !strings.Contains(usage, "-"+fname) {
			t.Errorf("experiments does not register -%s", fname)
		}
		if want := cliflags.Usage()[fname]; !strings.Contains(usage, want) {
			t.Errorf("-%s usage drifted from the canonical wording %q", fname, want)
		}
	}
}
