package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/attrib"
	"github.com/whisper-sim/whisper/internal/telemetry"
)

// attribArgs is the fixed tiny attribution study the golden and
// invariance tests run.
var attribArgs = []string{
	"-scale", "tiny", "-records", "6000", "-apps", "mysql,kafka",
	"-attrib", "-no-cache",
}

// TestGoldenAttrib locks the attribution study's stdout byte for byte.
// Refresh intentionally with: go test ./cmd/experiments -run GoldenAttrib -update
func TestGoldenAttrib(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(append(append([]string{}, attribArgs...), "-j", "2"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	got := completedRe.ReplaceAllString(stdout.String(), "completed in X]")

	golden := filepath.Join("testdata", "golden-attrib.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (rerun with -update if intended):\n--- got\n%s\n--- want\n%s",
			golden, got, want)
	}
}

// TestAttribEngineAndWorkerInvariance: the attribution tables are
// byte-identical at every -j and whichever pipeline engine resolves the
// branches — the CLI-level lock on the tentpole's determinism contract.
func TestAttribEngineAndWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine CLI comparison is not a -short test")
	}
	runWith := func(extra ...string) string {
		var stdout, stderr bytes.Buffer
		args := append(append([]string{}, attribArgs...), extra...)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("%v: exit %d: %s", extra, code, stderr.String())
		}
		return completedRe.ReplaceAllString(stdout.String(), "completed in X]")
	}
	want := runWith("-block", "-1", "-j", "1") // scalar reference, sequential
	for _, extra := range [][]string{
		{"-block", "1", "-j", "2"},
		{"-block", "0", "-j", "4"},
		{"-sim-j", "2", "-sim-window", "613", "-j", "2"},
		{"-sim-j", "4", "-j", "1"},
	} {
		if got := runWith(extra...); got != want {
			t.Errorf("%v: attribution output differs from scalar reference:\n--- got\n%s\n--- want\n%s",
				extra, got, want)
		}
	}
}

// TestAttribJSONAndJournal: -attrib-json writes a decodable canonical
// report array, and -journal gains one attrib line per app that
// validates under the schema.
func TestAttribJSONAndJournal(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "reports.json")
	journalPath := filepath.Join(dir, "run.jsonl")

	var stdout, stderr bytes.Buffer
	args := append(append([]string{}, attribArgs...),
		"-attrib-json", jsonPath, "-journal", journalPath)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var reports []json.RawMessage
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatalf("attrib json not an array: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports, want 2", len(reports))
	}
	for i, raw := range reports {
		rep, err := attrib.DecodeReport(raw)
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if rep.Records == 0 || rep.Baseline.CondExecs == 0 {
			t.Fatalf("report %d implausible: %+v", i, rep)
		}
	}

	jf, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := telemetry.ValidateJournal(jf); err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	jdata, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(jdata), `"type":"attrib"`); n != 2 {
		t.Fatalf("%d attrib journal lines, want 2", n)
	}
}

// TestAttribChromeTraceExport: -chrome-trace writes a loadable Chrome
// trace-event document covering the pipeline phases.
func TestAttribChromeTraceExport(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	args := append(append([]string{}, attribArgs...), "-chrome-trace", tracePath)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"profile", "train", "simulate"} {
		if !names[want] {
			t.Fatalf("chrome trace missing %q span (got %v)", want, names)
		}
	}
}

// TestAttribFlagConflicts: the attrib options require -attrib, and the
// study refuses to combine with the other standalone modes.
func TestAttribFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-attrib-json", "x.json"},
		{"-attrib-top", "5"},
		{"-attrib", "-spec", "spec.yaml"},
		{"-attrib", "-trace-file", "t.wspt"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}
