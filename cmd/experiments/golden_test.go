package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// completedRe matches the wall-clock suffix of the per-experiment
// footer, the only nondeterministic part of the output.
var completedRe = regexp.MustCompile(`completed in [^\]]+\]`)

// TestGoldenTinyTables locks the rendered table output of a tiny
// deterministic subset of the suite. Any formatting or numeric drift —
// an accidental change to the simulator, the table renderer, or a
// driver — shows up as a readable diff against the committed fixture.
// Refresh intentionally with: go test ./cmd/experiments -run Golden -update
func TestGoldenTinyTables(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "tiny", "-records", "4000", "-apps", "mysql,kafka",
		"-only", "table1,fig1,fig6,fig19", "-j", "2", "-no-cache",
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", stderr.String())
	}
	got := completedRe.ReplaceAllString(stdout.String(), "completed in X]")

	golden := filepath.Join("testdata", "golden-tiny.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (rerun with -update if intended):\n--- got\n%s\n--- want\n%s",
			golden, got, want)
	}
}

// TestGoldenBlockSizeInvariance locks the tentpole's correctness claim
// end to end: the full CLI's stdout is byte-identical whether the
// pipeline runs the scalar reference loop (-block -1), degenerate
// one-record blocks, an odd block size, or the batched default, at any
// -j. The scalar run is the reference; everything else must match it.
func TestGoldenBlockSizeInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine CLI comparison is not a -short test")
	}
	runWith := func(block string, j string) string {
		var stdout, stderr bytes.Buffer
		args := []string{
			"-scale", "tiny", "-records", "3000", "-apps", "mysql,kafka",
			"-only", "table1,fig6", "-no-cache",
			"-block", block, "-j", j,
		}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("-block %s -j %s: exit %d: %s", block, j, code, stderr.String())
		}
		return completedRe.ReplaceAllString(stdout.String(), "completed in X]")
	}
	want := runWith("-1", "1") // scalar reference
	for _, tc := range []struct{ block, j string }{
		{"1", "1"},
		{"7", "2"},
		{"0", "2"}, // batched default
		{"4096", "4"},
	} {
		if got := runWith(tc.block, tc.j); got != want {
			t.Errorf("-block %s -j %s: stdout differs from scalar reference:\n--- got\n%s\n--- want\n%s",
				tc.block, tc.j, got, want)
		}
	}
}
