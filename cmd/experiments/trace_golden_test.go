package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenRun executes the CLI and compares (or rewrites with -update)
// the normalized stdout against a committed fixture.
func goldenRun(t *testing.T, golden string, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", stderr.String())
	}
	got := completedRe.ReplaceAllString(stdout.String(), "completed in X]")

	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (rerun with -update if intended):\n--- got\n%s\n--- want\n%s",
			path, got, want)
	}
}

// TestGoldenTransferTables locks the cross-workload transfer study's
// three tables — the reduction matrix, the overlap matrix, and the
// sorted pair summary — over a mixed catalog/family app set.
func TestGoldenTransferTables(t *testing.T) {
	goldenRun(t, "golden-transfer.txt",
		"-scale", "tiny", "-records", "20000", "-apps", "python,interp-dispatch,gc-mark",
		"-only", "transfer", "-j", "2", "-no-cache")
}

// TestGoldenImportedTrace locks the imported-trace evaluation over the
// committed example fixture, in both text and binary form (the two
// files decode to identical records, so they must print identical
// tables up to the trace name).
func TestGoldenImportedTrace(t *testing.T) {
	goldenRun(t, "golden-import.txt",
		"-trace-file", "../../examples/traces/sample.txt", "-no-cache")

	var text, bin bytes.Buffer
	var stderr bytes.Buffer
	if code := run([]string{"-trace-file", "../../examples/traces/sample.txt", "-no-cache"}, &text, &stderr); code != 0 {
		t.Fatalf("text: exit %d: %s", code, stderr.String())
	}
	if code := run([]string{"-trace-file", "../../examples/traces/sample.wspt", "-trace-format", "binary", "-no-cache"}, &bin, &stderr); code != 0 {
		t.Fatalf("binary: exit %d: %s", code, stderr.String())
	}
	norm := func(b *bytes.Buffer, name string) string {
		return completedRe.ReplaceAllString(
			string(bytes.ReplaceAll(b.Bytes(), []byte(name), []byte("sample"))),
			"completed in X]")
	}
	if norm(&text, "sample.txt") != norm(&bin, "sample.wspt") {
		t.Fatalf("text and binary forms of the same trace diverge:\n--- text\n%s\n--- binary\n%s",
			text.String(), bin.String())
	}
}

// TestTraceFlagConflicts drives every rejected -trace-file combination
// through the real flag parser.
func TestTraceFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"with -spec", []string{"-trace-file", "../../examples/traces/sample.txt", "-spec", "x.yaml"}},
		{"with -apps", []string{"-trace-file", "../../examples/traces/sample.txt", "-apps", "mysql"}},
		{"format without file", []string{"-trace-format", "binary"}},
		{"unknown format", []string{"-trace-file", "../../examples/traces/sample.txt", "-trace-format", "nope"}},
		{"missing file", []string{"-trace-file", "no-such-trace.txt"}},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr %q)", tc.name, code, stderr.String())
		}
	}
}

// TestGoldenFamilyDeterminism sweeps the three workload families added
// with the importer layer across every across-unit and within-trace
// parallelism combination: the CLI's stdout must be byte-identical at
// -j {1,4} x -sim-j {1,4}. Run under -race in CI, this doubles as the
// families' scheduler-stress test.
func TestGoldenFamilyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the family drivers four times")
	}
	runWith := func(j, simJ string) string {
		var stdout, stderr bytes.Buffer
		args := []string{
			"-scale", "tiny", "-records", "3000",
			"-apps", "interp-dispatch,gc-mark,rpc-chain",
			"-only", "fig1,fig6", "-no-cache",
			"-j", j, "-sim-j", simJ,
		}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("-j %s -sim-j %s: exit %d: %s", j, simJ, code, stderr.String())
		}
		return completedRe.ReplaceAllString(stdout.String(), "completed in X]")
	}
	want := runWith("1", "1")
	for _, tc := range []struct{ j, simJ string }{
		{"1", "4"},
		{"4", "1"},
		{"4", "4"},
	} {
		if got := runWith(tc.j, tc.simJ); got != want {
			t.Errorf("-j %s -sim-j %s: stdout differs from -j 1 -sim-j 1:\n--- got\n%s\n--- want\n%s",
				tc.j, tc.simJ, got, want)
		}
	}
}
