package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/telemetry"
)

// specRun drives the CLI against a spec file and returns normalized
// stdout (wall-clock footers replaced).
func specRun(t *testing.T, extra ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append([]string{"-spec", filepath.Join("..", "..", "examples", "specs", "steady.yaml"), "-no-cache"}, extra...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", stderr.String())
	}
	return completedRe.ReplaceAllString(stdout.String(), "completed in X]")
}

// TestGoldenSpecSteady locks the full -spec output — the scenario
// summary, the per-phase comparison, and the staleness table — for the
// committed steady.yaml example. Any change to the spec compiler, the
// seed derivation, the interleaver, or the drivers shows up as a
// readable diff. Refresh intentionally with:
// go test ./cmd/experiments -run GoldenSpec -update
func TestGoldenSpecSteady(t *testing.T) {
	got := specRun(t, "-j", "2")

	golden := filepath.Join("testdata", "golden-spec-steady.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (rerun with -update if intended):\n--- got\n%s\n--- want\n%s",
			golden, got, want)
	}
}

// TestSpecParallelismInvariance is the replay contract at the CLI
// boundary: -spec output is byte-identical at -j 1 and -j 8, and across
// repeated runs of the same process.
func TestSpecParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run CLI comparison is not a -short test")
	}
	j1 := specRun(t, "-j", "1")
	j8 := specRun(t, "-j", "8")
	if j1 != j8 {
		t.Fatalf("-j 1 and -j 8 outputs differ:\n--- j1\n%s\n--- j8\n%s", j1, j8)
	}
	if again := specRun(t, "-j", "8"); again != j8 {
		t.Fatal("repeated -j 8 run produced different output")
	}
}

// TestSpecValidateExamples keeps every committed example spec loadable
// and compilable — the same check CI runs via -validate.
func TestSpecValidateExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	for _, f := range files {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-spec", f, "-validate", "-no-cache"}, &stdout, &stderr); code != 0 {
			t.Errorf("%s: exit %d: %s", f, code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "Spec ") {
			t.Errorf("%s: -validate printed no summary:\n%s", f, stdout.String())
		}
	}
}

// TestSpecFlagErrors covers the flag contract: -spec conflicts with
// -apps (the spec's mix selects the applications), -validate requires
// -spec, and a broken spec file fails with a parse error before any
// simulation starts.
func TestSpecFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"spec with apps", []string{"-spec", "x.yaml", "-apps", "mysql"}, "conflict"},
		{"validate without spec", []string{"-validate"}, "requires -spec"},
		{"missing file", []string{"-spec", filepath.Join(t.TempDir(), "nope.yaml")}, "no such file"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.want)
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("name: x\nrecords: 10\nmix: []\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", bad}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad spec: exit %d, want 2: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "mix must not be empty") {
		t.Fatalf("bad spec: unhelpful error: %s", stderr.String())
	}
}

// TestSpecJournal runs a spec sweep with -journal and validates the
// journal with the same checker CI uses (manifest first, labelled unit
// events, one final snapshot), plus the spec-specific manifest fields.
func TestSpecJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-spec", filepath.Join("..", "..", "examples", "specs", "steady.yaml"),
		"-no-cache", "-j", "2", "-journal", path,
	}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	units, err := telemetry.ValidateJournal(f)
	if err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	if units == 0 {
		t.Fatal("journal recorded no unit events")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"spec":"steady"`, `"spec_hash":"`, "staleness/"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("journal missing %q", want)
		}
	}
}
