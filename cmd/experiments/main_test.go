package main

import (
	"io"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/workload"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.opt.Scale != workload.ScaleSmall {
		t.Fatalf("default scale %v", c.opt.Scale)
	}
	if len(c.opt.Apps) != 12 {
		t.Fatalf("default app count %d", len(c.opt.Apps))
	}
	if c.opt.Parallelism != 0 {
		t.Fatalf("default parallelism %d (want 0 = one per CPU)", c.opt.Parallelism)
	}
	if c.csv || c.plot || c.progress || c.timing {
		t.Fatal("output flags should default off")
	}
	for _, id := range []string{"fig13", "table1", "anything"} {
		if !c.run(id) {
			t.Fatalf("empty -only must select %q", id)
		}
	}
}

func TestParseConfigFlags(t *testing.T) {
	c, err := parseConfig([]string{
		"-scale", "tiny", "-records", "5000", "-j", "4",
		"-progress", "-timing", "-csv",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.opt.Scale != workload.ScaleTiny {
		t.Fatalf("scale %v", c.opt.Scale)
	}
	if c.opt.Records != 5000 {
		t.Fatalf("records %d", c.opt.Records)
	}
	if c.opt.Parallelism != 4 {
		t.Fatalf("parallelism %d", c.opt.Parallelism)
	}
	if !c.progress || !c.timing || !c.csv {
		t.Fatal("boolean flags not captured")
	}
}

func TestParseConfigUnknownScale(t *testing.T) {
	_, err := parseConfig([]string{"-scale", "huge"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), `unknown scale "huge"`) {
		t.Fatalf("got %v", err)
	}
}

func TestParseConfigUnknownApp(t *testing.T) {
	_, err := parseConfig([]string{"-apps", "mysql,notanapp"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), `unknown app "notanapp"`) {
		t.Fatalf("got %v", err)
	}
}

func TestParseConfigAppSubset(t *testing.T) {
	c, err := parseConfig([]string{"-apps", "mysql, kafka"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.opt.Apps) != 2 {
		t.Fatalf("app count %d", len(c.opt.Apps))
	}
	if n := c.opt.Apps[1].Name(); n != "kafka" {
		t.Fatalf("apps[1] = %q (whitespace not trimmed?)", n)
	}
}

func TestParseConfigOnlyFilter(t *testing.T) {
	c, err := parseConfig([]string{"-only", "Fig13, table1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Ids are matched case-insensitively with whitespace trimmed.
	if !c.run("fig13") || !c.run("table1") {
		t.Fatal("selected ids must run")
	}
	if c.run("fig12") {
		t.Fatal("unselected id must not run")
	}
}

func TestParseConfigBadFlag(t *testing.T) {
	if _, err := parseConfig([]string{"-nope"}, io.Discard); err == nil {
		t.Fatal("undefined flag must error, not exit")
	}
}

func TestParseConfigCacheFlags(t *testing.T) {
	c, err := parseConfig(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.cacheDir != "" || c.noCache {
		t.Fatalf("cache defaults: dir=%q noCache=%v", c.cacheDir, c.noCache)
	}
	c, err = parseConfig([]string{"-cache", "/tmp/whisper-cache", "-no-cache"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.cacheDir != "/tmp/whisper-cache" || !c.noCache {
		t.Fatalf("cache flags not captured: dir=%q noCache=%v", c.cacheDir, c.noCache)
	}
	if openCache(c, io.Discard) != nil {
		t.Fatal("-no-cache must win over -cache")
	}
}

func TestOpenCacheExplicitDir(t *testing.T) {
	dir := t.TempDir()
	c := &config{cacheDir: dir}
	cache := openCache(c, io.Discard)
	if cache == nil {
		t.Fatal("explicit dir should open")
	}
	if cache.Dir() != dir {
		t.Fatalf("cache dir %q, want %q", cache.Dir(), dir)
	}
}
