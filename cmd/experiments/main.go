// Command experiments regenerates every table and figure of the paper's
// evaluation at a configurable scale.
//
// Usage:
//
//	experiments [-scale tiny|small|full] [-records N] [-only fig13,fig12]
//	            [-apps mysql,kafka] [-j N] [-block N] [-sim-j N]
//	            [-sim-window N] [-progress] [-timing]
//	            [-csv] [-cache DIR] [-no-cache] [-journal FILE]
//	            [-debug-addr ADDR] [-trace-file FILE [-trace-format F]]
//
// Without -only it runs the complete suite in paper order. Results print
// as aligned text tables (or CSV with -csv); docs/experiments.md maps
// every id to its paper table or figure and records the paper-vs-measured
// comparison for a small-scale run.
//
// Two studies are outside the default suite. "-only transfer" runs the
// cross-workload hint-transfer matrix (train on every app, test on every
// app — quadratic in the app count, so opt-in; see docs/traces.md).
// -trace-file FILE replaces the suite entirely: it imports an external
// branch trace (text or WSPT binary, auto-detected or forced with
// -trace-format) and evaluates Whisper against the 64KB TAGE-SC-L
// baseline over the imported window.
//
// Independent (app, input, config) simulation units fan out over -j
// workers; the tables are byte-identical at every -j, so the flag is
// purely a wall-clock knob. -block selects the pipeline's record-block
// granularity (0 = batched default, -1 = scalar reference loop), and
// -sim-j/-sim-window run each simulation on the windowed parallel
// engine (see docs/parallel-sim.md); like -j, output is byte-identical
// at every setting. -progress draws a live done/total/ETA line
// on stderr and -timing prints a per-unit accounting summary at the end.
//
// Profiles and trained hint bundles persist in an on-disk cache
// (default <user cache dir>/whisper-sim; override with -cache, disable
// with -no-cache), so reruns skip the profiling and formula-search work
// entirely. Cached artifacts are verified (CRC-checked sections, keyed
// by complete configuration); corrupt or stale entries are discarded
// and recomputed.
//
// -journal FILE writes a structured JSONL run journal (a manifest line,
// one event per completed simulation unit, and a final metrics snapshot;
// see docs/observability.md). -debug-addr ADDR serves /metrics
// (Prometheus text), /debug/vars (expvar) and /debug/pprof for the
// duration of the run. Neither flag changes stdout by a single byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/whisper-sim/whisper/internal/attrib"
	"github.com/whisper-sim/whisper/internal/cliflags"
	"github.com/whisper-sim/whisper/internal/experiments"
	"github.com/whisper-sim/whisper/internal/plot"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/spec"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
	"github.com/whisper-sim/whisper/internal/workload"
)

// config is the parsed command line.
type config struct {
	opt       experiments.Options
	only      map[string]bool
	csv       bool
	plot      bool
	progress  bool
	timing    bool
	cacheDir  string
	noCache   bool
	scaleName string
	journal   string
	debugAddr string
	specPath  string
	validate  bool
	scenario  *spec.Scenario
	tracePath string
	traceRecs []trace.Record

	// attrib selects the standalone attribution study; attribJSON and
	// attribTop are its options. chromeTrace exports the run's spans.
	attrib      bool
	attribJSON  string
	attribTop   int
	chromeTrace string
}

// run reports whether the experiment id is selected (-only empty means
// everything runs).
func (c *config) run(id string) bool { return len(c.only) == 0 || c.only[id] }

// parseConfig turns CLI arguments into a validated config. Errors are
// returned, not fatal, so tests can drive every branch.
func parseConfig(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "small", "workload scale: tiny, small, or full")
	recordsFlag := fs.Int("records", 0, "override per-app record count")
	onlyFlag := fs.String("only", "", "comma-separated experiment ids (e.g. fig13,table1)")
	appsFlag := fs.String("apps", "", "comma-separated app subset (default: all 12)")
	jFlag := fs.Int("j", 0, "parallel simulation units (0 = one per CPU)")
	blockFlag := fs.Int("block", 0, "pipeline record-block size (0 = batched default, <0 = scalar reference)")
	simJFlag := fs.Int("sim-j", 0, "within-trace windowed-engine goroutines per simulation (<=1 = off)")
	simWindowFlag := fs.Int("sim-window", 0, "windowed-engine window length in records (0 = default)")
	progressFlag := fs.Bool("progress", false, "draw a live progress/ETA line on stderr")
	timingFlag := fs.Bool("timing", false, "print per-unit timing and cache stats at the end")
	csvFlag := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	plotFlag := fs.Bool("plot", false, "render numeric columns as ASCII bar charts")
	cacheFlag := fs.String("cache", "", "profile/hint cache directory (default: <user cache dir>/whisper-sim)")
	noCacheFlag := fs.Bool("no-cache", false, "disable the on-disk profile/hint cache")
	specFlag := fs.String("spec", "", "run a declarative workload spec (YAML/JSON; see docs/specs.md) instead of the paper suite")
	validateFlag := fs.Bool("validate", false, "with -spec: parse, compile and summarize the spec without simulating")
	ti := cliflags.TraceInput(fs)
	attribFlag := fs.Bool("attrib", false, "run the per-branch attribution study (see docs/attribution.md) instead of the paper suite")
	attribJSONFlag := fs.String("attrib-json", "", "with -attrib: also write the canonical report documents (JSON array) to this file")
	attribTopFlag := fs.Int("attrib-top", 0, "with -attrib: branches/hints listed per app (0 = default 20)")
	obs := cliflags.Common(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	journalFlag, debugFlag, chromeFlag := obs.Journal, obs.DebugAddr, obs.ChromeTrace
	traceFlag, traceFormatFlag := ti.File, ti.Format

	c := &config{
		opt:         experiments.Default(),
		only:        map[string]bool{},
		csv:         *csvFlag,
		plot:        *plotFlag,
		progress:    *progressFlag,
		timing:      *timingFlag,
		cacheDir:    *cacheFlag,
		noCache:     *noCacheFlag,
		scaleName:   *scaleFlag,
		journal:     *journalFlag,
		debugAddr:   *debugFlag,
		attrib:      *attribFlag,
		attribJSON:  *attribJSONFlag,
		attribTop:   *attribTopFlag,
		chromeTrace: *chromeFlag,
	}
	switch *scaleFlag {
	case "tiny":
		c.opt.Scale = workload.ScaleTiny
	case "small":
		c.opt.Scale = workload.ScaleSmall
	case "full":
		c.opt.Scale = workload.ScaleFull
	default:
		return nil, fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	if *recordsFlag > 0 {
		c.opt.Records = *recordsFlag
	}
	c.opt.Parallelism = *jFlag
	c.opt.BlockSize = *blockFlag
	c.opt.SimParallelism = *simJFlag
	c.opt.SimWindow = *simWindowFlag

	// Instantiate the app set exactly once: the baseline memo keys on app
	// identity, so sharing instances across drivers is what lets one
	// 64KB TAGE-SC-L run serve Figs 1, 12/13, 14, 15 and the ablations.
	if *appsFlag != "" {
		var apps []*workload.App
		for _, name := range strings.Split(*appsFlag, ",") {
			app := workload.AppByName(strings.TrimSpace(name))
			if app == nil {
				return nil, fmt.Errorf("unknown app %q", name)
			}
			apps = append(apps, app)
		}
		c.opt.Apps = apps
	} else {
		c.opt.Apps = workload.DataCenterApps()
	}

	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			c.only[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}

	if *validateFlag && *specFlag == "" {
		return nil, fmt.Errorf("-validate requires -spec")
	}
	if *specFlag != "" {
		if *appsFlag != "" {
			return nil, fmt.Errorf("-spec and -apps conflict: the spec's mix selects the applications")
		}
		if *traceFlag != "" {
			return nil, fmt.Errorf("-trace-file and -spec conflict: each replaces the paper suite")
		}
		s, err := spec.Load(*specFlag)
		if err != nil {
			return nil, err
		}
		sc, err := spec.Compile(s)
		if err != nil {
			return nil, err
		}
		c.specPath = *specFlag
		c.validate = *validateFlag
		c.scenario = sc
	}
	if *attribFlag {
		if *specFlag != "" {
			return nil, fmt.Errorf("-attrib and -spec conflict: each replaces the paper suite")
		}
		if *traceFlag != "" {
			return nil, fmt.Errorf("-attrib and -trace-file conflict: each replaces the paper suite")
		}
	} else if *attribJSONFlag != "" || *attribTopFlag != 0 {
		return nil, fmt.Errorf("-attrib-json and -attrib-top require -attrib")
	}
	if *traceFlag != "" {
		if *appsFlag != "" {
			return nil, fmt.Errorf("-trace-file and -apps conflict: the trace is the workload")
		}
		format, err := traceio.ParseFormat(*traceFormatFlag)
		if err != nil {
			return nil, err
		}
		recs, _, err := traceio.LoadFile(*traceFlag, format)
		if err != nil {
			return nil, err
		}
		// Reject unsimulatable windows at parse time with the typed
		// traceio errors (ErrEmptyTrace / ErrNoConditionals): an empty or
		// conditional-free export should fail before any simulation runs.
		if err := traceio.CheckRecords(*traceFlag, recs); err != nil {
			return nil, err
		}
		c.tracePath = *traceFlag
		c.traceRecs = recs
	} else if *traceFormatFlag != "auto" {
		return nil, fmt.Errorf("-trace-format requires -trace-file")
	}
	return c, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitCode carries a failure out of run's driver closures via panic, so
// the whole suite stays testable in-process (no os.Exit on error paths).
type exitCode int

// openCache resolves the cache directory and opens the on-disk store,
// honoring -no-cache and falling back to uncached operation on errors.
func openCache(c *config, stderr io.Writer) *store.Cache {
	if c.noCache {
		return nil
	}
	dir := c.cacheDir
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			fmt.Fprintf(stderr, "cache disabled: %v\n", err)
			return nil
		}
		dir = filepath.Join(base, "whisper-sim")
	}
	cache, err := store.OpenCache(dir)
	if err != nil {
		fmt.Fprintf(stderr, "cache disabled: %v\n", err)
		return nil
	}
	return cache
}

// manifest describes the run for the journal's first line.
func (c *config) manifest() telemetry.Manifest {
	apps := make([]string, 0, len(c.opt.Apps))
	for _, a := range c.opt.Apps {
		apps = append(apps, a.Name())
	}
	only := make([]string, 0, len(c.only))
	for id := range c.only {
		only = append(only, id)
	}
	sort.Strings(only)
	cfg := map[string]any{
		"scale":      c.scaleName,
		"records":    c.opt.Records,
		"apps":       apps,
		"only":       only,
		"cache":      !c.noCache,
		"sim_j":      c.opt.SimParallelism,
		"sim_window": c.opt.SimWindow,
	}
	if c.scenario != nil {
		cfg["spec"] = c.scenario.Name()
		cfg["spec_hash"] = c.scenario.Hash()
		cfg["apps"] = appListNames(c.scenario)
	}
	if c.tracePath != "" {
		cfg["trace"] = filepath.Base(c.tracePath)
		cfg["trace_records"] = len(c.traceRecs)
	}
	if c.attrib {
		cfg["attrib"] = true
	}
	return telemetry.Manifest{
		Tool:       "experiments",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    c.opt.Parallelism,
		Config:     cfg,
	}
}

// appListNames lists the scenario's resolved application names.
func appListNames(sc *spec.Scenario) []string {
	var names []string
	for _, a := range sc.WorkloadApps() {
		names = append(names, a.Name())
	}
	return names
}

// run executes the selected suite and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	c, err := parseConfig(args, stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	opt := c.opt
	opt.Cache = openCache(c, stderr)

	// A journal or debug endpoint needs the process-wide registry; a
	// fresh one per run makes the final snapshot cover exactly this run
	// (and keeps in-process test runs isolated). Everything below is
	// deferred so the error paths (which unwind via panic(exitCode))
	// still snapshot and detach cleanly.
	var journal *telemetry.Journal
	if c.journal != "" || c.debugAddr != "" {
		prev := telemetry.Default()
		telemetry.Install(telemetry.NewRegistry())
		defer telemetry.Install(prev)
	}
	// The span tracer collects phase and per-window events for the
	// Chrome export; installed before the journal so the journal's
	// closing defer can write the phase spans it gathered.
	var tracebuf *telemetry.TraceBuffer
	if c.chromeTrace != "" {
		tracebuf = telemetry.NewTraceBuffer()
		prev := telemetry.InstallTracer(tracebuf)
		defer telemetry.InstallTracer(prev)
		defer func() {
			f, err := os.Create(c.chromeTrace)
			if err == nil {
				err = tracebuf.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "chrome trace: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Fprintf(stderr, "wrote Chrome trace to %s (load in about://tracing or Perfetto)\n", c.chromeTrace)
		}()
	}
	if c.debugAddr != "" {
		srv, err := telemetry.ServeDebug(c.debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "debug endpoint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "debug endpoint: http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	if c.journal != "" {
		f, err := os.Create(c.journal)
		if err != nil {
			fmt.Fprintf(stderr, "journal: %v\n", err)
			return 2
		}
		journal = telemetry.NewJournal(f)
		journal.WriteManifest(c.manifest())
		defer func() {
			journal.WriteTraceSpans(tracebuf)
			journal.WriteSnapshot(telemetry.Default())
			if err := journal.Err(); err != nil {
				fmt.Fprintf(stderr, "journal: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
			if err := f.Close(); err != nil && code == 0 {
				fmt.Fprintf(stderr, "journal: %v\n", err)
				code = 1
			}
		}()
	}

	var mon *runner.Monitor
	if c.progress {
		mon = runner.NewMonitor(stderr)
	} else if c.timing || journal != nil || c.debugAddr != "" {
		// Silent monitor: no progress line, but unit accounting still
		// feeds the journal and the whisper_runner_* series on /metrics.
		mon = runner.NewMonitor(nil)
	}
	if journal != nil && mon != nil {
		mon.AttachJournal(journal)
	}
	opt.Monitor = mon

	defer func() {
		if r := recover(); r != nil {
			ec, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			code = int(ec)
		}
	}()

	emit := func(t *stats.Table) {
		if mon != nil {
			mon.Done() // clear the progress line before table output
		}
		switch {
		case c.csv:
			fmt.Fprint(stdout, t.Title+"\n"+t.CSV()+"\n")
		case c.plot:
			fmt.Fprintln(stdout, plot.Render(t, 48))
		default:
			fmt.Fprintln(stdout, t.String())
		}
	}
	fail := func(id string, err error) {
		if mon != nil {
			mon.Done()
		}
		fmt.Fprintf(stderr, "%s failed: %v\n", id, err)
		panic(exitCode(1))
	}
	timed := func(id string, f func() (*stats.Table, error)) {
		if !c.run(id) {
			return
		}
		start := time.Now()
		t, err := f()
		if err != nil {
			fail(id, err)
		}
		emit(t)
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	// -attrib replaces the paper suite with the attribution study: one
	// per-branch misprediction report per configured app, plus optional
	// canonical JSON (-attrib-json) and journal attrib lines.
	if c.attrib {
		start := time.Now()
		ar, err := experiments.RunAttrib(opt, c.attribTop)
		if err != nil {
			fail("attrib", err)
		}
		if mon != nil {
			mon.Done()
		}
		for _, r := range ar.Reports {
			fmt.Fprintf(stdout, "== %s: misprediction attribution ==\n", r.Workload)
			r.SummaryLines(stdout)
			fmt.Fprintln(stdout)
			emit(r.BranchTable())
			emit(r.HintTable())
			journal.WriteAttrib(r.Workload, r.Map())
		}
		fmt.Fprintf(stdout, "[attrib completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
		if c.attribJSON != "" {
			f, err := os.Create(c.attribJSON)
			if err == nil {
				err = attrib.WriteJSONList(f, ar.Reports)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "attrib json: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "wrote attribution reports to %s\n", c.attribJSON)
		}
		if c.timing && mon != nil {
			fmt.Fprintln(stderr, mon.Summary())
		}
		return 0
	}

	// -trace-file replaces the paper suite with the imported-trace
	// evaluation: one Whisper-vs-baseline table over the external window.
	if c.tracePath != "" {
		timed("import", func() (*stats.Table, error) {
			r, err := experiments.RunImportedTrace(opt, filepath.Base(c.tracePath), c.traceRecs)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		})
		if mon != nil {
			mon.Done()
		}
		if c.timing {
			if mon != nil {
				fmt.Fprintln(stderr, mon.Summary())
			}
			if opt.Cache != nil {
				s := opt.Cache.Stats()
				fmt.Fprintf(stderr, "disk cache (%s): profiles %d hits / %d misses, trains %d hits / %d misses, %d rejected\n",
					opt.Cache.Dir(), s.ProfileHits, s.ProfileMisses, s.TrainHits, s.TrainMisses, s.Rejected)
			}
		}
		return 0
	}

	// -spec replaces the paper suite with the scenario drivers: a
	// summary of the compiled timeline, the per-phase Whisper/TAGE
	// comparison, and the hint-staleness study. -validate stops after
	// the summary (no simulation), which is what CI runs over every
	// example spec.
	if sc := c.scenario; sc != nil {
		timed("spec", func() (*stats.Table, error) { return experiments.SpecSummary(sc), nil })
		if !c.validate {
			timed("phases", func() (*stats.Table, error) {
				r, err := experiments.SpecPhases(opt, sc)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			})
			timed("staleness", func() (*stats.Table, error) {
				r, err := experiments.Staleness(opt, sc)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			})
		}
		if mon != nil {
			mon.Done()
		}
		if c.timing {
			if mon != nil {
				fmt.Fprintln(stderr, mon.Summary())
			}
			if opt.Cache != nil {
				s := opt.Cache.Stats()
				fmt.Fprintf(stderr, "disk cache (%s): profiles %d hits / %d misses, trains %d hits / %d misses, %d rejected\n",
					opt.Cache.Dir(), s.ProfileHits, s.ProfileMisses, s.TrainHits, s.TrainMisses, s.Rejected)
			}
		}
		return 0
	}

	timed("table1", func() (*stats.Table, error) { return experiments.TableI(), nil })
	timed("table2", func() (*stats.Table, error) { return experiments.TableII(opt), nil })
	timed("table3", func() (*stats.Table, error) { return experiments.TableIII(opt), nil })

	timed("fig1", func() (*stats.Table, error) {
		r, err := experiments.Fig1(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig2", func() (*stats.Table, error) {
		r, err := experiments.Fig2(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig3", func() (*stats.Table, error) {
		r, err := experiments.Fig3(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig4", func() (*stats.Table, error) {
		c, err := experiments.Fig4(opt)
		if err != nil {
			return nil, err
		}
		return c.ReductionTable("Fig 4: misprediction reduction of prior profile-guided techniques (%)"), nil
	})
	timed("fig5", func() (*stats.Table, error) {
		r, err := experiments.Fig5(opt)
		if err != nil {
			return nil, err
		}
		t := r.Table()
		t.Title = "Fig 5b: " + t.Title
		return t, nil
	})
	timed("fig5spec", func() (*stats.Table, error) {
		sopt := opt
		sopt.Apps = workload.SpecApps()
		r, err := experiments.Fig5(sopt)
		if err != nil {
			return nil, err
		}
		t := r.Table()
		t.Title = "Fig 5a: " + t.Title
		return t, nil
	})
	timed("fig6", func() (*stats.Table, error) {
		r, err := experiments.Fig6(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig7", func() (*stats.Table, error) {
		r, err := experiments.Fig7(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})

	// Figures 12, 13 and 16 share one comparison run.
	if c.run("fig12") || c.run("fig13") || c.run("fig16") {
		start := time.Now()
		cmp, err := experiments.Fig12and13(opt)
		if err != nil {
			fail("fig12/13/16", err)
		}
		if c.run("fig12") {
			emit(cmp.SpeedupTable("Fig 12: speedup over 64KB TAGE-SC-L (%)"))
		}
		if c.run("fig13") {
			emit(cmp.ReductionTable("Fig 13: misprediction reduction over 64KB TAGE-SC-L (%)"))
		}
		if c.run("fig16") {
			emit(cmp.TrainTimeTable())
		}
		fmt.Fprintf(stdout, "[fig12/13/16 completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	timed("fig14", func() (*stats.Table, error) {
		r, err := experiments.Fig14(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig15", func() (*stats.Table, error) {
		r, err := experiments.Fig15(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig17", func() (*stats.Table, error) {
		r, err := experiments.Fig17(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig18", func() (*stats.Table, error) {
		r, err := experiments.Fig18(opt, 5)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig19", func() (*stats.Table, error) {
		r, err := experiments.Fig19(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig20", func() (*stats.Table, error) {
		r, err := experiments.Fig20(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig21", func() (*stats.Table, error) {
		r, err := experiments.Fig21(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig22", func() (*stats.Table, error) {
		r, err := experiments.Fig22(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig23", func() (*stats.Table, error) {
		r, err := experiments.Fig23(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("buffersweep", func() (*stats.Table, error) {
		r, err := experiments.BufferSweep(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("ablations", func() (*stats.Table, error) {
		r, err := experiments.Ablations(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})

	// The cross-workload transfer study is quadratic in the app count,
	// so it only runs when selected explicitly with -only transfer.
	if c.only["transfer"] {
		start := time.Now()
		tr, err := experiments.RunTransfer(opt)
		if err != nil {
			fail("transfer", err)
		}
		emit(tr.ReductionTable())
		emit(tr.OverlapTable())
		emit(tr.SummaryTable())
		fmt.Fprintf(stdout, "[transfer completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	if mon != nil {
		mon.Done()
	}
	// The cache stats are not monitor state: print them for every
	// -timing run, whether or not a monitor/progress writer is attached.
	if c.timing {
		if mon != nil {
			fmt.Fprintln(stderr, mon.Summary())
		}
		hits, misses := experiments.BaselineCacheStats()
		fmt.Fprintf(stderr, "baseline cache: %d hits, %d misses\n", hits, misses)
		if opt.Cache != nil {
			s := opt.Cache.Stats()
			fmt.Fprintf(stderr, "disk cache (%s): profiles %d hits / %d misses, trains %d hits / %d misses, %d rejected\n",
				opt.Cache.Dir(), s.ProfileHits, s.ProfileMisses, s.TrainHits, s.TrainMisses, s.Rejected)
		}
	}
	return 0
}
