// Command experiments regenerates every table and figure of the paper's
// evaluation at a configurable scale.
//
// Usage:
//
//	experiments [-scale tiny|small|full] [-records N] [-only fig13,fig12]
//	            [-apps mysql,kafka] [-csv]
//
// Without -only it runs the complete suite in paper order. Results print
// as aligned text tables (or CSV with -csv); EXPERIMENTS.md records the
// paper-vs-measured comparison for a small-scale run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/whisper-sim/whisper/internal/experiments"
	"github.com/whisper-sim/whisper/internal/plot"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/workload"
)

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: tiny, small, or full")
	recordsFlag := flag.Int("records", 0, "override per-app record count")
	onlyFlag := flag.String("only", "", "comma-separated experiment ids (e.g. fig13,table1)")
	appsFlag := flag.String("apps", "", "comma-separated app subset (default: all 12)")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	plotFlag := flag.Bool("plot", false, "render numeric columns as ASCII bar charts")
	flag.Parse()

	opt := experiments.Default()
	switch *scaleFlag {
	case "tiny":
		opt.Scale = workload.ScaleTiny
	case "small":
		opt.Scale = workload.ScaleSmall
	case "full":
		opt.Scale = workload.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *recordsFlag > 0 {
		opt.Records = *recordsFlag
	}
	if *appsFlag != "" {
		var apps []*workload.App
		for _, name := range strings.Split(*appsFlag, ",") {
			app := workload.DataCenterApp(strings.TrimSpace(name))
			if app == nil {
				fmt.Fprintf(os.Stderr, "unknown app %q\n", name)
				os.Exit(2)
			}
			apps = append(apps, app)
		}
		opt.Apps = apps
	}

	only := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			only[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(only) == 0 || only[id] }

	emit := func(t *stats.Table) {
		switch {
		case *csvFlag:
			fmt.Print(t.Title + "\n" + t.CSV() + "\n")
		case *plotFlag:
			fmt.Println(plot.Render(t, 48))
		default:
			fmt.Println(t.String())
		}
	}
	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
		os.Exit(1)
	}
	timed := func(id string, f func() (*stats.Table, error)) {
		if !run(id) {
			return
		}
		start := time.Now()
		t, err := f()
		if err != nil {
			fail(id, err)
		}
		emit(t)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	timed("table1", func() (*stats.Table, error) { return experiments.TableI(), nil })
	timed("table2", func() (*stats.Table, error) { return experiments.TableII(opt), nil })
	timed("table3", func() (*stats.Table, error) { return experiments.TableIII(opt), nil })

	timed("fig1", func() (*stats.Table, error) {
		r, err := experiments.Fig1(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig2", func() (*stats.Table, error) {
		r, err := experiments.Fig2(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig3", func() (*stats.Table, error) {
		r, err := experiments.Fig3(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig4", func() (*stats.Table, error) {
		c, err := experiments.Fig4(opt)
		if err != nil {
			return nil, err
		}
		return c.ReductionTable("Fig 4: misprediction reduction of prior profile-guided techniques (%)"), nil
	})
	timed("fig5", func() (*stats.Table, error) {
		r, err := experiments.Fig5(opt)
		if err != nil {
			return nil, err
		}
		t := r.Table()
		t.Title = "Fig 5b: " + t.Title
		return t, nil
	})
	timed("fig5spec", func() (*stats.Table, error) {
		sopt := opt
		sopt.Apps = workload.SpecApps()
		r, err := experiments.Fig5(sopt)
		if err != nil {
			return nil, err
		}
		t := r.Table()
		t.Title = "Fig 5a: " + t.Title
		return t, nil
	})
	timed("fig6", func() (*stats.Table, error) {
		r, err := experiments.Fig6(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig7", func() (*stats.Table, error) {
		r, err := experiments.Fig7(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})

	// Figures 12, 13 and 16 share one comparison run.
	if run("fig12") || run("fig13") || run("fig16") {
		start := time.Now()
		c, err := experiments.Fig12and13(opt)
		if err != nil {
			fail("fig12/13/16", err)
		}
		if run("fig12") {
			emit(c.SpeedupTable("Fig 12: speedup over 64KB TAGE-SC-L (%)"))
		}
		if run("fig13") {
			emit(c.ReductionTable("Fig 13: misprediction reduction over 64KB TAGE-SC-L (%)"))
		}
		if run("fig16") {
			emit(c.TrainTimeTable())
		}
		fmt.Printf("[fig12/13/16 completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	timed("fig14", func() (*stats.Table, error) {
		r, err := experiments.Fig14(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig15", func() (*stats.Table, error) {
		r, err := experiments.Fig15(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig17", func() (*stats.Table, error) {
		r, err := experiments.Fig17(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig18", func() (*stats.Table, error) {
		r, err := experiments.Fig18(opt, 5)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig19", func() (*stats.Table, error) {
		r, err := experiments.Fig19(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig20", func() (*stats.Table, error) {
		r, err := experiments.Fig20(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig21", func() (*stats.Table, error) {
		r, err := experiments.Fig21(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig22", func() (*stats.Table, error) {
		r, err := experiments.Fig22(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("fig23", func() (*stats.Table, error) {
		r, err := experiments.Fig23(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("buffersweep", func() (*stats.Table, error) {
		r, err := experiments.BufferSweep(opt, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
	timed("ablations", func() (*stats.Table, error) {
		r, err := experiments.Ablations(opt)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}
