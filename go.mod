module github.com/whisper-sim/whisper

go 1.22
