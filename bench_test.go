package whisper

// One benchmark per table and figure of the paper's evaluation. Each
// bench runs the corresponding experiment driver at a reduced scale and
// reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the shape of every reported result. The cmd/experiments
// binary runs the same drivers at full scale and prints the complete
// row/series tables.

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/experiments"
	"github.com/whisper-sim/whisper/internal/workload"
)

// benchOptions is the reduced-scale configuration for benchmarks: three
// representative applications (hard, middle, easy) over a small window.
func benchOptions() experiments.Options {
	opt := experiments.Default()
	opt.Records = 80000
	opt.Apps = []*workload.App{
		workload.DataCenterApp("mysql"),
		workload.DataCenterApp("drupal"),
		workload.DataCenterApp("kafka"),
	}
	return opt
}

func BenchmarkTableIApplications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableI()
		if len(t.Rows) != 12 {
			b.Fatal("table I incomplete")
		}
	}
}

func BenchmarkTableIISimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableII(experiments.Default())
	}
}

func BenchmarkTableIIIParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableIII(experiments.Default())
	}
}

func BenchmarkFig01LimitStudy(b *testing.B) {
	opt := benchOptions()
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(mean(last.Total)*100, "ideal-speedup-%")
	b.ReportMetric(mean(last.MispStall)*100, "misp-stall-%")
	b.ReportMetric(mean(last.FrontendStall)*100, "frontend-stall-%")
}

func BenchmarkFig02MPKI(b *testing.B) {
	opt := benchOptions()
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(mean(last.MPKI), "avg-MPKI")
}

func BenchmarkFig03Classes(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var capacity float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(opt)
		if err != nil {
			b.Fatal(err)
		}
		capacity = r.Fractions[0][1]
	}
	b.ReportMetric(capacity*100, "capacity-%")
}

func BenchmarkFig04PriorWork(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var c *experiments.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		c, err = experiments.Fig4(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.AvgReduction(experiments.Tech8bROMBF)*100, "8b-rombf-red-%")
	b.ReportMetric(c.AvgReduction(experiments.TechBranchNetUnl)*100, "unl-branchnet-red-%")
}

func BenchmarkFig05CDF(b *testing.B) {
	opt := benchOptions()
	opt.Apps = []*workload.App{
		workload.DataCenterApp("mysql"),
		workload.SpecApps()[0],
	}
	var r *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig5(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Top50Share[0]*100, "dc-top50-%")
	b.ReportMetric(r.Top50Share[1]*100, "spec-top50-%")
}

func BenchmarkFig06HistLen(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var beyond float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(opt)
		if err != nil {
			b.Fatal(err)
		}
		beyond = 0
		for bi, bk := range experiments.Fig6Buckets {
			if bk.Min >= 33 {
				beyond += r.Shares[0][bi]
			}
		}
	}
	b.ReportMetric(beyond*100, "needs->32-history-%")
}

func BenchmarkFig07Ops(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var and float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(opt)
		if err != nil {
			b.Fatal(err)
		}
		and = r.Shares[0][0]
	}
	b.ReportMetric(and*100, "and-share-%")
}

func BenchmarkFig12Speedup(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var c *experiments.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		c, err = experiments.RunComparison(opt, []experiments.Technique{
			experiments.TechWhisper, experiments.TechMTAGE, experiments.TechIdeal,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.AvgSpeedup(experiments.TechWhisper)*100, "whisper-speedup-%")
	b.ReportMetric(c.AvgSpeedup(experiments.TechIdeal)*100, "ideal-speedup-%")
}

func BenchmarkFig13Reduction(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var c *experiments.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		c, err = experiments.RunComparison(opt, []experiments.Technique{
			experiments.Tech8bROMBF, experiments.TechWhisper,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.AvgReduction(experiments.TechWhisper)*100, "whisper-red-%")
	b.ReportMetric(c.AvgReduction(experiments.Tech8bROMBF)*100, "8b-rombf-red-%")
}

func BenchmarkFig14Ablation(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig14(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean(r.HashedHistory)*100, "hashed-history-pp")
	b.ReportMetric(mean(r.ImplCnimpl)*100, "impl-cnimpl-pp")
}

func BenchmarkFig15Randomized(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig15(opt, []float64{0.001, 0.05})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Reduction[0]*100, "red@0.1%-%")
	b.ReportMetric(r.Reduction[1]*100, "red@5%-%")
}

func BenchmarkFig16TrainTime(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var c *experiments.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		c, err = experiments.RunComparison(opt, []experiments.Technique{
			experiments.Tech8bROMBF, experiments.TechBranchNetUnl, experiments.TechWhisper,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.TrainTime[experiments.TechWhisper].Seconds(), "whisper-train-s")
	b.ReportMetric(c.TrainTime[experiments.TechBranchNetUnl].Seconds(), "branchnet-train-s")
}

func BenchmarkFig17Inputs(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig17Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig17(opt, []int{1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CrossInput[0][0]*100, "cross-input-red-%")
	b.ReportMetric(r.SameInput[0][0]*100, "same-input-red-%")
}

func BenchmarkFig18Merged(b *testing.B) {
	opt := benchOptions()
	opt.Records = 50000
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig18Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig18(opt, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	wh := r.Reduction[experiments.TechWhisper]
	b.ReportMetric(wh[0]*100, "1-input-red-%")
	b.ReportMetric(wh[len(wh)-1]*100, "merged-red-%")
}

func BenchmarkFig19Overhead(b *testing.B) {
	opt := benchOptions()
	var r *experiments.Fig19Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig19(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean(r.Static)*100, "static-overhead-%")
	b.ReportMetric(mean(r.Dynamic)*100, "dynamic-overhead-%")
}

func BenchmarkFig20Large(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig20Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig20(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean(r.Reduction)*100, "red-vs-128KB-%")
}

func BenchmarkFig21Sizes(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig21Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig21(opt, []int{8, 64, 1024})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Reduction[0]*100, "red@8KB-%")
	b.ReportMetric(r.Reduction[len(r.Reduction)-1]*100, "red@1MB-%")
}

func BenchmarkFig22Warmup(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig22Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig22(opt, []float64{0, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Reduction[0]*100, "red@0%-warmup-%")
	b.ReportMetric(r.Reduction[1]*100, "red@50%-warmup-%")
}

func BenchmarkFig23Length(b *testing.B) {
	opt := benchOptions()
	opt.Apps = opt.Apps[:1]
	var r *experiments.Fig23Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig23(opt, []int{40000, 80000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Reduction[len(r.Reduction)-1]*100, "red@longest-%")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
