package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the live-inspection endpoint for long sweeps:
//
//	/metrics       Prometheus text exposition of the default registry
//	/debug/vars    expvar JSON (includes the registry under "whisper")
//	/debug/pprof/  the standard pprof index (profile, heap, trace, ...)
//
// Handlers read Default() at request time, so a registry installed or
// replaced after the server starts is what gets served.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr (":0" picks a free port) and serves the debug
// endpoint in the background until Close.
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	expvarOnce.Do(func() {
		expvar.Publish("whisper", expvar.Func(func() any { return Default().Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *DebugServer) Close() error { return s.srv.Close() }
