package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// swapTracer installs tb for the test and restores the previous tracer.
func swapTracer(t *testing.T, tb *TraceBuffer) *TraceBuffer {
	t.Helper()
	prev := Tracer()
	InstallTracer(tb)
	t.Cleanup(func() { InstallTracer(prev) })
	return tb
}

func TestNilTraceBuffer(t *testing.T) {
	var tb *TraceBuffer
	tb.Add("x", CatPhase, 0, time.Now(), time.Millisecond, nil)
	if tb.Len() != 0 || tb.Events() != nil {
		t.Fatal("nil buffer holds events")
	}
	var buf bytes.Buffer
	if err := tb.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil buffer export invalid: %s", buf.Bytes())
	}
}

// chromeDoc mirrors the trace-event JSON object format for validation.
type chromeDoc struct {
	TraceEvents     []map[string]any `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
}

// TestChromeTraceSchema locks the export to the Chrome trace-event
// format: a JSON object with a traceEvents array of complete events,
// each carrying the required name/cat/ph/ts/dur/pid/tid fields with
// ph=="X" — exactly what about://tracing and Perfetto load.
func TestChromeTraceSchema(t *testing.T) {
	tb := NewTraceBuffer()
	base := tb.start
	tb.Add("simulate", CatPhase, TIDMain, base.Add(time.Millisecond), 2*time.Millisecond, nil)
	tb.Add("window.speculate", CatWindow, TIDWorker0, base.Add(3*time.Millisecond), time.Millisecond,
		map[string]any{"window": 1, "records": 4096})

	var buf bytes.Buffer
	if err := tb.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("event %d ph = %v, want X", i, ev["ph"])
		}
		if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
			t.Fatalf("event %d ts = %v", i, ev["ts"])
		}
	}
	if doc.TraceEvents[1]["name"] != "window.speculate" {
		t.Fatalf("events not in time order: %v", doc.TraceEvents)
	}
	args, ok := doc.TraceEvents[1]["args"].(map[string]any)
	if !ok || args["records"].(float64) != 4096 {
		t.Fatalf("window args lost: %v", doc.TraceEvents[1])
	}
}

func TestTraceEventsSortedDeterministically(t *testing.T) {
	tb := NewTraceBuffer()
	base := tb.start
	// Insert out of order and with ties.
	tb.Add("b", CatWindow, 2, base.Add(5*time.Millisecond), time.Millisecond, nil)
	tb.Add("a", CatWindow, 2, base.Add(5*time.Millisecond), time.Millisecond, nil)
	tb.Add("z", CatWindow, 1, base.Add(5*time.Millisecond), time.Millisecond, nil)
	tb.Add("first", CatPhase, 0, base, time.Millisecond, nil)

	evs := tb.Events()
	gotNames := make([]string, len(evs))
	for i, ev := range evs {
		gotNames[i] = ev.Name
	}
	want := []string{"first", "z", "a", "b"}
	for i := range want {
		if gotNames[i] != want[i] {
			t.Fatalf("order = %v, want %v", gotNames, want)
		}
	}
}

func TestTraceBufferConcurrentAdd(t *testing.T) {
	tb := NewTraceBuffer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tb.Add("window.speculate", CatWindow, TIDWorker0+w, time.Now(), time.Microsecond, nil)
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != 800 {
		t.Fatalf("len = %d, want 800", tb.Len())
	}
}

func TestTraceBufferLimit(t *testing.T) {
	tb := NewTraceBuffer()
	tb.events = make([]TraceEvent, traceEventLimit) // pre-fill to the cap
	tb.Add("over", CatPhase, 0, time.Now(), time.Millisecond, nil)
	if tb.Len() != traceEventLimit || tb.dropped != 1 {
		t.Fatalf("len=%d dropped=%d", tb.Len(), tb.dropped)
	}
	var buf bytes.Buffer
	if err := tb.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped_events") {
		t.Fatal("export does not report dropped events")
	}
}

func TestSpanFeedsTracer(t *testing.T) {
	swap(t, NewRegistry())
	tb := swapTracer(t, NewTraceBuffer())
	sp := StartSpan("train")
	time.Sleep(time.Millisecond)
	sp.End()
	evs := tb.Events()
	if len(evs) != 1 || evs[0].Name != "train" || evs[0].Cat != CatPhase {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Dur <= 0 {
		t.Fatalf("span duration %v", evs[0].Dur)
	}
}

func TestSpanTracerWithoutRegistry(t *testing.T) {
	// Tracing works even when the metrics registry is off.
	swap(t, nil)
	tb := swapTracer(t, NewTraceBuffer())
	StartSpan("profile").End()
	if tb.Len() != 1 {
		t.Fatalf("tracer got %d events, want 1", tb.Len())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil quantile != 0")
	}
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
	// 90 observations of 1 (bucket le=1), 10 of 1000 (bucket le=1023).
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.9); got != 1 {
		t.Fatalf("p90 = %v, want 1 (rank 90 is the last 1)", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %v, want 1023", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Fatalf("p100 = %v, want 1023", got)
	}
	// Out-of-range q clamps.
	if h.Quantile(-1) != 1 || h.Quantile(2) != 1023 {
		t.Fatal("q clamp broken")
	}
	// Duration histograms render quantiles in seconds.
	d := &Histogram{scale: 1e-9}
	d.Observe(1e9) // 1s → bucket upper bound (2^30-1)ns ≈ 1.07s
	if got := d.Quantile(0.5); got < 1 || got > 2.2 {
		t.Fatalf("duration p50 = %v, want ~1s", got)
	}
}
