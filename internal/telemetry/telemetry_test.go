package telemetry

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// swap installs r for the test and restores the previous default.
func swap(t *testing.T, r *Registry) *Registry {
	t.Helper()
	prev := Default()
	Install(r)
	t.Cleanup(func() { Install(prev) })
	return r
}

func TestCounterNilAndValue(t *testing.T) {
	var nilC *Counter
	nilC.Add(7) // must not panic
	nilC.Inc()
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	c := NewCounter()
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter value = %d, want 4", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("concurrent counter = %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	var nilG *Gauge
	nilG.Set(4)
	nilG.Add(-1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge not zero")
	}
	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(9)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram not empty")
	}
	h := NewHistogram()
	for _, v := range []uint64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 1006 {
		t.Fatalf("sum = %d, want 1006", got)
	}
	if h.buckets[0].Load() != 1 { // v == 0
		t.Fatal("zero bucket miscounted")
	}
	if h.buckets[2].Load() != 2 { // v in [2,3]
		t.Fatal("bucket [2,3] miscounted")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name returned distinct gauges")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned distinct histograms")
	}
	own := NewCounter()
	own.Add(5)
	r.SetCounter("a", own)
	if r.Counter("a").Value() != 5 {
		t.Fatal("SetCounter did not replace the registration")
	}
}

func TestNilRegistryLookups(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned a live instrument")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	r.WritePrometheus(&strings.Builder{}) // must not panic
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("whisper_a_total").Add(3)
	r.Counter(`whisper_l_total{class="capacity"}`).Add(2)
	r.Counter(`whisper_l_total{class="conflict"}`).Add(1)
	r.Gauge("whisper_g").Set(-4)
	r.DurationHistogram(`whisper_phase_duration_seconds{phase="train"}`).Observe(1500) // 1.5us

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE whisper_a_total counter",
		"whisper_a_total 3",
		`whisper_l_total{class="capacity"} 2`,
		`whisper_l_total{class="conflict"} 1`,
		"# TYPE whisper_g gauge",
		"whisper_g -4",
		"# TYPE whisper_phase_duration_seconds histogram",
		`whisper_phase_duration_seconds_bucket{phase="train",le="+Inf"} 1`,
		`whisper_phase_duration_seconds_count{phase="train"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The labeled family's TYPE line must appear exactly once.
	if strings.Count(out, "# TYPE whisper_l_total counter") != 1 {
		t.Fatalf("family TYPE line duplicated:\n%s", out)
	}
}

func TestInstallEnableDefault(t *testing.T) {
	swap(t, nil)
	if Default() != nil {
		t.Fatal("expected disabled default")
	}
	r := Enable()
	if r == nil || Default() != r {
		t.Fatal("Enable did not install a registry")
	}
	if Enable() != r {
		t.Fatal("Enable not idempotent")
	}
	fresh := Install(NewRegistry())
	if Default() != fresh {
		t.Fatal("Install did not replace the default")
	}
}

func TestSpan(t *testing.T) {
	swap(t, nil)
	StartSpan("train").End() // disabled: inert
	r := swap(t, NewRegistry())
	sp := StartSpan("train")
	time.Sleep(time.Millisecond)
	sp.End()
	h := r.DurationHistogram(PhaseSeconds + `{phase="train"}`)
	if h.Count() != 1 {
		t.Fatalf("span count = %d, want 1", h.Count())
	}
	if h.ScaledSum() <= 0 {
		t.Fatal("span recorded no duration")
	}
}

func TestDisabledPathAllocs(t *testing.T) {
	swap(t, nil)
	var c *Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("nil counter Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if r := Default(); r != nil {
			r.Counter("whisper_x_total").Inc()
		}
	}); n != 0 {
		t.Fatalf("disabled registry guard allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { StartSpan("simulate").End() }); n != 0 {
		t.Fatalf("disabled span allocates %v/op", n)
	}
}

func TestDebugServer(t *testing.T) {
	r := swap(t, NewRegistry())
	r.Counter("whisper_sim_instructions_total").Add(42)
	s, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "whisper_sim_instructions_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "whisper_sim_instructions_total") {
		t.Fatalf("/debug/vars missing registry:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
