package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of instruments. Lookups get-or-create,
// so instrumented packages never coordinate registration; the name is
// the coordination point. Names follow the Prometheus convention and may
// carry a fixed label set in braces, e.g.
//
//	whisper_sim_instructions_total
//	whisper_classify_mispredictions_total{class="capacity"}
//
// Metric families (the name before '{') must not mix instrument kinds.
// Lookups on a nil *Registry return nil instruments, which are no-op
// sinks, so callers holding a maybe-nil registry never branch.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// SetCounter registers (or replaces) an externally owned counter under
// name. runner.Monitor uses this so the monitor's own live accounting
// and the exported whisper_runner_* series are one set of cells, not two
// bookkeeping copies.
func (r *Registry) SetCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// SetGauge registers (or replaces) an externally owned gauge under name.
func (r *Registry) SetGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// Histogram returns the named dimensionless histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.histogram(name, 1)
}

// DurationHistogram returns the named histogram for nanosecond
// observations, rendered in seconds.
func (r *Registry) DurationHistogram(name string) *Histogram {
	return r.histogram(name, 1e-9)
}

func (r *Registry) histogram(name string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{scale: scale}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every instrument's current value keyed by metric
// name: counters and gauges as numbers, histograms as
// {"count": n, "sum": scaledSum}. The journal's final line and the
// expvar endpoint both serve this map.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		snap[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap[name] = g.Value()
	}
	for name, h := range r.hists {
		snap[name] = map[string]any{"count": h.Count(), "sum": h.ScaledSum()}
	}
	return snap
}

// family splits a metric name into its family (the part before '{') and
// the fixed label set (without braces, "" when unlabeled).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel renders fam plus the union of labels and extra ("" to omit).
func withLabel(fam, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return fam
	case labels == "":
		return fam + "{" + extra + "}"
	case extra == "":
		return fam + "{" + labels + "}"
	default:
		return fam + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, sorted by name so scrapes (and tests) are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	// Copy the maps under the read lock; values render lock-free (the
	// instruments themselves are atomic).
	r.mu.RLock()
	counters := copyMap(r.counters)
	gauges := copyMap(r.gauges)
	hists := copyMap(r.hists)
	r.mu.RUnlock()

	typed := map[string]bool{}
	emitType := func(fam, kind string) {
		if !typed[fam] {
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind)
			typed[fam] = true
		}
	}
	for _, name := range sortedKeys(counters) {
		fam, _ := family(name)
		emitType(fam, "counter")
		fmt.Fprintf(w, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		fam, _ := family(name)
		emitType(fam, "gauge")
		fmt.Fprintf(w, "%s %d\n", name, gauges[name].Value())
	}
	for _, name := range sortedKeys(hists) {
		fam, labels := family(name)
		emitType(fam, "histogram")
		h := hists[name]
		var cum uint64
		for i := 0; i < numBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", h.upperBound(i)))
			fmt.Fprintf(w, "%s %d\n", withLabel(fam+"_bucket", labels, le), cum)
		}
		fmt.Fprintf(w, "%s %d\n", withLabel(fam+"_bucket", labels, `le="+Inf"`), cum)
		fmt.Fprintf(w, "%s %g\n", withLabel(fam+"_sum", labels, ""), h.ScaledSum())
		fmt.Fprintf(w, "%s %d\n", withLabel(fam+"_count", labels, ""), cum)
		// Approximate quantiles from the log-bucket bounds, exported
		// as a sibling gauge family (a histogram family cannot carry
		// quantile series itself under the exposition format).
		if cum > 0 {
			emitType(fam+"_approx_quantile", "gauge")
			for _, q := range [...]struct {
				q     float64
				label string
			}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}} {
				fmt.Fprintf(w, "%s %g\n",
					withLabel(fam+"_approx_quantile", labels, `quantile="`+q.label+`"`),
					h.Quantile(q.q))
			}
		}
	}
}

func copyMap[V any](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
