package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// JournalSchema is the run-journal line schema version, recorded in the
// manifest so readers can reject files written by a newer tool.
// Schema 2 adds the "span" (phase trace spans) and "attrib" (per-branch
// attribution summaries) line types; schema-1 files remain valid.
const JournalSchema = 2

// Manifest is the journal's first line: everything needed to reproduce
// or attribute the run.
type Manifest struct {
	// Tool names the producing command ("experiments", "whisper").
	Tool string `json:"tool"`
	// Go is runtime.Version() of the producing process.
	Go string `json:"go"`
	// GOMAXPROCS is the scheduler width of the producing process.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the requested -j value (0 = one per CPU).
	Workers int `json:"workers"`
	// Seed is the run's base RNG seed, when the tool has one (workload
	// streams derive their seeds from (app, input), recorded in Config).
	Seed int64 `json:"seed,omitempty"`
	// Config carries the tool-specific configuration (scale, records,
	// apps, selected experiments, cache mode, ...).
	Config map[string]any `json:"config,omitempty"`
}

// journalLine is the on-disk shape of every journal record. Type is one
// of "manifest", "unit", "span", "attrib", "snapshot".
type journalLine struct {
	Type     string    `json:"type"`
	Schema   int       `json:"schema,omitempty"`
	Manifest *Manifest `json:"manifest,omitempty"`
	Label    string    `json:"label,omitempty"`
	WallNS   int64     `json:"wall_ns,omitempty"`
	Instrs   uint64    `json:"instrs,omitempty"`
	Records  uint64    `json:"records,omitempty"`
	// StartNS is a span's start offset from the tracer's start, in
	// nanoseconds (span lines only).
	StartNS int64 `json:"start_ns,omitempty"`
	// Metrics is a pointer so an empty-but-present snapshot still
	// serializes as {} (omitempty would drop an empty map).
	Metrics *map[string]any `json:"metrics,omitempty"`
	// Attrib carries an attribution summary document (attrib lines
	// only); a pointer for the same empty-but-present reason.
	Attrib *map[string]any `json:"attrib,omitempty"`
}

// Journal writes the structured JSONL run log: one manifest line, one
// line per completed unit, and a final aggregate snapshot. It is safe
// for concurrent writers (units finish on pool goroutines); the first
// write error sticks and suppresses the rest, surfaced by Err.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJournal wraps w (typically an *os.File; the caller closes it).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// write marshals one line. A nil *Journal is a no-op sink.
func (j *Journal) write(line *journalLine) {
	if j == nil {
		return
	}
	data, err := json.Marshal(line)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err == nil {
		data = append(data, '\n')
		_, err = j.w.Write(data)
	}
	j.err = err
}

// WriteManifest records the run manifest; call it once, first.
func (j *Journal) WriteManifest(m Manifest) {
	j.write(&journalLine{Type: "manifest", Schema: JournalSchema, Manifest: &m})
}

// WriteUnit records one completed unit of work. records may be zero for
// units that predate record accounting; readers treat it as optional.
func (j *Journal) WriteUnit(label string, wall time.Duration, instrs, records uint64) {
	j.write(&journalLine{Type: "unit", Label: label, WallNS: int64(wall), Instrs: instrs, Records: records})
}

// WriteSpan records one timed phase span: label names the phase,
// startNS is the offset from the run's trace start, durNS its length.
func (j *Journal) WriteSpan(label string, startNS, durNS int64) {
	j.write(&journalLine{Type: "span", Label: label, StartNS: startNS, WallNS: durNS})
}

// WriteTraceSpans journals every phase-category event of a trace buffer
// (windowed per-window events stay in the Chrome export only — a long
// run produces thousands of them, while phase spans are bounded by the
// number of pipeline stages executed).
func (j *Journal) WriteTraceSpans(tb *TraceBuffer) {
	if j == nil || tb == nil {
		return
	}
	for _, ev := range tb.Events() {
		if ev.Cat != CatPhase {
			continue
		}
		j.WriteSpan(ev.Name, int64(ev.TS*1e3), int64(ev.Dur*1e3))
	}
}

// WriteAttrib records one workload's attribution summary document
// (typically an attrib.Report flattened to a map via JSON).
func (j *Journal) WriteAttrib(label string, body map[string]any) {
	if body == nil {
		body = map[string]any{}
	}
	j.write(&journalLine{Type: "attrib", Label: label, Attrib: &body})
}

// WriteSnapshot records the final aggregate state of r; call it once,
// last, after all units have finished.
func (j *Journal) WriteSnapshot(r *Registry) {
	snap := r.Snapshot()
	if snap == nil {
		snap = map[string]any{}
	}
	j.write(&journalLine{Type: "snapshot", Metrics: &snap})
}

// Err reports the first write or encoding failure, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ValidateJournal checks a journal stream against the schema: exactly
// one manifest (first, schema <= current), zero or more unit, span, and
// attrib events (non-empty label; non-negative times; attrib body
// present), and exactly one snapshot (last, with metrics). It returns
// the number of unit events.
func ValidateJournal(r io.Reader) (units int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	sawSnapshot := false
	for sc.Scan() {
		n++
		if len(sc.Bytes()) == 0 {
			return units, fmt.Errorf("journal line %d: empty", n)
		}
		var line journalLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return units, fmt.Errorf("journal line %d: %v", n, err)
		}
		if sawSnapshot {
			return units, fmt.Errorf("journal line %d: content after snapshot", n)
		}
		switch line.Type {
		case "manifest":
			if n != 1 {
				return units, fmt.Errorf("journal line %d: manifest must be the first line", n)
			}
			if line.Schema <= 0 || line.Schema > JournalSchema {
				return units, fmt.Errorf("journal line %d: schema %d, reader supports <= %d",
					n, line.Schema, JournalSchema)
			}
			if line.Manifest == nil {
				return units, fmt.Errorf("journal line %d: manifest without body", n)
			}
		case "unit":
			if n == 1 {
				return units, fmt.Errorf("journal line 1: expected manifest, got unit")
			}
			if line.Label == "" {
				return units, fmt.Errorf("journal line %d: unit without label", n)
			}
			if line.WallNS < 0 {
				return units, fmt.Errorf("journal line %d: negative wall_ns", n)
			}
			units++
		case "span":
			if n == 1 {
				return units, fmt.Errorf("journal line 1: expected manifest, got span")
			}
			if line.Label == "" {
				return units, fmt.Errorf("journal line %d: span without label", n)
			}
			if line.StartNS < 0 {
				return units, fmt.Errorf("journal line %d: negative start_ns", n)
			}
			if line.WallNS < 0 {
				return units, fmt.Errorf("journal line %d: negative wall_ns", n)
			}
		case "attrib":
			if n == 1 {
				return units, fmt.Errorf("journal line 1: expected manifest, got attrib")
			}
			if line.Label == "" {
				return units, fmt.Errorf("journal line %d: attrib without label", n)
			}
			if line.Attrib == nil {
				return units, fmt.Errorf("journal line %d: attrib without body", n)
			}
		case "snapshot":
			if n == 1 {
				return units, fmt.Errorf("journal line 1: expected manifest, got snapshot")
			}
			if line.Metrics == nil {
				return units, fmt.Errorf("journal line %d: snapshot without metrics", n)
			}
			sawSnapshot = true
		default:
			return units, fmt.Errorf("journal line %d: unknown type %q", n, line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return units, err
	}
	if n == 0 {
		return units, fmt.Errorf("journal: empty file")
	}
	if !sawSnapshot {
		return units, fmt.Errorf("journal: missing final snapshot line")
	}
	return units, nil
}
