package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one complete ("ph":"X") event in the Chrome trace-event
// format — the JSON `about://tracing` and Perfetto load directly.
// Timestamps and durations are microseconds; TS is relative to the
// owning buffer's start so traces are stable run to run.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Well-known trace-event categories and track (tid) assignments. Phase
// spans (profile/train/simulate/...) land on track 0; the windowed
// engine puts its committer on track 1 and speculative workers on
// 2..2+workers-1, so a speculation run reads as a swimlane diagram.
const (
	CatPhase  = "phase"
	CatWindow = "window"

	TIDMain      = 0
	TIDCommitter = 1
	TIDWorker0   = 2
)

// traceEventLimit caps a buffer so a runaway loop cannot exhaust
// memory; at ~100 bytes/event the cap is ~25 MB. Dropped events are
// counted and reported in the exported metadata.
const traceEventLimit = 1 << 18

// TraceBuffer accumulates trace events for one run. It is safe for
// concurrent use (windowed workers record speculation spans); a nil
// buffer is a no-op sink like every other telemetry instrument.
type TraceBuffer struct {
	start time.Time

	mu      sync.Mutex
	events  []TraceEvent
	dropped uint64
}

// NewTraceBuffer returns an empty buffer anchored at the current time.
func NewTraceBuffer() *TraceBuffer { return &TraceBuffer{start: time.Now()} }

// Add records one complete event covering [start, start+dur). Args may
// be nil. A nil buffer drops the event for free.
func (b *TraceBuffer) Add(name, cat string, tid int, start time.Time, dur time.Duration, args map[string]any) {
	if b == nil {
		return
	}
	ev := TraceEvent{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		TS:   float64(start.Sub(b.start)) / float64(time.Microsecond),
		Dur:  float64(dur) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		Args: args,
	}
	b.mu.Lock()
	if len(b.events) >= traceEventLimit {
		b.dropped++
	} else {
		b.events = append(b.events, ev)
	}
	b.mu.Unlock()
}

// Len returns the number of buffered events.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a sorted copy of the buffered events: by start time,
// then track, then name — a deterministic order for rendering and
// journaling.
func (b *TraceBuffer) Events() []TraceEvent {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	evs := make([]TraceEvent, len(b.events))
	copy(evs, b.events)
	b.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		if evs[i].TID != evs[j].TID {
			return evs[i].TID < evs[j].TID
		}
		return evs[i].Name < evs[j].Name
	})
	return evs
}

// chromeTrace is the JSON object format of the trace-event spec: the
// variant that carries metadata alongside the event array.
type chromeTrace struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteChromeTrace serializes the buffer in the Chrome trace-event JSON
// object format. The result loads in about://tracing and Perfetto as-is.
func (b *TraceBuffer) WriteChromeTrace(w io.Writer) error {
	if b == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}` + "\n"))
		return err
	}
	b.mu.Lock()
	dropped := b.dropped
	b.mu.Unlock()
	doc := chromeTrace{
		TraceEvents:     b.Events(),
		DisplayTimeUnit: "ms",
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	if dropped > 0 {
		doc.Metadata = map[string]any{"dropped_events": dropped}
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// --- process-wide tracer ----------------------------------------------

var globalTracer atomic.Pointer[TraceBuffer]

// Tracer returns the installed process-wide trace buffer, or nil while
// tracing is disabled. Like Default(), the nil result is a usable no-op
// sink.
func Tracer() *TraceBuffer { return globalTracer.Load() }

// InstallTracer makes b the process-wide trace buffer (nil disables
// tracing) and returns b. Spans started while a tracer is installed
// record trace events alongside their duration histograms.
func InstallTracer(b *TraceBuffer) *TraceBuffer {
	globalTracer.Store(b)
	return b
}
