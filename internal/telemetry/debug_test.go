package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// debugGet fetches path from a live debug server and returns status,
// content type, and body.
func debugGet(t *testing.T, s *DebugServer, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestDebugMetricsEndpoint(t *testing.T) {
	r := swap(t, NewRegistry())
	r.Counter("whisper_debug_test_total").Add(7)
	r.Histogram("whisper_debug_test_sizes").Observe(100)
	s, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, ctype, body := debugGet(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE whisper_debug_test_total counter",
		"whisper_debug_test_total 7",
		"# TYPE whisper_debug_test_sizes histogram",
		// The quantile satellite: histogram families expose approximate
		// quantiles as a sibling gauge family.
		"# TYPE whisper_debug_test_sizes_approx_quantile gauge",
		`whisper_debug_test_sizes_approx_quantile{quantile="0.99"} 127`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDebugMetricsReadsRegistryAtRequestTime(t *testing.T) {
	swap(t, NewRegistry())
	s, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Replace the registry after the server started: the handler must
	// serve the new one.
	r2 := swap(t, NewRegistry())
	r2.Counter("whisper_late_total").Inc()
	if _, _, body := debugGet(t, s, "/metrics"); !strings.Contains(body, "whisper_late_total 1") {
		t.Fatalf("/metrics not reading live registry:\n%s", body)
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	r := swap(t, NewRegistry())
	r.Gauge("whisper_debug_inflight").Set(3)
	s, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, ctype, body := debugGet(t, s, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/vars content type %q", ctype)
	}
	// The registry snapshot is published under the "whisper" var.
	if !strings.Contains(body, `"whisper"`) || !strings.Contains(body, "whisper_debug_inflight") {
		t.Fatalf("/debug/vars missing registry snapshot:\n%s", body)
	}
}

func TestDebugPprofMux(t *testing.T) {
	swap(t, NewRegistry())
	s, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Index page lists the standard profiles.
	code, _, body := debugGet(t, s, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	for _, want := range []string{"goroutine", "heap"} {
		if !strings.Contains(body, want) {
			t.Fatalf("pprof index missing %q:\n%s", want, body)
		}
	}
	// Registered sub-handlers answer.
	for _, path := range []string{"/debug/pprof/cmdline", "/debug/pprof/symbol", "/debug/pprof/heap?debug=1"} {
		if code, _, _ := debugGet(t, s, path); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
	}
}

func TestDebugServerAddrAndClose(t *testing.T) {
	swap(t, NewRegistry())
	s, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Addr(), "127.0.0.1:") {
		t.Fatalf("Addr = %q", s.Addr())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:bad"); err == nil {
		t.Fatal("ServeDebug accepted a bad address")
	}
}
