package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers every uint64: bucket i counts observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i) and bucket 0 holds v==0.
const numBuckets = 65

// Histogram is a log-bucketed (powers of two) distribution of uint64
// observations — latencies in nanoseconds, sizes in bytes, counts. The
// coarse geometric buckets keep Observe allocation-free and O(1) while
// still answering the monitoring questions ("did unit wall time jump an
// order of magnitude?"). A nil *Histogram is a no-op sink.
//
// scale is applied only when rendering bucket bounds and sums (1 for
// dimensionless values, 1e-9 for nanosecond observations rendered as
// Prometheus seconds).
type Histogram struct {
	scale   float64
	sum     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// NewHistogram returns a standalone dimensionless histogram.
func NewHistogram() *Histogram { return &Histogram{scale: 1} }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the raw (unscaled) sum of observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ScaledSum returns the sum in rendered units (seconds for duration
// histograms).
func (h *Histogram) ScaledSum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) * h.scale
}

// upperBound returns the rendered inclusive upper bound of bucket i.
func (h *Histogram) upperBound(i int) float64 {
	if i == 0 {
		return 0
	}
	return float64(uint64(1)<<uint(i)-1) * h.scale
}

// Quantile returns an approximate q-quantile (q in [0,1]) in rendered
// units: the upper bound of the log bucket holding the ceil(q·count)-th
// observation. The power-of-two buckets bound the error to under one
// octave — coarse, but exactly enough resolution for "did p99 jump an
// order of magnitude", which is what the replay-length and phase
// distributions are monitored for. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			return h.upperBound(i)
		}
	}
	return h.upperBound(numBuckets - 1)
}
