// Package telemetry is the process-wide observability layer: a metrics
// registry of sharded-atomic counters, gauges, and log-bucketed
// histograms; a span API for timing named phases (profile, train,
// simulate, cache.read, cache.write); a structured JSONL run journal;
// and a debug HTTP endpoint serving Prometheus text, expvar, and pprof.
//
// The layer is opt-in and free when off. Telemetry is disabled until a
// registry is installed (Install or Enable); while disabled every
// instrument handle is nil, and every method on a nil instrument is a
// no-op — the fast path is a single nil check with no allocation and no
// atomic traffic (bench_test.go pins this at 0 B/op). Instrumented
// packages therefore guard with one atomic load:
//
//	if r := telemetry.Default(); r != nil {
//		r.Counter("whisper_sim_instructions_total").Add(res.Instrs)
//	}
//
// Instruments are cheap enough to update from unit-completion and
// run-epilogue granularity everywhere; hot per-record loops accumulate
// locally (as pipeline.Run always has) and flush once per run.
package telemetry

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards spreads concurrent counter writers across cache lines. A
// small power of two keeps Value() summation trivial while removing the
// worst contention of a -j 32 sweep bumping one hot counter.
const numShards = 8

// shard is a padded atomic cell; the padding keeps two shards from
// false-sharing one 64-byte cache line.
type shard struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing sharded-atomic counter. A nil
// *Counter is a valid no-op sink: the disabled-telemetry path costs one
// nil check.
type Counter struct {
	shards [numShards]shard
}

// NewCounter returns a standalone counter, usable with or without a
// registry (runner.Monitor owns its instruments this way and registers
// them only when telemetry is enabled).
func NewCounter() *Counter { return new(Counter) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. Concurrent Adds may or may not be visible; the
// value is exact once writers are quiescent (e.g. after a pool's
// Run returns).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// shardIndex derives a shard from the goroutine's stack address:
// distinct goroutines occupy distinct stacks, so concurrent writers
// spread across shards without any per-goroutine registration.
func shardIndex() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 10) % numShards)
}

// Gauge is an instantaneous value (e.g. in-flight units). A nil *Gauge
// is a no-op sink.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return new(Gauge) }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- process-wide default registry ------------------------------------

var global atomic.Pointer[Registry]

// Default returns the installed process-wide registry, or nil while
// telemetry is disabled. The nil result is itself usable: every lookup
// on a nil *Registry returns a nil instrument.
func Default() *Registry { return global.Load() }

// Install makes r the process-wide registry (nil disables telemetry
// again) and returns r. CLIs install a fresh registry per run so a
// journal snapshot covers exactly that run, even when several runs
// share a test process.
func Install(r *Registry) *Registry {
	global.Store(r)
	return r
}

// Enable installs a fresh registry if none is active and returns the
// active one. Idempotent; used by entry points that only need "on".
func Enable() *Registry {
	if r := global.Load(); r != nil {
		return r
	}
	global.CompareAndSwap(nil, NewRegistry())
	return global.Load()
}

// expvarOnce guards the one-time expvar publication in debug.go.
var expvarOnce sync.Once
