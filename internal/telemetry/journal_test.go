package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// writeValidJournal produces a well-formed journal with n unit events.
func writeValidJournal(n int) string {
	var b strings.Builder
	j := NewJournal(&b)
	j.WriteManifest(Manifest{Tool: "test", Go: "go0", GOMAXPROCS: 1, Workers: 2,
		Config: map[string]any{"scale": "tiny"}})
	r := NewRegistry()
	for i := 0; i < n; i++ {
		r.Counter("whisper_runner_instructions_total").Add(100)
		j.WriteUnit("phase/app", time.Millisecond, 100, 40)
	}
	j.WriteSnapshot(r)
	return b.String()
}

func TestJournalRoundTrip(t *testing.T) {
	out := writeValidJournal(3)
	units, err := ValidateJournal(strings.NewReader(out))
	if err != nil {
		t.Fatalf("valid journal rejected: %v\n%s", err, out)
	}
	if units != 3 {
		t.Fatalf("units = %d, want 3", units)
	}
	// Every line must be standalone JSON.
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %d not JSON: %v", i+1, err)
		}
	}
	// The snapshot carries the aggregated counter.
	var last journalLine
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if got := (*last.Metrics)["whisper_runner_instructions_total"]; got != float64(300) {
		t.Fatalf("snapshot instrs = %v, want 300", got)
	}
}

func TestJournalNil(t *testing.T) {
	var j *Journal
	j.WriteManifest(Manifest{})
	j.WriteUnit("x", 0, 0, 0)
	j.WriteSnapshot(nil)
	if j.Err() != nil {
		t.Fatal("nil journal reported an error")
	}
}

func TestJournalConcurrentUnits(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	// strings.Builder is not goroutine safe; wrap it.
	j := NewJournal(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}))
	j.WriteManifest(Manifest{Tool: "test"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.WriteUnit("u", time.Microsecond, 1, 1)
			}
		}()
	}
	wg.Wait()
	j.WriteSnapshot(NewRegistry())
	units, err := ValidateJournal(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if units != 400 {
		t.Fatalf("units = %d, want 400", units)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestValidateJournalRejects(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"no manifest":         `{"type":"unit","label":"x"}` + "\n",
		"bad json":            "{not json}\n",
		"unknown type":        `{"type":"manifest","schema":1,"manifest":{"tool":"t"}}` + "\n" + `{"type":"weird"}` + "\n",
		"future schema":       `{"type":"manifest","schema":99,"manifest":{"tool":"t"}}` + "\n" + `{"type":"snapshot","metrics":{}}` + "\n",
		"missing snapshot":    `{"type":"manifest","schema":1,"manifest":{"tool":"t"}}` + "\n",
		"unit without label":  `{"type":"manifest","schema":1,"manifest":{"tool":"t"}}` + "\n" + `{"type":"unit"}` + "\n" + `{"type":"snapshot","metrics":{}}` + "\n",
		"tail after snapshot": `{"type":"manifest","schema":1,"manifest":{"tool":"t"}}` + "\n" + `{"type":"snapshot","metrics":{}}` + "\n" + `{"type":"unit","label":"x"}` + "\n",
		"second manifest":     `{"type":"manifest","schema":1,"manifest":{"tool":"t"}}` + "\n" + `{"type":"manifest","schema":1,"manifest":{"tool":"t"}}` + "\n" + `{"type":"snapshot","metrics":{}}` + "\n",
		"snapshot no metrics": `{"type":"manifest","schema":1,"manifest":{"tool":"t"}}` + "\n" + `{"type":"snapshot"}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateJournal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJournalSpanAndAttribRoundTrip(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	j.WriteManifest(Manifest{Tool: "test"})
	j.WriteUnit("fig1/mysql", time.Millisecond, 100, 40)
	j.WriteSpan("simulate", 1500, 2500)
	j.WriteAttrib("mysql", map[string]any{"schema": 1, "workload": "mysql"})
	j.WriteAttrib("empty", nil) // nil body serializes as {}
	j.WriteSnapshot(NewRegistry())
	out := b.String()

	units, err := ValidateJournal(strings.NewReader(out))
	if err != nil {
		t.Fatalf("schema-2 journal rejected: %v\n%s", err, out)
	}
	if units != 1 {
		t.Fatalf("units = %d, want 1", units)
	}
	for _, want := range []string{
		`"type":"span"`, `"start_ns":1500`, `"wall_ns":2500`,
		`"type":"attrib"`, `"workload":"mysql"`, `"attrib":{}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("journal missing %q:\n%s", want, out)
		}
	}
}

func TestJournalWriteTraceSpans(t *testing.T) {
	tb := NewTraceBuffer()
	base := tb.start
	tb.Add("simulate", CatPhase, TIDMain, base.Add(time.Millisecond), 2*time.Millisecond, nil)
	tb.Add("train", CatPhase, TIDMain, base.Add(4*time.Millisecond), time.Millisecond, nil)
	// Window events must NOT be journaled (unbounded cardinality).
	tb.Add("window.speculate", CatWindow, TIDWorker0, base, time.Millisecond, nil)

	var b strings.Builder
	j := NewJournal(&b)
	j.WriteManifest(Manifest{Tool: "test"})
	j.WriteTraceSpans(tb)
	j.WriteSnapshot(NewRegistry())
	out := b.String()

	if _, err := ValidateJournal(strings.NewReader(out)); err != nil {
		t.Fatalf("trace-span journal rejected: %v\n%s", err, out)
	}
	if got := strings.Count(out, `"type":"span"`); got != 2 {
		t.Fatalf("%d span lines, want 2 (window events excluded):\n%s", got, out)
	}
	if strings.Contains(out, "window.speculate") {
		t.Fatalf("window event leaked into journal:\n%s", out)
	}
	// Nil journal / nil buffer are no-ops.
	var nilJ *Journal
	nilJ.WriteTraceSpans(tb)
	j2 := NewJournal(&strings.Builder{})
	j2.WriteTraceSpans(nil)
}

func TestValidateJournalSchema2Rejects(t *testing.T) {
	manifest := `{"type":"manifest","schema":2,"manifest":{"tool":"t"}}` + "\n"
	snapshot := `{"type":"snapshot","metrics":{}}` + "\n"
	cases := map[string]string{
		"span first":            `{"type":"span","label":"simulate","wall_ns":5}` + "\n" + snapshot,
		"span without label":    manifest + `{"type":"span","wall_ns":5}` + "\n" + snapshot,
		"span negative start":   manifest + `{"type":"span","label":"x","start_ns":-1}` + "\n" + snapshot,
		"span negative wall":    manifest + `{"type":"span","label":"x","wall_ns":-1}` + "\n" + snapshot,
		"span after snapshot":   manifest + snapshot + `{"type":"span","label":"x"}` + "\n",
		"attrib first":          `{"type":"attrib","label":"mysql","attrib":{}}` + "\n" + snapshot,
		"attrib without label":  manifest + `{"type":"attrib","attrib":{}}` + "\n" + snapshot,
		"attrib without body":   manifest + `{"type":"attrib","label":"mysql"}` + "\n" + snapshot,
		"attrib after snapshot": manifest + snapshot + `{"type":"attrib","label":"x","attrib":{}}` + "\n",
		"unknown sibling type":  manifest + `{"type":"spans","label":"x"}` + "\n" + snapshot,
	}
	for name, in := range cases {
		if _, err := ValidateJournal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateJournalAcceptsSchema2Types(t *testing.T) {
	in := `{"type":"manifest","schema":2,"manifest":{"tool":"t"}}` + "\n" +
		`{"type":"span","label":"simulate","start_ns":0,"wall_ns":0}` + "\n" +
		`{"type":"attrib","label":"mysql","attrib":{"schema":1}}` + "\n" +
		`{"type":"snapshot","metrics":{}}` + "\n"
	if _, err := ValidateJournal(strings.NewReader(in)); err != nil {
		t.Fatalf("minimal schema-2 journal rejected: %v", err)
	}
}
