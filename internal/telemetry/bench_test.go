package telemetry

import "testing"

// The Disabled benchmarks pin the zero-overhead-when-off contract: CI's
// benchmark-smoke step asserts every one of them reports 0 B/op. They
// run with telemetry uninstalled (the package-level default), exercising
// the exact guard pattern the instrumented packages use.

func BenchmarkCounterAddDisabled(b *testing.B) {
	prev := Default()
	Install(nil)
	defer Install(prev)
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkRegistryGuardDisabled(b *testing.B) {
	prev := Default()
	Install(nil)
	defer Install(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := Default(); r != nil {
			r.Counter("whisper_bench_total").Inc()
		}
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	prev := Default()
	Install(nil)
	defer Install(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan("simulate").End()
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkCounterLookupEnabled(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("whisper_bench_total").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
