package telemetry

import "time"

// PhaseSeconds is the metric family recording span durations, labeled
// by phase.
const PhaseSeconds = "whisper_phase_duration_seconds"

// Span times one named phase of the pipeline. It is a value type so
// starting and ending a span never allocates; the zero Span (returned
// while telemetry is disabled) is inert.
//
//	sp := telemetry.StartSpan("train")
//	defer sp.End()
//
// Each End observes the span's wall time into the phase's duration
// histogram, so /metrics exposes count, sum, and a log-bucketed
// distribution per phase.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing phase ("profile", "train", "simulate",
// "cache.read", "cache.write", ...). While telemetry is disabled it
// returns an inert span without reading the clock.
func StartSpan(phase string) Span {
	r := Default()
	if r == nil {
		return Span{}
	}
	return Span{
		h:     r.DurationHistogram(PhaseSeconds + `{phase="` + phase + `"}`),
		start: time.Now(),
	}
}

// End records the span's duration; safe on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(uint64(time.Since(s.start)))
}
