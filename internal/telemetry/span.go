package telemetry

import "time"

// PhaseSeconds is the metric family recording span durations, labeled
// by phase.
const PhaseSeconds = "whisper_phase_duration_seconds"

// Span times one named phase of the pipeline. It is a value type so
// starting and ending a span never allocates; the zero Span (returned
// while telemetry is disabled) is inert.
//
//	sp := telemetry.StartSpan("train")
//	defer sp.End()
//
// Each End observes the span's wall time into the phase's duration
// histogram, so /metrics exposes count, sum, and a log-bucketed
// distribution per phase. While a process-wide tracer is installed
// (InstallTracer), End additionally records the span as a Chrome trace
// event on the main track, so the same instrumentation feeds both the
// metrics and the trace-viewer timeline.
type Span struct {
	h     *Histogram
	tb    *TraceBuffer
	name  string
	start time.Time
}

// StartSpan begins timing phase ("profile", "train", "simulate",
// "cache.read", "cache.write", ...). While telemetry and tracing are
// both disabled it returns an inert span without reading the clock.
func StartSpan(phase string) Span {
	r := Default()
	tb := Tracer()
	if r == nil && tb == nil {
		return Span{}
	}
	s := Span{tb: tb, name: phase, start: time.Now()}
	if r != nil {
		s.h = r.DurationHistogram(PhaseSeconds + `{phase="` + phase + `"}`)
	}
	return s
}

// End records the span's duration; safe on the zero Span.
func (s Span) End() {
	if s.h == nil && s.tb == nil {
		return
	}
	dur := time.Since(s.start)
	s.h.Observe(uint64(dur))
	s.tb.Add(s.name, CatPhase, TIDMain, s.start, dur, nil)
}
