package benchio

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema:     Schema,
		Name:       "test",
		Go:         "go1.24.0",
		GOMAXPROCS: 4,
		Results: []Result{{
			App:                  "mysql",
			Predictor:            "tage-sc-l-64KB",
			Records:              1000,
			Reps:                 3,
			ScalarNSPerRecord:    800,
			BatchedNSPerRecord:   400,
			ScalarRecordsPerSec:  1e9 / 800,
			BatchedRecordsPerSec: 1e9 / 400,
			Speedup:              2,
		}},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := sampleReport()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Results) != 1 || got.Results[0] != want.Results[0] {
		t.Fatalf("round trip mismatch: %+v != %+v", got, want)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"future schema", func(r *Report) { r.Schema = Schema + 1 }, "schema"},
		{"no name", func(r *Report) { r.Name = "" }, "name"},
		{"no results", func(r *Report) { r.Results = nil }, "no results"},
		{"zero records", func(r *Report) { r.Results[0].Records = 0 }, "records"},
		{"zero time", func(r *Report) { r.Results[0].ScalarNSPerRecord = 0 }, "ns/record"},
		{"bad speedup", func(r *Report) { r.Results[0].Speedup = 9 }, "speedup"},
		{"bad rate", func(r *Report) { r.Results[0].BatchedRecordsPerSec = 1 }, "records/sec"},
	}
	for _, tc := range cases {
		r := sampleReport()
		tc.mut(r)
		err := Validate(r)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := Validate(sampleReport()); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}
