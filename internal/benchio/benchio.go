// Package benchio defines the stable JSON schema of cmd/bench reports
// (BENCH_<name>.json): a versioned report header plus one result per
// (app, predictor) matrix cell, with scalar-vs-batched throughput in the
// units the runner's -timing summary also reports (records/sec and
// ns/record). Write/Read/Validate keep producers and consumers — the
// CLI, CI's bench-smoke job, and committed reference reports — on one
// schema.
package benchio

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Schema is the report schema version; readers reject files written by
// a newer tool.
const Schema = 1

// Result is one benchmark matrix cell: a (workload, predictor) pair
// measured under both pipeline engines. Times are medians across the
// report's repetitions; scalar and batched repetitions are interleaved
// by the producer so machine noise hits both engines alike.
type Result struct {
	// App and Predictor name the cell ("kafka", "tage-sc-l-64KB").
	App       string `json:"app"`
	Predictor string `json:"predictor"`
	// Records is the measured stream length; Reps the number of timed
	// repetitions per engine; BlockSize the batched engine's block
	// granularity (0 = default).
	Records   int `json:"records"`
	Reps      int `json:"reps"`
	BlockSize int `json:"block_size,omitempty"`

	// Median per-record cost of each engine, in nanoseconds.
	ScalarNSPerRecord  float64 `json:"scalar_ns_per_record"`
	BatchedNSPerRecord float64 `json:"batched_ns_per_record"`
	// The same medians as throughput, comparable to the runner's
	// records/sec accounting.
	ScalarRecordsPerSec  float64 `json:"scalar_records_per_sec"`
	BatchedRecordsPerSec float64 `json:"batched_records_per_sec"`
	// Speedup is scalar/batched per-record cost (> 1 means the batched
	// engine wins).
	Speedup float64 `json:"speedup"`

	// Windowed-engine measurements, present when the producer also ran
	// the within-trace parallel engine (cmd/bench -sim-j > 1). SimJ and
	// WindowSize record the engine configuration; WindowedSpeedup is
	// batched/windowed per-record cost (the windowed engine's win over
	// the serial batched engine); ReplayRate is the fraction of records
	// whose speculative execution had to be replayed on the true path.
	SimJ                  int     `json:"sim_j,omitempty"`
	WindowSize            int     `json:"window_size,omitempty"`
	WindowedNSPerRecord   float64 `json:"windowed_ns_per_record,omitempty"`
	WindowedRecordsPerSec float64 `json:"windowed_records_per_sec,omitempty"`
	WindowedSpeedup       float64 `json:"windowed_speedup,omitempty"`
	ReplayRate            float64 `json:"replay_rate,omitempty"`
}

// Report is one cmd/bench run: a schema-versioned header and the full
// result matrix.
type Report struct {
	Schema int `json:"schema"`
	// Name is the report's identity ("batched_core"); the conventional
	// file name is BENCH_<name>.json.
	Name string `json:"name"`
	// Go and GOMAXPROCS describe the producing process.
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Smoke marks reduced-scale CI runs whose absolute numbers are not
	// comparable to full reports.
	Smoke   bool     `json:"smoke,omitempty"`
	Results []Result `json:"results"`
}

// Validate checks the report against the schema: a supported version, a
// name, at least one result, and per-result positive measurements whose
// derived fields (records/sec, speedup) are consistent with the
// ns/record medians they were computed from.
func Validate(r *Report) error {
	if r == nil {
		return fmt.Errorf("benchio: nil report")
	}
	if r.Schema <= 0 || r.Schema > Schema {
		return fmt.Errorf("benchio: schema %d, reader supports <= %d", r.Schema, Schema)
	}
	if r.Name == "" {
		return fmt.Errorf("benchio: report without name")
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("benchio: report %q has no results", r.Name)
	}
	for i := range r.Results {
		if err := validateResult(&r.Results[i]); err != nil {
			return fmt.Errorf("benchio: result %d: %w", i, err)
		}
	}
	return nil
}

func validateResult(c *Result) error {
	if c.App == "" || c.Predictor == "" {
		return fmt.Errorf("missing app/predictor name")
	}
	if c.Records <= 0 || c.Reps <= 0 {
		return fmt.Errorf("%s/%s: non-positive records/reps", c.App, c.Predictor)
	}
	if c.ScalarNSPerRecord <= 0 || c.BatchedNSPerRecord <= 0 {
		return fmt.Errorf("%s/%s: non-positive ns/record", c.App, c.Predictor)
	}
	if !consistent(c.ScalarRecordsPerSec, 1e9/c.ScalarNSPerRecord) ||
		!consistent(c.BatchedRecordsPerSec, 1e9/c.BatchedNSPerRecord) {
		return fmt.Errorf("%s/%s: records/sec inconsistent with ns/record", c.App, c.Predictor)
	}
	if !consistent(c.Speedup, c.ScalarNSPerRecord/c.BatchedNSPerRecord) {
		return fmt.Errorf("%s/%s: speedup inconsistent with ns/record medians", c.App, c.Predictor)
	}
	if c.WindowedNSPerRecord != 0 {
		if c.WindowedNSPerRecord < 0 {
			return fmt.Errorf("%s/%s: negative windowed ns/record", c.App, c.Predictor)
		}
		if c.SimJ < 2 {
			return fmt.Errorf("%s/%s: windowed measurement without sim_j >= 2", c.App, c.Predictor)
		}
		if !consistent(c.WindowedRecordsPerSec, 1e9/c.WindowedNSPerRecord) {
			return fmt.Errorf("%s/%s: windowed records/sec inconsistent with ns/record", c.App, c.Predictor)
		}
		if !consistent(c.WindowedSpeedup, c.BatchedNSPerRecord/c.WindowedNSPerRecord) {
			return fmt.Errorf("%s/%s: windowed speedup inconsistent with ns/record medians", c.App, c.Predictor)
		}
		if c.ReplayRate < 0 || c.ReplayRate > 1 {
			return fmt.Errorf("%s/%s: replay rate %g outside [0,1]", c.App, c.Predictor, c.ReplayRate)
		}
	}
	return nil
}

// consistent tolerates the rounding Write applies to derived fields.
func consistent(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) < 1e-2
}

// Write validates the report and writes it as indented JSON.
func Write(path string, r *Report) error {
	if err := Validate(r); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads and validates a report.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", path, err)
	}
	return &r, nil
}
