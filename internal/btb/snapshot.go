package btb

import (
	"fmt"
	"sort"

	"github.com/whisper-sim/whisper/internal/snap"
)

// Clone returns a deep copy of the BTB.
func (b *BTB) Clone() *BTB {
	d := *b
	d.tags = append([]uint64(nil), b.tags...)
	d.targets = append([]uint64(nil), b.targets...)
	d.valid = append([]bool(nil), b.valid...)
	d.lru = append([]uint8(nil), b.lru...)
	return &d
}

// AppendState encodes the BTB's functional contents canonically,
// excluding the observational lookup/miss counters.
func (b *BTB) AppendState(out []byte) []byte {
	out = snap.U32(out, uint32(len(b.tags)))
	for _, t := range b.tags {
		out = snap.U64(out, t)
	}
	for _, t := range b.targets {
		out = snap.U64(out, t)
	}
	for i := range b.valid {
		out = snap.Bool(out, b.valid[i])
	}
	for _, r := range b.lru {
		out = snap.U8(out, r)
	}
	return out
}

// ReadState restores contents written by AppendState.
func (b *BTB) ReadState(r *snap.Reader) error {
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(b.tags) {
		return fmt.Errorf("btb: snapshot has %d entries, want %d", n, len(b.tags))
	}
	for i := range b.tags {
		b.tags[i] = r.U64()
	}
	for i := range b.targets {
		b.targets[i] = r.U64()
	}
	for i := range b.valid {
		b.valid[i] = r.Bool()
	}
	for i := range b.lru {
		b.lru[i] = r.U8()
	}
	return r.Err()
}

// Clone returns a deep copy of the RAS.
func (r *RAS) Clone() *RAS {
	d := *r
	d.stack = append([]uint64(nil), r.stack...)
	return &d
}

// AppendState encodes the RAS canonically: the live entries in pop
// order (top first). The absolute top index is not encoded — RAS
// behavior only depends on positions relative to top, so two stacks
// with the same pop-order contents are behaviorally identical and
// yield identical bytes.
func (r *RAS) AppendState(out []byte) []byte {
	out = snap.U32(out, uint32(r.depth))
	for i := 0; i < r.depth; i++ {
		out = snap.U64(out, r.stack[(r.top-i+len(r.stack))%len(r.stack)])
	}
	return out
}

// ReadState restores contents written by AppendState.
func (r *RAS) ReadState(rd *snap.Reader) error {
	depth := int(rd.U32())
	if rd.Err() != nil {
		return rd.Err()
	}
	if depth > len(r.stack) {
		return fmt.Errorf("btb: RAS snapshot depth %d exceeds capacity %d", depth, len(r.stack))
	}
	for i := range r.stack {
		r.stack[i] = 0
	}
	r.depth = depth
	r.top = depth % len(r.stack)
	for i := 0; i < depth; i++ {
		r.stack[(r.top-i+len(r.stack))%len(r.stack)] = rd.U64()
	}
	return rd.Err()
}

// Clone returns a deep copy of the IBTB.
func (i *IBTB) Clone() *IBTB {
	d := *i
	d.entries = make(map[uint64]uint64, len(i.entries))
	for k, v := range i.entries {
		d.entries[k] = v
	}
	d.seq = make(map[uint64]uint64, len(i.seq))
	for k, v := range i.seq {
		d.seq[k] = v
	}
	return &d
}

// AppendState encodes the live entries oldest-insertion first. Only the
// relative insertion order matters for future evictions, so restoring
// renumbers the clock from zero and re-encoding yields identical bytes.
func (i *IBTB) AppendState(out []byte) []byte {
	type kv struct{ key, seq uint64 }
	order := make([]kv, 0, len(i.seq))
	for k, s := range i.seq {
		order = append(order, kv{k, s})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].seq < order[b].seq })
	out = snap.U32(out, uint32(len(order)))
	for _, e := range order {
		out = snap.U64(out, e.key)
		out = snap.U64(out, i.entries[e.key])
	}
	return out
}

// ReadState restores contents written by AppendState.
func (i *IBTB) ReadState(r *snap.Reader) error {
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n > i.max {
		return fmt.Errorf("btb: IBTB snapshot has %d entries, max %d", n, i.max)
	}
	i.entries = make(map[uint64]uint64, n)
	i.seq = make(map[uint64]uint64, n)
	for k := 0; k < n; k++ {
		key := r.U64()
		i.entries[key] = r.U64()
		i.seq[key] = uint64(k)
	}
	i.clock = uint64(n)
	return r.Err()
}

// Clone returns a deep copy of the target-prediction frontend.
func (f *Frontend) Clone() *Frontend {
	return &Frontend{
		BTB:     f.BTB.Clone(),
		RAS:     f.RAS.Clone(),
		IBTB:    f.IBTB.Clone(),
		pathSig: f.pathSig,
	}
}

// AppendState encodes all target structures plus the path signature.
func (f *Frontend) AppendState(out []byte) []byte {
	out = f.BTB.AppendState(out)
	out = f.RAS.AppendState(out)
	out = f.IBTB.AppendState(out)
	return snap.U64(out, f.pathSig)
}

// ReadState restores state written by AppendState.
func (f *Frontend) ReadState(r *snap.Reader) error {
	if err := f.BTB.ReadState(r); err != nil {
		return err
	}
	if err := f.RAS.ReadState(r); err != nil {
		return err
	}
	if err := f.IBTB.ReadState(r); err != nil {
		return err
	}
	f.pathSig = r.U64()
	return r.Err()
}
