// Package btb models the branch-target side of the frontend: a
// set-associative Branch Target Buffer, a Return Address Stack, and an
// indirect-target BTB, sized per the paper's Table II (8192-entry 4-way
// BTB, 32-entry RAS, 4096-entry IBTB).
package btb

import (
	"sort"

	"github.com/whisper-sim/whisper/internal/trace"
)

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	ways    int
	setBits uint
	setMask uint64
	tags    []uint64
	targets []uint64
	valid   []bool
	lru     []uint8

	lookups uint64
	misses  uint64
}

// NewBTB creates a BTB with the given total entries and associativity.
// entries/ways must be a power of two.
func NewBTB(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("btb: invalid geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("btb: sets not a power of two")
	}
	setBits := uint(0)
	for s := sets; s > 1; s >>= 1 {
		setBits++
	}
	return &BTB{
		ways:    ways,
		setBits: setBits,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint8, entries),
	}
}

func (b *BTB) setOf(pc uint64) (int, uint64) {
	idx := (pc >> 2) & b.setMask
	tag := pc >> 2 >> b.setBits
	return int(idx) * b.ways, tag
}

// Lookup returns the predicted target for pc, with ok=false on a BTB miss.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.lookups++
	base, tag := b.setOf(pc)
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.tags[base+w] == tag {
			b.touch(base, w)
			return b.targets[base+w], true
		}
	}
	b.misses++
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	base, tag := b.setOf(pc)
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.tags[base+w] == tag {
			b.targets[base+w] = target
			b.touch(base, w)
			return
		}
	}
	victim := 0
	for w := 0; w < b.ways; w++ {
		if !b.valid[base+w] {
			victim = w
			break
		}
		if b.lru[base+w] < b.lru[base+victim] {
			victim = w
		}
	}
	b.valid[base+victim] = true
	b.tags[base+victim] = tag
	b.targets[base+victim] = target
	b.touch(base, victim)
}

func (b *BTB) touch(base, w int) {
	old := b.lru[base+w]
	mru := uint8(b.ways - 1)
	if old == mru {
		// Already most recent: the rank rewrite below would be a no-op.
		return
	}
	for i := 0; i < b.ways; i++ {
		if b.lru[base+i] > old {
			b.lru[base+i]--
		}
	}
	b.lru[base+w] = mru
}

// Lookups returns the number of Lookup calls.
func (b *BTB) Lookups() uint64 { return b.lookups }

// Misses returns the number of failed lookups.
func (b *BTB) Misses() uint64 { return b.misses }

// MissRate returns misses/lookups.
func (b *BTB) MissRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.misses) / float64(b.lookups)
}

// RAS is a fixed-depth return address stack with wrap-around overwrite,
// matching hardware behaviour on overflow.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS creates a RAS with the given number of entries.
func NewRAS(entries int) *RAS {
	if entries <= 0 {
		panic("btb: RAS entries must be positive")
	}
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return; ok=false when the stack has
// underflowed (the prediction would be garbage).
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Depth returns the current number of live entries.
func (r *RAS) Depth() int { return r.depth }

// IBTB predicts indirect-branch targets, indexed by PC hashed with a
// short path signature the caller maintains.
type IBTB struct {
	entries map[uint64]uint64
	seq     map[uint64]uint64 // insertion clock per live key
	clock   uint64
	max     int

	lookups uint64
	misses  uint64
}

// NewIBTB creates an IBTB bounded to max entries (random-ish eviction by
// map iteration order is intentionally avoided: we clear the oldest via a
// simple clock of insertion order).
func NewIBTB(max int) *IBTB {
	if max <= 0 {
		panic("btb: IBTB max must be positive")
	}
	return &IBTB{
		entries: make(map[uint64]uint64, max),
		seq:     make(map[uint64]uint64, max),
		max:     max,
	}
}

// Lookup predicts the target for the hashed index.
func (i *IBTB) Lookup(idx uint64) (uint64, bool) {
	i.lookups++
	t, ok := i.entries[idx]
	if !ok {
		i.misses++
	}
	return t, ok
}

// Update installs the resolved target. When full, the table is halved
// by dropping the oldest-inserted half (a FIFO clock), which keeps
// eviction fully deterministic — map iteration order must never leak
// into simulated state.
func (i *IBTB) Update(idx, target uint64) {
	if _, live := i.entries[idx]; !live {
		if len(i.entries) >= i.max {
			i.evictOldest(i.max / 2)
		}
		i.seq[idx] = i.clock
		i.clock++
	}
	i.entries[idx] = target
}

// evictOldest removes the n entries with the smallest insertion clocks.
func (i *IBTB) evictOldest(n int) {
	type kv struct{ key, seq uint64 }
	order := make([]kv, 0, len(i.seq))
	for k, s := range i.seq {
		order = append(order, kv{k, s})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].seq < order[b].seq })
	if n > len(order) {
		n = len(order)
	}
	for _, e := range order[:n] {
		delete(i.entries, e.key)
		delete(i.seq, e.key)
	}
}

// MissRate returns the fraction of failed lookups.
func (i *IBTB) MissRate() float64 {
	if i.lookups == 0 {
		return 0
	}
	return float64(i.misses) / float64(i.lookups)
}

// Frontend bundles the Table II target-prediction structures and scores a
// record stream's target predictability.
type Frontend struct {
	BTB  *BTB
	RAS  *RAS
	IBTB *IBTB

	pathSig uint64
}

// NewFrontend builds the Table II configuration: 8192-entry 4-way BTB,
// 32-entry RAS, 4096-entry IBTB.
func NewFrontend() *Frontend {
	return &Frontend{
		BTB:  NewBTB(8192, 4),
		RAS:  NewRAS(32),
		IBTB: NewIBTB(4096),
	}
}

// PredictTarget returns the frontend's target prediction for a record and
// whether the structures had a usable entry. It must be followed by
// UpdateTarget with the same record.
func (f *Frontend) PredictTarget(rec *trace.Record) (uint64, bool) {
	switch rec.Kind {
	case trace.Return:
		return f.RAS.Pop()
	case trace.IndirectJump:
		return f.IBTB.Lookup(rec.PC ^ f.pathSig)
	default:
		return f.BTB.Lookup(rec.PC)
	}
}

// UpdateTarget trains the structures with the resolved record.
func (f *Frontend) UpdateTarget(rec *trace.Record) {
	switch rec.Kind {
	case trace.Return:
		// RAS already popped in PredictTarget.
	case trace.IndirectJump:
		f.IBTB.Update(rec.PC^f.pathSig, rec.Target)
		f.pathSig = (f.pathSig << 3) ^ (rec.Target >> 2)
	case trace.Call:
		f.BTB.Update(rec.PC, rec.Target)
		f.RAS.Push(rec.PC + 4)
	default:
		f.BTB.Update(rec.PC, rec.Target)
	}
}
