package btb

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/xrand"
)

func TestBTBHitMiss(t *testing.T) {
	b := NewBTB(64, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("cold lookup hit")
	}
	b.Update(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Fatalf("lookup = %#x,%v", tgt, ok)
	}
	b.Update(0x1000, 0x3000)
	tgt, _ = b.Lookup(0x1000)
	if tgt != 0x3000 {
		t.Fatalf("target not refreshed: %#x", tgt)
	}
	if b.Lookups() != 3 || b.Misses() != 1 {
		t.Fatalf("lookups=%d misses=%d", b.Lookups(), b.Misses())
	}
}

func TestBTBEviction(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets, 2 ways
	sets := uint64(4)
	a := uint64(0x1000)
	conflict1 := a + sets*4
	conflict2 := a + 2*sets*4
	b.Update(a, 1)
	b.Update(conflict1, 2)
	b.Lookup(a) // refresh a
	b.Update(conflict2, 3)
	if _, ok := b.Lookup(conflict1); ok {
		t.Fatal("LRU victim not evicted")
	}
	if _, ok := b.Lookup(a); !ok {
		t.Fatal("MRU entry evicted")
	}
}

func TestBTBGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(0, 4) },
		func() { NewBTB(7, 2) },
		func() { NewBTB(24, 2) }, // 12 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got, _ := r.Pop(); got != 3 {
		t.Fatalf("Pop = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Fatalf("Pop = %d, want 2", got)
	}
	if r.Depth() != 0 {
		t.Fatalf("Depth = %d", r.Depth())
	}
}

func TestIBTB(t *testing.T) {
	i := NewIBTB(16)
	if _, ok := i.Lookup(5); ok {
		t.Fatal("cold lookup hit")
	}
	i.Update(5, 0x9000)
	if tgt, ok := i.Lookup(5); !ok || tgt != 0x9000 {
		t.Fatalf("lookup = %#x,%v", tgt, ok)
	}
	// Capacity bound: inserting beyond max halves the table.
	for k := uint64(0); k < 100; k++ {
		i.Update(k, k)
	}
	if len(i.entries) > 16+1 {
		t.Fatalf("IBTB grew to %d entries", len(i.entries))
	}
	if i.MissRate() <= 0 {
		t.Fatal("miss rate not tracked")
	}
}

func TestFrontendCallReturnPairing(t *testing.T) {
	f := NewFrontend()
	call := trace.Record{PC: 0x4000, Target: 0x8000, Kind: trace.Call, Taken: true}
	ret := trace.Record{PC: 0x8040, Target: 0x4004, Kind: trace.Return, Taken: true}
	f.PredictTarget(&call)
	f.UpdateTarget(&call)
	tgt, ok := f.PredictTarget(&ret)
	if !ok || tgt != 0x4004 {
		t.Fatalf("return prediction = %#x,%v want 0x4004", tgt, ok)
	}
	f.UpdateTarget(&ret)
}

func TestFrontendIndirect(t *testing.T) {
	f := NewFrontend()
	rec := trace.Record{PC: 0x5000, Target: 0x6000, Kind: trace.IndirectJump, Taken: true}
	if _, ok := f.PredictTarget(&rec); ok {
		t.Fatal("cold indirect hit")
	}
	f.UpdateTarget(&rec)
	// Same path signature state change means the next lookup uses a new
	// index; re-train once more along the same path to observe a hit.
	rec2 := trace.Record{PC: 0x5000, Target: 0x6000, Kind: trace.IndirectJump, Taken: true}
	f.PredictTarget(&rec2)
	f.UpdateTarget(&rec2)
	rec3 := trace.Record{PC: 0x5000, Target: 0x6000, Kind: trace.IndirectJump, Taken: true}
	tgt, ok := f.PredictTarget(&rec3)
	_ = tgt
	_ = ok // path-correlated: presence depends on signature; just no panic
}

func TestFrontendDirectBranch(t *testing.T) {
	f := NewFrontend()
	rec := trace.Record{PC: 0x7000, Target: 0x7100, Kind: trace.CondBranch, Taken: true}
	if _, ok := f.PredictTarget(&rec); ok {
		t.Fatal("cold BTB hit")
	}
	f.UpdateTarget(&rec)
	if tgt, ok := f.PredictTarget(&rec); !ok || tgt != 0x7100 {
		t.Fatalf("BTB prediction = %#x,%v", tgt, ok)
	}
}

func TestBTBCapacityPressure(t *testing.T) {
	b := NewBTB(128, 4)
	r := xrand.New(1)
	// Working set of 64 branches fits; 4096 thrashes.
	fit, thrash := 0.0, 0.0
	for pass := 0; pass < 2; pass++ {
		small := NewBTB(128, 4)
		for i := 0; i < 20000; i++ {
			pc := 0x1000 + uint64(r.Intn(64))*4
			if _, ok := small.Lookup(pc); !ok {
				small.Update(pc, pc+100)
			}
		}
		fit = small.MissRate()
	}
	for i := 0; i < 20000; i++ {
		pc := 0x1000 + uint64(r.Intn(4096))*4
		if _, ok := b.Lookup(pc); !ok {
			b.Update(pc, pc+100)
		}
	}
	thrash = b.MissRate()
	if fit > 0.05 {
		t.Fatalf("fitting working set missed %v", fit)
	}
	if thrash < 0.5 {
		t.Fatalf("oversized working set hit too often: %v", thrash)
	}
}

func BenchmarkBTBLookup(b *testing.B) {
	btb := NewBTB(8192, 4)
	r := xrand.New(2)
	for i := 0; i < 8192; i++ {
		btb.Update(uint64(r.Intn(1<<20)), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		btb.Lookup(uint64(i) << 2)
	}
}
