package rombf_test

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/rombf"
	"github.com/whisper-sim/whisper/internal/snaptest"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// TestSnapshotFidelity locks the bpu.Snapshotter contract for the
// ROMBF hybrid. Hinted branches route through the static hint table
// (configuration, not snapshotted state); the step mixes hinted and
// unhinted PCs so both the raw history and the wrapped predictor are
// exercised across the snapshot boundary.
func TestSnapshotFidelity(t *testing.T) {
	mono, err := formula.NewMonotone(8, 0x1F)
	if err != nil {
		t.Fatal(err)
	}
	hints := map[uint64]rombf.Hint{
		0x400000: {PC: 0x400000, N: 8, Bias: rombf.BiasTaken},
		0x400100: {PC: 0x400100, N: 8, Bias: rombf.BiasNotTaken},
		0x400200: {PC: 0x400200, N: 8, Bias: rombf.BiasNone, Mono: mono},
	}
	mk := func() bpu.Predictor {
		return rombf.NewPredictor(bpu.NewGShare(12, 10), hints, 8)
	}
	step := func(p bpu.Predictor, r *xrand.Rand, i int) {
		var pc uint64
		if r.Bool(0.25) { // hinted branch
			pc = 0x400000 + uint64(r.Intn(3))*0x100
		} else {
			pc = 0x500000 + r.Uint64n(512)*4
		}
		p.Predict(pc)
		p.Update(pc, r.Bool(0.5))
	}
	snaptest.Fidelity(t, mk, step)
}
