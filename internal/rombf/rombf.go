// Package rombf implements the Read-Once Monotone Boolean Formula branch
// prediction baseline (Jiménez, Hanson, Lin — PACT 2001), the prior
// profile-guided technique the paper evaluates as "4b-ROMBF" and
// "8b-ROMBF" (§II-D).
//
// A ROMBF hint predicts a branch by applying an AND/OR tree over the raw
// outcomes of the last N branches (N = 4 or 8), with contradiction
// (never-taken) and tautology (always-taken) as degenerate formulas.
// Training exhaustively scores all 2^(N-1) trees plus the two constants
// on the branch's profiled history histogram and keeps a hint only when
// the best formula beats the profiled predictor on the same window.
//
// Faithful to the original (pre-"hard-branch-filtering") methodology, the
// trainer considers every profiled static branch, which is also what
// makes its training time exceed Whisper's in the paper's Fig 16.
package rombf

import (
	"fmt"
	"sort"
	"time"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/profiler"
)

// Bias is a degenerate constant prediction.
type Bias uint8

// Bias values.
const (
	BiasNone     Bias = iota // use the formula
	BiasTaken                // tautology: always taken
	BiasNotTaken             // contradiction: never taken
)

// Hint is a trained ROMBF annotation for one static branch.
type Hint struct {
	PC   uint64
	N    int
	Bias Bias
	Mono formula.Monotone
	// ProfiledMisp is the formula's misprediction count on the training
	// histogram; BaselineMisp is the profiled predictor's count.
	ProfiledMisp, BaselineMisp uint64
}

// Config selects the ROMBF variant.
type Config struct {
	// N is the history length: 4 or 8 (the paper's two variants).
	N int
	// MinExecs skips branches with fewer profiled executions.
	MinExecs uint64
	// MinGainFrac and MinGainAbs set the same deployment bar Whisper
	// uses, keeping the technique comparison methodology-equal.
	MinGainFrac float64
	MinGainAbs  uint64
}

// DefaultConfig returns the 8-bit variant.
func DefaultConfig() Config { return Config{N: 8, MinExecs: 20, MinGainFrac: 0.10, MinGainAbs: 2} }

// TrainResult carries the hints and the training cost (paper Fig 16).
type TrainResult struct {
	Hints        map[uint64]Hint
	Trained      int           // branches examined
	Duration     time.Duration // wall-clock training time
	FormulaEvals uint64        // total formula scorings
}

// Train learns ROMBF hints from a profile. The profile must include the
// 8-bit raw history histograms (profiler length index 0 = length 8, whose
// fold is the identity), from which the 4-bit variant marginalizes.
func Train(p *profiler.Profile, cfg Config) (*TrainResult, error) {
	if cfg.N != 4 && cfg.N != 8 {
		return nil, fmt.Errorf("rombf: N must be 4 or 8, got %d", cfg.N)
	}
	if len(p.Lengths) == 0 || p.Lengths[0] != 8 {
		return nil, fmt.Errorf("rombf: profile must include history length 8 first (got %v)", p.Lengths)
	}
	start := time.Now()
	res := &TrainResult{Hints: make(map[uint64]Hint)}

	// Deterministic branch order.
	pcs := make([]uint64, 0, len(p.Hard))
	for pc := range p.Hard {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	for _, pc := range pcs {
		hp := p.Hard[pc]
		// Same evidence floor as Whisper's trainer: thin profiles make
		// fragile hints.
		if hp.Execs < cfg.MinExecs || hp.MeasExecs < cfg.MinExecs {
			continue
		}
		res.Trained++
		// Build the N-bit histogram from the 8-bit raw one.
		var tcnt, ntcnt [256]uint64
		mask := (1 << uint(cfg.N)) - 1
		var takenTotal, ntTotal uint64
		for h := 0; h < 256; h++ {
			tcnt[h&mask] += uint64(hp.T[0][h])
			ntcnt[h&mask] += uint64(hp.NT[0][h])
			takenTotal += uint64(hp.T[0][h])
			ntTotal += uint64(hp.NT[0][h])
		}

		// Constants first: tautology mispredicts every not-taken sample,
		// contradiction every taken one.
		best := Hint{PC: pc, N: cfg.N, Bias: BiasTaken, ProfiledMisp: ntTotal}
		if takenTotal < best.ProfiledMisp {
			best = Hint{PC: pc, N: cfg.N, Bias: BiasNotTaken, ProfiledMisp: takenTotal}
		}

		// Exhaustive scan of the 2^(N-1) monotone trees, exactly the
		// original algorithm.
		nf := formula.MonotoneFormulas(cfg.N)
		for enc := 0; enc < nf; enc++ {
			m, err := formula.NewMonotone(cfg.N, uint16(enc))
			if err != nil {
				return nil, err
			}
			var misp uint64
			for h := 0; h <= mask; h++ {
				if tcnt[h] == 0 && ntcnt[h] == 0 {
					continue
				}
				if m.Eval(uint16(h)) {
					misp += ntcnt[h]
				} else {
					misp += tcnt[h]
				}
			}
			res.FormulaEvals++
			if misp < best.ProfiledMisp {
				best = Hint{PC: pc, N: cfg.N, Bias: BiasNone, Mono: m, ProfiledMisp: misp}
			}
		}
		best.BaselineMisp = hp.Misp
		// Validate the selected candidate on the held-out half and keep
		// the hint only when it beats the profiled predictor there by
		// the deployment margin (same bar as Whisper's trainer).
		var valMisp uint64
		var vtc, vntc [256]uint64
		for h := 0; h < 256; h++ {
			vtc[h&mask] += uint64(hp.VT[0][h])
			vntc[h&mask] += uint64(hp.VNT[0][h])
		}
		for h := 0; h <= mask; h++ {
			var predTaken bool
			switch best.Bias {
			case BiasTaken:
				predTaken = true
			case BiasNotTaken:
				predTaken = false
			default:
				predTaken = best.Mono.Eval(uint16(h))
			}
			if predTaken {
				valMisp += vntc[h]
			} else {
				valMisp += vtc[h]
			}
		}
		gain := int64(hp.MispVal) - int64(valMisp)
		if gain >= int64(cfg.MinGainAbs) && float64(gain) >= cfg.MinGainFrac*float64(hp.MispVal) {
			res.Hints[pc] = best
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// Predictor is the hybrid runtime: hinted branches use their formula over
// the raw global history, everything else uses the underlying predictor.
type Predictor struct {
	under      bpu.Predictor
	underBatch bpu.BatchPredictor
	hints      map[uint64]Hint
	hist       bpu.History
	name       string

	// HintPredictions counts predictions served by hints.
	HintPredictions uint64
}

// NewPredictor wraps under with the trained hints. If the underlying
// predictor supports allocation suppression (TAGE does), hinted branches
// are excluded from its capacity up front, matching the paper's run-time
// policy of not allocating entries for hint-covered branches.
func NewPredictor(under bpu.Predictor, hints map[uint64]Hint, n int) *Predictor {
	if t, ok := under.(interface{ SuppressAllocation(uint64) }); ok {
		for pc := range hints {
			t.SuppressAllocation(pc)
		}
	}
	return &Predictor{
		under:      under,
		underBatch: bpu.Batch(under),
		hints:      hints,
		name:       fmt.Sprintf("%db-rombf+%s", n, under.Name()),
	}
}

// Name implements bpu.Predictor.
func (p *Predictor) Name() string { return p.name }

// Predict implements bpu.Predictor.
func (p *Predictor) Predict(pc uint64) bool {
	if h, ok := p.hints[pc]; ok {
		p.HintPredictions++
		switch h.Bias {
		case BiasTaken:
			return true
		case BiasNotTaken:
			return false
		default:
			return h.Mono.Eval(p.hist.Raw(h.N))
		}
	}
	return p.under.Predict(pc)
}

// Update implements bpu.Predictor. The underlying predictor is always
// updated so its history stays consistent; suppression (set up in
// NewPredictor) keeps hinted branches from consuming its capacity.
func (p *Predictor) Update(pc uint64, taken bool) {
	p.under.Update(pc, taken)
	p.hist.Push(taken)
}

// PredictUpdateBatch implements bpu.BatchPredictor by delegating
// maximal hint-free spans to the underlying predictor's batch path and
// handling hinted records individually. The hybrid's raw history is
// only read at hinted records, so pushing a span's outcomes after the
// delegated call preserves exactly the state each hint evaluation saw
// in the scalar path.
func (p *Predictor) PredictUpdateBatch(pcs []uint64, taken, miss []bool) {
	start := 0
	flush := func(end int) {
		if start < end {
			p.underBatch.PredictUpdateBatch(pcs[start:end], taken[start:end], miss[start:end])
			for k := start; k < end; k++ {
				p.hist.Push(taken[k])
			}
		}
	}
	for i, pc := range pcs {
		h, ok := p.hints[pc]
		if !ok {
			continue
		}
		flush(i)
		p.HintPredictions++
		var pred bool
		switch h.Bias {
		case BiasTaken:
			pred = true
		case BiasNotTaken:
			pred = false
		default:
			pred = h.Mono.Eval(p.hist.Raw(h.N))
		}
		miss[i] = pred != taken[i]
		// As in the scalar path, the underlying predictor trains on the
		// hinted branch too (its Update re-predicts internally to rebuild
		// metadata).
		p.under.Update(pc, taken[i])
		p.hist.Push(taken[i])
		start = i + 1
	}
	flush(len(pcs))
}
