package rombf

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// profileOf collects a ROMBF-style profile (every branch, length 8 first).
func profileOf(t *testing.T, mk func() trace.Stream) *profiler.Profile {
	t.Helper()
	opt := profiler.Options{
		Lengths:  []int{8},
		MinExecs: 8,
		MinMisp:  1,
		MinRate:  0.01,
		MaxHard:  0,
	}
	p, err := profiler.Collect(mk, tage.New(tage.DefaultConfig()), opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// monoStream emits four random driver branches then a target whose
// outcome is (b0&b1)|(b2&b3) over the last four outcomes: balanced
// (P≈0.44, so a bimodal predictor is poor) and exactly representable as a
// 4-leaf read-once monotone tree.
func monoStream(n int) trace.Stream {
	r := xrand.New(11)
	var recs []trace.Record
	var d [4]bool
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			d[j] = r.Bool(0.5)
			recs = append(recs, trace.Record{
				PC: 0x1000 + uint64(j)*64, Kind: trace.CondBranch, Taken: d[j], Instrs: 3,
			})
		}
		// History order: b0 = most recent = d[3].
		want := (d[3] && d[2]) || (d[1] && d[0])
		recs = append(recs, trace.Record{PC: 0x2000, Kind: trace.CondBranch, Taken: want, Instrs: 3})
	}
	return trace.NewSliceStream(recs)
}

func TestTrainValidation(t *testing.T) {
	p := &profiler.Profile{Lengths: []int{16}}
	if _, err := Train(p, Config{N: 8}); err == nil {
		t.Fatal("wrong first length accepted")
	}
	p2 := &profiler.Profile{Lengths: []int{8}}
	if _, err := Train(p2, Config{N: 5}); err == nil {
		t.Fatal("N=5 accepted")
	}
}

func TestTrainLearnsMonotoneBranch(t *testing.T) {
	// Profile under a weak bimodal predictor so the history-correlated
	// branch registers as hard and ROMBF has something to beat.
	opt := profiler.Options{Lengths: []int{8}, MinExecs: 8, MinMisp: 1, MinRate: 0.01}
	p, err0 := profiler.Collect(func() trace.Stream { return monoStream(4000) },
		bpu.NewBimodal(12), opt)
	if err0 != nil {
		t.Fatal(err0)
	}
	res, err := Train(p, Config{N: 4, MinExecs: 16})
	if err != nil {
		t.Fatal(err)
	}
	h, ok := res.Hints[0x2000]
	if !ok {
		// The target branch may already be predicted well by TAGE; in
		// that case no hint is kept. Verify at least that training saw
		// it, then force-check the formula path by lowering the bar.
		if _, profiled := p.Hard[0x2000]; !profiled {
			t.Fatal("target branch not profiled")
		}
		t.Skip("TAGE already predicts the monotone branch; no hint needed")
	}
	if h.Bias != BiasNone {
		t.Fatalf("expected formula hint, got bias %d", h.Bias)
	}
	// The learned formula must match AND over all-ones contexts observed.
	if !h.Mono.Eval(0xF) {
		t.Fatal("learned formula rejects all-taken history")
	}
	if h.ProfiledMisp >= h.BaselineMisp {
		t.Fatal("hint kept despite not beating baseline")
	}
}

func TestTrainPrefersConstantForBiasedBranch(t *testing.T) {
	// A branch taken 99% of the time with random history correlation:
	// the tautology beats any formula fitting noise.
	r := xrand.New(12)
	var recs []trace.Record
	for i := 0; i < 3000; i++ {
		recs = append(recs, trace.Record{PC: 0x3000, Kind: trace.CondBranch, Taken: r.Bool(0.99), Instrs: 2})
		recs = append(recs, trace.Record{PC: 0x3100, Kind: trace.CondBranch, Taken: r.Bool(0.5), Instrs: 2})
	}
	p := profileOf(t, func() trace.Stream {
		return trace.NewSliceStream(recs)
	})
	res, err := Train(p, Config{N: 8, MinExecs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := res.Hints[0x3000]; ok && h.Bias == BiasNotTaken {
		t.Fatal("biased-taken branch got a never-taken hint")
	}
}

func TestHintOnlyKeptWhenBeatingBaseline(t *testing.T) {
	app := workload.DataCenterApp("kafka")
	p := profileOf(t, func() trace.Stream { return app.Stream(0, 40000) })
	res, err := Train(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for pc, h := range res.Hints {
		if h.ProfiledMisp >= h.BaselineMisp {
			t.Fatalf("hint for %#x does not beat baseline: %d >= %d",
				pc, h.ProfiledMisp, h.BaselineMisp)
		}
	}
	if res.Trained == 0 {
		t.Fatal("nothing trained")
	}
	if res.Duration <= 0 {
		t.Fatal("duration not measured")
	}
	if res.FormulaEvals == 0 {
		t.Fatal("no formulas evaluated")
	}
}

func TestPredictorReducesMispredictions(t *testing.T) {
	app := workload.DataCenterApp("mysql")
	mk := func() trace.Stream { return app.Stream(0, 80000) }
	p := profileOf(t, mk)
	res, err := Train(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	score := func(pred bpu.Predictor) uint64 {
		s := mk()
		var rec trace.Record
		var misp uint64
		for s.Next(&rec) {
			if rec.Kind != trace.CondBranch {
				continue
			}
			if pred.Predict(rec.PC) != rec.Taken {
				misp++
			}
			pred.Update(rec.PC, rec.Taken)
		}
		return misp
	}
	base := score(tage.New(tage.DefaultConfig()))
	hybrid := score(NewPredictor(tage.New(tage.DefaultConfig()), res.Hints, 8))
	if hybrid >= base {
		t.Fatalf("ROMBF hybrid (%d misp) not better than baseline (%d)", hybrid, base)
	}
	t.Logf("baseline %d, rombf %d (reduction %.1f%%)", base, hybrid,
		100*float64(base-hybrid)/float64(base))
}

func TestPredictorCountsHintUse(t *testing.T) {
	hints := map[uint64]Hint{
		0x5000: {PC: 0x5000, N: 8, Bias: BiasTaken},
	}
	p := NewPredictor(tage.New(tage.DefaultConfig()), hints, 8)
	if !p.Predict(0x5000) {
		t.Fatal("always-taken hint mispredicted")
	}
	p.Update(0x5000, true)
	p.Predict(0x6000)
	p.Update(0x6000, false)
	if p.HintPredictions != 1 {
		t.Fatalf("HintPredictions = %d", p.HintPredictions)
	}
}

func TestPredictorNeverTakenBias(t *testing.T) {
	hints := map[uint64]Hint{0x5000: {PC: 0x5000, N: 4, Bias: BiasNotTaken}}
	p := NewPredictor(&bpu.Static{Taken: true}, hints, 4)
	if p.Predict(0x5000) {
		t.Fatal("never-taken hint predicted taken")
	}
	if !p.Predict(0x7777) {
		t.Fatal("fallthrough to underlying predictor failed")
	}
}

func TestFourBitUsesFewerContexts(t *testing.T) {
	app := workload.DataCenterApp("kafka")
	p := profileOf(t, func() trace.Stream { return app.Stream(0, 40000) })
	r4, err := Train(p, Config{N: 4, MinExecs: 16})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Train(p, Config{N: 8, MinExecs: 16})
	if err != nil {
		t.Fatal(err)
	}
	// The 8-bit variant explores 16x the formulas of the 4-bit variant.
	if r8.FormulaEvals <= r4.FormulaEvals {
		t.Fatalf("formula counts: 8b=%d 4b=%d", r8.FormulaEvals, r4.FormulaEvals)
	}
}
