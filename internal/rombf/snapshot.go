package rombf

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/snap"
)

const snapVersion = 1

// Snapshot implements bpu.Snapshotter. The hint table is
// construction-time configuration and not encoded; the mutable state is
// the raw history, the hint-prediction counter, and the underlying
// predictor's state (which must itself be a Snapshotter).
func (p *Predictor) Snapshot() []byte {
	under, ok := p.under.(bpu.Snapshotter)
	if !ok {
		panic(fmt.Sprintf("rombf: underlying predictor %s is not a Snapshotter", p.under.Name()))
	}
	var b []byte
	b = bpu.AppendHistory(b, &p.hist)
	b = snap.U64(b, p.HintPredictions)
	us := under.Snapshot()
	b = snap.U32(b, uint32(len(us)))
	b = append(b, us...)
	return snap.Seal(snap.KindROMBF, snapVersion, b)
}

// Restore implements bpu.Snapshotter. The receiver must wrap the same
// hints and an identically configured underlying predictor.
func (p *Predictor) Restore(s []byte) error {
	under, ok := p.under.(bpu.Snapshotter)
	if !ok {
		return fmt.Errorf("rombf: underlying predictor %s is not a Snapshotter", p.under.Name())
	}
	payload, err := snap.Open(snap.KindROMBF, snapVersion, s)
	if err != nil {
		return err
	}
	r := snap.NewReader(payload)
	bpu.ReadHistory(r, &p.hist)
	hp := r.U64()
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	us := make([]byte, n)
	for i := range us {
		us[i] = r.U8()
	}
	if err := r.Done(); err != nil {
		return err
	}
	if err := under.Restore(us); err != nil {
		return err
	}
	p.HintPredictions = hp
	return nil
}
