package server

import (
	"sort"

	"github.com/whisper-sim/whisper/internal/profiler"
)

// Drift quantifies how far a tenant's recent behaviour has moved from
// the profile its live bundle was trained on. It is the complement of
// the dynamic branch-overlap metric of the cross-workload transfer
// study ("Workload Characterization for Branch Predictability",
// PAPERS.md): the histogram intersection of the two profiles'
// normalized conditional-branch execution frequencies. The
// hint-staleness study (docs/staleness.md) shows MPKI recovers when
// retraining follows the workload's phase changes; overlap is the
// online signal for exactly those changes — two windows dominated by
// the same branches at the same frequencies overlap near 1 (drift near
// 0), while a phase change or workload swap collapses the overlap.
//
// drift(trained, window) = 1 - Σ_pc min(fT(pc), fW(pc))
//
// where f is each profile's per-PC share of dynamic conditional
// executions. The sum runs over the sorted PC intersection so float
// accumulation order — and therefore the value — is identical across
// runs, the same determinism contract the transfer study keeps.
func Drift(trained, window *profiler.Profile) float64 {
	d := 1 - dynamicOverlap(trained, window)
	// Float accumulation can push the overlap of two identical profiles
	// a few ulps past 1; clamp so callers can rely on [0, 1].
	return max(0, min(1, d))
}

// dynamicOverlap is the histogram intersection of the two profiles'
// normalized branch execution frequencies, in [0, 1]. Profiles without
// any conditional executions overlap with nothing.
func dynamicOverlap(a, b *profiler.Profile) float64 {
	if a == nil || b == nil || a.CondExecs == 0 || b.CondExecs == 0 {
		return 0
	}
	var pcs []uint64
	for pc := range a.Stats {
		if _, ok := b.Stats[pc]; ok {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	sum := 0.0
	for _, pc := range pcs {
		fa := float64(a.Stats[pc].Execs) / float64(a.CondExecs)
		fb := float64(b.Stats[pc].Execs) / float64(b.CondExecs)
		sum += min(fa, fb)
	}
	return sum
}
