package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
	"github.com/whisper-sim/whisper/internal/workload"
)

// testConfig is the fast-test daemon shape: tiny windows, a threshold
// the measured cross-app drift (≈0.98) clears but same-app input drift
// at these sizes (≈0.6) does not thrash excessively against.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Dir:               t.TempDir(),
		DriftThreshold:    0.9,
		MinRetrainRecords: 1000,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// appRecords draws one shard from the workload catalog.
func appRecords(t testing.TB, app string, input, n int) []trace.Record {
	t.Helper()
	a := workload.AppByName(app)
	if a == nil {
		t.Fatalf("unknown app %q", app)
	}
	st := a.Stream(input%a.Inputs(), n)
	var recs []trace.Record
	var rec trace.Record
	for st.Next(&rec) {
		recs = append(recs, rec)
	}
	return recs
}

func encodeShard(t testing.TB, recs []trace.Record, f traceio.Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := traceio.WriteAll(&buf, f, recs); err != nil {
		t.Fatalf("encoding shard: %v", err)
	}
	return buf.Bytes()
}

// postShard uploads a shard and decodes the response, asserting status.
func postShard(t *testing.T, ts *httptest.Server, tenant string, body []byte, wantStatus int) *ShardResponse {
	t.Helper()
	resp, err := ts.Client().Post(
		ts.URL+"/v1/tenants/"+tenant+"/shards", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST shard: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST shard: got %s want %d: %s", resp.Status, wantStatus, data)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var sr ShardResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("decoding shard response: %v", err)
	}
	return &sr
}

// getBundle fetches the bundle with an optional If-None-Match tag.
func getBundle(t *testing.T, ts *httptest.Server, tenant, inm string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/tenants/"+tenant+"/bundle", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET bundle: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

// TestServeEndToEnd is the acceptance pin for the daemon: streamed
// shards drift-trigger a retrain with a new bundle version, a client
// hot-reloads it via ETag polling, and the reloaded bundle — bytes and
// post-reload simulated MPKI — matches the offline profile→train→apply
// pipeline run on the same records.
func TestServeEndToEnd(t *testing.T) {
	const shardLen = 20000
	cfg := testConfig(t)
	_, ts := newTestServer(t, cfg)

	// Shard 1 (clang): first shard always trains v1.
	clang0 := appRecords(t, "clang", 0, shardLen)
	sr1 := postShard(t, ts, "edge", encodeShard(t, clang0, traceio.FormatBinary), http.StatusOK)
	if !sr1.Retrained || sr1.BundleVersion != 1 || sr1.ETag == "" {
		t.Fatalf("first shard: want retrain to v1 with etag, got %+v", sr1)
	}

	// Client hot-reload round 1.
	resp, body1 := getBundle(t, ts, "edge", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET bundle: %s", resp.Status)
	}
	etag1 := resp.Header.Get("ETag")
	if etag1 != `"`+sr1.ETag+`"` {
		t.Fatalf("ETag header %q does not match ingest etag %q", etag1, sr1.ETag)
	}
	if v := resp.Header.Get("X-Whisper-Bundle-Version"); v != "1" {
		t.Fatalf("bundle version header = %q, want 1", v)
	}

	// Unchanged fingerprint ⇒ 304, no bytes.
	resp, data := getBundle(t, ts, "edge", etag1)
	if resp.StatusCode != http.StatusNotModified || len(data) != 0 {
		t.Fatalf("conditional GET: got %s with %d bytes, want 304 empty", resp.Status, len(data))
	}

	// Shard 2 (python): the workload changed; measured drift ≈0.99
	// crosses the threshold once the window holds MinRetrainRecords.
	python0 := appRecords(t, "python", 0, shardLen)
	sr2 := postShard(t, ts, "edge", encodeShard(t, python0, traceio.FormatBinary), http.StatusOK)
	if sr2.Drift <= cfg.DriftThreshold {
		t.Fatalf("cross-app drift = %v, want > %v", sr2.Drift, cfg.DriftThreshold)
	}
	if !sr2.Retrained || sr2.BundleVersion != 2 {
		t.Fatalf("drifted shard: want retrain to v2, got %+v", sr2)
	}
	if sr2.ETag == sr1.ETag {
		t.Fatal("retrained bundle kept the old fingerprint")
	}

	// Changed fingerprint ⇒ 200 with new bytes under the stale tag.
	resp, body2 := getBundle(t, ts, "edge", etag1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after retrain: %s, want 200", resp.Status)
	}
	if bytes.Equal(body1, body2) {
		t.Fatal("bundle bytes unchanged across retrain")
	}
	etag2 := resp.Header.Get("ETag")
	if resp, _ := getBundle(t, ts, "edge", etag2); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET v2: %s, want 304", resp.Status)
	}

	// Offline parity. v2 trained on the window accumulated since v1:
	// exactly shard 2. Rebuild it with the offline pipeline.
	bopt := sim.DefaultBuildOptions()
	bopt.Records = shardLen
	prof, err := sim.ProfileTrace(python0, bopt)
	if err != nil {
		t.Fatalf("offline profile: %v", err)
	}
	tr, err := core.Train(prof, core.DefaultParams())
	if err != nil {
		t.Fatalf("offline train: %v", err)
	}
	// The daemon serves duration-free bundles (content-pure bytes).
	tr.Duration = 0
	offline := &store.Artifact{
		Meta: store.Meta{
			App:     "tenant:edge",
			Records: shardLen,
			Key:     "serve:edge:v2",
		},
		Train:        tr,
		WindowInstrs: prof.Instrs,
	}
	offlineBytes, err := store.Encode(offline)
	if err != nil {
		t.Fatalf("offline encode: %v", err)
	}
	if !bytes.Equal(offlineBytes, body2) {
		t.Fatalf("served bundle (%d bytes) is not bit-identical to the offline pipeline's (%d bytes)",
			len(body2), len(offlineBytes))
	}

	// And the simulated outcome a client gets after hot-reloading the
	// served bundle matches offline apply on the same records.
	served, err := store.Decode(body2)
	if err != nil {
		t.Fatalf("decoding served bundle: %v", err)
	}
	popt := pipeline.Options{}
	servedRes, _ := sim.AssembleTraceHints(python0, served.Train, served.WindowInstrs, bopt).
		RunWhisperTrace(python0, sim.Tage64KB, popt)
	offlineRes, _ := sim.AssembleTraceHints(python0, tr, prof.Instrs, bopt).
		RunWhisperTrace(python0, sim.Tage64KB, popt)
	if got, want := math.Round(servedRes.MPKI()*1e4), math.Round(offlineRes.MPKI()*1e4); got != want {
		t.Fatalf("post-reload MPKI %.4f != offline MPKI %.4f", servedRes.MPKI(), offlineRes.MPKI())
	}
	base := sim.RunTrace(python0, sim.Tage64KB(), popt)
	if servedRes.MPKI() > base.MPKI() {
		t.Errorf("served hints raised MPKI: %.4f > baseline %.4f", servedRes.MPKI(), base.MPKI())
	}
}

// TestSameAppInputChangeDoesNotRetrain pins the drift policy's other
// half: a new input of the same application stays under the threshold.
func TestSameAppInputChangeDoesNotRetrain(t *testing.T) {
	const shardLen = 20000
	cfg := testConfig(t)
	cfg.DriftThreshold = 0.5
	_, ts := newTestServer(t, cfg)
	body := encodeShard(t, appRecords(t, "clang", 0, shardLen), traceio.FormatBinary)
	postShard(t, ts, "web", body, http.StatusOK)
	sr := postShard(t, ts, "web",
		encodeShard(t, appRecords(t, "clang", 1, shardLen), traceio.FormatBinary), http.StatusOK)
	if sr.Retrained {
		t.Fatalf("same-app input change retrained (drift %v)", sr.Drift)
	}
	if sr.Drift <= 0 || sr.Drift >= cfg.DriftThreshold {
		t.Fatalf("same-app drift = %v, want in (0, %v)", sr.Drift, cfg.DriftThreshold)
	}
	if sr.BundleVersion != 1 {
		t.Fatalf("bundle version = %d, want 1 (unchanged)", sr.BundleVersion)
	}
}

// TestWindowAccumulatesAcrossShards checks shards merge until the
// retrain bar, then the window resets.
func TestWindowAccumulatesAcrossShards(t *testing.T) {
	cfg := testConfig(t)
	cfg.MinRetrainRecords = 5000
	_, ts := newTestServer(t, cfg)
	// Shard 1 trains v1 on 2000 records and resets the window.
	sr := postShard(t, ts, "acc",
		encodeShard(t, appRecords(t, "kafka", 0, 2000), traceio.FormatBinary), http.StatusOK)
	if !sr.Retrained || sr.WindowRecords != 2000 {
		t.Fatalf("first shard: %+v", sr)
	}
	// The next drifted shard is under MinRetrainRecords: no retrain,
	// window accumulates.
	sr = postShard(t, ts, "acc",
		encodeShard(t, appRecords(t, "python", 0, 2000), traceio.FormatBinary), http.StatusOK)
	if sr.Retrained || sr.WindowRecords != 2000 {
		t.Fatalf("under-min shard: %+v", sr)
	}
	// Crossing the bar with drift still high retrains on the merged
	// 4000-record window.
	sr = postShard(t, ts, "acc",
		encodeShard(t, appRecords(t, "python", 1, 3500), traceio.FormatBinary), http.StatusOK)
	if !sr.Retrained || sr.BundleVersion != 2 {
		t.Fatalf("over-min drifted shard: %+v", sr)
	}
	if sr.WindowRecords != 5500 {
		t.Fatalf("window at retrain = %d records, want 5500", sr.WindowRecords)
	}
}

func TestShardFormatsAndQueryParam(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	recs := appRecords(t, "kafka", 0, 1500)
	for _, tc := range []struct {
		format traceio.Format
		query  string
	}{
		{traceio.FormatText, ""},        // sniffed
		{traceio.FormatBinary, ""},      // sniffed
		{traceio.FormatText, "?format=text"},
		{traceio.FormatBinary, "?format=binary"},
	} {
		resp, err := ts.Client().Post(
			ts.URL+"/v1/tenants/fmt/shards"+tc.query, "application/octet-stream",
			bytes.NewReader(encodeShard(t, recs, tc.format)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s upload (%q): %s", tc.format, tc.query, resp.Status)
		}
	}
	// A format the daemon does not know is rejected up front.
	resp, err := ts.Client().Post(ts.URL+"/v1/tenants/fmt/shards?format=protobuf",
		"application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %s, want 400", resp.Status)
	}
}

func TestShardRejections(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBodyBytes = 512
	_, ts := newTestServer(t, cfg)

	// Oversized shard → 413.
	big := encodeShard(t, appRecords(t, "kafka", 0, 4000), traceio.FormatBinary)
	if len(big) <= 512 {
		t.Fatalf("test shard too small to trip the limit: %d bytes", len(big))
	}
	postShard(t, ts, "rej", big, http.StatusRequestEntityTooLarge)

	// Empty window → 400 with the typed message.
	resp, err := ts.Client().Post(ts.URL+"/v1/tenants/rej/shards?format=text",
		"text/plain", strings.NewReader("# comment only\n"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "contains no records") {
		t.Fatalf("empty shard: %s %s", resp.Status, data)
	}

	// Corrupt binary → 400.
	postShard(t, ts, "rej", []byte("WSPT\xff\xff\xff\xff"), http.StatusBadRequest)

	// Invalid tenant ids → 400.
	for _, id := range []string{"no*stars", strings.Repeat("x", 65), "sp ace"} {
		postShard(t, ts, id, big[:100], http.StatusBadRequest)
	}
}

func TestAdmissionControl(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxInflight = 1
	s, ts := newTestServer(t, cfg)

	// Occupy the tenant's only slot directly, then observe load shed.
	tn, _ := s.tenantFor("busy", true)
	tn.sem <- struct{}{}
	body := encodeShard(t, appRecords(t, "kafka", 0, 1500), traceio.FormatBinary)
	resp, err := ts.Client().Post(ts.URL+"/v1/tenants/busy/shards",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("busy tenant: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Other tenants are unaffected — admission is per tenant.
	postShard(t, ts, "idle", body, http.StatusOK)
	// Releasing the slot readmits.
	<-tn.sem
	postShard(t, ts, "busy", body, http.StatusOK)
}

func TestMaxTenants(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxTenants = 1
	_, ts := newTestServer(t, cfg)
	body := encodeShard(t, appRecords(t, "kafka", 0, 1500), traceio.FormatBinary)
	postShard(t, ts, "first", body, http.StatusOK)
	postShard(t, ts, "second", body, http.StatusTooManyRequests)
	// The admitted tenant keeps working.
	postShard(t, ts, "first", body, http.StatusOK)
}

func TestUnknownTenantAndBundle(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	if resp, _ := getBundle(t, ts, "ghost", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant bundle: %d, want 404", resp.StatusCode)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/tenants/ghost")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status: %s, want 404", resp.Status)
	}
}

func TestTenantListingAndStatus(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	body := encodeShard(t, appRecords(t, "kafka", 0, 1500), traceio.FormatBinary)
	postShard(t, ts, "bravo", body, http.StatusOK)
	postShard(t, ts, "alpha", body, http.StatusOK)

	resp, err := ts.Client().Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "alpha" || got[1].ID != "bravo" {
		t.Fatalf("listing = %+v, want [alpha bravo]", got)
	}
	for _, st := range got {
		if st.Shards != 1 || st.Retrains != 1 || st.BundleVersion != 1 || st.BundleETag == "" {
			t.Fatalf("tenant status %+v", st)
		}
	}
}

// TestBundleCacheFallsBackToDisk evicts the bundle from the LRU and
// checks a GET still serves the identical bytes from the artifact file.
func TestBundleCacheFallsBackToDisk(t *testing.T) {
	cfg := testConfig(t)
	cfg.BundleCacheEntries = 1
	s, ts := newTestServer(t, cfg)
	body := encodeShard(t, appRecords(t, "kafka", 0, 1500), traceio.FormatBinary)
	sr := postShard(t, ts, "cache", body, http.StatusOK)
	_, cached1 := getBundle(t, ts, "cache", "")

	// Push the tenant's bundle out of the single-entry cache.
	s.bundles.put("unrelated", []byte{1})
	if _, ok := s.bundles.get(sr.ETag); ok {
		t.Fatal("bundle still cached after eviction")
	}
	resp, fromDisk := getBundle(t, ts, "cache", "")
	if resp.StatusCode != http.StatusOK || !bytes.Equal(cached1, fromDisk) {
		t.Fatalf("disk fallback: %s, bytes equal=%v", resp.Status, bytes.Equal(cached1, fromDisk))
	}
	// And the read re-primed the cache.
	if _, ok := s.bundles.get(sr.ETag); !ok {
		t.Fatal("disk read did not re-prime the cache")
	}
}

func TestETagMatching(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{"", false},
		{"*", true},
		{`"abc"`, true},
		{`W/"abc"`, true},
		{`"zzz", "abc"`, true},
		{`"zzz" , W/"abc"`, true},
		{`"zzz"`, false},
		{`abc`, true},
	} {
		if got := matchesETag(tc.header, "abc"); got != tc.want {
			t.Errorf("matchesETag(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, testConfig(t))
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
}

// TestGracefulShutdown starts the real listener, parks a request whose
// body trickles in, and checks Shutdown lets it finish while refusing
// new connections.
func TestGracefulShutdown(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ListenAndServe("127.0.0.1:0", func(a net.Addr) { addrCh <- a }) }()
	addr := (<-addrCh).String()

	body := encodeShard(t, appRecords(t, "kafka", 0, 1500), traceio.FormatBinary)
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/tenants/slow/shards", "application/octet-stream", pr)
		if err != nil {
			inflight <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode}
	}()
	// First half of the shard, then shut down mid-request.
	if _, err := pw.Write(body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight upload, not kill it.
	time.Sleep(50 * time.Millisecond)
	if _, err := pw.Write(body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-inflight
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: status=%d err=%v", res.status, res.err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("NewServer accepted empty Dir")
	}
	s, err := NewServer(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Params != core.DefaultParams() {
		t.Fatal("zero Params not defaulted")
	}
	if s.cfg.DriftThreshold != 0.5 || s.cfg.MinRetrainRecords != 20000 {
		t.Fatalf("drift defaults: %v/%d", s.cfg.DriftThreshold, s.cfg.MinRetrainRecords)
	}
}

func TestDriftProperties(t *testing.T) {
	mk := func(pcs map[uint64]uint64) *profiler.Profile {
		p := &profiler.Profile{Stats: map[uint64]*profiler.BranchStats{}}
		for pc, execs := range pcs {
			p.Stats[pc] = &profiler.BranchStats{Execs: execs}
			p.CondExecs += execs
		}
		return p
	}
	a := mk(map[uint64]uint64{1: 50, 2: 50})
	if d := Drift(a, a); d != 0 {
		t.Fatalf("self drift = %v, want 0", d)
	}
	b := mk(map[uint64]uint64{3: 100})
	if d := Drift(a, b); d != 1 {
		t.Fatalf("disjoint drift = %v, want 1", d)
	}
	half := mk(map[uint64]uint64{1: 50, 3: 50})
	if d := Drift(a, half); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("half-overlap drift = %v, want 0.5", d)
	}
	if d := Drift(a, half); d != Drift(half, a) {
		t.Fatal("drift is not symmetric")
	}
	if d := Drift(nil, a); d != 1 {
		t.Fatalf("nil drift = %v, want 1", d)
	}
}
