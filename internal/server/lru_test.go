package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestBundleCacheEviction(t *testing.T) {
	c := newBundleCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	// Touch a so b is the LRU victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction past capacity")
	}
	if got, ok := c.get("a"); !ok || !bytes.Equal(got, []byte("A")) {
		t.Fatal("a evicted out of LRU order")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	hits, misses, entries := c.stats()
	if entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}

func TestBundleCacheRefresh(t *testing.T) {
	c := newBundleCache(1)
	c.put("a", []byte("old"))
	c.put("a", []byte("new"))
	got, ok := c.get("a")
	if !ok || string(got) != "new" {
		t.Fatalf("refresh: got %q ok=%v", got, ok)
	}
	if _, _, entries := c.stats(); entries != 1 {
		t.Fatal("refresh duplicated the entry")
	}
}

func TestBundleCacheDisabled(t *testing.T) {
	c := newBundleCache(0)
	c.put("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestBundleCacheConcurrent(t *testing.T) {
	c := newBundleCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.put(key, []byte(key))
				if data, ok := c.get(key); ok && string(data) != key {
					t.Errorf("key %s returned %q", key, data)
				}
			}
		}(g)
	}
	wg.Wait()
}
