package server

import (
	"container/list"
	"sync"
)

// bundleCache is a size-bounded LRU over encoded bundle bytes, keyed by
// content fingerprint (the bundle ETag). The artifact directory is the
// durable tier underneath it: a cache miss re-reads the bundle file, so
// the cache bounds memory, never availability. Entries are immutable
// (content-addressed), which is what makes handing the cached slice to
// concurrent responses safe.
type bundleCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

// newBundleCache builds a cache holding at most capacity bundles
// (capacity <= 0 disables caching; every get is a miss).
func newBundleCache(capacity int) *bundleCache {
	return &bundleCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key, promoting the entry to
// most-recently-used.
func (c *bundleCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put inserts (or refreshes) key, evicting from the least-recently-used
// end until the capacity bound holds.
func (c *bundleCache) put(key string, data []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters and the live entry count.
func (c *bundleCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
