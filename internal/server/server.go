// Package server is the Whisper hint daemon: a multi-tenant HTTP
// service that ingests streamed branch-trace shards, maintains a
// rolling profile per tenant, retrains when the profile drifts from the
// one the live bundle was trained on, and serves the resulting WSPA
// bundles with content-fingerprint ETags so fleets of clients can poll
// cheaply (If-None-Match → 304) and hot-reload only real changes.
//
// The pipeline behind each endpoint is exactly the offline one —
// sim.ProfileTrace → profiler.Merge → core.Train → store.Encode — so a
// bundle fetched from the daemon is bit-identical to one built by
// `whisper profile && whisper train` on the same shards (the end-to-end
// test in this package pins that parity, MPKI included). The drift
// trigger is the dynamic-overlap complement from the cross-workload
// transfer study; see Drift.
//
// See docs/serving.md for the endpoint contract, versioning and ETag
// semantics, the retrain policy, and the ops runbook.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/traceio"
)

// Config parameterizes a Server. The zero value is usable after
// NewServer fills defaults; only Dir is required.
type Config struct {
	// Dir is the artifact directory where every bundle version is
	// persisted as a WSPA file (bundle-<tenant>-v<N>-<etag12>.wspa).
	Dir string
	// Params are the training parameters (core.DefaultParams when zero).
	Params core.Params
	// DriftThreshold is the Drift value above which an accumulated
	// window forces retraining. The default 0.50 separates the two
	// regimes measured on the workload catalog at ~20k-record windows:
	// a new input of the same application drifts ≈0.35 (hints still
	// valid — the staleness study shows same-app hints transfer), while
	// an application or phase change drifts ≥0.97.
	DriftThreshold float64
	// MinRetrainRecords is the minimum window size (trace records since
	// the last training) before drift may trigger a retrain, so one
	// unrepresentative micro-shard cannot thrash the trainer: small
	// windows read as drifted from sampling noise alone (a 4k-record
	// window of the same app drifts ≈0.6). Default 20000.
	MinRetrainRecords int
	// MaxInflight bounds concurrently processed shard ingests per
	// tenant; excess requests get 429 (default 2).
	MaxInflight int
	// MaxBodyBytes bounds a shard upload's size; larger bodies get 413
	// (default 64 MiB).
	MaxBodyBytes int64
	// MaxTenants bounds the tenant table; creating more gets 429
	// (default 256).
	MaxTenants int
	// RequestTimeout bounds each request's handler time (default 60s;
	// <0 disables).
	RequestTimeout time.Duration
	// BundleCacheEntries sizes the in-memory bundle LRU (default 32;
	// <0 disables caching — every GET reads the artifact file).
	BundleCacheEntries int
	// Journal, when non-nil, receives a unit line per retrain. The
	// caller owns the manifest/snapshot framing.
	Journal *telemetry.Journal
}

// Server is the daemon. Construct with NewServer, mount via Handler
// (httptest) or run with ListenAndServe/Shutdown.
type Server struct {
	cfg     Config
	bundles *bundleCache

	mu      sync.Mutex
	tenants map[string]*tenant

	httpSrv *http.Server
}

// NewServer validates cfg, fills defaults, and creates the artifact
// directory.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams()
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 0.50
	}
	if cfg.MinRetrainRecords == 0 {
		cfg.MinRetrainRecords = 20000
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 2
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.MaxTenants == 0 {
		cfg.MaxTenants = 256
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.BundleCacheEntries == 0 {
		cfg.BundleCacheEntries = 32
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating artifact dir: %w", err)
	}
	return &Server{
		cfg:     cfg,
		bundles: newBundleCache(cfg.BundleCacheEntries),
		tenants: make(map[string]*tenant),
	}, nil
}

func (s *Server) reg() *telemetry.Registry { return telemetry.Default() }

// counter is the nil-tolerant lookup used on hot paths (same pattern as
// internal/store).
func counter(r *telemetry.Registry, name string) *telemetry.Counter { return r.Counter(name) }

// tenantGauge returns the per-tenant gauge whisper_server_tenant_<what>
// labelled with the tenant id.
func (s *Server) tenantGauge(id, what string) *telemetry.Gauge {
	return s.reg().Gauge(fmt.Sprintf("whisper_server_tenant_%s{tenant=%q}", what, id))
}

// contentFingerprint is the bundle ETag: hex SHA-256 of the encoded
// artifact bytes. Strong — byte-identical bundles fingerprint equal.
func contentFingerprint(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validTenantID enforces the id charset ([A-Za-z0-9._-], 1..64). Ids
// appear in bundle filenames, so the charset doubles as path safety.
func validTenantID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantFor returns the named tenant, creating it if the table has
// room. The bool reports whether the tenant exists (or was created).
func (s *Server) tenantFor(id string, create bool) (*tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if ok {
		return t, true
	}
	if !create || len(s.tenants) >= s.cfg.MaxTenants {
		return nil, false
	}
	t = &tenant{id: id, sem: make(chan struct{}, s.cfg.MaxInflight)}
	s.tenants[id] = t
	s.reg().Gauge("whisper_server_tenants").Set(int64(len(s.tenants)))
	return t, true
}

// snapshot returns every tenant's status sorted by id.
func (s *Server) snapshot() []TenantStatus {
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	out := make([]TenantStatus, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, t.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, r *telemetry.Registry, code int, reason, msg string) {
	counter(r, fmt.Sprintf("whisper_server_errors_total{reason=%q}", reason)).Inc()
	writeJSON(w, code, errorBody{Error: msg})
}

// Handler returns the daemon's full route set, wrapped in the request
// timeout. Mountable directly under httptest.NewServer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{tenant}/shards", s.handleShard)
	mux.HandleFunc("GET /v1/tenants/{tenant}/bundle", s.handleBundle)
	mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleTenant)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg().WritePrometheus(w)
	})
	var h http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	return h
}

// handleShard is POST /v1/tenants/{tenant}/shards: decode → admission →
// profile → merge → maybe retrain.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	reg := s.reg()
	counter(reg, "whisper_server_requests_total").Inc()
	id := r.PathValue("tenant")
	if !validTenantID(id) {
		writeError(w, reg, http.StatusBadRequest, "bad-tenant",
			fmt.Sprintf("invalid tenant id %q: want 1-64 chars of [A-Za-z0-9._-]", id))
		return
	}
	format := traceio.FormatAuto
	if fs := r.URL.Query().Get("format"); fs != "" {
		var err error
		if format, err = traceio.ParseFormat(fs); err != nil {
			writeError(w, reg, http.StatusBadRequest, "bad-format", err.Error())
			return
		}
	}
	t, ok := s.tenantFor(id, true)
	if !ok {
		writeError(w, reg, http.StatusTooManyRequests, "tenant-table-full",
			fmt.Sprintf("tenant table full (%d tenants)", s.cfg.MaxTenants))
		return
	}
	// Per-tenant admission: never queue more decodes than MaxInflight.
	select {
	case t.sem <- struct{}{}:
		defer func() { <-t.sem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, reg, http.StatusTooManyRequests, "tenant-busy",
			fmt.Sprintf("tenant %s has %d shards in flight; retry later", id, s.cfg.MaxInflight))
		return
	}

	// Read the body before decoding so the size limit surfaces as 413
	// rather than as a decoder truncation error.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, reg, http.StatusRequestEntityTooLarge, "shard-too-large",
				fmt.Sprintf("shard exceeds the %d-byte limit", s.cfg.MaxBodyBytes))
			return
		}
		writeError(w, reg, http.StatusBadRequest, "bad-body",
			fmt.Sprintf("reading shard body: %v", err))
		return
	}
	recs, _, err := traceio.ReadAll(bytes.NewReader(raw), format)
	if err != nil {
		writeError(w, reg, http.StatusBadRequest, "bad-shard",
			fmt.Sprintf("decoding shard: %v", err))
		return
	}
	if err := traceio.CheckRecords("", recs); err != nil {
		writeError(w, reg, http.StatusBadRequest, "useless-shard", err.Error())
		return
	}

	resp, err := s.ingest(t, recs)
	if err != nil {
		writeError(w, reg, http.StatusInternalServerError, "ingest", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBundle is GET /v1/tenants/{tenant}/bundle: serve the current
// bundle bytes with a strong ETag, honouring If-None-Match.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	reg := s.reg()
	counter(reg, "whisper_server_requests_total").Inc()
	id := r.PathValue("tenant")
	t, ok := s.tenantFor(id, false)
	if !ok {
		writeError(w, reg, http.StatusNotFound, "no-tenant",
			fmt.Sprintf("unknown tenant %q", id))
		return
	}
	t.mu.Lock()
	ref := t.bundle
	t.mu.Unlock()
	if ref == nil {
		writeError(w, reg, http.StatusNotFound, "no-bundle",
			fmt.Sprintf("tenant %s has no trained bundle yet", id))
		return
	}

	etag := `"` + ref.ETag + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Whisper-Bundle-Version", fmt.Sprint(ref.Version))
	if matchesETag(r.Header.Get("If-None-Match"), ref.ETag) {
		counter(reg, "whisper_server_bundle_not_modified_total").Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}

	data, cached := s.bundles.get(ref.ETag)
	if !cached {
		// Durable tier: the artifact file written at retrain time.
		data2, err := os.ReadFile(ref.Path)
		if err != nil {
			writeError(w, reg, http.StatusInternalServerError, "bundle-read",
				fmt.Sprintf("reading bundle v%d: %v", ref.Version, err))
			return
		}
		data = data2
		s.bundles.put(ref.ETag, data)
	}
	hits, misses, _ := s.bundles.stats()
	reg.Gauge("whisper_server_bundle_cache_hits").Set(int64(hits))
	reg.Gauge("whisper_server_bundle_cache_misses").Set(int64(misses))
	counter(reg, "whisper_server_bundle_serves_total").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// matchesETag reports whether an If-None-Match header value matches the
// bundle's strong ETag: "*", or any listed entity tag whose opaque part
// equals etag (weak prefixes compare equal under the weak comparison
// the 304 path uses).
func matchesETag(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range splitETags(header) {
		if part == etag {
			return true
		}
	}
	return false
}

// splitETags extracts the opaque tags from a comma-separated
// If-None-Match list, stripping W/ prefixes and quotes.
func splitETags(header string) []string {
	var tags []string
	for _, field := range strings.Split(header, ",") {
		field = strings.TrimSpace(field)
		field = strings.TrimPrefix(field, "W/")
		field = strings.Trim(field, `"`)
		if field != "" {
			tags = append(tags, field)
		}
	}
	return tags
}

// handleTenant is GET /v1/tenants/{tenant}.
func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	reg := s.reg()
	counter(reg, "whisper_server_requests_total").Inc()
	id := r.PathValue("tenant")
	t, ok := s.tenantFor(id, false)
	if !ok {
		writeError(w, reg, http.StatusNotFound, "no-tenant",
			fmt.Sprintf("unknown tenant %q", id))
		return
	}
	writeJSON(w, http.StatusOK, t.status())
}

// handleTenants is GET /v1/tenants.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	counter(s.reg(), "whisper_server_requests_total").Inc()
	writeJSON(w, http.StatusOK, s.snapshot())
}

// ListenAndServe binds addr and serves until Shutdown (or a listener
// error). It reports the bound address through ready (useful with
// addr ":0") before blocking in Serve.
func (s *Server) ListenAndServe(addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	if ready != nil {
		ready(ln.Addr())
	}
	if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown gracefully drains in-flight requests, then stops the
// listener. In-flight shard ingests complete (and may retrain);
// new connections are refused.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}
