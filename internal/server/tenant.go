package server

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/trace"
)

// tenant is one application's server-side state: the rolling profile of
// the shards received since the last retraining, the profile the live
// bundle was trained on, and the bundle itself. All fields behind mu;
// sem is the per-tenant admission gate (ingests beyond its capacity are
// turned away with 429 instead of queueing unboundedly).
type tenant struct {
	id  string
	sem chan struct{}

	mu sync.Mutex
	// window accumulates the shards profiled since the last retrain
	// (profile.Merge); trained is the snapshot the live bundle's
	// training consumed. Drift compares the two.
	window  *profiler.Profile
	trained *profiler.Profile
	// windowRecords counts trace records merged into window.
	windowRecords uint64
	shards        uint64
	retrains      uint64
	lastDrift     float64
	bundle        *bundleRef
}

// bundleRef describes one immutable bundle version. The bytes live in
// the LRU cache and, durably, in the artifact file at Path.
type bundleRef struct {
	Version int
	// ETag is the bundle's content fingerprint (SHA-256 of the encoded
	// artifact), served as a strong HTTP ETag.
	ETag string
	Path string
	// Hints counts trained hints; Records the window the training saw.
	Hints   int
	Records uint64
}

// TenantStatus is the ops-facing snapshot of one tenant, served on
// GET /v1/tenants[/{id}].
type TenantStatus struct {
	ID            string  `json:"id"`
	Shards        uint64  `json:"shards"`
	WindowRecords uint64  `json:"window_records"`
	Retrains      uint64  `json:"retrains"`
	LastDrift     float64 `json:"last_drift"`
	BundleVersion int     `json:"bundle_version,omitempty"`
	BundleETag    string  `json:"bundle_etag,omitempty"`
	BundleHints   int     `json:"bundle_hints,omitempty"`
}

// ShardResponse is the body of a successful shard ingest.
type ShardResponse struct {
	Tenant        string  `json:"tenant"`
	ShardRecords  int     `json:"shard_records"`
	WindowRecords uint64  `json:"window_records"`
	Drift         float64 `json:"drift"`
	Retrained     bool    `json:"retrained"`
	BundleVersion int     `json:"bundle_version"`
	ETag          string  `json:"etag,omitempty"`
}

// status snapshots the tenant under its lock.
func (t *tenant) status() TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStatus{
		ID:            t.id,
		Shards:        t.shards,
		WindowRecords: t.windowRecords,
		Retrains:      t.retrains,
		LastDrift:     t.lastDrift,
	}
	if t.bundle != nil {
		st.BundleVersion = t.bundle.Version
		st.BundleETag = t.bundle.ETag
		st.BundleHints = t.bundle.Hints
	}
	return st
}

// ingest merges one decoded shard into the tenant's rolling profile and
// applies the retraining policy: the first shard always trains (there
// is no bundle to serve without it), later shards retrain when at least
// MinRetrainRecords have accumulated since the last training AND the
// drift against the trained profile crosses DriftThreshold. It returns
// the response body for the POST.
func (s *Server) ingest(t *tenant, recs []trace.Record) (*ShardResponse, error) {
	sp := telemetry.StartSpan("serve.ingest")
	defer sp.End()

	bopt := sim.DefaultBuildOptions()
	bopt.Records = len(recs)
	bopt.Params = s.cfg.Params
	prof, err := sim.ProfileTrace(recs, bopt)
	if err != nil {
		return nil, fmt.Errorf("profiling shard: %w", err)
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.window == nil {
		t.window = prof
	} else if err := t.window.Merge(prof); err != nil {
		return nil, fmt.Errorf("merging shard profile: %w", err)
	}
	t.windowRecords += uint64(len(recs))
	t.shards++
	counter(s.reg(), "whisper_server_shards_total").Inc()
	counter(s.reg(), "whisper_server_shard_records_total").Add(uint64(len(recs)))

	// The drift the decision sees: 1 while nothing is trained yet (the
	// whole window is "new" behaviour), the overlap complement after.
	drift := 1.0
	if t.trained != nil {
		drift = Drift(t.trained, t.window)
	}
	t.lastDrift = drift
	s.tenantGauge(t.id, "window_records").Set(int64(t.windowRecords))
	s.tenantGauge(t.id, "drift_millis").Set(int64(drift * 1000))

	resp := &ShardResponse{
		Tenant:        t.id,
		ShardRecords:  len(recs),
		WindowRecords: t.windowRecords,
		Drift:         drift,
	}
	needTrain := t.bundle == nil ||
		(t.windowRecords >= uint64(s.cfg.MinRetrainRecords) && drift > s.cfg.DriftThreshold)
	if needTrain {
		if err := s.retrainLocked(t); err != nil {
			return nil, err
		}
		resp.Retrained = true
	}
	if t.bundle != nil {
		resp.BundleVersion = t.bundle.Version
		resp.ETag = t.bundle.ETag
	}
	return resp, nil
}

// retrainLocked trains a new bundle from the tenant's accumulated
// window, persists it as a versioned artifact in the store directory,
// primes the LRU cache, and rolls the window into the trained snapshot.
// Called with t.mu held.
func (s *Server) retrainLocked(t *tenant) error {
	sp := telemetry.StartSpan("serve.retrain")
	defer sp.End()
	start := time.Now()

	tr, err := core.Train(t.window, s.cfg.Params)
	if err != nil {
		return fmt.Errorf("training %s: %w", t.id, err)
	}
	// Served bundle bytes must be a pure function of (window, params) so
	// the ETag fingerprints content: a retrain that lands on identical
	// hints re-produces the identical bundle and clients keep their 304.
	// The wall-clock duration is journal material, not bundle material.
	tr.Duration = 0
	version := 1
	if t.bundle != nil {
		version = t.bundle.Version + 1
	}
	art := &store.Artifact{
		Meta: store.Meta{
			App:     "tenant:" + t.id,
			Records: int(t.windowRecords),
			Key:     fmt.Sprintf("serve:%s:v%d", t.id, version),
		},
		Train:        tr,
		WindowInstrs: t.window.Instrs,
	}
	data, err := store.Encode(art)
	if err != nil {
		return fmt.Errorf("encoding bundle for %s: %w", t.id, err)
	}
	etag := contentFingerprint(data)
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("bundle-%s-v%d-%s.wspa", t.id, version, etag[:12]))
	if err := store.WriteFile(path, art); err != nil {
		return fmt.Errorf("persisting bundle for %s: %w", t.id, err)
	}
	s.bundles.put(etag, data)

	t.bundle = &bundleRef{
		Version: version,
		ETag:    etag,
		Path:    path,
		Hints:   len(tr.Hints),
		Records: t.windowRecords,
	}
	t.retrains++
	trainedRecords := t.windowRecords
	trainedInstrs := t.window.Instrs
	t.trained = t.window
	t.window = nil
	t.windowRecords = 0

	counter(s.reg(), "whisper_server_retrains_total").Inc()
	s.tenantGauge(t.id, "bundle_version").Set(int64(version))
	s.tenantGauge(t.id, "window_records").Set(0)
	if r := s.reg(); r != nil {
		r.DurationHistogram("whisper_server_retrain_seconds").Observe(uint64(time.Since(start)))
	}
	s.cfg.Journal.WriteUnit(fmt.Sprintf("serve/%s/retrain/v%d", t.id, version),
		time.Since(start), trainedInstrs, trainedRecords)
	return nil
}
