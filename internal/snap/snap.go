// Package snap provides the canonical binary codec shared by every
// Snapshot()/Restore() implementation in the simulator. Snapshots are
// deterministic, self-framing byte strings: the same logical state
// always encodes to the same bytes (map contents are emitted in a
// canonical order by callers), so snapshots can be compared with
// bytes.Equal, content-addressed, or persisted alongside the store's
// WSPA artifacts.
//
// Framing mirrors the store's discipline: a 4-byte magic, a kind byte
// identifying the component, a version byte, the payload, and a
// trailing CRC32 over everything before it.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic prefixes every sealed snapshot.
const Magic = "WSNP"

// Component kinds. Each snapshotting component owns one so a snapshot
// restored into the wrong component fails loudly instead of silently.
const (
	KindTAGE       byte = 1
	KindMTAGE      byte = 2
	KindPerceptron byte = 3
	KindROMBF      byte = 4
	KindRuntime    byte = 5
	KindBimodal    byte = 6
	KindGShare     byte = 7
	KindFrontend   byte = 8
)

var (
	ErrBadMagic  = errors.New("snap: bad magic")
	ErrKind      = errors.New("snap: wrong component kind")
	ErrVersion   = errors.New("snap: unsupported version")
	ErrTruncated = errors.New("snap: truncated snapshot")
	ErrCorrupt   = errors.New("snap: checksum mismatch")
)

// Seal frames payload as a complete snapshot for the given kind.
func Seal(kind, version byte, payload []byte) []byte {
	out := make([]byte, 0, len(Magic)+2+len(payload)+4)
	out = append(out, Magic...)
	out = append(out, kind, version)
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// Open validates framing and returns the payload. The payload aliases
// the input; callers must not retain it past the input's lifetime.
func Open(kind, version byte, b []byte) ([]byte, error) {
	if len(b) < len(Magic)+2+4 {
		return nil, ErrTruncated
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrCorrupt
	}
	if b[len(Magic)] != kind {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrKind, b[len(Magic)], kind)
	}
	if b[len(Magic)+1] != version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, b[len(Magic)+1], version)
	}
	return body[len(Magic)+2:], nil
}

// Append helpers: fixed-width little-endian primitives.

func U8(b []byte, v uint8) []byte   { return append(b, v) }
func U16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func U32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func U64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func I16(b []byte, v int16) []byte  { return U16(b, uint16(v)) }
func I8(b []byte, v int8) []byte    { return append(b, byte(v)) }
func I32(b []byte, v int32) []byte  { return U32(b, uint32(v)) }

func Bool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Reader decodes a payload written with the append helpers. Reads past
// the end latch the error and return zero values, so callers can decode
// a full structure and check Err once.
type Reader struct {
	b   []byte
	off int
	err error
}

func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = ErrTruncated
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *Reader) U8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *Reader) U16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *Reader) I8() int8   { return int8(r.U8()) }
func (r *Reader) I16() int16 { return int16(r.U16()) }
func (r *Reader) I32() int32 { return int32(r.U32()) }

func (r *Reader) Bool() bool { return r.U8() != 0 }

// Err reports the first decode error, or ErrTruncated via Done if
// trailing bytes remain when the caller expected none.
func (r *Reader) Err() error { return r.err }

// Done errors unless the payload was consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("snap: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}
