package plot

import (
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/stats"
)

func TestHBarBasics(t *testing.T) {
	out := HBar("chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "chart") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The larger value must have a longer bar.
	aBar := strings.Count(lines[1], "█")
	bBar := strings.Count(lines[2], "█")
	if bBar <= aBar {
		t.Fatalf("bars not proportional: a=%d b=%d", aBar, bBar)
	}
	if bBar != 10 {
		t.Fatalf("max bar %d cells, want full width 10", bBar)
	}
	if !strings.Contains(lines[1], "1.00") || !strings.Contains(lines[2], "2.00") {
		t.Fatal("values not annotated")
	}
}

func TestHBarNegativeAxis(t *testing.T) {
	out := HBar("", []string{"pos", "neg"}, []float64{3, -3}, 20)
	if !strings.Contains(out, "│") {
		t.Fatal("zero axis missing with negative values")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Positive bar right of axis, negative bar left of axis.
	pos := lines[0]
	neg := lines[1]
	if strings.Index(pos, "█") < strings.Index(pos, "│") {
		t.Fatalf("positive bar left of axis: %q", pos)
	}
	if strings.Index(neg, "█") > strings.Index(neg, "│") {
		t.Fatalf("negative bar right of axis: %q", neg)
	}
}

func TestHBarMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HBar("", []string{"a"}, []float64{1, 2}, 10)
}

func TestHBarEmptyAndZero(t *testing.T) {
	if out := HBar("t", nil, nil, 10); !strings.Contains(out, "t") {
		t.Fatal("empty chart lost title")
	}
	out := HBar("", []string{"z"}, []float64{0}, 10)
	if strings.Contains(out, "█") {
		t.Fatal("zero value drew a bar")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 2, 3, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	rs := []rune(s)
	if rs[0] >= rs[3] {
		t.Fatalf("sparkline not increasing: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat series: %q", flat)
	}
}

func tbl() *stats.Table {
	t := stats.NewTable("Fig X", "app", "red %", "note")
	t.AddRow("mysql", "15.8", "hello")
	t.AddRow("kafka", "6.7", "world")
	t.AddRow("Avg", "11.2", "")
	return t
}

func TestTableColumn(t *testing.T) {
	out, err := TableColumn(tbl(), 1, false, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mysql") || !strings.Contains(out, "kafka") {
		t.Fatal("labels missing")
	}
	if strings.Contains(out, "Avg") {
		t.Fatal("Avg row not skipped")
	}
	withAvg, err := TableColumn(tbl(), 1, true, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withAvg, "Avg") {
		t.Fatal("Avg row missing with keepAvg")
	}
}

func TestTableColumnErrors(t *testing.T) {
	if _, err := TableColumn(tbl(), 0, false, 20); err == nil {
		t.Fatal("column 0 accepted")
	}
	if _, err := TableColumn(tbl(), 9, false, 20); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := TableColumn(tbl(), 2, false, 20); err == nil {
		t.Fatal("non-numeric column accepted")
	}
}

func TestRenderSkipsNonNumeric(t *testing.T) {
	out := Render(tbl(), 20)
	if !strings.Contains(out, "red %") {
		t.Fatal("numeric column missing")
	}
	if strings.Contains(out, "note") {
		t.Fatal("non-numeric column rendered")
	}
}
