// Package plot renders experiment results as ASCII charts, so the paper's
// *figures* can be eyeballed directly in a terminal instead of read as raw
// tables. It integrates with internal/stats tables: any numeric column can
// be turned into a horizontal bar chart keyed by the table's row labels.
package plot

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/whisper-sim/whisper/internal/stats"
)

// blocks are the eighth-step fill characters for sub-cell resolution.
var blocks = []rune{' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'}

// HBar renders a horizontal bar chart. Negative values draw to the left
// of a zero axis. width is the bar area in cells (default 40 when <= 0).
func HBar(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("plot: labels and values must align")
	}
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(values) == 0 {
		return b.String()
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	maxAbs := 0.0
	anyNeg := false
	for _, v := range values {
		if math.Abs(v) > maxAbs {
			maxAbs = math.Abs(v)
		}
		if v < 0 {
			anyNeg = true
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	barW := width
	if anyNeg {
		barW = width / 2
	}
	for i, v := range values {
		b.WriteString(fmt.Sprintf("%-*s ", labelW, labels[i]))
		if anyNeg {
			// Left half for negatives, right half for positives.
			neg := bar(math.Max(0, -v), maxAbs, barW)
			b.WriteString(strings.Repeat(" ", barW-runeLen(neg)))
			b.WriteString(reverse(neg))
			b.WriteString("│")
			if v > 0 {
				b.WriteString(bar(v, maxAbs, barW))
			}
		} else {
			b.WriteString(bar(v, maxAbs, barW))
		}
		b.WriteString(fmt.Sprintf(" %.2f\n", v))
	}
	return b.String()
}

// bar builds a left-to-right bar for v scaled by maxAbs over w cells.
func bar(v, maxAbs float64, w int) string {
	if v <= 0 {
		return ""
	}
	cells := v / maxAbs * float64(w)
	full := int(cells)
	frac := cells - float64(full)
	var sb strings.Builder
	sb.WriteString(strings.Repeat("█", full))
	if idx := int(frac * 8); idx > 0 {
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

func runeLen(s string) int { return len([]rune(s)) }

func reverse(s string) string {
	rs := []rune(s)
	for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
		rs[i], rs[j] = rs[j], rs[i]
	}
	return string(rs)
}

// Sparkline renders a compact single-line trend of ys.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	span := max - min
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if span > 0 {
			idx = int((y - min) / span * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// TableColumn renders column col (1-based data column; 0 is the row
// label) of a stats.Table as a bar chart. Non-numeric cells (and the
// trailing "Avg" row, if keepAvg is false) are skipped.
func TableColumn(t *stats.Table, col int, keepAvg bool, width int) (string, error) {
	if col < 1 || col >= len(t.Columns) {
		return "", fmt.Errorf("plot: column %d out of range (1..%d)", col, len(t.Columns)-1)
	}
	var labels []string
	var values []float64
	for _, row := range t.Rows {
		if !keepAvg && row[0] == "Avg" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
		if err != nil {
			continue
		}
		labels = append(labels, row[0])
		values = append(values, v)
	}
	if len(values) == 0 {
		return "", fmt.Errorf("plot: column %q has no numeric cells", t.Columns[col])
	}
	title := fmt.Sprintf("%s — %s", t.Title, t.Columns[col])
	return HBar(title, labels, values, width), nil
}

// Render draws every numeric column of the table as a bar chart,
// separated by blank lines. Columns without numeric data are skipped.
func Render(t *stats.Table, width int) string {
	var parts []string
	for col := 1; col < len(t.Columns); col++ {
		s, err := TableColumn(t, col, false, width)
		if err == nil {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, "\n")
}
