// Package fleet is the client-side load driver for the Whisper hint
// daemon (internal/server): it simulates a fleet of tenants streaming
// trace shards from the workload catalog and hot-reloading bundles the
// way a deployed agent would — POST a shard, then poll the bundle
// endpoint with If-None-Match so only a genuinely new version costs a
// transfer. Driven by `whisper fleet` against a live daemon and by the
// package tests against an httptest server; the Run loop is the
// benchmark body for the serving-path benchmarks.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
	"github.com/whisper-sim/whisper/internal/workload"
)

// Config parameterizes a fleet run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:9180".
	BaseURL string
	// Client is the HTTP client (http.DefaultClient when nil; tests
	// pass the httptest server's).
	Client *http.Client
	// Tenants is the number of simulated tenants (default 4).
	Tenants int
	// Shards is how many shards each tenant streams (default 8).
	Shards int
	// ShardRecords is the trace length of each shard (default 20000).
	ShardRecords int
	// Apps names the catalog applications the tenants draw traces
	// from, assigned round-robin (default: the data-center Table I
	// set). Each tenant switches to the next catalog app at SwitchAt,
	// which moves its branch working set and drives drift past the
	// server's retrain threshold — the fleet-level analogue of the
	// staleness study's input drift.
	Apps []string
	// SwitchAt is the shard index where each tenant swaps application
	// (default half-way; <0 never switches).
	SwitchAt int
	// Format is the shard wire format (default binary WSPT).
	Format traceio.Format
	// Retries bounds per-shard retries after a 429 (default 50).
	Retries int
	// RetryDelay is the pause between 429 retries (default 20ms).
	RetryDelay time.Duration
	// Logf, when non-nil, receives one progress line per tenant.
	Logf func(format string, args ...any)
}

// TenantReport is one simulated tenant's client-side accounting.
type TenantReport struct {
	Tenant        string `json:"tenant"`
	Shards        int    `json:"shards"`
	Records       int    `json:"records"`
	Retrains      int    `json:"retrains"`
	Reloads       int    `json:"reloads"`
	NotModified   int    `json:"not_modified"`
	Rejected      int    `json:"rejected"`
	FinalVersion  int    `json:"final_version"`
	FinalETag     string `json:"final_etag"`
	FinalHints    int    `json:"final_hints"`
	FinalAppHints string `json:"final_app,omitempty"`
}

// Report aggregates a run.
type Report struct {
	Tenants     []TenantReport `json:"tenants"`
	Shards      int            `json:"shards"`
	Records     int            `json:"records"`
	Retrains    int            `json:"retrains"`
	Reloads     int            `json:"reloads"`
	NotModified int            `json:"not_modified"`
	Rejected    int            `json:"rejected"`
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.BaseURL == "" {
		return cfg, errors.New("fleet: BaseURL is required")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 4
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.ShardRecords == 0 {
		cfg.ShardRecords = 20000
	}
	if len(cfg.Apps) == 0 {
		for _, spec := range workload.DataCenterSpecs() {
			cfg.Apps = append(cfg.Apps, spec.Config.Name)
		}
	}
	for _, name := range cfg.Apps {
		if workload.AppByName(name) == nil {
			return cfg, fmt.Errorf("fleet: unknown app %q", name)
		}
	}
	if cfg.SwitchAt == 0 {
		cfg.SwitchAt = cfg.Shards / 2
	}
	if cfg.Format == traceio.FormatAuto {
		cfg.Format = traceio.FormatBinary
	}
	if cfg.Retries == 0 {
		cfg.Retries = 50
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 20 * time.Millisecond
	}
	return cfg, nil
}

// Run streams every tenant concurrently and aggregates their reports.
// A tenant failing (non-retryable HTTP status, transport error, corrupt
// bundle) fails the run.
func Run(c Config) (*Report, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	reports := make([]TenantReport, cfg.Tenants)
	errs := make([]error, cfg.Tenants)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = runTenant(&cfg, i)
		}(i)
	}
	wg.Wait()
	rep := &Report{Tenants: reports}
	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		t := &reports[i]
		rep.Shards += t.Shards
		rep.Records += t.Records
		rep.Retrains += t.Retrains
		rep.Reloads += t.Reloads
		rep.NotModified += t.NotModified
		rep.Rejected += t.Rejected
	}
	return rep, nil
}

// shardResponse mirrors server.ShardResponse (decoded client-side; the
// daemon is the contract owner).
type shardResponse struct {
	Retrained     bool   `json:"retrained"`
	BundleVersion int    `json:"bundle_version"`
	ETag          string `json:"etag"`
}

// runTenant streams one tenant's shards: generate from the catalog,
// upload (retrying 429s), and poll the bundle endpoint with the last
// seen ETag, hot-reloading on every 200.
func runTenant(cfg *Config, idx int) (TenantReport, error) {
	rep := TenantReport{Tenant: fmt.Sprintf("tenant-%02d", idx)}
	appIdx := idx % len(cfg.Apps)
	var bundle *store.Artifact

	for shard := 0; shard < cfg.Shards; shard++ {
		if cfg.SwitchAt > 0 && shard == cfg.SwitchAt {
			appIdx = (appIdx + 1) % len(cfg.Apps)
		}
		app := workload.AppByName(cfg.Apps[appIdx])
		// Vary the input per shard so consecutive windows are
		// different draws of the same behaviour, like production
		// sampling windows.
		recs := collect(app.Stream(shard%app.Inputs(), cfg.ShardRecords))
		var body bytes.Buffer
		if err := traceio.WriteAll(&body, cfg.Format, recs); err != nil {
			return rep, fmt.Errorf("%s: encoding shard %d: %w", rep.Tenant, shard, err)
		}

		sr, rejected, err := postShard(cfg, rep.Tenant, body.Bytes())
		if err != nil {
			return rep, fmt.Errorf("%s: shard %d: %w", rep.Tenant, shard, err)
		}
		rep.Rejected += rejected
		rep.Shards++
		rep.Records += len(recs)
		if sr.Retrained {
			rep.Retrains++
		}

		art, etag, version, reloaded, err := fetchBundle(cfg, rep.Tenant, rep.FinalETag)
		if err != nil {
			return rep, fmt.Errorf("%s: after shard %d: %w", rep.Tenant, shard, err)
		}
		if reloaded {
			bundle = art
			rep.Reloads++
			rep.FinalETag = etag
			rep.FinalVersion = version
		} else {
			rep.NotModified++
		}
	}
	if bundle != nil {
		rep.FinalHints = len(bundle.Train.Hints)
		rep.FinalAppHints = bundle.Meta.App
	}
	if cfg.Logf != nil {
		cfg.Logf("%s: %d shards, %d retrains, %d reloads, %d not-modified, %d hints @ v%d",
			rep.Tenant, rep.Shards, rep.Retrains, rep.Reloads, rep.NotModified,
			rep.FinalHints, rep.FinalVersion)
	}
	return rep, nil
}

// collect drains a trace stream into memory.
func collect(s trace.Stream) []trace.Record {
	var recs []trace.Record
	var rec trace.Record
	for s.Next(&rec) {
		recs = append(recs, rec)
	}
	return recs
}

// postShard uploads one shard, retrying while the daemon sheds load
// with 429. Returns the decoded response and how many rejections were
// absorbed.
func postShard(cfg *Config, tenant string, body []byte) (*shardResponse, int, error) {
	url := fmt.Sprintf("%s/v1/tenants/%s/shards?format=%s", cfg.BaseURL, tenant, cfg.Format)
	rejected := 0
	for attempt := 0; ; attempt++ {
		resp, err := cfg.Client.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return nil, rejected, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, rejected, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var sr shardResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				return nil, rejected, fmt.Errorf("decoding shard response: %w", err)
			}
			return &sr, rejected, nil
		case http.StatusTooManyRequests:
			rejected++
			if attempt >= cfg.Retries {
				return nil, rejected, fmt.Errorf("still throttled after %d retries", cfg.Retries)
			}
			time.Sleep(cfg.RetryDelay)
		default:
			return nil, rejected, fmt.Errorf("POST shard: %s: %s", resp.Status, firstLine(data))
		}
	}
}

// fetchBundle polls the bundle endpoint with the last seen ETag. On 200
// it decodes (hot-reloads) the new bundle; on 304 it reports the cached
// one is still current.
func fetchBundle(cfg *Config, tenant, etag string) (art *store.Artifact, newETag string, version int, reloaded bool, err error) {
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/tenants/%s/bundle", cfg.BaseURL, tenant), nil)
	if err != nil {
		return nil, "", 0, false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", `"`+etag+`"`)
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, "", 0, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", 0, false, err
	}
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, etag, 0, false, nil
	case http.StatusOK:
		art, err := store.Decode(data)
		if err != nil {
			return nil, "", 0, false, fmt.Errorf("decoding bundle: %w", err)
		}
		tag := strippedETag(resp.Header.Get("ETag"))
		var v int
		fmt.Sscanf(resp.Header.Get("X-Whisper-Bundle-Version"), "%d", &v)
		return art, tag, v, true, nil
	default:
		return nil, "", 0, false, fmt.Errorf("GET bundle: %s: %s", resp.Status, firstLine(data))
	}
}

// strippedETag removes the quotes of a strong ETag header value.
func strippedETag(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// firstLine truncates an error body for message embedding.
func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(data)
}
