package fleet

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"github.com/whisper-sim/whisper/internal/server"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
	"github.com/whisper-sim/whisper/internal/workload"
)

// collectFor draws one shard's records from the catalog.
func collectFor(tb testing.TB, app string, input, n int) []trace.Record {
	tb.Helper()
	a := workload.AppByName(app)
	if a == nil {
		tb.Fatalf("unknown app %q", app)
	}
	return collect(a.Stream(input, n))
}

func encodeFor(tb testing.TB, recs []trace.Record) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := traceio.WriteAll(&buf, traceio.FormatBinary, recs); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// startDaemon brings up an in-process hint daemon shaped like the test
// fleet expects: small windows, a threshold that app switches cross.
func startDaemon(tb testing.TB) *httptest.Server {
	tb.Helper()
	s, err := server.NewServer(server.Config{
		Dir:               tb.TempDir(),
		DriftThreshold:    0.9,
		MinRetrainRecords: 1000,
	})
	if err != nil {
		tb.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

// TestFleetAgainstDaemon runs the whole driver loop against a live
// in-process daemon: every tenant streams shards, switches application
// mid-stream (forcing a drift retrain), and hot-reloads bundles through
// the ETag protocol.
func TestFleetAgainstDaemon(t *testing.T) {
	ts := startDaemon(t)
	// SwitchAt 1: the first post-switch window is purely the new app,
	// so its drift (~0.99 cross-app) crisply crosses the 0.9 test
	// threshold. (Later switches dilute the window with pre-switch
	// shards and drift climbs more gradually.)
	rep, err := Run(Config{
		BaseURL:      ts.URL,
		Client:       ts.Client(),
		Tenants:      3,
		Shards:       4,
		ShardRecords: 3000,
		Apps:         []string{"clang", "python", "kafka"},
		SwitchAt:     1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := rep.Shards, 3*4; got != want {
		t.Fatalf("shards = %d, want %d", got, want)
	}
	if rep.Records != 3*4*3000 {
		t.Fatalf("records = %d", rep.Records)
	}
	for _, tr := range rep.Tenants {
		// v1 on the first shard, plus at least one drift retrain at the
		// app switch.
		if tr.Retrains < 2 {
			t.Errorf("%s: %d retrains, want >= 2 (initial + drift)", tr.Tenant, tr.Retrains)
		}
		// Every new version was hot-reloaded exactly once; every other
		// poll came back 304.
		if tr.Reloads != tr.Retrains {
			t.Errorf("%s: %d reloads != %d retrains", tr.Tenant, tr.Reloads, tr.Retrains)
		}
		if tr.Reloads+tr.NotModified != tr.Shards {
			t.Errorf("%s: reloads %d + notModified %d != shards %d",
				tr.Tenant, tr.Reloads, tr.NotModified, tr.Shards)
		}
		if tr.NotModified == 0 {
			t.Errorf("%s: no 304s — ETag polling is not saving transfers", tr.Tenant)
		}
		if tr.FinalVersion < 2 || tr.FinalETag == "" {
			t.Errorf("%s: final bundle v%d etag %q", tr.Tenant, tr.FinalVersion, tr.FinalETag)
		}
	}
	if rep.NotModified == 0 || rep.Retrains < 6 {
		t.Fatalf("aggregate: %+v", rep)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run accepted empty BaseURL")
	}
	if _, err := Run(Config{BaseURL: "http://x", Apps: []string{"not-a-real-app"}}); err == nil {
		t.Fatal("Run accepted an unknown app")
	}
}

func TestFleetDefaultsUseCatalog(t *testing.T) {
	cfg, err := (&Config{BaseURL: "http://x"}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Apps) == 0 || cfg.Tenants != 4 || cfg.Shards != 8 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.SwitchAt != 4 {
		t.Fatalf("SwitchAt default = %d, want Shards/2", cfg.SwitchAt)
	}
	if cfg.Format != traceio.FormatBinary {
		t.Fatalf("format default = %v", cfg.Format)
	}
}

// BenchmarkFleetShardRoundTrip measures the serving path end to end:
// one tenant uploading one shard and polling the bundle (usually 304).
func BenchmarkFleetShardRoundTrip(b *testing.B) {
	ts := startDaemon(b)
	cfg, err := (&Config{
		BaseURL:      ts.URL,
		Client:       ts.Client(),
		ShardRecords: 2000,
		Apps:         []string{"kafka"},
		SwitchAt:     -1,
	}).withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	recs := collectFor(b, "kafka", 0, cfg.ShardRecords)
	body := encodeFor(b, recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := postShard(&cfg, "bench", body); err != nil {
			b.Fatal(err)
		}
		if _, _, _, _, err := fetchBundle(&cfg, "bench", ""); err != nil {
			b.Fatal(err)
		}
	}
}
