package classify

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
	"github.com/whisper-sim/whisper/internal/xrand"
)

func condStream(recs []trace.Record) trace.Stream { return trace.NewSliceStream(recs) }

func TestClassStrings(t *testing.T) {
	for c := Compulsory; c < numClasses; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
	}
}

func TestOracleHasNoMispredictions(t *testing.T) {
	app := workload.DataCenterApp("kafka")
	counts := DefaultClassifier().Run(app.Stream(0, 20000), &bpu.Oracle{})
	if counts.Total != 0 {
		t.Fatalf("oracle classified %d mispredictions", counts.Total)
	}
	if counts.CondExecs == 0 || counts.Instrs == 0 {
		t.Fatal("window counters empty")
	}
}

func TestDataDependentDominatesRandomBranch(t *testing.T) {
	// One static branch, pure coin flips: after warm-up every
	// misprediction should be conditional-on-data (substreams recur and
	// their majority is meaningless).
	r := xrand.New(3)
	var recs []trace.Record
	for i := 0; i < 30000; i++ {
		recs = append(recs, trace.Record{
			PC: 0x1000, Kind: trace.CondBranch, Taken: r.Bool(0.5), Instrs: 4,
		})
	}
	counts := DefaultClassifier().Run(condStream(recs), tage.New(tage.DefaultConfig()))
	if counts.Total == 0 {
		t.Fatal("random branch produced no mispredictions")
	}
	if counts.Fraction(DataDependent) < 0.5 {
		t.Fatalf("data-dependent fraction %v, want dominant; counts %+v",
			counts.Fraction(DataDependent), counts.ByClass)
	}
}

func TestCompulsoryOnFirstPass(t *testing.T) {
	// Every branch executes exactly once with an unpredictable direction:
	// all mispredictions must be compulsory.
	r := xrand.New(4)
	var recs []trace.Record
	for i := 0; i < 5000; i++ {
		recs = append(recs, trace.Record{
			PC: 0x1000 + uint64(i)*64, Kind: trace.CondBranch,
			Taken: r.Bool(0.5), Instrs: 4,
		})
	}
	counts := DefaultClassifier().Run(condStream(recs), tage.New(tage.DefaultConfig()))
	if counts.Total == 0 {
		t.Fatal("no mispredictions")
	}
	if counts.Fraction(Compulsory) < 0.95 {
		t.Fatalf("compulsory fraction %v; counts %+v", counts.Fraction(Compulsory), counts.ByClass)
	}
}

func TestCapacityUnderLargeWorkingSet(t *testing.T) {
	// A deterministic per-branch pattern over far more substreams than
	// the capacity model holds: recurring substreams whose reuse distance
	// exceeds capacity must classify as capacity.
	cl := &Classifier{CapacityEntries: 2048}
	var recs []trace.Record
	state := map[uint64]int{}
	for round := 0; round < 6; round++ {
		for b := 0; b < 8000; b++ {
			pc := 0x10000 + uint64(b)*32
			state[pc]++
			recs = append(recs, trace.Record{
				PC: pc, Kind: trace.CondBranch,
				Taken: state[pc]%2 == 0, Instrs: 4,
			})
		}
	}
	counts := cl.Run(condStream(recs), tage.New(tage.Config{SizeKB: 8}))
	if counts.Total == 0 {
		t.Fatal("no mispredictions")
	}
	if counts.Fraction(Capacity) < 0.4 {
		t.Fatalf("capacity fraction %v; counts %+v", counts.Fraction(Capacity), counts.ByClass)
	}
}

func TestDataCenterAppCapacityDominated(t *testing.T) {
	// The paper's Fig 3: data center applications are dominated by
	// capacity mispredictions (76.4% average). Check the regime (plural
	// classes present, capacity largest).
	app := workload.DataCenterApp("mysql")
	counts := DefaultClassifier().Run(app.Stream(0, 120000), tage.New(tage.DefaultConfig()))
	if counts.Total == 0 {
		t.Fatal("no mispredictions")
	}
	capFrac := counts.Fraction(Capacity)
	if capFrac < counts.Fraction(Compulsory) || capFrac < counts.Fraction(Conflict) {
		t.Fatalf("capacity %v not dominant: %+v", capFrac, counts.ByClass)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	app := workload.DataCenterApp("drupal")
	counts := DefaultClassifier().Run(app.Stream(0, 40000), tage.New(tage.DefaultConfig()))
	sum := 0.0
	for c := Compulsory; c < numClasses; c++ {
		sum += counts.Fraction(c)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	var total uint64
	for _, v := range counts.ByClass {
		total += v
	}
	if total != counts.Total {
		t.Fatalf("ByClass sum %d != Total %d", total, counts.Total)
	}
}

func TestMPKI(t *testing.T) {
	c := Counts{Total: 30, Instrs: 10000}
	if got := c.MPKI(); got != 3 {
		t.Fatalf("MPKI = %v", got)
	}
	empty := Counts{}
	if empty.MPKI() != 0 || empty.Fraction(Capacity) != 0 {
		t.Fatal("zero-window accessors wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cl := &Classifier{}
	counts := cl.Run(condStream([]trace.Record{
		{PC: 0x1, Kind: trace.CondBranch, Taken: true, Instrs: 1},
	}), tage.New(tage.DefaultConfig()))
	if counts.CondExecs != 1 {
		t.Fatal("zero-value classifier did not run")
	}
}

func TestTrackBranchesPerBranchCounts(t *testing.T) {
	app := workload.DataCenterApp("mysql")
	cl := DefaultClassifier()
	cl.TrackBranches = 1 << 16
	counts := cl.Run(app.Stream(0, 40000), tage.New(tage.DefaultConfig()))
	if counts.Total == 0 {
		t.Fatal("no mispredictions")
	}
	if len(counts.Branches) == 0 {
		t.Fatal("TrackBranches recorded nothing")
	}
	// Per-branch counts must partition the global class counts exactly.
	var perBranch BranchClasses
	for _, bc := range counts.Branches {
		for i, v := range bc {
			perBranch[i] += v
		}
	}
	if perBranch != counts.ByClass {
		t.Fatalf("per-branch sums %v != global %v", perBranch, counts.ByClass)
	}
	labels := counts.DominantLabels()
	if len(labels) == 0 {
		t.Fatal("no dominant labels")
	}
	valid := map[string]bool{"compulsory": true, "capacity": true, "conflict": true, "data_dependent": true}
	for pc, lbl := range labels {
		if !valid[lbl] {
			t.Fatalf("branch %#x has label %q", pc, lbl)
		}
	}
}

func TestTrackBranchesBounded(t *testing.T) {
	// More unpredictable static branches than the bound: the map must
	// stop growing at the bound while the global counts keep going.
	r := xrand.New(9)
	var recs []trace.Record
	for round := 0; round < 3; round++ {
		for b := 0; b < 64; b++ {
			recs = append(recs, trace.Record{
				PC: 0x1000 + uint64(b)*32, Kind: trace.CondBranch,
				Taken: r.Bool(0.5), Instrs: 2,
			})
		}
	}
	cl := DefaultClassifier()
	cl.TrackBranches = 8
	counts := cl.Run(condStream(recs), tage.New(tage.Config{SizeKB: 8}))
	if len(counts.Branches) > 8 {
		t.Fatalf("tracked %d branches, bound 8", len(counts.Branches))
	}
	var tracked uint64
	for _, bc := range counts.Branches {
		for _, v := range bc {
			tracked += v
		}
	}
	if tracked > counts.Total {
		t.Fatalf("tracked %d > total %d", tracked, counts.Total)
	}
}

func TestDominantTieBreak(t *testing.T) {
	bc := BranchClasses{2, 2, 1, 0}
	if cl, n := bc.Dominant(); cl != Compulsory || n != 2 {
		t.Fatalf("Dominant = %v/%d, want Compulsory/2", cl, n)
	}
	if Capacity.Label() != "capacity" || DataDependent.Label() != "data_dependent" {
		t.Fatal("Label vocabulary drifted")
	}
	empty := &Counts{}
	if empty.DominantLabels() != nil {
		t.Fatal("empty counts produced labels")
	}
}
