package classify

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
	"github.com/whisper-sim/whisper/internal/xrand"
)

func condStream(recs []trace.Record) trace.Stream { return trace.NewSliceStream(recs) }

func TestClassStrings(t *testing.T) {
	for c := Compulsory; c < numClasses; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
	}
}

func TestOracleHasNoMispredictions(t *testing.T) {
	app := workload.DataCenterApp("kafka")
	counts := DefaultClassifier().Run(app.Stream(0, 20000), &bpu.Oracle{})
	if counts.Total != 0 {
		t.Fatalf("oracle classified %d mispredictions", counts.Total)
	}
	if counts.CondExecs == 0 || counts.Instrs == 0 {
		t.Fatal("window counters empty")
	}
}

func TestDataDependentDominatesRandomBranch(t *testing.T) {
	// One static branch, pure coin flips: after warm-up every
	// misprediction should be conditional-on-data (substreams recur and
	// their majority is meaningless).
	r := xrand.New(3)
	var recs []trace.Record
	for i := 0; i < 30000; i++ {
		recs = append(recs, trace.Record{
			PC: 0x1000, Kind: trace.CondBranch, Taken: r.Bool(0.5), Instrs: 4,
		})
	}
	counts := DefaultClassifier().Run(condStream(recs), tage.New(tage.DefaultConfig()))
	if counts.Total == 0 {
		t.Fatal("random branch produced no mispredictions")
	}
	if counts.Fraction(DataDependent) < 0.5 {
		t.Fatalf("data-dependent fraction %v, want dominant; counts %+v",
			counts.Fraction(DataDependent), counts.ByClass)
	}
}

func TestCompulsoryOnFirstPass(t *testing.T) {
	// Every branch executes exactly once with an unpredictable direction:
	// all mispredictions must be compulsory.
	r := xrand.New(4)
	var recs []trace.Record
	for i := 0; i < 5000; i++ {
		recs = append(recs, trace.Record{
			PC: 0x1000 + uint64(i)*64, Kind: trace.CondBranch,
			Taken: r.Bool(0.5), Instrs: 4,
		})
	}
	counts := DefaultClassifier().Run(condStream(recs), tage.New(tage.DefaultConfig()))
	if counts.Total == 0 {
		t.Fatal("no mispredictions")
	}
	if counts.Fraction(Compulsory) < 0.95 {
		t.Fatalf("compulsory fraction %v; counts %+v", counts.Fraction(Compulsory), counts.ByClass)
	}
}

func TestCapacityUnderLargeWorkingSet(t *testing.T) {
	// A deterministic per-branch pattern over far more substreams than
	// the capacity model holds: recurring substreams whose reuse distance
	// exceeds capacity must classify as capacity.
	cl := &Classifier{CapacityEntries: 2048}
	var recs []trace.Record
	state := map[uint64]int{}
	for round := 0; round < 6; round++ {
		for b := 0; b < 8000; b++ {
			pc := 0x10000 + uint64(b)*32
			state[pc]++
			recs = append(recs, trace.Record{
				PC: pc, Kind: trace.CondBranch,
				Taken: state[pc]%2 == 0, Instrs: 4,
			})
		}
	}
	counts := cl.Run(condStream(recs), tage.New(tage.Config{SizeKB: 8}))
	if counts.Total == 0 {
		t.Fatal("no mispredictions")
	}
	if counts.Fraction(Capacity) < 0.4 {
		t.Fatalf("capacity fraction %v; counts %+v", counts.Fraction(Capacity), counts.ByClass)
	}
}

func TestDataCenterAppCapacityDominated(t *testing.T) {
	// The paper's Fig 3: data center applications are dominated by
	// capacity mispredictions (76.4% average). Check the regime (plural
	// classes present, capacity largest).
	app := workload.DataCenterApp("mysql")
	counts := DefaultClassifier().Run(app.Stream(0, 120000), tage.New(tage.DefaultConfig()))
	if counts.Total == 0 {
		t.Fatal("no mispredictions")
	}
	capFrac := counts.Fraction(Capacity)
	if capFrac < counts.Fraction(Compulsory) || capFrac < counts.Fraction(Conflict) {
		t.Fatalf("capacity %v not dominant: %+v", capFrac, counts.ByClass)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	app := workload.DataCenterApp("drupal")
	counts := DefaultClassifier().Run(app.Stream(0, 40000), tage.New(tage.DefaultConfig()))
	sum := 0.0
	for c := Compulsory; c < numClasses; c++ {
		sum += counts.Fraction(c)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	var total uint64
	for _, v := range counts.ByClass {
		total += v
	}
	if total != counts.Total {
		t.Fatalf("ByClass sum %d != Total %d", total, counts.Total)
	}
}

func TestMPKI(t *testing.T) {
	c := Counts{Total: 30, Instrs: 10000}
	if got := c.MPKI(); got != 3 {
		t.Fatalf("MPKI = %v", got)
	}
	empty := Counts{}
	if empty.MPKI() != 0 || empty.Fraction(Capacity) != 0 {
		t.Fatal("zero-window accessors wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cl := &Classifier{}
	counts := cl.Run(condStream([]trace.Record{
		{PC: 0x1, Kind: trace.CondBranch, Taken: true, Instrs: 1},
	}), tage.New(tage.DefaultConfig()))
	if counts.CondExecs != 1 {
		t.Fatal("zero-value classifier did not run")
	}
}
