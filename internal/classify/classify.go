// Package classify reproduces the paper's misprediction taxonomy (§II-C,
// Fig 3): every misprediction of the profiled predictor is attributed to
// one of four classes by analyzing consecutive accesses of branch
// substreams — combinations of the branch PC with hashed histories of
// different lengths, exactly the contexts a geometric-history predictor
// could index.
//
// For each retired conditional branch we maintain, per candidate history
// length, the substream keyed by the XOR-folded hashed history at that
// length, with a small majority counter recording the direction the
// substream has produced before. The classification of a misprediction:
//
//   - Compulsory: the static branch is being predicted for the first
//     time.
//   - Conditional-on-data: every known substream of the branch (at every
//     length) is established (seen repeatedly) yet none of their
//     majorities matches the actual outcome — the direction is not a
//     function of history, so no history-based predictor can learn it.
//   - Conflict: some substream determined the outcome *and* was resident
//     in a fully-associative LRU model of the predictor's capacity — the
//     information was retainable but the real predictor's
//     indexing/replacement lost it.
//   - Capacity: some substream determines (or will determine) the
//     outcome, but it was evicted from — or has never fit into — the
//     capacity model: its reuse distance exceeds what the predictor can
//     hold. This is the class the paper finds dominant (76.4%).
package classify

import (
	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/trace"
)

// Class is a misprediction class.
type Class int

// The four classes of the paper's Fig 3.
const (
	Compulsory Class = iota
	Capacity
	Conflict
	DataDependent

	numClasses
)

// String names the class as in the paper's legend.
func (c Class) String() string {
	switch c {
	case Compulsory:
		return "Compulsory"
	case Capacity:
		return "Capacity"
	case Conflict:
		return "Conflict"
	case DataDependent:
		return "Conditional-on-data"
	default:
		return "unknown"
	}
}

// Counts aggregates classified mispredictions.
type Counts struct {
	ByClass [numClasses]uint64
	// Total is the number of classified mispredictions.
	Total uint64
	// CondExecs and Instrs describe the analyzed window.
	CondExecs, Instrs uint64
	// Branches holds per-branch class counts when the classifier's
	// TrackBranches is set (nil otherwise). Bounded drop-new like
	// attrib.Collector: once the map is full, further new PCs go
	// untracked, so the contents are deterministic in trace order.
	Branches map[uint64]*BranchClasses
}

// BranchClasses is one static branch's per-class misprediction counts.
type BranchClasses [numClasses]uint64

// Dominant returns the branch's most frequent misprediction class and
// its count; ties resolve to the lower class index (the paper's class
// order), so the answer is deterministic.
func (b *BranchClasses) Dominant() (Class, uint64) {
	best := Compulsory
	for cl := Compulsory + 1; cl < numClasses; cl++ {
		if b[cl] > b[best] {
			best = cl
		}
	}
	return best, b[best]
}

// DominantLabels flattens Branches into branch PC → dominant class
// label ("capacity", "conflict", ...) — the form the attribution report
// consumes. Branches with no classified misprediction are skipped.
func (c *Counts) DominantLabels() map[uint64]string {
	if len(c.Branches) == 0 {
		return nil
	}
	out := make(map[uint64]string, len(c.Branches))
	for pc, bc := range c.Branches {
		if cl, n := bc.Dominant(); n > 0 {
			out[pc] = cl.Label()
		}
	}
	return out
}

// Fraction returns the share of class cl among all mispredictions.
func (c *Counts) Fraction(cl Class) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.ByClass[cl]) / float64(c.Total)
}

// MPKI returns mispredictions per kilo-instruction of the analyzed window.
func (c *Counts) MPKI() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return float64(c.Total) / float64(c.Instrs) * 1000
}

// substream tracks one (branch, length, fold) context.
type substream struct {
	seen  uint32
	taken uint32
	// lruPos is the node index in the capacity model, or -1 if evicted.
	lruPos int32
}

// direction returns the substream's majority direction and whether the
// substream is "established and pure": seen often enough, with a strong
// majority. Random (data-dependent) outcomes hover near 50% purity and
// never establish.
func (s *substream) direction(minSeen uint32) (taken, determined bool) {
	if s.seen == 0 {
		return false, false
	}
	maj := s.taken*2 >= s.seen
	if s.seen < minSeen {
		return maj, false
	}
	agree := s.taken
	if !maj {
		agree = s.seen - s.taken
	}
	return maj, float64(agree)/float64(s.seen) >= 0.8
}

// branchState holds all substreams of one static branch.
type branchState struct {
	// subs maps (lengthIndex<<8 | fold) to substream state.
	subs map[uint32]*substream
}

// Classifier drives a predictor over a stream and classifies its
// mispredictions.
type Classifier struct {
	// Lengths are the candidate substream history lengths; defaults to
	// the Table III geometric series.
	Lengths []int
	// CapacityEntries sizes the fully-associative LRU model in substream
	// entries; it should approximate what the profiled predictor can
	// retain across all its components (≈16K tagged entries for the 64KB
	// TAGE-SC-L, one substream touched per length per retirement).
	CapacityEntries int
	// MinSeen is how often a substream must have been observed before
	// its majority is considered established (data-dependence test).
	MinSeen uint32
	// TrackBranches, when positive, records per-branch class counts in
	// Counts.Branches for up to that many static branch PCs (drop-new
	// beyond the bound, so memory stays bounded and the contents
	// deterministic).
	TrackBranches int
}

// DefaultClassifier matches the 64KB baseline.
func DefaultClassifier() *Classifier {
	return &Classifier{CapacityEntries: 16384 * len(bpu.DefaultGeomLengths), MinSeen: 8}
}

// lruModel is a fixed-capacity fully-associative LRU over substreams,
// implemented as an intrusive doubly-linked list over a node arena.
type lruModel struct {
	next, prev []int32
	ss         []*substream
	head, tail int32
	size, cap  int
	free       []int32
}

func newLRU(capacity int) *lruModel {
	return &lruModel{head: -1, tail: -1, cap: capacity}
}

func (l *lruModel) touch(ss *substream) {
	if ss.lruPos >= 0 {
		l.unlink(ss.lruPos)
		l.pushFront(ss.lruPos)
		return
	}
	var idx int32
	if n := len(l.free); n > 0 {
		idx = l.free[n-1]
		l.free = l.free[:n-1]
		l.ss[idx] = ss
	} else {
		idx = int32(len(l.ss))
		l.ss = append(l.ss, ss)
		l.next = append(l.next, -1)
		l.prev = append(l.prev, -1)
	}
	ss.lruPos = idx
	l.pushFront(idx)
	l.size++
	if l.size > l.cap {
		victim := l.tail
		l.unlink(victim)
		l.ss[victim].lruPos = -1
		l.ss[victim] = nil
		l.free = append(l.free, victim)
		l.size--
	}
}

func (l *lruModel) pushFront(idx int32) {
	l.prev[idx] = -1
	l.next[idx] = l.head
	if l.head >= 0 {
		l.prev[l.head] = idx
	}
	l.head = idx
	if l.tail < 0 {
		l.tail = idx
	}
}

func (l *lruModel) unlink(idx int32) {
	if l.prev[idx] >= 0 {
		l.next[l.prev[idx]] = l.next[idx]
	} else {
		l.head = l.next[idx]
	}
	if l.next[idx] >= 0 {
		l.prev[l.next[idx]] = l.prev[idx]
	} else {
		l.tail = l.prev[idx]
	}
}

// Run classifies every misprediction pred makes on s.
func (c *Classifier) Run(s trace.Stream, pred bpu.Predictor) Counts {
	if c.Lengths == nil {
		c.Lengths = bpu.DefaultGeomLengths
	}
	if c.CapacityEntries <= 0 {
		c.CapacityEntries = 16384 * len(c.Lengths)
	}
	if c.MinSeen == 0 {
		c.MinSeen = 8
	}
	var counts Counts
	if c.TrackBranches > 0 {
		counts.Branches = make(map[uint64]*BranchClasses)
	}
	var hist bpu.History
	branches := make(map[uint64]*branchState)
	lru := newLRU(c.CapacityEntries)
	folds := make([]uint8, len(c.Lengths))

	var rec trace.Record
	for s.Next(&rec) {
		counts.Instrs += uint64(rec.Instrs) + 1
		if rec.Kind != trace.CondBranch {
			continue
		}
		counts.CondExecs++

		bs := branches[rec.PC]
		newPC := bs == nil
		if newPC {
			bs = &branchState{subs: make(map[uint32]*substream)}
			branches[rec.PC] = bs
		}
		for i, l := range c.Lengths {
			folds[i] = hist.Fold(l)
		}

		if o, ok := pred.(bpu.OraclePrimer); ok {
			o.Prime(rec.Taken)
		}
		misp := pred.Predict(rec.PC) != rec.Taken
		pred.Update(rec.PC, rec.Taken)

		if misp {
			counts.Total++
			cl := Compulsory
			if !newPC {
				cl = c.classify(bs, folds, rec.Taken)
			}
			counts.ByClass[cl]++
			if c.TrackBranches > 0 {
				bc := counts.Branches[rec.PC]
				if bc == nil && len(counts.Branches) < c.TrackBranches {
					bc = &BranchClasses{}
					counts.Branches[rec.PC] = bc
				}
				if bc != nil {
					bc[cl]++
				}
			}
		}

		// Train and touch substreams after classification.
		for i := range c.Lengths {
			key := uint32(i)<<8 | uint32(folds[i])
			ss := bs.subs[key]
			if ss == nil {
				ss = &substream{lruPos: -1}
				bs.subs[key] = ss
			}
			ss.seen++
			if rec.Taken {
				ss.taken++
			}
			lru.touch(ss)
		}
		hist.Push(rec.Taken)
	}
	counts.emitTelemetry()
	return counts
}

// emitTelemetry flushes the classified window's per-cause breakdown into
// the process registry — the paper's Fig 3 attribution (capacity vs.
// history-length causes) as live whisper_classify_* series.
func (c *Counts) emitTelemetry() {
	r := telemetry.Default()
	if r == nil {
		return
	}
	r.Counter("whisper_classify_windows_total").Inc()
	for cl := Compulsory; cl < numClasses; cl++ {
		r.Counter(`whisper_classify_mispredictions_total{class="` + classLabel(cl) + `"}`).
			Add(c.ByClass[cl])
	}
}

// Label is the stable lower-case metric label of a class (the String
// form is the paper's legend and carries spaces/hyphens); it is the
// class vocabulary of metric label values and attribution reports.
func (cl Class) Label() string { return classLabel(cl) }

// classLabel is the stable lower-case metric label of a class (the
// String form is the paper's legend and carries spaces/hyphens).
func classLabel(cl Class) string {
	switch cl {
	case Compulsory:
		return "compulsory"
	case Capacity:
		return "capacity"
	case Conflict:
		return "conflict"
	case DataDependent:
		return "data_dependent"
	default:
		return "unknown"
	}
}

// classify attributes a misprediction of a known branch.
func (c *Classifier) classify(bs *branchState, folds []uint8, taken bool) Class {
	// Scan lengths from longest to shortest: a substream whose confident
	// majority matches the actual outcome shows the direction *is* a
	// function of history at that length.
	determinedResident := false
	determinedEvicted := false
	anyNewOrYoung := false
	for i := len(folds) - 1; i >= 0; i-- {
		key := uint32(i)<<8 | uint32(folds[i])
		ss := bs.subs[key]
		if ss == nil || ss.seen < c.MinSeen {
			anyNewOrYoung = true
			continue
		}
		maj, determined := ss.direction(c.MinSeen)
		if determined && maj == taken {
			if ss.lruPos >= 0 {
				determinedResident = true
			} else {
				determinedEvicted = true
			}
		}
	}
	switch {
	case determinedResident:
		return Conflict
	case determinedEvicted:
		return Capacity
	case anyNewOrYoung:
		// Some context this branch depends on has not recurred yet: its
		// reuse distance exceeds what the window (and the predictor)
		// holds.
		return Capacity
	default:
		return DataDependent
	}
}
