package xrand

import (
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the SplitMix64 reference implementation with
	// state 0: first three outputs.
	st := uint64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := SplitMix64(&st); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		n := 1 + i%37
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d uniform samples = %v, want ~0.5", n, mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.24 || frac > 0.26 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPerm16IsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm16(1 << 15)
	seen := make([]bool, 1<<15)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestPerm16Deterministic(t *testing.T) {
	a := New(123).Perm16(4096)
	b := New(123).Perm16(4096)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("permutations differ at %d", i)
		}
	}
}

func TestPerm16PanicsOverLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Perm16(1<<16 + 1)
}

func TestGeometricMean(t *testing.T) {
	r := New(12)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.2)
	}
	mean := float64(sum) / n
	if mean < 4.8 || mean > 5.2 {
		t.Fatalf("Geometric(0.2) mean %v, want ~5", mean)
	}
}

func TestZipfConcentration(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 1000, 1.2)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[500] {
		t.Fatalf("rank 0 (%d) not more frequent than rank 500 (%d)", counts[0], counts[500])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if float64(top10)/n < 0.2 {
		t.Fatalf("top-10 mass %v too small for s=1.2", float64(top10)/n)
	}
}

func TestZipfRange(t *testing.T) {
	r := New(14)
	z := NewZipf(r, 17, 0.8)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 17 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
	}
}

func TestUint64nUnbiasedProperty(t *testing.T) {
	// Property: all outputs within range for arbitrary n.
	f := func(seed uint64, n uint32) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Uint64n(uint64(n)) >= uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermPropertySorted(t *testing.T) {
	f := func(seed uint64) bool {
		n := 64
		p := New(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 65536, 1.1)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
