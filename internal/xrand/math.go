package xrand

import "math"

// mathPow isolates the single math dependency of this package so tests can
// assert the rest of the generator is branch-free integer arithmetic.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }
