// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// The simulator must be reproducible across runs and platforms: every
// workload, every trainer, and every randomized search is seeded
// explicitly, and the generators here have a fixed, documented algorithm
// (SplitMix64 for seeding, xoshiro256** for the stream). math/rand is
// deliberately avoided so that results cannot drift with Go releases.
package xrand

import "errors"

// SplitMix64 advances the given state by one step and returns the next
// 64-bit output. It is used to derive stream seeds from a single root seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, as recommended
// by the xoshiro authors. Two generators with the same seed produce the
// same stream forever.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&st)
	}
	// Guard against the all-zero state (cannot happen with SplitMix64
	// outputs from distinct inputs, but cheap to assert).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// State returns the generator's internal state for snapshotting. A
// generator restored with SetState continues the identical stream.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores state captured with State. The all-zero state is
// invalid for xoshiro256** (the stream would be stuck at zero).
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errAllZero
	}
	r.s = s
	return nil
}

var errAllZero = errors.New("xrand: all-zero state")

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits of the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 bits of the stream.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) produced by the
// Fisher-Yates (Durstenfeld) shuffle, matching the algorithm Whisper uses
// to order its formula search space (paper §III-B).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place with the Fisher-Yates algorithm.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Perm16 returns a Fisher-Yates permutation of [0, n) as uint16 values.
// It panics if n > 65536. Whisper's 15-bit formula space (32768 encodings)
// fits exactly; storing the permutation as uint16 keeps the shared table
// at 64KB.
func (r *Rand) Perm16(n int) []uint16 {
	if n > 1<<16 {
		panic("xrand: Perm16 limit exceeded")
	}
	p := make([]uint16, n)
	for i := range p {
		p[i] = uint16(i)
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of Bernoulli(p) trials needed for one success,
// minimum 1). Used by workload generators for run lengths.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("xrand: Geometric called with p <= 0")
	}
	n := 1
	for !r.Bool(p) {
		n++
		if n > 1<<20 { // safety bound; probability astronomically small
			return n
		}
	}
	return n
}

// Zipf samples from a bounded Zipf-like distribution over [0, n) with
// exponent s using inverse-CDF on a precomputed table. Construct with
// NewZipf; sampling is O(log n).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 0.
// Rank 0 is the most probable element.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / powf(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// powf is a minimal x^y for x > 0 implemented with exp/log via the
// identity x^y = e^(y ln x), using math-free polynomial approximations is
// overkill here; we accept the tiny dependency on the math package.
func powf(x, y float64) float64 {
	return mathPow(x, y)
}
