package spec

// A minimal YAML-subset decoder. The repository is stdlib-only, so spec
// files cannot lean on an external YAML library; instead this file
// implements exactly the subset the workload-spec schema needs and
// rejects everything else loudly:
//
//   - block mappings ("key: value", nesting by indentation)
//   - block sequences ("- item", including "- key: value" inline starts)
//   - flow sequences of scalars ("[a, b, c]")
//   - scalars: bools, base-10/base-16 integers, floats, single- or
//     double-quoted strings, bare strings
//   - comments ("# ..." to end of line) and blank lines
//
// Anchors, aliases, multi-document streams, flow mappings, block
// scalars (| and >) and tabs are rejected with a line-numbered error.
// The decoder produces the same generic shape encoding/json produces
// (map[string]any / []any / float64 / string / bool), so the strict
// schema decoder in spec.go serves both formats.

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlLine is one significant source line after comment stripping.
type yamlLine struct {
	indent int    // leading spaces
	text   string // content without indentation
	num    int    // 1-based source line number
}

// parseYAML decodes the supported YAML subset into generic values.
func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed (use spaces)", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" {
			continue
		}
		if trimmed == "---" || strings.HasPrefix(trimmed, "--- ") {
			return nil, fmt.Errorf("yaml line %d: multi-document streams are not supported", i+1)
		}
		lines = append(lines, yamlLine{
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
			num:    i + 1,
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml line %d: unexpected de-indented content %q", l.num, l.text)
	}
	return v, nil
}

// stripComment removes a trailing comment, honouring quoted strings.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

// yamlParser consumes significant lines recursively by indentation.
type yamlParser struct {
	lines []yamlLine
	pos   int
}

// block parses the run of lines at exactly the given indentation as one
// mapping or sequence.
func (p *yamlParser) block(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of document")
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.sequence(indent)
	}
	return p.mapping(indent)
}

// mapping parses "key: value" lines at the given indentation.
func (p *yamlParser) mapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("yaml line %d: sequence item in mapping context", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := scalarOrFlow(rest, l.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// No inline value: the child block is the value (or null).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

// sequence parses "- item" lines at the given indentation.
func (p *yamlParser) sequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, fmt.Errorf("yaml line %d: expected sequence item, got %q", l.num, l.text)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yaml line %d: empty sequence item", l.num)
			}
			v, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if isMappingStart(rest) {
			// "- key: value": rewrite the line as the mapping's first
			// entry at a virtual indentation two columns deeper, the
			// standard normalization for dash-inlined mappings.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, num: l.num}
			v, err := p.mapping(indent + 2)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		p.pos++
		v, err := scalarOrFlow(rest, l.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// splitKey splits "key: rest" and validates the key.
func splitKey(l yamlLine) (key, rest string, err error) {
	i := strings.Index(l.text, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yaml line %d: expected \"key: value\", got %q", l.num, l.text)
	}
	key = strings.TrimSpace(l.text[:i])
	rest = strings.TrimSpace(l.text[i+1:])
	if key == "" {
		return "", "", fmt.Errorf("yaml line %d: empty key", l.num)
	}
	if strings.ContainsAny(key, "\"'[]{}") {
		return "", "", fmt.Errorf("yaml line %d: unsupported key syntax %q", l.num, key)
	}
	if rest != "" && i+1 < len(l.text) && l.text[i+1] != ' ' {
		return "", "", fmt.Errorf("yaml line %d: missing space after colon in %q", l.num, l.text)
	}
	return key, rest, nil
}

// isMappingStart reports whether a dash-inlined item begins a mapping
// ("key: ..." with a real key, not a quoted scalar containing a colon).
func isMappingStart(s string) bool {
	if s == "" || s[0] == '"' || s[0] == '\'' || s[0] == '[' {
		return false
	}
	i := strings.Index(s, ":")
	if i <= 0 {
		return false
	}
	return i == len(s)-1 || s[i+1] == ' '
}

// scalarOrFlow parses an inline value: a flow sequence or a scalar.
func scalarOrFlow(s string, num int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow sequence %q", num, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var seq []any
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, fmt.Errorf("yaml line %d: empty element in flow sequence %q", num, s)
			}
			v, err := scalar(part, num)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("yaml line %d: flow mappings are not supported", num)
	}
	if strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") {
		return nil, fmt.Errorf("yaml line %d: block scalars are not supported", num)
	}
	if strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") {
		return nil, fmt.Errorf("yaml line %d: anchors and aliases are not supported", num)
	}
	return scalar(s, num)
}

// scalar parses one scalar token. Numbers decode as float64 to match
// encoding/json's generic shape.
func scalar(s string, num int) (any, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		if s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("yaml line %d: unterminated string %s", num, s)
		}
		body := s[1 : len(s)-1]
		if s[0] == '"' {
			unq, err := strconv.Unquote(s)
			if err != nil {
				return nil, fmt.Errorf("yaml line %d: bad escape in %s", num, s)
			}
			return unq, nil
		}
		return body, nil
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "~":
		return nil, nil
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		if u, err := strconv.ParseUint(s[2:], 16, 64); err == nil {
			return float64(u), nil
		}
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
