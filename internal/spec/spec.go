// Package spec loads declarative workload scenarios — named application
// mixes with weights, arrival processes, ordered phases, and parametric
// drift schedules — and compiles them into the deterministic
// trace.Record streams the rest of the repository consumes.
//
// A spec is a YAML (subset; see yaml.go) or JSON file describing *what*
// traffic looks like, not how to synthesize it: which catalog
// applications participate and with what weights, how bursty the
// interleaving is, how the workload changes over time (ordered phases),
// and how behaviour drifts inside a phase (input ramps, abrupt flips,
// diurnal cycles). Compile resolves it against the internal/workload
// catalog into a Scenario whose record streams replay byte-identically
// on every host, at any parallelism, from a seed-derivation scheme
// documented in docs/specs.md.
//
// The same validated spec always produces the same canonical string and
// therefore the same content hash, regardless of YAML formatting,
// comments, or key order — which is what lets experiment drivers use
// the hash as a disk-cache key.
package spec

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Arrival processes.
const (
	// ArrivalSteady emits fixed-length bursts; the app for each burst
	// is a weighted draw.
	ArrivalSteady = "steady"
	// ArrivalPoisson draws geometrically distributed burst lengths
	// (mean Burst), modeling memoryless arrivals.
	ArrivalPoisson = "poisson"
	// ArrivalBursty draws geometric burst lengths and sticks with the
	// current app with probability Stickiness, producing long dwell
	// periods on one app.
	ArrivalBursty = "bursty"
)

// Drift kinds.
const (
	// DriftNone holds the phase input constant.
	DriftNone = "none"
	// DriftRamp moves the input linearly from From to To across the
	// phase (gradual behaviour drift).
	DriftRamp = "ramp"
	// DriftFlip switches the input abruptly from From to To at
	// fraction At of the phase.
	DriftFlip = "flip"
	// DriftDiurnal cycles the input From→To→From as a triangle wave
	// with the given Period in records.
	DriftDiurnal = "diurnal"
)

// MixEntry weights one catalog application inside a mix.
type MixEntry struct {
	// App is a workload catalog name ("mysql", "kafka", ..., or
	// "spec-gcc" for the SPEC-like family).
	App string
	// Weight is the relative share of records; entries are normalized
	// over the mix. Defaults to 1.
	Weight float64
}

// Arrival describes how the interleaver schedules bursts of records.
type Arrival struct {
	// Process is one of ArrivalSteady, ArrivalPoisson, ArrivalBursty.
	Process string
	// Burst is the (mean) records per scheduling decision. Default 64.
	Burst int
	// Stickiness is the probability a bursty process stays on the
	// current app at each decision. Only valid for ArrivalBursty;
	// default 0.9.
	Stickiness float64
}

// Drift is a parametric schedule moving a phase through its apps' input
// variants over time.
type Drift struct {
	// Kind is one of DriftNone, DriftRamp, DriftFlip, DriftDiurnal.
	Kind string
	// From is the input at the phase start; defaults to the phase's
	// Input.
	From int
	// To is the destination input (ramp/flip) or the far extreme
	// (diurnal).
	To int
	// At is the flip point as a fraction of the phase in (0, 1);
	// flip only, default 0.5.
	At float64
	// Period is the cycle length in records; diurnal only.
	Period int
}

// Phase is one ordered segment of the scenario timeline.
type Phase struct {
	// Name labels the phase in tables and journals; unique per spec.
	Name string
	// Records is the phase length; defaults to the spec-level Records.
	Records int
	// Start is the optional absolute record offset of the phase; when
	// set it must equal the running total of the preceding phases
	// (validation catches overlaps and gaps).
	Start int
	// Input is the base workload input variant. Default 0.
	Input int
	// Mix overrides the spec-level mix for this phase.
	Mix []MixEntry
	// Arrival overrides the spec-level arrival process.
	Arrival *Arrival
	// Drift is the in-phase drift schedule. Default none.
	Drift Drift

	startSet bool
}

// Staleness parameterizes the staleness experiment driver.
type Staleness struct {
	// Cadences lists retraining cadences in phases: hints applied at
	// phase p were trained at phase p-(p mod c). Cadence 0 trains once
	// at phase 0 and never retrains. Default [0, 1, 2, 4].
	Cadences []int
}

// Spec is a parsed and validated workload specification.
type Spec struct {
	// Name identifies the scenario; required.
	Name string
	// Description is free documentation text, not part of the hash.
	Description string
	// Seed is the root seed every derived stream seed flows from.
	// Defaults to an FNV-1a hash of Name. Must fit in 53 bits (both
	// accepted source formats carry numbers as float64).
	Seed uint64
	// Records is the default per-phase record budget.
	Records int
	// Mix is the default application mix.
	Mix []MixEntry
	// Arrival is the default arrival process.
	Arrival Arrival
	// Phases is the ordered timeline; an absent phases list means one
	// "main" phase with the spec-level defaults.
	Phases []Phase
	// Staleness configures the staleness driver.
	Staleness Staleness
}

// Load reads, parses and validates a spec file. Files ending in .json
// parse as JSON; everything else as the YAML subset.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	format := "yaml"
	if strings.EqualFold(filepath.Ext(path), ".json") {
		format = "json"
	}
	s, err := Parse(data, format)
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and validates spec source. format is "yaml" or "json".
func Parse(data []byte, format string) (*Spec, error) {
	var v any
	switch format {
	case "json":
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("spec: bad JSON: %w", err)
		}
	case "yaml":
		var err error
		v, err = parseYAML(data)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
	default:
		return nil, fmt.Errorf("spec: unknown format %q", format)
	}
	s, err := decodeSpec(v)
	if err != nil {
		return nil, err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- strict generic decoding ------------------------------------------

// dec walks the generic (map/slice/scalar) tree with path-labelled
// errors and unknown-field rejection.
type dec struct {
	path string
	m    map[string]any
	seen map[string]bool
}

func newDec(path string, v any) (*dec, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("spec: %s: expected a mapping, got %T", path, v)
	}
	return &dec{path: path, m: m, seen: map[string]bool{}}, nil
}

// done errors on any field the caller never consumed.
func (d *dec) done() error {
	var unknown []string
	for k := range d.m {
		if !d.seen[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("spec: %s: unknown field %q", d.path, unknown[0])
}

func (d *dec) get(key string) (any, bool) {
	v, ok := d.m[key]
	d.seen[key] = true
	return v, ok
}

func (d *dec) str(key, def string) (string, error) {
	v, ok := d.get(key)
	if !ok || v == nil {
		return def, nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("spec: %s.%s: expected a string, got %v", d.path, key, v)
	}
	return s, nil
}

func (d *dec) intField(key string, def int) (int, error) {
	v, ok := d.get(key)
	if !ok || v == nil {
		return def, nil
	}
	f, ok := v.(float64)
	if !ok || f != float64(int64(f)) {
		return 0, fmt.Errorf("spec: %s.%s: expected an integer, got %v", d.path, key, v)
	}
	return int(f), nil
}

func (d *dec) floatField(key string, def float64) (float64, error) {
	v, ok := d.get(key)
	if !ok || v == nil {
		return def, nil
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("spec: %s.%s: expected a number, got %v", d.path, key, v)
	}
	return f, nil
}

func (d *dec) seqField(key string) ([]any, bool, error) {
	v, ok := d.get(key)
	if !ok || v == nil {
		return nil, false, nil
	}
	seq, ok := v.([]any)
	if !ok {
		return nil, false, fmt.Errorf("spec: %s.%s: expected a list, got %T", d.path, key, v)
	}
	return seq, true, nil
}

// maxSeed is the largest representable root seed: numbers travel as
// float64 in both source formats, so 53 bits is the exact-integer limit.
const maxSeed = 1<<53 - 1

// decodeSpec builds a Spec from the generic tree, rejecting unknown
// fields at every level.
func decodeSpec(v any) (*Spec, error) {
	d, err := newDec("spec", v)
	if err != nil {
		return nil, err
	}
	s := &Spec{}
	if s.Name, err = d.str("name", ""); err != nil {
		return nil, err
	}
	if s.Description, err = d.str("description", ""); err != nil {
		return nil, err
	}
	seed, err := d.floatField("seed", -1)
	if err != nil {
		return nil, err
	}
	switch {
	case seed < 0 && seed != -1:
		return nil, fmt.Errorf("spec: seed must be a non-negative integer")
	case seed == -1:
		h := fnv.New64a()
		h.Write([]byte(s.Name))
		s.Seed = h.Sum64()
	case seed != float64(uint64(seed)) || seed > maxSeed:
		return nil, fmt.Errorf("spec: seed must be an integer in [0, 2^53)")
	default:
		s.Seed = uint64(seed)
	}
	if s.Records, err = d.intField("records", 0); err != nil {
		return nil, err
	}
	if s.Mix, err = decodeMix(d, "spec"); err != nil {
		return nil, err
	}
	arr, err := decodeArrival(d, "spec")
	if err != nil {
		return nil, err
	}
	if arr != nil {
		s.Arrival = *arr
	} else {
		s.Arrival = Arrival{Stickiness: -1}
	}
	phSeq, havePhases, err := d.seqField("phases")
	if err != nil {
		return nil, err
	}
	if havePhases {
		for i, pv := range phSeq {
			ph, err := decodePhase(fmt.Sprintf("phases[%d]", i), pv)
			if err != nil {
				return nil, err
			}
			s.Phases = append(s.Phases, *ph)
		}
	}
	if err := decodeStaleness(d, s); err != nil {
		return nil, err
	}
	return s, d.done()
}

// decodeMix decodes an optional "mix" list on d.
func decodeMix(d *dec, where string) ([]MixEntry, error) {
	seq, ok, err := d.seqField("mix")
	if err != nil || !ok {
		return nil, err
	}
	mix := []MixEntry{} // non-nil even when empty: validation rejects it
	for i, ev := range seq {
		path := fmt.Sprintf("%s.mix[%d]", where, i)
		ed, err := newDec(path, ev)
		if err != nil {
			return nil, err
		}
		var e MixEntry
		if e.App, err = ed.str("app", ""); err != nil {
			return nil, err
		}
		if e.Weight, err = ed.floatField("weight", 1); err != nil {
			return nil, err
		}
		if err := ed.done(); err != nil {
			return nil, err
		}
		mix = append(mix, e)
	}
	return mix, nil
}

// decodeArrival decodes an optional "arrival" mapping on d.
func decodeArrival(d *dec, where string) (*Arrival, error) {
	v, ok := d.get("arrival")
	if !ok || v == nil {
		return nil, nil
	}
	ad, err := newDec(where+".arrival", v)
	if err != nil {
		return nil, err
	}
	a := &Arrival{}
	if a.Process, err = ad.str("process", ""); err != nil {
		return nil, err
	}
	if a.Burst, err = ad.intField("burst", 0); err != nil {
		return nil, err
	}
	if a.Stickiness, err = ad.floatField("stickiness", -1); err != nil {
		return nil, err
	}
	return a, ad.done()
}

// decodePhase decodes one phases[] element.
func decodePhase(path string, v any) (*Phase, error) {
	pd, err := newDec(path, v)
	if err != nil {
		return nil, err
	}
	ph := &Phase{}
	if ph.Name, err = pd.str("name", ""); err != nil {
		return nil, err
	}
	if ph.Records, err = pd.intField("records", 0); err != nil {
		return nil, err
	}
	start, err := pd.intField("start", -1)
	if err != nil {
		return nil, err
	}
	if start >= 0 {
		ph.Start, ph.startSet = start, true
	} else if start != -1 {
		return nil, fmt.Errorf("spec: %s.start: must be non-negative", path)
	}
	if ph.Input, err = pd.intField("input", 0); err != nil {
		return nil, err
	}
	if ph.Mix, err = decodeMix(pd, path); err != nil {
		return nil, err
	}
	if ph.Arrival, err = decodeArrival(pd, path); err != nil {
		return nil, err
	}
	ph.Drift = Drift{From: -1, To: -1, At: 0.5}
	if dv, ok := pd.get("drift"); ok && dv != nil {
		dd, err := newDec(path+".drift", dv)
		if err != nil {
			return nil, err
		}
		if ph.Drift.Kind, err = dd.str("kind", DriftNone); err != nil {
			return nil, err
		}
		if ph.Drift.From, err = dd.intField("from", -1); err != nil {
			return nil, err
		}
		if ph.Drift.To, err = dd.intField("to", -1); err != nil {
			return nil, err
		}
		if ph.Drift.At, err = dd.floatField("at", 0.5); err != nil {
			return nil, err
		}
		if ph.Drift.Period, err = dd.intField("period", 0); err != nil {
			return nil, err
		}
		if err := dd.done(); err != nil {
			return nil, err
		}
	}
	return ph, pd.done()
}

// decodeStaleness decodes the optional "staleness" mapping.
func decodeStaleness(d *dec, s *Spec) error {
	v, ok := d.get("staleness")
	if !ok || v == nil {
		return nil
	}
	sd, err := newDec("spec.staleness", v)
	if err != nil {
		return err
	}
	seq, ok, err := sd.seqField("cadences")
	if err != nil {
		return err
	}
	if ok {
		for i, cv := range seq {
			f, isNum := cv.(float64)
			if !isNum || f != float64(int(f)) || f < 0 {
				return fmt.Errorf("spec: spec.staleness.cadences[%d]: expected a non-negative integer, got %v", i, cv)
			}
			s.Staleness.Cadences = append(s.Staleness.Cadences, int(f))
		}
	}
	return sd.done()
}

// --- validation and defaults ------------------------------------------

// validate fills defaults and checks every cross-field rule. After a
// successful validate, the spec is fully resolved: every phase has a
// name, records, mix, arrival and drift, and Start offsets tile the
// timeline exactly.
func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: missing required field \"name\"")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.') {
			return fmt.Errorf("spec: name %q: only [A-Za-z0-9._-] allowed", s.Name)
		}
	}
	if err := validateArrival(&s.Arrival, "spec.arrival"); err != nil {
		return err
	}
	if s.Mix != nil {
		if err := validateMix(s.Mix, "spec.mix"); err != nil {
			return err
		}
	}
	if len(s.Phases) == 0 {
		s.Phases = []Phase{{Name: "main", Drift: Drift{From: -1, To: -1, At: 0.5}}}
	}
	names := map[string]bool{}
	offset := 0
	for i := range s.Phases {
		ph := &s.Phases[i]
		path := fmt.Sprintf("phases[%d]", i)
		if ph.Name == "" {
			ph.Name = fmt.Sprintf("phase%d", i)
		}
		if names[ph.Name] {
			return fmt.Errorf("spec: %s: duplicate phase name %q", path, ph.Name)
		}
		names[ph.Name] = true
		if ph.Records == 0 {
			ph.Records = s.Records
		}
		if ph.Records <= 0 {
			return fmt.Errorf("spec: %s (%s): needs a positive record count (set records on the phase or the spec)", path, ph.Name)
		}
		if ph.startSet {
			if ph.Start < offset {
				return fmt.Errorf("spec: %s (%s): start %d overlaps the preceding phase (which ends at %d)",
					path, ph.Name, ph.Start, offset)
			}
			if ph.Start > offset {
				return fmt.Errorf("spec: %s (%s): start %d leaves a gap after the preceding phase (which ends at %d)",
					path, ph.Name, ph.Start, offset)
			}
		}
		ph.Start = offset
		offset += ph.Records
		if ph.Mix == nil {
			ph.Mix = s.Mix
		}
		if ph.Mix == nil {
			return fmt.Errorf("spec: %s (%s): no mix (set mix on the phase or the spec)", path, ph.Name)
		}
		if err := validateMix(ph.Mix, path+".mix"); err != nil {
			return err
		}
		if ph.Arrival == nil {
			a := s.Arrival
			ph.Arrival = &a
		} else if err := validateArrival(ph.Arrival, path+".arrival"); err != nil {
			return err
		}
		if ph.Input < 0 {
			return fmt.Errorf("spec: %s (%s): input must be non-negative", path, ph.Name)
		}
		if err := validateDrift(ph, path); err != nil {
			return err
		}
	}
	if s.Mix == nil {
		s.Mix = s.Phases[0].Mix
	}
	cad := s.Staleness.Cadences
	if cad == nil {
		cad = []int{0, 1, 2, 4}
	}
	seen := map[int]bool{}
	for _, c := range cad {
		if seen[c] {
			return fmt.Errorf("spec: spec.staleness.cadences: duplicate cadence %d", c)
		}
		seen[c] = true
	}
	s.Staleness.Cadences = cad
	return nil
}

// validateMix checks one resolved mix.
func validateMix(mix []MixEntry, path string) error {
	if len(mix) == 0 {
		return fmt.Errorf("spec: %s: mix must not be empty", path)
	}
	seen := map[string]bool{}
	for i := range mix {
		e := &mix[i]
		if e.App == "" {
			return fmt.Errorf("spec: %s[%d]: missing app name", path, i)
		}
		if seen[e.App] {
			return fmt.Errorf("spec: %s[%d]: duplicate app %q", path, i, e.App)
		}
		seen[e.App] = true
		if e.Weight <= 0 {
			return fmt.Errorf("spec: %s[%d] (%s): weight must be positive", path, i, e.App)
		}
	}
	return nil
}

// validateArrival fills defaults and checks one arrival config.
func validateArrival(a *Arrival, path string) error {
	if a.Process == "" {
		a.Process = ArrivalSteady
	}
	switch a.Process {
	case ArrivalSteady, ArrivalPoisson, ArrivalBursty:
	default:
		return fmt.Errorf("spec: %s.process: unknown arrival process %q (want %s, %s or %s)",
			path, a.Process, ArrivalSteady, ArrivalPoisson, ArrivalBursty)
	}
	if a.Burst == 0 {
		a.Burst = 64
	}
	if a.Burst < 1 {
		return fmt.Errorf("spec: %s.burst: must be >= 1", path)
	}
	if a.Stickiness == -1 {
		if a.Process == ArrivalBursty {
			a.Stickiness = 0.9
		} else {
			a.Stickiness = 0
		}
	} else {
		if a.Process != ArrivalBursty {
			return fmt.Errorf("spec: %s.stickiness: only valid for the %s process", path, ArrivalBursty)
		}
		if a.Stickiness < 0 || a.Stickiness >= 1 {
			return fmt.Errorf("spec: %s.stickiness: must be in [0, 1)", path)
		}
	}
	return nil
}

// validateDrift fills drift defaults and checks ranges. Input-variant
// upper bounds are checked at compile time, once apps are resolved.
func validateDrift(ph *Phase, path string) error {
	d := &ph.Drift
	if d.Kind == "" {
		d.Kind = DriftNone
	}
	if d.From == -1 {
		d.From = ph.Input
	}
	switch d.Kind {
	case DriftNone:
		if d.To != -1 || d.Period != 0 {
			return fmt.Errorf("spec: %s.drift: to/period are only valid with a drifting kind", path)
		}
		d.To = d.From
		d.At = 0
	case DriftRamp:
		if d.To == -1 {
			return fmt.Errorf("spec: %s.drift: ramp needs \"to\"", path)
		}
		d.At = 0
	case DriftFlip:
		if d.To == -1 {
			return fmt.Errorf("spec: %s.drift: flip needs \"to\"", path)
		}
		if d.At <= 0 || d.At >= 1 {
			return fmt.Errorf("spec: %s.drift.at: must be in (0, 1)", path)
		}
	case DriftDiurnal:
		if d.To == -1 {
			return fmt.Errorf("spec: %s.drift: diurnal needs \"to\"", path)
		}
		if d.Period <= 1 {
			return fmt.Errorf("spec: %s.drift.period: diurnal needs a period > 1", path)
		}
		d.At = 0
	default:
		return fmt.Errorf("spec: %s.drift.kind: unknown drift kind %q (want %s, %s, %s or %s)",
			path, d.Kind, DriftNone, DriftRamp, DriftFlip, DriftDiurnal)
	}
	if d.From < 0 || d.To < 0 {
		return fmt.Errorf("spec: %s.drift: from/to must be non-negative", path)
	}
	if d.Kind != DriftDiurnal {
		d.Period = 0
	}
	return nil
}

// --- canonical form and hashing ---------------------------------------

// Canonical renders the fully resolved spec as a stable one-line string:
// two specs that compile to the same scenario produce the same canonical
// form regardless of source format, comments, key order, or omitted
// defaults. Description is documentation and is excluded.
func (s *Spec) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "specv1{name=%s;seed=%d", s.Name, s.Seed)
	b.WriteString(";phases=[")
	for i := range s.Phases {
		ph := &s.Phases[i]
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "{name=%s;start=%d;records=%d;input=%d;mix=[", ph.Name, ph.Start, ph.Records, ph.Input)
		for j, e := range ph.Mix {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%g", e.App, e.Weight)
		}
		fmt.Fprintf(&b, "];arrival={%s;burst=%d;stick=%g}", ph.Arrival.Process, ph.Arrival.Burst, ph.Arrival.Stickiness)
		fmt.Fprintf(&b, ";drift={%s;from=%d;to=%d;at=%g;period=%d}}",
			ph.Drift.Kind, ph.Drift.From, ph.Drift.To, ph.Drift.At, ph.Drift.Period)
	}
	b.WriteString("];cadences=[")
	for i, c := range s.Staleness.Cadences {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteString("]}")
	return b.String()
}

// Hash returns the hex SHA-256 of the canonical form — the spec's
// identity in disk-cache keys and run journals.
func (s *Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return fmt.Sprintf("%x", sum[:])
}

// TotalRecords sums the phase record budgets.
func (s *Spec) TotalRecords() int {
	n := 0
	for i := range s.Phases {
		n += s.Phases[i].Records
	}
	return n
}
