package spec

import (
	"strings"
	"testing"
)

// fullYAML exercises every schema field.
const fullYAML = `
name: full-demo
description: exercises every field
seed: 1234
records: 3000
mix:
  - app: mysql
    weight: 2
  - app: kafka
arrival:
  process: poisson
  burst: 32
phases:
  - name: warm
    input: 0
  - name: drift
    records: 2000
    mix:
      - app: mysql
    arrival:
      process: bursty
      burst: 128
      stickiness: 0.8
    drift:
      kind: ramp
      from: 0
      to: 3
  - name: cycle
    drift:
      kind: diurnal
      to: 2
      period: 500
staleness:
  cadences: [0, 1, 2]
`

// fullJSON is the same spec in JSON, with keys shuffled and defaults
// spelled out differently; it must hash identically.
const fullJSON = `{
  "seed": 1234,
  "name": "full-demo",
  "records": 3000,
  "arrival": {"burst": 32, "process": "poisson"},
  "mix": [
    {"weight": 2, "app": "mysql"},
    {"app": "kafka", "weight": 1}
  ],
  "phases": [
    {"name": "warm", "input": 0},
    {"name": "drift", "records": 2000,
     "mix": [{"app": "mysql"}],
     "arrival": {"process": "bursty", "burst": 128, "stickiness": 0.8},
     "drift": {"kind": "ramp", "from": 0, "to": 3}},
    {"name": "cycle", "drift": {"kind": "diurnal", "to": 2, "period": 500}}
  ],
  "staleness": {"cadences": [0, 1, 2]}
}`

func TestParseFullSpec(t *testing.T) {
	s, err := Parse([]byte(fullYAML), "yaml")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "full-demo" || s.Seed != 1234 {
		t.Fatalf("header: %+v", s)
	}
	if len(s.Phases) != 3 {
		t.Fatalf("phases: %d", len(s.Phases))
	}
	if s.Phases[0].Records != 3000 || s.Phases[1].Records != 2000 {
		t.Fatalf("phase records: %+v", s.Phases)
	}
	if s.Phases[0].Start != 0 || s.Phases[1].Start != 3000 || s.Phases[2].Start != 5000 {
		t.Fatalf("phase starts: %+v", s.Phases)
	}
	if got := s.TotalRecords(); got != 8000 {
		t.Fatalf("total records: %d", got)
	}
	// Inherited defaults.
	if a := s.Phases[0].Arrival; a.Process != ArrivalPoisson || a.Burst != 32 {
		t.Fatalf("phase 0 inherited arrival: %+v", a)
	}
	if len(s.Phases[0].Mix) != 2 || s.Phases[0].Mix[1].Weight != 1 {
		t.Fatalf("phase 0 inherited mix: %+v", s.Phases[0].Mix)
	}
	if d := s.Phases[1].Drift; d.Kind != DriftRamp || d.To != 3 {
		t.Fatalf("drift: %+v", d)
	}
	if d := s.Phases[2].Drift; d.Kind != DriftDiurnal || d.From != 0 || d.Period != 500 {
		t.Fatalf("diurnal drift defaults: %+v", d)
	}
}

func TestYAMLAndJSONHashIdentically(t *testing.T) {
	y, err := Parse([]byte(fullYAML), "yaml")
	if err != nil {
		t.Fatal(err)
	}
	j, err := Parse([]byte(fullJSON), "json")
	if err != nil {
		t.Fatal(err)
	}
	if y.Canonical() != j.Canonical() {
		t.Fatalf("canonical forms differ:\nyaml: %s\njson: %s", y.Canonical(), j.Canonical())
	}
	if y.Hash() != j.Hash() {
		t.Fatalf("hashes differ: %s vs %s", y.Hash(), j.Hash())
	}
}

func TestHashIgnoresFormattingButNotSemantics(t *testing.T) {
	base, err := Parse([]byte("name: h\nrecords: 100\nmix:\n  - app: mysql\n"), "yaml")
	if err != nil {
		t.Fatal(err)
	}
	commented, err := Parse([]byte("# reflowed\nname: h   # same spec\nrecords: 100\nmix:\n  - app: mysql\n    weight: 1\n"), "yaml")
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() != commented.Hash() {
		t.Fatal("comment/formatting changes must not change the hash")
	}
	changed, err := Parse([]byte("name: h\nrecords: 101\nmix:\n  - app: mysql\n"), "yaml")
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() == changed.Hash() {
		t.Fatal("a semantic change must change the hash")
	}
}

func TestDefaultSeedDerivesFromName(t *testing.T) {
	a, _ := Parse([]byte("name: one\nrecords: 10\nmix:\n  - app: mysql\n"), "yaml")
	b, _ := Parse([]byte("name: two\nrecords: 10\nmix:\n  - app: mysql\n"), "yaml")
	if a == nil || b == nil {
		t.Fatal("parse failed")
	}
	if a.Seed == 0 || a.Seed == b.Seed {
		t.Fatalf("default seeds should differ by name: %d vs %d", a.Seed, b.Seed)
	}
}

func TestMalformedSpecs(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing name", "records: 10\nmix:\n  - app: mysql\n", "name"},
		{"unknown top-level field", "name: x\nrecords: 10\nrecrods: 5\nmix:\n  - app: mysql\n", "unknown field \"recrods\""},
		{"unknown phase field", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    recordz: 5\n", "unknown field \"recordz\""},
		{"unknown drift field", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    drift:\n      kind: ramp\n      to: 1\n      slope: 2\n", "unknown field \"slope\""},
		{"bad arrival process", "name: x\nrecords: 10\nmix:\n  - app: mysql\narrival:\n  process: fractal\n", "unknown arrival process \"fractal\""},
		{"stickiness on steady", "name: x\nrecords: 10\nmix:\n  - app: mysql\narrival:\n  process: steady\n  stickiness: 0.5\n", "stickiness"},
		{"overlapping phases", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: a\n    records: 100\n  - name: b\n    start: 50\n    records: 100\n", "overlaps"},
		{"gapped phases", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: a\n    records: 100\n  - name: b\n    start: 150\n    records: 100\n", "gap"},
		{"duplicate phase name", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: a\n  - name: a\n", "duplicate phase name"},
		{"empty mix", "name: x\nrecords: 10\nmix: []\n", "mix must not be empty"},
		{"duplicate mix app", "name: x\nrecords: 10\nmix:\n  - app: mysql\n  - app: mysql\n", "duplicate app"},
		{"bad weight", "name: x\nrecords: 10\nmix:\n  - app: mysql\n    weight: 0\n", "weight must be positive"},
		{"no records anywhere", "name: x\nmix:\n  - app: mysql\n", "positive record count"},
		{"bad drift kind", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    drift:\n      kind: spiral\n      to: 1\n", "unknown drift kind"},
		{"ramp without to", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    drift:\n      kind: ramp\n", "needs \"to\""},
		{"flip at out of range", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    drift:\n      kind: flip\n      to: 1\n      at: 1.5\n", "must be in (0, 1)"},
		{"diurnal without period", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    drift:\n      kind: diurnal\n      to: 1\n", "period"},
		{"drift params without kind", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    drift:\n      to: 3\n", "drifting kind"},
		{"bad seed", "name: x\nseed: 1.5\nrecords: 10\nmix:\n  - app: mysql\n", "seed"},
		{"bad name chars", "name: \"a b\"\nrecords: 10\nmix:\n  - app: mysql\n", "A-Za-z0-9"},
		{"duplicate cadence", "name: x\nrecords: 10\nmix:\n  - app: mysql\nstaleness:\n  cadences: [1, 1]\n", "duplicate cadence"},
		{"negative cadence", "name: x\nrecords: 10\nmix:\n  - app: mysql\nstaleness:\n  cadences: [-1]\n", "non-negative"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.src), "yaml")
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown app", "name: x\nrecords: 10\nmix:\n  - app: nosuchapp\n", "unknown app"},
		{"input out of range", "name: x\nrecords: 10\nmix:\n  - app: mysql\nphases:\n  - name: p\n    drift:\n      kind: ramp\n      to: 99\n", "out of range"},
	}
	for _, tc := range cases {
		s, err := Parse([]byte(tc.src), "yaml")
		if err != nil {
			t.Errorf("%s: parse failed early: %v", tc.name, err)
			continue
		}
		_, err = Compile(s)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}
