package spec

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
)

const scenarioYAML = `
name: scenario-test
seed: 99
records: 1200
mix:
  - app: mysql
    weight: 2
  - app: kafka
arrival:
  process: bursty
  burst: 48
  stickiness: 0.7
phases:
  - name: steady
  - name: ramped
    drift:
      kind: ramp
      to: 3
  - name: cycling
    drift:
      kind: diurnal
      to: 2
      period: 400
`

func mustScenario(t *testing.T, src string) *Scenario {
	t.Helper()
	s, err := Parse([]byte(src), "yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func collect(t *testing.T, s trace.Stream) []trace.Record {
	t.Helper()
	var recs []trace.Record
	var rec trace.Record
	for s.Next(&rec) {
		recs = append(recs, rec)
	}
	return recs
}

// TestScenarioDeterminism is the replay contract: two independent
// compiles of the same source produce identical record streams.
func TestScenarioDeterminism(t *testing.T) {
	a := mustScenario(t, scenarioYAML)
	b := mustScenario(t, scenarioYAML)
	ra := collect(t, a.Stream())
	rb := collect(t, b.Stream())
	if len(ra) != len(rb) {
		t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

// TestPhaseStreamIndependence: a phase stream is identical whether or
// not earlier phases were consumed first — the property that lets
// drivers simulate phases as parallel units.
func TestPhaseStreamIndependence(t *testing.T) {
	sc := mustScenario(t, scenarioYAML)
	fresh := collect(t, sc.PhaseStream(2))

	again := mustScenario(t, scenarioYAML)
	collect(t, again.PhaseStream(0))
	collect(t, again.PhaseStream(1))
	after := collect(t, again.PhaseStream(2))

	if len(fresh) != len(after) {
		t.Fatalf("lengths differ: %d vs %d", len(fresh), len(after))
	}
	for i := range fresh {
		if fresh[i] != after[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestConcatenationMatchesPhases: the full stream is exactly the phase
// streams played back to back.
func TestConcatenationMatchesPhases(t *testing.T) {
	sc := mustScenario(t, scenarioYAML)
	full := collect(t, sc.Stream())
	var phased []trace.Record
	for i := range sc.Phases {
		phased = append(phased, collect(t, sc.PhaseStream(i))...)
	}
	if len(full) != len(phased) {
		t.Fatalf("lengths differ: %d vs %d", len(full), len(phased))
	}
	for i := range full {
		if full[i] != phased[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(full) != sc.TotalRecords() {
		t.Fatalf("stream produced %d records, spec says %d", len(full), sc.TotalRecords())
	}
}

// TestAppRebasingDisjoint: records from different mix apps occupy
// disjoint 4GB PC regions, so branches can never alias across apps.
func TestAppRebasingDisjoint(t *testing.T) {
	sc := mustScenario(t, scenarioYAML)
	if len(sc.Apps) != 2 {
		t.Fatalf("apps: %d", len(sc.Apps))
	}
	if sc.Apps[0].Offset != 0 || sc.Apps[1].Offset != 1<<32 {
		t.Fatalf("offsets: %#x %#x", sc.Apps[0].Offset, sc.Apps[1].Offset)
	}
	regions := map[uint64]bool{}
	for _, rec := range collect(t, sc.PhaseStream(0)) {
		regions[rec.PC>>32] = true
	}
	if len(regions) != 2 {
		t.Fatalf("expected PCs in 2 regions, saw %d", len(regions))
	}
}

// TestWeightsShapeTheMix: a 2:1 weighting lands roughly 2/3 of records
// on the heavier app. Uses a steady arrival with small bursts so the
// share concentrates tightly around the weights.
func TestWeightsShapeTheMix(t *testing.T) {
	sc := mustScenario(t, `
name: weights
seed: 7
records: 24000
mix:
  - app: mysql
    weight: 2
  - app: kafka
arrival:
  process: steady
  burst: 16
`)
	var heavy, total int
	for _, rec := range collect(t, sc.Stream()) {
		if rec.PC>>32 == 0 { // mysql, the first (weight 2) app
			heavy++
		}
		total++
	}
	frac := float64(heavy) / float64(total)
	if frac < 0.60 || frac > 0.74 {
		t.Fatalf("heavy-app share %.3f implausible for weight 2/3", frac)
	}
}

func TestDriftSchedules(t *testing.T) {
	ramp := &Drift{Kind: DriftRamp, From: 0, To: 3}
	if got := driftInput(ramp, 0, 0, 1000); got != 0 {
		t.Fatalf("ramp start: %d", got)
	}
	if got := driftInput(ramp, 0, 999, 1000); got != 3 {
		t.Fatalf("ramp end: %d", got)
	}
	mono := -1
	for pos := 0; pos < 1000; pos++ {
		v := driftInput(ramp, 0, pos, 1000)
		if v < mono {
			t.Fatalf("ramp not monotone at %d", pos)
		}
		mono = v
	}

	flip := &Drift{Kind: DriftFlip, From: 1, To: 4, At: 0.25}
	if got := driftInput(flip, 0, 249, 1000); got != 1 {
		t.Fatalf("pre-flip: %d", got)
	}
	if got := driftInput(flip, 0, 250, 1000); got != 4 {
		t.Fatalf("post-flip: %d", got)
	}

	di := &Drift{Kind: DriftDiurnal, From: 0, To: 2, Period: 400}
	if got := driftInput(di, 0, 0, 10000); got != 0 {
		t.Fatalf("diurnal trough: %d", got)
	}
	if got := driftInput(di, 0, 200, 10000); got != 2 {
		t.Fatalf("diurnal peak: %d", got)
	}
	if got := driftInput(di, 0, 400, 10000); got != 0 {
		t.Fatalf("diurnal wraps: %d", got)
	}
	for pos := 0; pos < 2000; pos++ {
		v := driftInput(di, 0, pos, 10000)
		if v < 0 || v > 2 {
			t.Fatalf("diurnal out of band at %d: %d", pos, v)
		}
	}
}

// TestSeedDerivationIsStable pins the derivation scheme: changing it
// would silently invalidate every committed golden file and cache key,
// so the constants are locked here.
func TestSeedDerivationIsStable(t *testing.T) {
	a := deriveSeed(99, "arrival", 0)
	b := deriveSeed(99, "arrival", 1)
	c := deriveSeed(99, "drift", 0)
	d := deriveSeed(100, "arrival", 0)
	if a == b || a == c || a == d {
		t.Fatalf("seed collisions: %d %d %d %d", a, b, c, d)
	}
	if again := deriveSeed(99, "arrival", 0); again != a {
		t.Fatalf("derivation not stable: %d vs %d", again, a)
	}
}
