package spec

// Compilation: resolving a validated Spec against the workload catalog
// into a Scenario, and synthesizing the deterministic record streams.
//
// Determinism contract (documented in docs/specs.md): every random
// decision the interleaver makes flows from a seed derived as
//
//	phaseSeed = SplitMix64(rootSeed XOR FNV-1a(label) XOR GOLDEN*(index+1))
//
// where label names the decision stream ("arrival") and index is the
// phase position. Per-app record content comes from the catalog apps'
// own fixed seeds via workload.App.Stream, which is already
// deterministic per (app, input). Nothing reads global state, so the
// same spec replays byte-identically on every host, at any -j, and
// PhaseStream(i) is independent of whether earlier phases were consumed.

import (
	"fmt"
	"hash/fnv"

	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// golden is the splitmix64 increment, reused for index separation.
const golden = 0x9E3779B97F4A7C15

// deriveSeed maps (root, label, index) to an independent stream seed.
func deriveSeed(root uint64, label string, index int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	st := root ^ h.Sum64() ^ golden*uint64(index+1)
	return xrand.SplitMix64(&st)
}

// appOffsetShift rebases each mix app into its own 4GB PC region so
// branches from different catalog apps can never alias: profiles,
// trained hints and runtime predictions all see the rebased PCs.
const appOffsetShift = 32

// ScenarioApp is one resolved application of the scenario with its PC
// rebasing offset.
type ScenarioApp struct {
	// App is the instantiated catalog application.
	App *workload.App
	// Offset is added to every PC and Target the app emits into the
	// scenario stream. The first referenced app keeps offset 0.
	Offset uint64
}

// ScenarioPhase is one compiled segment of the timeline.
type ScenarioPhase struct {
	// Name, Records, Start, Input mirror the validated Phase.
	Name    string
	Records int
	Start   int
	Input   int
	// Arrival and Drift are the resolved schedules.
	Arrival Arrival
	Drift   Drift
	// AppIdx indexes Scenario.Apps for each mix entry; Cum is the
	// cumulative normalized weight used for draws.
	AppIdx []int
	Cum    []float64
	// Seed drives this phase's arrival decisions.
	Seed uint64
}

// Scenario is a compiled, replayable workload specification.
type Scenario struct {
	// Spec is the validated source spec.
	Spec *Spec
	// Apps lists every referenced application once, in first-reference
	// order.
	Apps []ScenarioApp
	// Phases is the compiled timeline.
	Phases []ScenarioPhase
}

// Compile resolves the spec against the workload catalog. It fails on
// unknown app names and on drift schedules that exceed an app's input
// variants.
func Compile(s *Spec) (*Scenario, error) {
	sc := &Scenario{Spec: s}
	appIdx := map[string]int{}
	resolve := func(name string) (int, error) {
		if i, ok := appIdx[name]; ok {
			return i, nil
		}
		app := lookupApp(name)
		if app == nil {
			return 0, fmt.Errorf("spec %s: unknown app %q (want a Table I name like \"mysql\" or a \"spec-*\" family member)", s.Name, name)
		}
		i := len(sc.Apps)
		appIdx[name] = i
		sc.Apps = append(sc.Apps, ScenarioApp{App: app, Offset: uint64(i) << appOffsetShift})
		return i, nil
	}
	for pi := range s.Phases {
		ph := &s.Phases[pi]
		cp := ScenarioPhase{
			Name:    ph.Name,
			Records: ph.Records,
			Start:   ph.Start,
			Input:   ph.Input,
			Arrival: *ph.Arrival,
			Drift:   ph.Drift,
			Seed:    deriveSeed(s.Seed, "arrival", pi),
		}
		var total float64
		for _, e := range ph.Mix {
			ai, err := resolve(e.App)
			if err != nil {
				return nil, err
			}
			cp.AppIdx = append(cp.AppIdx, ai)
			total += e.Weight
		}
		run := 0.0
		for _, e := range ph.Mix {
			run += e.Weight / total
			cp.Cum = append(cp.Cum, run)
		}
		cp.Cum[len(cp.Cum)-1] = 1 // guard rounding at the top end
		// The phase's input span must exist on every app in its mix.
		maxIn := cp.Input
		for _, in := range []int{cp.Drift.From, cp.Drift.To} {
			if in > maxIn {
				maxIn = in
			}
		}
		for k, ai := range cp.AppIdx {
			if n := sc.Apps[ai].App.Inputs(); maxIn >= n {
				return nil, fmt.Errorf("spec %s: phases[%d] (%s): input %d out of range for app %q (has inputs 0..%d)",
					s.Name, pi, ph.Name, maxIn, ph.Mix[k].App, n-1)
			}
		}
		sc.Phases = append(sc.Phases, cp)
	}
	return sc, nil
}

// lookupApp resolves a catalog name: the 12 Table I applications, the
// extra workload families, or the SPEC2017-like family ("spec-gcc", ...).
func lookupApp(name string) *workload.App {
	return workload.AppByName(name)
}

// TotalRecords sums the phase budgets.
func (sc *Scenario) TotalRecords() int { return sc.Spec.TotalRecords() }

// Hash is the spec's content hash (see Spec.Hash).
func (sc *Scenario) Hash() string { return sc.Spec.Hash() }

// Name is the spec's name.
func (sc *Scenario) Name() string { return sc.Spec.Name }

// WorkloadApps returns the resolved *workload.App list, for drivers
// that report per-app context.
func (sc *Scenario) WorkloadApps() []*workload.App {
	apps := make([]*workload.App, len(sc.Apps))
	for i := range sc.Apps {
		apps[i] = sc.Apps[i].App
	}
	return apps
}

// PhaseStream returns phase i's record stream from its beginning. The
// stream is self-contained: it does not depend on any other phase
// having been consumed, which is what lets experiment drivers simulate
// phases as independent parallel units.
func (sc *Scenario) PhaseStream(i int) trace.Stream {
	if i < 0 || i >= len(sc.Phases) {
		panic(fmt.Sprintf("spec: phase %d out of range", i))
	}
	ph := &sc.Phases[i]
	return &phaseStream{
		sc:   sc,
		ph:   ph,
		rng:  xrand.New(ph.Seed),
		gens: map[genKey]trace.Stream{},
	}
}

// Stream returns the whole scenario timeline: phases concatenated in
// order.
func (sc *Scenario) Stream() trace.Stream {
	return &concatStream{sc: sc}
}

// InputAt evaluates phase i's drift schedule at record position pos
// (0-based within the phase): the workload input variant in effect.
func (sc *Scenario) InputAt(i, pos int) int {
	ph := &sc.Phases[i]
	return driftInput(&ph.Drift, ph.Input, pos, ph.Records)
}

// driftInput is the pure drift schedule: deterministic in (pos, total).
func driftInput(d *Drift, base, pos, total int) int {
	from, to := d.From, d.To
	switch d.Kind {
	case DriftRamp:
		// Linear interpolation rounding toward from; the final record
		// lands exactly on to.
		span := to - from
		if total <= 1 {
			return to
		}
		return from + span*pos/(total-1)
	case DriftFlip:
		if float64(pos) < d.At*float64(total) {
			return from
		}
		return to
	case DriftDiurnal:
		// Triangle wave from→to→from per period.
		c := pos % d.Period
		half := d.Period / 2
		span := to - from
		if c < half {
			return from + span*c/half
		}
		return to - span*(c-half)/(d.Period-half)
	default:
		return base
	}
}

// genKey identifies one per-(app, input) generator inside a phase.
type genKey struct{ app, input int }

// phaseStream interleaves per-app generator streams according to the
// phase's arrival process and drift schedule.
type phaseStream struct {
	sc  *Scenario
	ph  *ScenarioPhase
	rng *xrand.Rand
	// gens holds the lazily created catalog streams; each is capped at
	// the phase budget so it can never run dry before the phase does.
	gens      map[genKey]trace.Stream
	emitted   int
	burstLeft int
	curMix    int // index into ph.AppIdx
	curInput  int
	started   bool
}

// Next implements trace.Stream.
func (p *phaseStream) Next(rec *trace.Record) bool {
	if p.emitted >= p.ph.Records {
		return false
	}
	if p.burstLeft == 0 {
		p.schedule()
	}
	ai := p.ph.AppIdx[p.curMix]
	key := genKey{app: ai, input: p.curInput}
	g, ok := p.gens[key]
	if !ok {
		g = p.sc.Apps[ai].App.Stream(p.curInput, p.ph.Records)
		p.gens[key] = g
	}
	if !g.Next(rec) {
		return false // unreachable: generators outlast the phase budget
	}
	off := p.sc.Apps[ai].Offset
	rec.PC += off
	rec.Target += off
	p.emitted++
	p.burstLeft--
	return true
}

// schedule makes the next arrival decision: which app, which input,
// how many records.
func (p *phaseStream) schedule() {
	ph := p.ph
	p.curInput = driftInput(&ph.Drift, ph.Input, p.emitted, ph.Records)
	switch {
	case len(ph.AppIdx) == 1:
		p.curMix = 0
	case ph.Arrival.Process == ArrivalBursty && p.started && p.rng.Bool(ph.Arrival.Stickiness):
		// Sticky: dwell on the current app.
	default:
		u := p.rng.Float64()
		p.curMix = len(ph.Cum) - 1
		for k, c := range ph.Cum {
			if u < c {
				p.curMix = k
				break
			}
		}
	}
	p.started = true
	switch ph.Arrival.Process {
	case ArrivalSteady:
		p.burstLeft = ph.Arrival.Burst
	default: // poisson, bursty: geometric dwell with mean Burst
		p.burstLeft = p.rng.Geometric(1 / float64(ph.Arrival.Burst))
	}
	if left := ph.Records - p.emitted; p.burstLeft > left {
		p.burstLeft = left
	}
}

// concatStream plays the scenario's phases back to back.
type concatStream struct {
	sc  *Scenario
	cur trace.Stream
	idx int
}

// Next implements trace.Stream.
func (c *concatStream) Next(rec *trace.Record) bool {
	for {
		if c.cur == nil {
			if c.idx >= len(c.sc.Phases) {
				return false
			}
			c.cur = c.sc.PhaseStream(c.idx)
			c.idx++
		}
		if c.cur.Next(rec) {
			return true
		}
		c.cur = nil
	}
}
