package spec

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLBasic(t *testing.T) {
	src := `
# a comment
name: demo            # trailing comment
count: 42
ratio: 0.5
flag: true
quoted: "a # not a comment"
nested:
  inner: x
  deeper:
    leaf: 7
list:
  - 1
  - 2
flow: [a, 1, true]
maps:
  - app: mysql
    weight: 2
  - app: kafka
`
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":   "demo",
		"count":  42.0,
		"ratio":  0.5,
		"flag":   true,
		"quoted": "a # not a comment",
		"nested": map[string]any{
			"inner":  "x",
			"deeper": map[string]any{"leaf": 7.0},
		},
		"list": []any{1.0, 2.0},
		"flow": []any{"a", 1.0, true},
		"maps": []any{
			map[string]any{"app": "mysql", "weight": 2.0},
			map[string]any{"app": "kafka"},
		},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", v, want)
	}
}

func TestParseYAMLHexAndQuotes(t *testing.T) {
	v, err := parseYAML([]byte("seed: 0xCA55\nsingle: 'hello world'\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["seed"] != float64(0xCA55) {
		t.Fatalf("hex seed: got %v", m["seed"])
	}
	if m["single"] != "hello world" {
		t.Fatalf("single-quoted: got %v", m["single"])
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"tab":           "a:\n\tb: 1\n",
		"flow mapping":  "a: {x: 1}\n",
		"block scalar":  "a: |\n  text\n",
		"anchor":        "a: &x 1\n",
		"duplicate key": "a: 1\na: 2\n",
		"multi-doc":     "---\na: 1\n",
		"bad indent":    "a:\n  b: 1\n c: 2\n",
		"no colon":      "a: 1\njust words\n",
		"empty":         "# only a comment\n",
		"unterminated":  "a: [1, 2\n",
		"seq in map":    "a: 1\n- b\n",
	}
	for name, src := range cases {
		if _, err := parseYAML([]byte(src)); err == nil {
			t.Errorf("%s: expected an error for %q", name, src)
		}
	}
}

func TestParseYAMLErrorHasLineNumber(t *testing.T) {
	_, err := parseYAML([]byte("a: 1\nb: 2\nc: {bad}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a line-3 error, got %v", err)
	}
}
