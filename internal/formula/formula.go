// Package formula implements the Boolean-formula machinery Whisper uses to
// encode branch-history correlations (paper §III-C).
//
// Whisper extends Read-Once Monotone Boolean Formulas (ROMBF) with the
// Implication and Converse Non-Implication operations. A formula over the
// 8-bit hashed history is a complete binary tree of 7 "single units"
// (paper Fig 8/9): four units combine the leaf bits pairwise, two combine
// their outputs, one produces the root, and a final global inversion bit
// optionally negates the result. Each unit carries a 2-bit operation code,
// so a formula encodes in 2*8-1 = 15 bits, exactly the Boolean-formula
// field width of the brhint instruction (paper Fig 11).
//
// The package also provides the plain monotone (AND/OR-only) trees of the
// ROMBF baseline (Jiménez et al., PACT 2001), which internal/rombf builds
// on.
package formula

import (
	"fmt"
	"strings"
)

// Op is a single-unit operation code (2 bits).
type Op uint8

const (
	// And computes a ∧ b.
	And Op = iota
	// Or computes a ∨ b.
	Or
	// Impl computes material implication a → b = ¬a ∨ b.
	Impl
	// Cnimpl computes converse non-implication a ↚ b = ¬a ∧ b.
	Cnimpl

	// NumOps is the number of single-unit operations (paper Table III:
	// "Logical operations used: 4").
	NumOps
)

// String returns the operator name used in the paper's Fig 7 legend.
func (o Op) String() string {
	switch o {
	case And:
		return "And"
	case Or:
		return "Or"
	case Impl:
		return "Implication"
	case Cnimpl:
		return "Converse-nonimplication"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Apply evaluates the unit on two Boolean inputs.
func (o Op) Apply(a, b bool) bool {
	switch o {
	case And:
		return a && b
	case Or:
		return a || b
	case Impl:
		return !a || b
	case Cnimpl:
		return !a && b
	default:
		panic("formula: invalid op")
	}
}

// Leaves is the number of input bits of an extended formula: the hashed
// history length (paper Table III: "Length of the hashed history: 8").
const Leaves = 8

// Units is the number of single units in the complete tree over Leaves
// inputs.
const Units = Leaves - 1

// EncBits is the width of the formula encoding: 2 bits per unit plus the
// global inversion bit.
const EncBits = 2*Units + 1 // 15

// NumFormulas is the size of the extended-formula search space, the
// population that randomized formula testing samples from.
const NumFormulas = 1 << EncBits // 32768

// Formula is a 15-bit extended-ROMBF encoding.
//
// Bit layout (LSB first): bits [2i, 2i+1] hold the Op of unit i for
// i in 0..6; bit 14 is the global inversion flag. Units 0-3 combine leaf
// pairs (b0,b1) (b2,b3) (b4,b5) (b6,b7); units 4-5 combine the outputs of
// units (0,1) and (2,3); unit 6 combines units 4 and 5.
type Formula uint16

// Valid reports whether f fits in EncBits.
func (f Formula) Valid() bool { return f < NumFormulas }

// UnitOp returns the operation of unit i (0..6).
func (f Formula) UnitOp(i int) Op {
	if i < 0 || i >= Units {
		panic("formula: unit index out of range")
	}
	return Op((f >> (2 * uint(i))) & 3)
}

// Inverted reports whether the global inversion bit is set.
func (f Formula) Inverted() bool { return f&(1<<(2*Units)) != 0 }

// New builds a Formula from unit operations and the inversion flag.
// ops must have exactly Units elements.
func New(ops []Op, inverted bool) Formula {
	if len(ops) != Units {
		panic("formula: New requires exactly 7 unit ops")
	}
	var f Formula
	for i, o := range ops {
		if o >= NumOps {
			panic("formula: invalid op")
		}
		f |= Formula(o) << (2 * uint(i))
	}
	if inverted {
		f |= 1 << (2 * Units)
	}
	return f
}

// Uniform returns the formula whose seven units all use op, with the given
// inversion flag. Handy for constructing ground-truth workload behaviours.
func Uniform(op Op, inverted bool) Formula {
	ops := make([]Op, Units)
	for i := range ops {
		ops[i] = op
	}
	return New(ops, inverted)
}

// Eval evaluates the formula on an 8-bit hashed history. Bit i of h is
// leaf b_i, with b0 the most recent branch outcome.
func (f Formula) Eval(h uint8) bool {
	var layer [Leaves]bool
	for i := 0; i < Leaves; i++ {
		layer[i] = h&(1<<uint(i)) != 0
	}
	// Layer 0: units 0-3.
	var mid [4]bool
	for i := 0; i < 4; i++ {
		mid[i] = f.UnitOp(i).Apply(layer[2*i], layer[2*i+1])
	}
	// Layer 1: units 4-5.
	u4 := f.UnitOp(4).Apply(mid[0], mid[1])
	u5 := f.UnitOp(5).Apply(mid[2], mid[3])
	// Layer 2: unit 6, then global inversion.
	out := f.UnitOp(6).Apply(u4, u5)
	if f.Inverted() {
		out = !out
	}
	return out
}

// DominantOp classifies the formula for the paper's Fig 7 style operation
// breakdown: if a strict majority (>= 4 of 7) of units share one
// operation, that operation is the class; otherwise the formula counts as
// "Others". The ok result is false for the mixed case.
func (f Formula) DominantOp() (Op, bool) {
	var counts [NumOps]int
	for i := 0; i < Units; i++ {
		counts[f.UnitOp(i)]++
	}
	for op, n := range counts {
		if n >= 4 {
			return Op(op), true
		}
	}
	return 0, false
}

// String renders the formula as a readable expression over b0..b7.
func (f Formula) String() string {
	leaf := func(i int) string { return fmt.Sprintf("b%d", i) }
	unit := func(op Op, a, b string) string {
		var sym string
		switch op {
		case And:
			sym = "&"
		case Or:
			sym = "|"
		case Impl:
			sym = "->"
		case Cnimpl:
			sym = "!<-"
		}
		return "(" + a + sym + b + ")"
	}
	var mid [4]string
	for i := 0; i < 4; i++ {
		mid[i] = unit(f.UnitOp(i), leaf(2*i), leaf(2*i+1))
	}
	u4 := unit(f.UnitOp(4), mid[0], mid[1])
	u5 := unit(f.UnitOp(5), mid[2], mid[3])
	out := unit(f.UnitOp(6), u4, u5)
	if f.Inverted() {
		out = "!" + out
	}
	return out
}

// --- Truth tables -------------------------------------------------------

// TruthTable is the formula's output for all 256 possible hashed
// histories, packed as a 256-bit bitmap: bit h of word h/64 is the
// prediction for hashed history h.
type TruthTable [4]uint64

// Bit returns the table entry for hashed history h.
func (t TruthTable) Bit(h uint8) bool {
	return t[h>>6]&(1<<(uint(h)&63)) != 0
}

// PopCount returns the number of taken entries.
func (t TruthTable) PopCount() int {
	n := 0
	for _, w := range t {
		n += popcount64(w)
	}
	return n
}

func popcount64(x uint64) int {
	// Hacker's Delight population count; avoids importing math/bits in a
	// hot inner loop for no reason other than clarity — bits.OnesCount64
	// compiles to POPCNT anyway, so use it via the small wrapper below.
	return onesCount64(x)
}

// leafTables[i] is the truth table of the bare leaf b_i.
var leafTables = func() [Leaves]TruthTable {
	var ts [Leaves]TruthTable
	for i := 0; i < Leaves; i++ {
		for h := 0; h < 256; h++ {
			if h&(1<<uint(i)) != 0 {
				ts[i][h>>6] |= 1 << (uint(h) & 63)
			}
		}
	}
	return ts
}()

func ttApply(op Op, a, b TruthTable) TruthTable {
	var out TruthTable
	switch op {
	case And:
		for i := range out {
			out[i] = a[i] & b[i]
		}
	case Or:
		for i := range out {
			out[i] = a[i] | b[i]
		}
	case Impl:
		for i := range out {
			out[i] = ^a[i] | b[i]
		}
	case Cnimpl:
		for i := range out {
			out[i] = ^a[i] & b[i]
		}
	default:
		panic("formula: invalid op")
	}
	return out
}

// Table computes the formula's full truth table with bit-parallel
// operations (4 words per level instead of 256 scalar evaluations). This
// is what makes Algorithm 1 cheap: a formula's misprediction count over
// the profile reduces to popcounts against the T/NT histograms.
func (f Formula) Table() TruthTable {
	var mid [4]TruthTable
	for i := 0; i < 4; i++ {
		mid[i] = ttApply(f.UnitOp(i), leafTables[2*i], leafTables[2*i+1])
	}
	u4 := ttApply(f.UnitOp(4), mid[0], mid[1])
	u5 := ttApply(f.UnitOp(5), mid[2], mid[3])
	out := ttApply(f.UnitOp(6), u4, u5)
	if f.Inverted() {
		for i := range out {
			out[i] = ^out[i]
		}
	}
	return out
}

// --- Monotone (baseline ROMBF) trees -------------------------------------

// Monotone is a read-once monotone Boolean formula over n leaves
// (n a power of two), using only AND and OR: the PACT 2001 baseline.
// The encoding uses one bit per unit (0 = AND, 1 = OR), n-1 bits total,
// unit order matching Formula's layer layout.
type Monotone struct {
	// N is the number of leaves (4 or 8 in the paper's variants).
	N int
	// Enc holds the n-1 unit bits.
	Enc uint16
}

// MonotoneFormulas returns the number of distinct monotone trees over n
// leaves: 2^(n-1).
func MonotoneFormulas(n int) int { return 1 << uint(n-1) }

// NewMonotone validates n and enc and returns the formula.
func NewMonotone(n int, enc uint16) (Monotone, error) {
	if n != 2 && n != 4 && n != 8 && n != 16 {
		return Monotone{}, fmt.Errorf("formula: monotone leaf count %d not a supported power of two", n)
	}
	if int(enc) >= MonotoneFormulas(n) {
		return Monotone{}, fmt.Errorf("formula: monotone encoding %d out of range for n=%d", enc, n)
	}
	return Monotone{N: n, Enc: enc}, nil
}

// Eval evaluates the monotone tree on the last-N raw history bits
// (bit i of h = i-th most recent outcome).
func (m Monotone) Eval(h uint16) bool {
	n := m.N
	var cur [16]bool
	for i := 0; i < n; i++ {
		cur[i] = h&(1<<uint(i)) != 0
	}
	unit := 0
	for width := n; width > 1; width /= 2 {
		for i := 0; i < width/2; i++ {
			or := m.Enc&(1<<uint(unit)) != 0
			a, b := cur[2*i], cur[2*i+1]
			if or {
				cur[i] = a || b
			} else {
				cur[i] = a && b
			}
			unit++
		}
	}
	return cur[0]
}

// String renders the monotone tree.
func (m Monotone) String() string {
	n := m.N
	cur := make([]string, n)
	for i := range cur {
		cur[i] = fmt.Sprintf("b%d", i)
	}
	unit := 0
	for width := n; width > 1; width /= 2 {
		next := make([]string, width/2)
		for i := 0; i < width/2; i++ {
			sym := "&"
			if m.Enc&(1<<uint(unit)) != 0 {
				sym = "|"
			}
			next[i] = "(" + cur[2*i] + sym + cur[2*i+1] + ")"
			unit++
		}
		cur = next
	}
	return strings.Join(cur, "")
}
