package formula

import "math/bits"

// onesCount64 wraps math/bits so the rest of the package reads cleanly.
func onesCount64(x uint64) int { return bits.OnesCount64(x) }
