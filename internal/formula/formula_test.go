package formula

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpApplyTruthTables(t *testing.T) {
	cases := []struct {
		op   Op
		want [4]bool // inputs (a,b) in order (F,F) (F,T) (T,F) (T,T)
	}{
		{And, [4]bool{false, false, false, true}},
		{Or, [4]bool{false, true, true, true}},
		{Impl, [4]bool{true, true, false, true}},
		{Cnimpl, [4]bool{false, true, false, false}},
	}
	for _, c := range cases {
		i := 0
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				if got := c.op.Apply(a, b); got != c.want[i] {
					t.Fatalf("%v(%v,%v) = %v, want %v", c.op, a, b, got, c.want[i])
				}
				i++
			}
		}
	}
}

func TestOpStrings(t *testing.T) {
	if And.String() != "And" || Or.String() != "Or" ||
		Impl.String() != "Implication" || Cnimpl.String() != "Converse-nonimplication" {
		t.Fatal("op names do not match Fig 7 legend")
	}
}

func TestNewRoundTrip(t *testing.T) {
	ops := []Op{And, Or, Impl, Cnimpl, Or, And, Impl}
	f := New(ops, true)
	if !f.Valid() {
		t.Fatal("formula invalid")
	}
	for i, want := range ops {
		if got := f.UnitOp(i); got != want {
			t.Fatalf("unit %d = %v, want %v", i, got, want)
		}
	}
	if !f.Inverted() {
		t.Fatal("inversion bit lost")
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([]Op{And}, false)
}

func TestUniformAnd(t *testing.T) {
	f := Uniform(And, false)
	// All-AND tree = conjunction of all 8 bits.
	if !f.Eval(0xFF) {
		t.Fatal("AND-tree false on all-ones")
	}
	for h := 0; h < 255; h++ {
		if f.Eval(uint8(h)) {
			t.Fatalf("AND-tree true on %#x", h)
		}
	}
}

func TestUniformOr(t *testing.T) {
	f := Uniform(Or, false)
	if f.Eval(0) {
		t.Fatal("OR-tree true on zero")
	}
	for h := 1; h < 256; h++ {
		if !f.Eval(uint8(h)) {
			t.Fatalf("OR-tree false on %#x", h)
		}
	}
}

func TestInversion(t *testing.T) {
	f := Uniform(And, false)
	g := Uniform(And, true)
	for h := 0; h < 256; h++ {
		if f.Eval(uint8(h)) == g.Eval(uint8(h)) {
			t.Fatalf("inversion did not flip output at %#x", h)
		}
	}
}

func TestEvalMatchesManual(t *testing.T) {
	// b0 -> b1 at unit 0, rest OR: with b0=1, b1=0 the first unit is
	// false; any other set bit makes some other unit true, and the OR
	// layers propagate it.
	ops := []Op{Impl, Or, Or, Or, Or, Or, Or}
	f := New(ops, false)
	if f.Eval(0b00000001) { // only b0 set: unit0 = 1->0 = false, others false
		t.Fatal("expected false")
	}
	if !f.Eval(0b00000010) { // b1 set: unit0 = 0->1 = true
		t.Fatal("expected true")
	}
	if !f.Eval(0b00000100) { // b2 set: unit1 OR true
		t.Fatal("expected true")
	}
}

func TestTableMatchesEval(t *testing.T) {
	// Exhaustive over a sample of formulas, all 256 inputs.
	for _, enc := range []Formula{0, 1, 0x7FFF, 0x2AAA, 0x5555, 0x1234, 0x4321} {
		tt := enc.Table()
		for h := 0; h < 256; h++ {
			if tt.Bit(uint8(h)) != enc.Eval(uint8(h)) {
				t.Fatalf("formula %#x: table/eval mismatch at %#x", enc, h)
			}
		}
	}
}

func TestTableMatchesEvalProperty(t *testing.T) {
	f := func(enc uint16, h uint8) bool {
		fo := Formula(enc & (NumFormulas - 1))
		return fo.Table().Bit(h) == fo.Eval(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTablePopCount(t *testing.T) {
	if got := Uniform(And, false).Table().PopCount(); got != 1 {
		t.Fatalf("AND-tree popcount = %d, want 1", got)
	}
	if got := Uniform(Or, false).Table().PopCount(); got != 255 {
		t.Fatalf("OR-tree popcount = %d, want 255", got)
	}
	if got := Uniform(And, true).Table().PopCount(); got != 255 {
		t.Fatalf("inverted AND-tree popcount = %d, want 255", got)
	}
}

func TestDominantOp(t *testing.T) {
	if op, ok := Uniform(Impl, false).DominantOp(); !ok || op != Impl {
		t.Fatalf("DominantOp = %v,%v", op, ok)
	}
	// 3 And, 2 Or, 2 Impl: no majority.
	mixed := New([]Op{And, And, And, Or, Or, Impl, Impl}, false)
	if _, ok := mixed.DominantOp(); ok {
		t.Fatal("mixed formula reported a dominant op")
	}
	// 4 of 7 is a majority.
	maj := New([]Op{Or, Or, Or, Or, And, Impl, Cnimpl}, false)
	if op, ok := maj.DominantOp(); !ok || op != Or {
		t.Fatalf("DominantOp = %v,%v", op, ok)
	}
}

func TestStringRendering(t *testing.T) {
	s := Uniform(And, true).String()
	if !strings.HasPrefix(s, "!") || !strings.Contains(s, "b0&b1") {
		t.Fatalf("unexpected rendering %q", s)
	}
}

func TestUnitOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Formula(0).UnitOp(7)
}

func TestEncodingIsCanonical(t *testing.T) {
	// Every encoding below NumFormulas must be valid and distinct trees
	// must be able to disagree; spot-check that two different encodings
	// differ on at least one input (not required in general, but these do).
	a, b := Uniform(And, false), Uniform(Or, false)
	diff := false
	for h := 0; h < 256; h++ {
		if a.Eval(uint8(h)) != b.Eval(uint8(h)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("AND and OR trees agree everywhere")
	}
}

// --- Monotone baseline ---

func TestMonotoneValidation(t *testing.T) {
	if _, err := NewMonotone(3, 0); err == nil {
		t.Fatal("n=3 accepted")
	}
	if _, err := NewMonotone(4, 8); err == nil {
		t.Fatal("enc=8 accepted for n=4")
	}
	if _, err := NewMonotone(4, 7); err != nil {
		t.Fatalf("valid monotone rejected: %v", err)
	}
}

func TestMonotoneAllAnd(t *testing.T) {
	m, _ := NewMonotone(4, 0)
	if !m.Eval(0xF) {
		t.Fatal("AND-tree false on all ones")
	}
	for h := 0; h < 15; h++ {
		if m.Eval(uint16(h)) {
			t.Fatalf("AND-tree true on %#x", h)
		}
	}
}

func TestMonotoneAllOr(t *testing.T) {
	m, _ := NewMonotone(8, uint16(MonotoneFormulas(8)-1))
	if m.Eval(0) {
		t.Fatal("OR-tree true on zero")
	}
	for h := 1; h < 256; h++ {
		if !m.Eval(uint16(h)) {
			t.Fatalf("OR-tree false on %#x", h)
		}
	}
}

func TestMonotoneIsMonotoneProperty(t *testing.T) {
	// Monotone property: flipping any input bit from 0 to 1 never flips
	// the output from 1 to 0.
	f := func(enc uint16, h uint16) bool {
		m, err := NewMonotone(8, enc&127)
		if err != nil {
			return false
		}
		h &= 0xFF
		base := m.Eval(h)
		for b := 0; b < 8; b++ {
			if h&(1<<uint(b)) == 0 {
				up := m.Eval(h | 1<<uint(b))
				if base && !up {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedStrictlyMoreExpressive(t *testing.T) {
	// The paper's motivation for Impl/Cnimpl: some 2-input functions are
	// not expressible monotonically. Verify b0 -> b1 is non-monotone in
	// b0, hence outside the AND/OR-only space for n=2 semantics.
	f := New([]Op{Impl, Or, Or, Or, Or, Or, And}, false)
	// Restrict attention to inputs where only b0,b1 vary and all other
	// unit inputs are false: then output = (b0 -> b1) && false... use
	// direct check instead: Impl(1,0)=false < Impl(0,0)=true shows
	// non-monotonicity of the unit itself.
	if Impl.Apply(true, false) || !Impl.Apply(false, false) {
		t.Fatal("Impl truth table wrong")
	}
	_ = f
}

func TestMonotoneString(t *testing.T) {
	m, _ := NewMonotone(4, 0b101)
	s := m.String()
	if !strings.Contains(s, "|") || !strings.Contains(s, "&") {
		t.Fatalf("rendering %q lacks expected operators", s)
	}
}

func BenchmarkEval(b *testing.B) {
	f := Formula(0x1234)
	for i := 0; i < b.N; i++ {
		f.Eval(uint8(i))
	}
}

func BenchmarkTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Formula(uint16(i) & (NumFormulas - 1)).Table()
	}
}
