package pipeline

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

func app(t *testing.T) *workload.App {
	t.Helper()
	a := workload.DataCenterApp("mysql")
	if a == nil {
		t.Fatal("mysql app missing")
	}
	return a
}

func TestRunBasicAccounting(t *testing.T) {
	a := app(t)
	res := Run(a.Stream(0, 40000), tage.New(tage.DefaultConfig()), Options{Config: DefaultConfig()})
	if res.Records != 40000 {
		t.Fatalf("records %d", res.Records)
	}
	if res.Instrs <= res.Records {
		t.Fatal("instruction count implausible")
	}
	if res.Cycles != res.BaseCycles+res.SquashCycles+res.FrontendCycles {
		t.Fatal("cycle buckets do not sum")
	}
	if res.IPC() <= 0 || res.IPC() > 6 {
		t.Fatalf("IPC %v outside (0, width]", res.IPC())
	}
	if res.MPKI() <= 0 {
		t.Fatalf("MPKI %v", res.MPKI())
	}
}

func TestOracleRemovesSquashes(t *testing.T) {
	a := app(t)
	base := Run(a.Stream(0, 40000), tage.New(tage.DefaultConfig()), Options{Config: DefaultConfig()})
	ideal := Run(a.Stream(0, 40000), &bpu.Oracle{}, Options{Config: DefaultConfig()})
	if ideal.CondMisp != 0 {
		t.Fatalf("oracle mispredicted %d times", ideal.CondMisp)
	}
	if ideal.IPC() <= base.IPC() {
		t.Fatalf("ideal IPC %v not above baseline %v", ideal.IPC(), base.IPC())
	}
	// Direction squashes vanish; only target (return/indirect) squashes
	// may remain.
	if ideal.SquashCycles >= base.SquashCycles {
		t.Fatalf("squash cycles %d not reduced from %d", ideal.SquashCycles, base.SquashCycles)
	}
	// FDIP effect: fewer squashes expose fewer I-cache misses.
	if ideal.FrontendCycles >= base.FrontendCycles {
		t.Fatalf("frontend cycles %d not reduced from %d", ideal.FrontendCycles, base.FrontendCycles)
	}
}

func TestIdealSpeedupInPaperBand(t *testing.T) {
	// The paper's limit study (Fig 1): ideal direction prediction gains
	// 1.3%-26.4% IPC over 64KB TAGE-SC-L. Check our mysql lands inside a
	// generous version of that band.
	a := app(t)
	base := Run(a.Stream(0, 120000), tage.New(tage.DefaultConfig()), Options{Config: DefaultConfig()})
	ideal := Run(a.Stream(0, 120000), &bpu.Oracle{}, Options{Config: DefaultConfig()})
	speedup := ideal.IPC()/base.IPC() - 1
	if speedup < 0.01 || speedup > 0.60 {
		t.Fatalf("ideal speedup %.3f outside plausible band", speedup)
	}
	t.Logf("ideal speedup %.1f%%, baseline MPKI %.2f", speedup*100, base.MPKI())
}

func TestWarmupShrinksWindow(t *testing.T) {
	a := app(t)
	full := Run(a.Stream(0, 40000), tage.New(tage.DefaultConfig()), Options{Config: DefaultConfig()})
	half := Run(a.Stream(0, 40000), tage.New(tage.DefaultConfig()), Options{
		Config:        DefaultConfig(),
		WarmupRecords: 20000,
	})
	if half.Records != 20000 {
		t.Fatalf("measured records %d, want 20000", half.Records)
	}
	if half.Instrs >= full.Instrs {
		t.Fatal("warmup did not shrink measured instructions")
	}
	// A warm predictor mispredicts less per kilo-instruction.
	if half.MPKI() >= full.MPKI() {
		t.Fatalf("warm MPKI %v not below cold %v", half.MPKI(), full.MPKI())
	}
}

func TestHookSeesEveryRecord(t *testing.T) {
	a := app(t)
	n := uint64(0)
	hook := recordCounter{&n}
	res := Run(a.Stream(0, 5000), tage.New(tage.DefaultConfig()), Options{
		Config: DefaultConfig(),
		Hook:   hook,
	})
	if n != res.Records {
		t.Fatalf("hook saw %d of %d records", n, res.Records)
	}
}

type recordCounter struct{ n *uint64 }

func (r recordCounter) OnRecord(*trace.Record) { *r.n++ }

func TestZeroConfigDefaults(t *testing.T) {
	a := app(t)
	res := Run(a.Stream(0, 2000), tage.New(tage.DefaultConfig()), Options{})
	if res.Cycles == 0 {
		t.Fatal("zero-value options did not default")
	}
}

func TestMispRate(t *testing.T) {
	r := Result{CondExecs: 100, CondMisp: 5}
	if r.MispRate() != 0.05 {
		t.Fatalf("MispRate %v", r.MispRate())
	}
	empty := Result{}
	if empty.MispRate() != 0 || empty.IPC() != 0 || empty.MPKI() != 0 {
		t.Fatal("zero-value accessors")
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	a := workload.DataCenterApp("kafka")
	b.ResetTimer()
	for i := 0; i < b.N; i += 20000 {
		Run(a.Stream(0, 20000), tage.New(tage.DefaultConfig()), Options{Config: DefaultConfig()})
	}
}
