package pipeline

import (
	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/frontend"
	"github.com/whisper-sim/whisper/internal/trace"
)

// acct is the cycle-accounting core shared by the batched and windowed
// engines: the scalar reference loop's per-record Phase B state with
// Predict/Update lifted out. Direction outcomes arrive as precomputed
// miss flags, so an acct never touches the predictor and two accts can
// run concurrently over disjoint record ranges.
type acct struct {
	cfg Config
	fe  *frontend.FDIP
	res Result

	instrRemainder uint64
	prevTarget     uint64
	seen           uint64
	warmup         uint64
	measuring      bool
	feAtMeasure    frontend.Stats

	rec trace.Record
}

// newAcct builds a fresh accounting context at trace start.
func newAcct(cfg Config, warmup uint64) *acct {
	a := &acct{
		cfg:       cfg,
		fe:        frontend.New(cfg.Frontend),
		warmup:    warmup,
		measuring: warmup == 0,
	}
	a.res.WarmupRecords = warmup
	return a
}

// accountBlock replays records [from, to) of blk against the accounting
// state, consuming the precomputed miss flags. It is the body of the
// scalar reference loop minus prediction.
func (a *acct) accountBlock(blk *trace.Block, miss []bool, from, to int) {
	cfg := a.cfg
	for i := from; i < to; i++ {
		a.seen++
		if !a.measuring && a.seen > a.warmup {
			a.measuring = true
			// Reset measured counters; structures stay warm.
			a.res = Result{WarmupRecords: a.warmup}
			a.instrRemainder = 0
			a.feAtMeasure = a.fe.Stats
		}

		instrs := uint64(blk.Instrs[i]) + 1
		a.res.Records++
		a.res.Instrs += instrs

		// Base work: width-limited retirement.
		a.instrRemainder += instrs
		a.res.BaseCycles += a.instrRemainder / uint64(cfg.Width)
		a.instrRemainder %= uint64(cfg.Width)

		// Frontend: fetch the sequential run feeding this record.
		start := a.prevTarget
		if start == 0 {
			start = blk.PC[i]
		}
		a.res.FrontendCycles += a.fe.FetchRun(start, blk.Instrs[i]+1)

		// Target prediction.
		blk.Record(i, &a.rec)
		feStall, targetSquash := a.fe.OnControlFlow(&a.rec)
		a.res.FrontendCycles += feStall
		if targetSquash {
			a.res.SquashCycles += uint64(cfg.SquashPenalty)
			a.fe.OnSquash()
		}

		// Direction outcome, resolved in Phase A.
		if blk.Kind[i] == trace.CondBranch {
			a.res.CondExecs++
			if miss[i] {
				a.res.CondMisp++
				a.res.SquashCycles += uint64(cfg.SquashPenalty)
				a.fe.OnSquash()
			}
		}

		if blk.Taken[i] {
			a.prevTarget = blk.Target[i]
		} else {
			a.prevTarget = blk.PC[i] + 4
		}
	}
}

// finish folds the frontend stats into the result and totals the cycle
// buckets. Call once, after the last accountBlock.
func (a *acct) finish() Result {
	a.res.Frontend = subStats(a.fe.Stats, a.feAtMeasure)
	a.res.Cycles = a.res.BaseCycles + a.res.SquashCycles + a.res.FrontendCycles
	return a.res
}

// spanRunner is Phase A of the block engines: it resolves the direction
// outcomes of a block's conditional records through one BatchPredictor
// call per span, breaking spans only at records whose hook call is not
// a guaranteed no-op (see PassiveHook).
type spanRunner struct {
	bp        bpu.BatchPredictor
	hook      RecordHook
	passiveAt func(uint64) bool

	// spanIdx maps the k-th span entry back to its block position so
	// miss flags land on the right record.
	spanPC    []uint64
	spanTaken []bool
	spanMiss  []bool
	spanIdx   []int
	spanLen   int

	rec trace.Record
}

// newSpanRunner sizes the span scratch for blocks of up to size records.
// hook may be nil; when non-nil it must implement PassiveHook.
func newSpanRunner(pred bpu.Predictor, hook RecordHook, size int) *spanRunner {
	sr := &spanRunner{
		bp:        bpu.Batch(pred),
		hook:      hook,
		spanPC:    make([]uint64, size),
		spanTaken: make([]bool, size),
		spanMiss:  make([]bool, size),
		spanIdx:   make([]int, size),
	}
	if hook != nil {
		sr.passiveAt = hook.(PassiveHook).PassiveAt
	}
	return sr
}

func (sr *spanRunner) flush(miss []bool) {
	if sr.spanLen == 0 {
		return
	}
	sr.bp.PredictUpdateBatch(sr.spanPC[:sr.spanLen], sr.spanTaken[:sr.spanLen], sr.spanMiss[:sr.spanLen])
	for k := 0; k < sr.spanLen; k++ {
		miss[sr.spanIdx[k]] = sr.spanMiss[k]
	}
	sr.spanLen = 0
}

// phaseA resolves blk's direction outcomes into miss, interleaving hook
// calls in exact scalar order.
func (sr *spanRunner) phaseA(blk *trace.Block, miss []bool) {
	n := blk.N
	for i := 0; i < n; i++ {
		if blk.Kind[i] == trace.CondBranch {
			sr.spanPC[sr.spanLen] = blk.PC[i]
			sr.spanTaken[sr.spanLen] = blk.Taken[i]
			sr.spanIdx[sr.spanLen] = i
			sr.spanLen++
		}
		if sr.hook != nil && !sr.passiveAt(blk.PC[i]) {
			sr.flush(miss)
			blk.Record(i, &sr.rec)
			sr.hook.OnRecord(&sr.rec)
		}
	}
	sr.flush(miss)
}
