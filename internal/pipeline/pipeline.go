// Package pipeline is the trace-driven cycle-accounting model of the
// simulated machine (paper Table II: 3.2GHz 6-wide OOO, 24-entry FTQ,
// 224-entry ROB), the Scarab stand-in of this reproduction.
//
// Rather than simulating structures cycle by cycle, the model charges
// each retired record its steady-state cost and attributes extra cycles
// to the stall sources the paper's evaluation decomposes (Fig 1):
//
//   - base work: instructions / width,
//   - squash cycles: a fixed pipeline-refill penalty per direction
//     misprediction (and per wrong-target return/indirect resteer),
//   - frontend cycles: demand I-cache misses exposed while the FTQ
//     refills after a squash, plus BTB redirect bubbles.
//
// The decomposition is exactly what lets the experiments reproduce the
// paper's speedup splits: an ideal direction predictor removes the squash
// bucket and (through FDIP) most of the frontend bucket.
package pipeline

import (
	"github.com/whisper-sim/whisper/internal/attrib"
	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/frontend"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/trace"
)

// Config parameterizes the machine.
type Config struct {
	// Width is the retire width (Table II: 6-wide).
	Width int
	// SquashPenalty is the pipeline-refill cost of a misprediction in
	// cycles (fetch-to-execute depth of a modern OOO core).
	SquashPenalty int
	// Frontend configures the FDIP model.
	Frontend frontend.Config
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{
		Width:         6,
		SquashPenalty: 20,
		Frontend:      frontend.DefaultConfig(),
	}
}

// RecordHook observes every retired record; Whisper's runtime uses it to
// model brhint execution at host retirement.
type RecordHook interface {
	OnRecord(rec *trace.Record)
}

// PassiveHook is the optional RecordHook refinement the batched engine
// needs: PassiveAt(pc) reports that OnRecord is a guaranteed no-op for
// every record at pc, so a prediction span may run straight through such
// records without interleaving hook calls. Records at non-passive PCs
// flush the pending span (the record itself included, when conditional)
// before OnRecord runs, preserving the scalar predict/update/hook
// ordering exactly. Hooks that do not implement PassiveHook force the
// scalar engine.
type PassiveHook interface {
	PassiveAt(pc uint64) bool
}

// Result carries the run's counters and attributions.
type Result struct {
	// Records and Instrs describe the measured window.
	Records, Instrs uint64
	// CondExecs / CondMisp are conditional-branch direction counts.
	CondExecs, CondMisp uint64
	// Cycle accounting.
	Cycles         uint64
	BaseCycles     uint64
	SquashCycles   uint64
	FrontendCycles uint64
	// Frontend detail.
	Frontend frontend.Stats
	// Warmup describes how many leading records trained without being
	// measured.
	WarmupRecords uint64
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// MPKI returns conditional-branch mispredictions per kilo-instruction
// (CBP-5 methodology).
func (r *Result) MPKI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.CondMisp) / float64(r.Instrs) * 1000
}

// MispRate returns mispredictions per conditional execution.
func (r *Result) MispRate() float64 {
	if r.CondExecs == 0 {
		return 0
	}
	return float64(r.CondMisp) / float64(r.CondExecs)
}

// Options control a run.
type Options struct {
	Config Config
	// WarmupRecords train the predictor and caches without counting
	// toward the measured window (paper Fig 22).
	WarmupRecords uint64
	// Hook, when non-nil, observes every retired record (hint
	// execution).
	Hook RecordHook
	// BlockSize selects the engine: 0 runs the batched engine at
	// trace.DefaultBlockSize, a positive value runs it at that block
	// size, and a negative value forces the scalar reference engine.
	// Every setting produces bit-identical results (locked by the
	// differential tests); the knob exists for testing and comparison.
	BlockSize int
	// Parallelism > 1 selects the windowed engine with that many
	// goroutines (see RunWindowed). A negative BlockSize still forces
	// the scalar reference engine.
	Parallelism int
	// WindowSize is the windowed engine's window length in records
	// (DefaultWindowSize when 0). Results are bit-identical at every
	// window size and worker count.
	WindowSize int
	// Attrib, when non-nil, receives every measured conditional's
	// direction outcome (pc, taken, mispredicted) in trace order. All
	// engines feed it from the goroutine that resolves direction
	// outcomes serially (the scalar loop, the batched Phase A walk, the
	// windowed leader), so the observation stream — and therefore any
	// attribution report — is identical whichever engine ran. A nil
	// collector costs nothing.
	Attrib *attrib.Collector
}

// Run drives pred over the stream and returns the accounting. It uses
// the batched block engine unless opt.BlockSize is negative or the hook
// does not support span batching (see PassiveHook), in which case it
// falls back to the scalar reference loop. Both engines are
// bit-identical by construction and by differential test.
func Run(s trace.Stream, pred bpu.Predictor, opt Options) Result {
	if opt.BlockSize < 0 {
		return RunScalar(s, pred, opt)
	}
	if opt.Hook != nil {
		if _, ok := opt.Hook.(PassiveHook); !ok {
			return RunScalar(s, pred, opt)
		}
	}
	if opt.Parallelism > 1 {
		return RunWindowed(s, pred, opt)
	}
	return runBatched(s, pred, opt)
}

// RunScalar is the per-record reference engine: one Stream.Next, one
// Predict, one Update per record. The batched engine is defined as
// producing exactly its output; differential tests compare the two.
func RunScalar(s trace.Stream, pred bpu.Predictor, opt Options) Result {
	sp := telemetry.StartSpan("simulate")
	defer sp.End()
	cfg := opt.Config
	if cfg.Width <= 0 {
		cfg = DefaultConfig()
	}
	fe := frontend.New(cfg.Frontend)
	var res Result
	res.WarmupRecords = opt.WarmupRecords

	var rec trace.Record
	var instrRemainder uint64
	var warmup = opt.WarmupRecords
	var seen uint64
	measuring := warmup == 0
	prevTarget := uint64(0)
	var feAtMeasure frontend.Stats

	for s.Next(&rec) {
		seen++
		if !measuring && seen > warmup {
			measuring = true
			// Reset measured counters; structures stay warm.
			res = Result{WarmupRecords: warmup}
			instrRemainder = 0
			feAtMeasure = fe.Stats
		}

		instrs := uint64(rec.Instrs) + 1
		res.Records++
		res.Instrs += instrs

		// Base work: width-limited retirement.
		instrRemainder += instrs
		res.BaseCycles += instrRemainder / uint64(cfg.Width)
		instrRemainder %= uint64(cfg.Width)

		// Frontend: fetch the sequential run feeding this record.
		start := prevTarget
		if start == 0 {
			start = rec.PC
		}
		res.FrontendCycles += fe.FetchRun(start, rec.Instrs+1)

		// Target prediction.
		feStall, targetSquash := fe.OnControlFlow(&rec)
		res.FrontendCycles += feStall
		if targetSquash {
			res.SquashCycles += uint64(cfg.SquashPenalty)
			fe.OnSquash()
		}

		// Direction prediction for conditionals.
		if rec.Kind == trace.CondBranch {
			res.CondExecs++
			if o, ok := pred.(bpu.OraclePrimer); ok {
				o.Prime(rec.Taken)
			}
			miss := pred.Predict(rec.PC) != rec.Taken
			if measuring {
				opt.Attrib.Observe(rec.PC, rec.Taken, miss)
			}
			if miss {
				res.CondMisp++
				res.SquashCycles += uint64(cfg.SquashPenalty)
				fe.OnSquash()
			}
			pred.Update(rec.PC, rec.Taken)
		}

		if opt.Hook != nil {
			opt.Hook.OnRecord(&rec)
		}
		if rec.Taken {
			prevTarget = rec.Target
		} else {
			prevTarget = rec.PC + 4
		}
	}
	res.Frontend = subStats(fe.Stats, feAtMeasure)
	res.Cycles = res.BaseCycles + res.SquashCycles + res.FrontendCycles
	res.emitTelemetry()
	return res
}

// runBatched is the block engine. Each block is processed in two phases
// that together replay the scalar loop exactly:
//
//   - Phase A walks the block's conditional records and resolves their
//     direction outcomes through one BatchPredictor call per span. The
//     direction predictor's state depends only on the (pc, taken)
//     sequence of conditionals — never on the frontend — so hoisting
//     prediction ahead of the cycle accounting cannot change any
//     prediction. Spans break only at records whose hook call is not a
//     guaranteed no-op (PassiveHook), preserving predict/hook ordering.
//   - Phase B replays the block record by record for cycle accounting
//     (retire-width arithmetic, FetchRun, target prediction, squashes),
//     consuming the precomputed miss flags. This is the scalar loop with
//     Predict/Update lifted out.
func runBatched(s trace.Stream, pred bpu.Predictor, opt Options) Result {
	sp := telemetry.StartSpan("simulate")
	defer sp.End()
	cfg := opt.Config
	if cfg.Width <= 0 {
		cfg = DefaultConfig()
	}

	size := opt.BlockSize
	if size == 0 {
		size = trace.DefaultBlockSize
	}
	blk := trace.NewBlock(size)
	size = blk.Cap()
	miss := make([]bool, size)
	sr := newSpanRunner(pred, opt.Hook, size)
	a := newAcct(cfg, opt.WarmupRecords)

	var seen uint64
	for trace.Fill(s, blk) > 0 {
		sr.phaseA(blk, miss)
		seen = observeBlock(opt.Attrib, blk, miss, seen, opt.WarmupRecords)
		a.accountBlock(blk, miss, 0, blk.N)
	}
	res := a.finish()
	res.emitTelemetry()
	return res
}

// observeBlock feeds a block's measured conditional outcomes into the
// attribution collector in trace order, right after Phase A resolved
// them. seen is the global 1-based record count before the block; the
// return value is the count after it. A record is measured exactly when
// its 1-based index exceeds the warmup count — the same condition the
// scalar loop and acct use to flip into measuring — so every engine
// produces the identical observation stream. Nil collectors skip the
// walk entirely.
func observeBlock(c *attrib.Collector, blk *trace.Block, miss []bool, seen, warmup uint64) uint64 {
	if c == nil {
		return seen + uint64(blk.N)
	}
	for i := 0; i < blk.N; i++ {
		seen++
		if blk.Kind[i] == trace.CondBranch && seen > warmup {
			c.Observe(blk.PC[i], blk.Taken[i], miss[i])
		}
	}
	return seen
}

// emitTelemetry flushes the run's accounting into the process registry.
// The hot per-record loop accumulates locally; the registry sees one
// batched update per completed run, so enabling telemetry costs a few
// counter adds per simulation unit, not per record.
func (res *Result) emitTelemetry() {
	r := telemetry.Default()
	if r == nil {
		return
	}
	r.Counter("whisper_sim_runs_total").Inc()
	r.Counter("whisper_sim_instructions_total").Add(res.Instrs)
	r.Counter("whisper_sim_records_total").Add(res.Records)
	r.Counter("whisper_sim_cond_execs_total").Add(res.CondExecs)
	r.Counter("whisper_sim_cond_mispredictions_total").Add(res.CondMisp)
	r.Counter("whisper_sim_cycles_total").Add(res.Cycles)
	r.Counter("whisper_sim_squash_cycles_total").Add(res.SquashCycles)
	r.Counter("whisper_sim_frontend_cycles_total").Add(res.FrontendCycles)
	r.Histogram("whisper_sim_run_instructions").Observe(res.Instrs)
}

// subStats subtracts the warm-up snapshot from the final frontend stats
// so the result covers only the measured window.
func subStats(a, b frontend.Stats) frontend.Stats {
	return frontend.Stats{
		ExposedMissCycles: a.ExposedMissCycles - b.ExposedMissCycles,
		BTBMissCycles:     a.BTBMissCycles - b.BTBMissCycles,
		L1iAccesses:       a.L1iAccesses - b.L1iAccesses,
		L1iMisses:         a.L1iMisses - b.L1iMisses,
		ExposedMisses:     a.ExposedMisses - b.ExposedMisses,
		TargetMispredicts: a.TargetMispredicts - b.TargetMispredicts,
	}
}
