package pipeline

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/mtage"
	"github.com/whisper-sim/whisper/internal/perceptron"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// predictor factories under differential test; fresh state per run.
var diffPredictors = []struct {
	name string
	mk   func() bpu.Predictor
}{
	{"tage-64KB", func() bpu.Predictor { return tage.New(tage.DefaultConfig()) }},
	{"tage-8KB", func() bpu.Predictor { return tage.New(tage.Config{SizeKB: 8}) }},
	{"mtage", func() bpu.Predictor { return mtage.New() }},
	{"perceptron-64KB", func() bpu.Predictor { return perceptron.New(perceptron.DefaultConfig()) }},
	{"bimodal", func() bpu.Predictor { return bpu.NewBimodal(14) }},
	{"gshare", func() bpu.Predictor { return bpu.NewGShare(14, 12) }},
	{"oracle", func() bpu.Predictor { return &bpu.Oracle{} }},
}

// TestBatchMatchesScalar is the engine-equivalence lock: for every
// predictor and a spread of block sizes (including 1, a prime, and
// sizes that leave a partial tail block), the batched engine must
// produce a bit-identical Result to the scalar reference.
func TestBatchMatchesScalar(t *testing.T) {
	apps := []string{"mysql", "kafka"}
	const records = 12000 // not a multiple of any tested block size
	for _, p := range diffPredictors {
		for _, appName := range apps {
			a := workload.DataCenterApp(appName)
			if a == nil {
				t.Fatalf("app %s missing", appName)
			}
			want := RunScalar(a.Stream(0, records), p.mk(), Options{Config: DefaultConfig()})
			for _, bs := range []int{1, 7, 64, 4096} {
				got := Run(a.Stream(0, records), p.mk(), Options{Config: DefaultConfig(), BlockSize: bs})
				if got != want {
					t.Errorf("%s/%s block=%d: batched %+v != scalar %+v", p.name, appName, bs, got, want)
				}
			}
		}
	}
}

// TestBatchMatchesScalarWarmup locks the mid-block warmup-window reset.
func TestBatchMatchesScalarWarmup(t *testing.T) {
	a := app(t)
	mk := func() bpu.Predictor { return tage.New(tage.Config{SizeKB: 8}) }
	opt := Options{Config: DefaultConfig(), WarmupRecords: 5001}
	want := RunScalar(a.Stream(0, 12000), mk(), opt)
	for _, bs := range []int{1, 7, 4096} {
		o := opt
		o.BlockSize = bs
		got := Run(a.Stream(0, 12000), mk(), o)
		if got != want {
			t.Errorf("block=%d: %+v != %+v", bs, got, want)
		}
	}
}

// passiveHook is a PassiveHook active only at PCs in active; it counts
// OnRecord calls so span-breaking can be verified against the scalar
// engine.
type passiveHook struct {
	active map[uint64]bool
	calls  uint64
}

func (h *passiveHook) OnRecord(rec *trace.Record) {
	if h.active[rec.PC] {
		h.calls++
	}
}
func (h *passiveHook) PassiveAt(pc uint64) bool { return !h.active[pc] }

// TestBatchPassiveHook verifies the batched engine with a span-breaking
// hook: identical Result and identical active-record hook activity.
func TestBatchPassiveHook(t *testing.T) {
	a := app(t)
	// Mark a handful of real PCs active so spans actually break.
	active := map[uint64]bool{}
	var rec trace.Record
	s := a.Stream(0, 2000)
	for i := 0; s.Next(&rec) && i < 2000; i++ {
		if i%97 == 0 {
			active[rec.PC] = true
		}
	}
	mk := func() bpu.Predictor { return tage.New(tage.Config{SizeKB: 8}) }
	ref := &passiveHook{active: active}
	want := RunScalar(a.Stream(0, 12000), mk(), Options{Config: DefaultConfig(), Hook: ref})
	for _, bs := range []int{1, 7, 4096} {
		h := &passiveHook{active: active}
		got := Run(a.Stream(0, 12000), mk(), Options{Config: DefaultConfig(), Hook: h, BlockSize: bs})
		if got != want {
			t.Errorf("block=%d: %+v != %+v", bs, got, want)
		}
		if h.calls != ref.calls {
			t.Errorf("block=%d: hook activity %d != scalar %d", bs, h.calls, ref.calls)
		}
	}
}

// TestNonPassiveHookFallsBack: a hook without PassiveAt must run the
// scalar engine (same results, every record observed).
func TestNonPassiveHookFallsBack(t *testing.T) {
	a := app(t)
	n := uint64(0)
	res := Run(a.Stream(0, 5000), tage.New(tage.DefaultConfig()), Options{
		Config:    DefaultConfig(),
		Hook:      recordCounter{&n},
		BlockSize: 4096,
	})
	if n != res.Records {
		t.Fatalf("hook saw %d of %d records", n, res.Records)
	}
}

// randomRecords synthesizes a control-flow stream with every record
// kind, for fuzzing block-boundary handling beyond what the workload
// generators produce.
func randomRecords(seed uint64, n int) []trace.Record {
	rng := xrand.New(seed | 1)
	recs := make([]trace.Record, n)
	for i := range recs {
		pc := 0x10000 + uint64(rng.Intn(512))*4
		kind := trace.Kind(rng.Intn(5))
		taken := rng.Bool(0.6)
		if kind != trace.CondBranch {
			taken = true
		}
		recs[i] = trace.Record{
			PC:     pc,
			Target: pc + 16 + uint64(rng.Intn(64))*4,
			Kind:   kind,
			Taken:  taken,
			Instrs: uint32(rng.Intn(12)),
		}
	}
	return recs
}

// FuzzScalarBatchEquivalence fuzzes the batched engine against the
// scalar reference over random streams, block sizes and warmup windows.
func FuzzScalarBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), 1, 100, 0)
	f.Add(uint64(2), 7, 999, 100)
	f.Add(uint64(3), 4096, 5000, 0)
	f.Add(uint64(4), 64, 4097, 4000)
	f.Fuzz(func(t *testing.T, seed uint64, block, n, warmup int) {
		if block < 1 || block > 1<<14 || n < 1 || n > 20000 || warmup < 0 {
			t.Skip()
		}
		recs := randomRecords(seed, n)
		opt := Options{Config: DefaultConfig(), WarmupRecords: uint64(warmup)}
		want := RunScalar(trace.NewSliceStream(recs), tage.New(tage.Config{SizeKB: 8}), opt)
		opt.BlockSize = block
		got := Run(trace.NewSliceStream(recs), tage.New(tage.Config{SizeKB: 8}), opt)
		if got != want {
			t.Fatalf("seed=%d block=%d n=%d warmup=%d: %+v != %+v", seed, block, n, warmup, got, want)
		}
	})
}
