// Within-trace parallel simulation via checkpointed speculative windows.
//
// The batched engine (pipeline.go) already splits every block into a
// prediction phase (A) and an accounting phase (B), and is bit-identical
// to the scalar loop at any block size. The windowed engine exploits the
// same split across goroutines:
//
//   - The direction predictor's state is trace-determined: updates use
//     resolved outcomes, never frontend feedback, so a single leader
//     goroutine runs all of Phase A serially in trace order and every
//     miss flag it produces is exact — the predictor is never
//     speculated.
//   - Phase B state splits into additive outputs (Result counters,
//     frontend.Stats — summed as per-window deltas in window order) and
//     a small functional core: the FDIP frontend (exposure counter,
//     I-cache hierarchy, BTB/RAS/IBTB, path signature). The
//     width-remainder and fall-through PC at each window start are
//     recomputed exactly by the leader with integer arithmetic, so the
//     frontend is the only state a speculative window has to guess.
//
// A committer goroutine resolves windows in order. Speculative workers
// run windows ahead of the commit frontier, starting from a cloned
// frontend published at an earlier committed boundary, and record
// canonical checkpoints (frontend.AppendState bytes + delta-so-far) part
// way through. When the committer reaches a speculated window it either
// adopts the result outright (the start state was the true boundary
// state) or replays the window's prefix on the true state until a
// checkpoint's canonical bytes match, then splices the worker's
// remaining delta and adopts its end state; if no checkpoint matches it
// replays the whole window. Canonical-byte equality implies identical
// future behavior, so every committed number is the number the scalar
// loop would have produced: the engine is bit-identical at any worker
// count and window size, which the differential tests and the
// FuzzWindowedVsScalar target lock down.
package pipeline

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/frontend"
	"github.com/whisper-sim/whisper/internal/telemetry"
	"github.com/whisper-sim/whisper/internal/trace"
)

// DefaultWindowSize is the windowed engine's window length in records:
// large enough to amortize boundary clones and checkpoint encodes over
// tens of milliseconds of Phase B work, small enough to keep several
// windows in flight on short traces.
const DefaultWindowSize = 1 << 16

// minSpecWindow is the smallest window speculation is attempted on.
// Below it the per-window boundary clones and checkpoint encodes cost
// more than the accounting they could hide, so the engine drops to
// pure prediction/accounting pipelining (still bit-identical).
const minSpecWindow = 4096

// WindowedStats describes how a windowed run was scheduled. The values
// depend on goroutine timing and are observational only — the Result
// itself is bit-identical regardless.
type WindowedStats struct {
	// Windows is the total number of windows committed.
	Windows uint64
	// TrueWindows were run on the true path by the committer (warmup
	// windows, unclaimed windows, and the j<=2 pipelining case).
	TrueWindows uint64
	// SpecWindows were run speculatively by workers and adopted.
	SpecWindows uint64
	// ExactWindows are speculative windows whose start state was the
	// true boundary state (or converged to it by window start), adopted
	// with zero replay.
	ExactWindows uint64
	// Replays counts speculative windows that needed a true-path prefix
	// replay; ReplayedRecords totals the replayed prefix lengths.
	Replays         uint64
	ReplayedRecords uint64
	// SpecRecords totals the records adopted from speculative execution
	// (window length minus replayed prefix).
	SpecRecords uint64
}

// boundary is a committed window boundary published for speculation:
// the true frontend state after window idx, stats zeroed so worker
// deltas accumulate from zero. Workers clone it and never mutate it.
type boundary struct {
	idx int
	fe  *frontend.FDIP
}

// winCheckpoint is a worker-recorded intermediate state: after
// accounting records [0, pos) of its window the frontend's canonical
// bytes were canon and the accumulated deltas were res/stats.
type winCheckpoint struct {
	pos   int
	canon []byte
	res   Result
	stats frontend.Stats
}

// winResult is a speculative window's outcome: deltas accumulated from
// zero, the worker's end frontend (stats zero-based), the boundary the
// speculation started from, and the checkpoints for splicing.
type winResult struct {
	delta   Result
	endFe   *frontend.FDIP
	snapIdx int
	cps     []winCheckpoint
}

// winJob is one window: a block of records with leader-resolved miss
// flags and the exact accounting state at the window's edges.
type winJob struct {
	k    int
	blk  *trace.Block
	miss []bool
	// startRem/startPrev (and endRem/endPrev) are the width-remainder
	// and fall-through PC at the window's boundaries, recomputed
	// exactly by the leader.
	startSeen          uint64
	startRem, endRem   uint64
	startPrev, endPrev uint64
	// mustTrue marks windows that start before the measure point; the
	// warmup counter reset is continuous state only the committer has.
	mustTrue bool
	// claimed is the ownership word: 0 free, 1 worker, 2 committer.
	// The leader stores it last when (re)issuing a job, so a stale
	// claim acquires all field writes.
	claimed atomic.Int32
	resCh   chan winResult
}

const (
	claimFree      = 0
	claimWorker    = 1
	claimCommitter = 2
)

// RunWindowed runs the windowed parallel engine and returns the same
// Result the scalar engine would produce. opt.Parallelism <= 1 runs the
// windowed loop inline; 2 pipelines prediction against accounting; each
// extra goroutine is a speculative worker. Non-passive hooks fall back
// to the scalar engine (as in Run).
func RunWindowed(s trace.Stream, pred bpu.Predictor, opt Options) Result {
	res, _ := RunWindowedStats(s, pred, opt)
	return res
}

// RunWindowedStats is RunWindowed plus the run's scheduling stats.
func RunWindowedStats(s trace.Stream, pred bpu.Predictor, opt Options) (Result, WindowedStats) {
	if opt.Hook != nil {
		if _, ok := opt.Hook.(PassiveHook); !ok {
			return RunScalar(s, pred, opt), WindowedStats{}
		}
	}
	sp := telemetry.StartSpan("simulate")
	defer sp.End()
	cfg := opt.Config
	if cfg.Width <= 0 {
		cfg = DefaultConfig()
	}
	wsize := opt.WindowSize
	if wsize <= 0 {
		wsize = DefaultWindowSize
	}
	if opt.Parallelism <= 1 {
		return runWindowedInline(s, pred, cfg, opt, wsize)
	}
	return runWindowedParallel(s, pred, cfg, opt, wsize)
}

// runWindowedInline is the j<=1 degenerate case: the window loop with
// no goroutines, equivalent to the batched engine at block size wsize.
func runWindowedInline(s trace.Stream, pred bpu.Predictor, cfg Config, opt Options, wsize int) (Result, WindowedStats) {
	var ws WindowedStats
	blk := trace.NewBlock(wsize)
	miss := make([]bool, blk.Cap())
	sr := newSpanRunner(pred, opt.Hook, blk.Cap())
	a := newAcct(cfg, opt.WarmupRecords)
	var seen uint64
	for trace.Fill(s, blk) > 0 {
		sr.phaseA(blk, miss)
		seen = observeBlock(opt.Attrib, blk, miss, seen, opt.WarmupRecords)
		a.accountBlock(blk, miss, 0, blk.N)
		ws.Windows++
		ws.TrueWindows++
	}
	res := a.finish()
	res.emitTelemetry()
	ws.emitTelemetry()
	return res, ws
}

func runWindowedParallel(s trace.Stream, pred bpu.Predictor, cfg Config, opt Options, wsize int) (Result, WindowedStats) {
	workers := opt.Parallelism - 2
	if wsize < minSpecWindow {
		workers = 0
	}
	inflight := workers + 3

	pool := make(chan *winJob, inflight)
	for i := 0; i < inflight; i++ {
		j := &winJob{
			blk:   trace.NewBlock(wsize),
			resCh: make(chan winResult, 1),
		}
		j.miss = make([]bool, j.blk.Cap())
		pool <- j
	}
	jobs := make(chan *winJob, inflight)
	specCh := make(chan *winJob, inflight)

	published := atomic.Pointer[boundary]{}
	published.Store(&boundary{idx: -1, fe: frontend.New(cfg.Frontend)})
	var specEnabled atomic.Bool
	specEnabled.Store(true)

	warmup := opt.WarmupRecords

	// Leader: fills windows, resolves every direction outcome in trace
	// order (Phase A, hooks included), and computes the exact boundary
	// accounting state for each window.
	go func() {
		sr := newSpanRunner(pred, opt.Hook, wsize)
		var seen, rem, prev uint64
		measuring := warmup == 0
		k := 0
		for {
			job := <-pool
			if trace.Fill(s, job.blk) == 0 {
				break
			}
			sr.phaseA(job.blk, job.miss)
			// Attribution observes here, on the leader, so the stream
			// is serial and in trace order whatever the workers do.
			observeBlock(opt.Attrib, job.blk, job.miss, seen, warmup)

			job.k = k
			job.startSeen, job.startRem, job.startPrev = seen, rem, prev
			job.mustTrue = !measuring
			blk := job.blk
			for i := 0; i < blk.N; i++ {
				seen++
				if !measuring && seen > warmup {
					measuring = true
					rem = 0
				}
				rem = (rem + uint64(blk.Instrs[i]) + 1) % uint64(cfg.Width)
				if blk.Taken[i] {
					prev = blk.Target[i]
				} else {
					prev = blk.PC[i] + 4
				}
			}
			job.endRem, job.endPrev = rem, prev

			init := int32(claimFree)
			if job.mustTrue || workers == 0 {
				init = claimCommitter
			}
			job.claimed.Store(init)
			jobs <- job
			if init == claimFree {
				select {
				case specCh <- job:
				default:
				}
			}
			k++
		}
		close(jobs)
		close(specCh)
	}()

	tracer := telemetry.Tracer()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for job := range specCh {
				if !specEnabled.Load() {
					continue
				}
				if !job.claimed.CompareAndSwap(claimFree, claimWorker) {
					continue
				}
				t0 := time.Time{}
				if tracer != nil {
					t0 = time.Now()
				}
				r := speculateWindow(cfg, warmup, job, published.Load())
				if tracer != nil {
					tracer.Add("window.speculate", telemetry.CatWindow,
						telemetry.TIDWorker0+w, t0, time.Since(t0),
						map[string]any{"window": job.k, "records": job.blk.N})
				}
				job.resCh <- r
			}
		}(w)
	}

	// Committer: resolves windows in order on the true state.
	var ws WindowedStats
	a := newAcct(cfg, warmup)
	var canonScratch []byte
	replayHist := telemetry.Default().Histogram("whisper_sim_replay_records")
	// Speculation throttle: when recent speculative windows mostly end
	// up replayed, stop claiming and publishing for a while — the
	// engine degrades to pure A/B pipelining instead of burning cores
	// on doomed speculation — then probe again.
	var recentSpec, recentReplayed uint64
	var disabledLeft int

	for job := range jobs {
		n := job.blk.N
		ws.Windows++
		t0 := time.Time{}
		if tracer != nil {
			t0 = time.Now()
		}
		runTrue := job.claimed.Load() == claimCommitter ||
			job.claimed.CompareAndSwap(claimFree, claimCommitter)
		if runTrue {
			a.accountBlock(job.blk, job.miss, 0, n)
			ws.TrueWindows++
			if tracer != nil {
				tracer.Add("window.true", telemetry.CatWindow,
					telemetry.TIDCommitter, t0, time.Since(t0),
					map[string]any{"window": job.k, "records": n})
			}
		} else {
			r := <-job.resCh
			var replayed int
			replayed, canonScratch = a.adoptOrReplay(job, r, canonScratch)
			ws.SpecWindows++
			ws.SpecRecords += uint64(n - replayed)
			if replayed == 0 {
				ws.ExactWindows++
			} else {
				ws.Replays++
				ws.ReplayedRecords += uint64(replayed)
				replayHist.Observe(uint64(replayed))
			}
			if tracer != nil {
				name := "window.verify"
				if replayed > 0 {
					name = "window.replay"
				}
				tracer.Add(name, telemetry.CatWindow,
					telemetry.TIDCommitter, t0, time.Since(t0),
					map[string]any{"window": job.k, "records": n, "replayed": replayed})
			}
			recentSpec += uint64(n)
			recentReplayed += uint64(replayed)
		}

		if workers > 0 {
			if disabledLeft > 0 {
				disabledLeft--
				if disabledLeft == 0 {
					specEnabled.Store(true)
				}
			} else if recentSpec >= 8*uint64(wsize) {
				if recentReplayed*10 > recentSpec*6 {
					specEnabled.Store(false)
					disabledLeft = 24
				}
				recentSpec, recentReplayed = 0, 0
			}
			if specEnabled.Load() {
				c := a.fe.Clone()
				c.Stats = frontend.Stats{}
				published.Store(&boundary{idx: job.k, fe: c})
			}
		}
		pool <- job
	}
	wg.Wait()

	res := a.finish()
	res.emitTelemetry()
	ws.emitTelemetry()
	return res, ws
}

// adoptOrReplay resolves a speculated window against the true state:
// it replays the window's records on a's frontier segment by segment,
// and at each of the worker's checkpoints compares the true frontend's
// canonical bytes with the recorded ones. On the first match the
// remainder of the worker's run is provably exact, so the remaining
// delta is spliced in and the worker's end state adopted; when no
// checkpoint matches the whole window has been replayed true. Either
// way a holds exactly the state the scalar loop would. Returns the
// replayed prefix length and the (possibly regrown) scratch buffer.
func (a *acct) adoptOrReplay(job *winJob, r winResult, scratch []byte) (int, []byte) {
	n := job.blk.N
	replayed := 0
	for _, cp := range r.cps {
		a.accountBlock(job.blk, job.miss, replayed, cp.pos)
		replayed = cp.pos
		scratch = a.fe.AppendState(scratch[:0])
		if !bytes.Equal(scratch, cp.canon) {
			continue
		}
		a.res.add(subResult(r.delta, cp.res))
		stats := addStats(a.fe.Stats, subStats(r.endFe.Stats, cp.stats))
		a.fe = r.endFe
		a.fe.Stats = stats
		a.seen += uint64(n - replayed)
		a.instrRemainder = job.endRem
		a.prevTarget = job.endPrev
		return replayed, scratch
	}
	a.accountBlock(job.blk, job.miss, replayed, n)
	return n, scratch
}

// speculateWindow runs job's window from a cloned boundary frontend,
// recording canonical checkpoints for the committer to splice against.
func speculateWindow(cfg Config, warmup uint64, job *winJob, b *boundary) winResult {
	wa := acct{
		cfg:            cfg,
		fe:             b.fe.Clone(),
		instrRemainder: job.startRem,
		prevTarget:     job.startPrev,
		seen:           job.startSeen,
		warmup:         warmup,
		measuring:      true,
	}
	n := job.blk.N
	r := winResult{snapIdx: b.idx}
	pos := 0
	for _, p := range checkpointPositions(n) {
		wa.accountBlock(job.blk, job.miss, pos, p)
		pos = p
		r.cps = append(r.cps, winCheckpoint{
			pos:   p,
			canon: wa.fe.AppendState(nil),
			res:   wa.res,
			stats: wa.fe.Stats,
		})
	}
	wa.accountBlock(job.blk, job.miss, pos, n)
	r.delta = wa.res
	r.endFe = wa.fe
	return r
}

// checkpointPositions picks the splice points for a window of n
// records: always the window start (a converged boundary adopts with
// zero replay), plus quarter points on windows long enough that the
// canonical encodes stay cheap relative to accounting.
func checkpointPositions(n int) []int {
	if n < 4 {
		return []int{0}
	}
	ps := []int{0}
	if n >= 256 {
		for _, p := range []int{n / 4, n / 2, 3 * n / 4} {
			if p > ps[len(ps)-1] {
				ps = append(ps, p)
			}
		}
	} else {
		ps = append(ps, n/2)
	}
	return ps
}

// add accumulates a window delta into the running result. Cycles,
// Frontend, and WarmupRecords are derived at finish time and excluded.
func (r *Result) add(d Result) {
	r.Records += d.Records
	r.Instrs += d.Instrs
	r.CondExecs += d.CondExecs
	r.CondMisp += d.CondMisp
	r.BaseCycles += d.BaseCycles
	r.SquashCycles += d.SquashCycles
	r.FrontendCycles += d.FrontendCycles
}

// subResult returns the per-field difference a-b of two window deltas.
func subResult(a, b Result) Result {
	return Result{
		Records:        a.Records - b.Records,
		Instrs:         a.Instrs - b.Instrs,
		CondExecs:      a.CondExecs - b.CondExecs,
		CondMisp:       a.CondMisp - b.CondMisp,
		BaseCycles:     a.BaseCycles - b.BaseCycles,
		SquashCycles:   a.SquashCycles - b.SquashCycles,
		FrontendCycles: a.FrontendCycles - b.FrontendCycles,
	}
}

// addStats sums two frontend stat deltas.
func addStats(a, b frontend.Stats) frontend.Stats {
	return frontend.Stats{
		ExposedMissCycles: a.ExposedMissCycles + b.ExposedMissCycles,
		BTBMissCycles:     a.BTBMissCycles + b.BTBMissCycles,
		L1iAccesses:       a.L1iAccesses + b.L1iAccesses,
		L1iMisses:         a.L1iMisses + b.L1iMisses,
		ExposedMisses:     a.ExposedMisses + b.ExposedMisses,
		TargetMispredicts: a.TargetMispredicts + b.TargetMispredicts,
	}
}

// emitTelemetry flushes the windowed scheduling stats into the process
// registry, one batched update per run (see Result.emitTelemetry).
func (ws *WindowedStats) emitTelemetry() {
	r := telemetry.Default()
	if r == nil {
		return
	}
	r.Counter("whisper_sim_windows_total").Add(ws.Windows)
	r.Counter("whisper_sim_windows_true_total").Add(ws.TrueWindows)
	r.Counter("whisper_sim_windows_speculative_total").Add(ws.SpecWindows)
	r.Counter("whisper_sim_windows_exact_total").Add(ws.ExactWindows)
	r.Counter("whisper_sim_window_replays_total").Add(ws.Replays)
	r.Counter("whisper_sim_replayed_records_total").Add(ws.ReplayedRecords)
	r.Counter("whisper_sim_speculated_records_total").Add(ws.SpecRecords)
}
