package pipeline

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/frontend"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// TestWindowedMatchesScalar is the windowed-engine equivalence lock:
// for every predictor, a spread of window sizes (including 1, a prime,
// and windows that leave a partial tail), and worker counts from the
// inline loop through heavy speculation, the windowed engine must
// produce a bit-identical Result to the scalar reference.
func TestWindowedMatchesScalar(t *testing.T) {
	apps := []string{"mysql", "kafka"}
	const records = 12000
	for _, p := range diffPredictors {
		for _, appName := range apps {
			a := workload.DataCenterApp(appName)
			if a == nil {
				t.Fatalf("app %s missing", appName)
			}
			want := RunScalar(a.Stream(0, records), p.mk(), Options{Config: DefaultConfig()})
			for _, ws := range []int{613, 4096, 1 << 16} {
				for _, par := range []int{1, 2, 4, 8} {
					got := RunWindowed(a.Stream(0, records), p.mk(), Options{
						Config:      DefaultConfig(),
						WindowSize:  ws,
						Parallelism: par,
					})
					if got != want {
						t.Errorf("%s/%s window=%d j=%d: windowed %+v != scalar %+v",
							p.name, appName, ws, par, got, want)
					}
				}
			}
		}
	}
}

// TestWindowedMatchesBatched closes the three-engine triangle on the
// Run dispatcher itself: scalar, batched, and windowed must agree when
// selected through Options.
func TestWindowedMatchesBatched(t *testing.T) {
	recs := randomRecords(11, 30000)
	mk := func() bpu.Predictor { return tage.New(tage.Config{SizeKB: 8}) }
	want := Run(trace.NewSliceStream(recs), mk(), Options{Config: DefaultConfig(), BlockSize: -1})
	batched := Run(trace.NewSliceStream(recs), mk(), Options{Config: DefaultConfig()})
	if batched != want {
		t.Fatalf("batched %+v != scalar %+v", batched, want)
	}
	for _, par := range []int{2, 4, 8} {
		for _, ws := range []int{1, 2048, 8192} {
			got := Run(trace.NewSliceStream(recs), mk(), Options{
				Config:      DefaultConfig(),
				Parallelism: par,
				WindowSize:  ws,
			})
			if got != want {
				t.Errorf("j=%d window=%d: windowed via Run %+v != scalar %+v", par, ws, got, want)
			}
		}
	}
}

// TestWindowedWarmupEdges sweeps warmup counts around window
// boundaries: warmup inside the first window, exactly on a boundary,
// spanning several windows, and covering the whole trace.
func TestWindowedWarmupEdges(t *testing.T) {
	recs := randomRecords(5, 10000)
	mk := func() bpu.Predictor { return bpu.NewGShare(12, 10) }
	for _, warmup := range []uint64{0, 1, 999, 1000, 1001, 5000, 9999, 10000} {
		opt := Options{Config: DefaultConfig(), WarmupRecords: warmup}
		want := RunScalar(trace.NewSliceStream(recs), mk(), opt)
		for _, par := range []int{1, 4} {
			opt.Parallelism = par
			opt.WindowSize = 1000
			got := RunWindowed(trace.NewSliceStream(recs), mk(), opt)
			if got != want {
				t.Errorf("warmup=%d j=%d: %+v != %+v", warmup, par, got, want)
			}
		}
	}
}

// TestWindowedEmptyStream checks the no-records edge on every engine
// topology.
func TestWindowedEmptyStream(t *testing.T) {
	for _, par := range []int{1, 2, 4} {
		got := RunWindowed(trace.NewSliceStream(nil), bpu.NewBimodal(10), Options{
			Config:        DefaultConfig(),
			WarmupRecords: 7,
			Parallelism:   par,
		})
		want := RunScalar(trace.NewSliceStream(nil), bpu.NewBimodal(10), Options{
			Config:        DefaultConfig(),
			WarmupRecords: 7,
		})
		if got != want {
			t.Errorf("j=%d: empty stream %+v != %+v", par, got, want)
		}
	}
}

// TestWindowedNonPassiveHookFallsBack mirrors the batched engine's
// contract: a hook without PassiveAt forces the scalar reference loop.
func TestWindowedNonPassiveHookFallsBack(t *testing.T) {
	recs := randomRecords(3, 2000)
	hook := &countingHook{}
	got := RunWindowed(trace.NewSliceStream(recs), bpu.NewBimodal(10), Options{
		Config:      DefaultConfig(),
		Hook:        hook,
		Parallelism: 4,
	})
	want := RunScalar(trace.NewSliceStream(recs), bpu.NewBimodal(10), Options{
		Config: DefaultConfig(),
		Hook:   &countingHook{},
	})
	if got != want {
		t.Fatalf("fallback mismatch: %+v != %+v", got, want)
	}
	if hook.n != len(recs) {
		t.Fatalf("hook saw %d records, want %d", hook.n, len(recs))
	}
}

type countingHook struct{ n int }

func (h *countingHook) OnRecord(rec *trace.Record) { h.n++ }

// buildWindowJob assembles the winJob a leader would produce for
// records [lo, hi) of recs, with exact boundary state and miss flags.
func buildWindowJob(t *testing.T, cfg Config, recs []trace.Record, miss []bool, lo, hi int) *winJob {
	t.Helper()
	job := &winJob{blk: trace.NewBlock(hi - lo), miss: miss[lo:hi]}
	for i := lo; i < hi; i++ {
		r := recs[i]
		job.blk.Append(&r)
	}
	var rem, prev uint64
	for i := 0; i < hi; i++ {
		if i == lo {
			job.startSeen, job.startRem, job.startPrev = uint64(i), rem, prev
		}
		rem = (rem + uint64(recs[i].Instrs) + 1) % uint64(cfg.Width)
		if recs[i].Taken {
			prev = recs[i].Target
		} else {
			prev = recs[i].PC + 4
		}
	}
	job.endRem, job.endPrev = rem, prev
	return job
}

// TestSpeculationSplice forces the speculative path deterministically,
// with no goroutines: a window is speculated from boundaries of varying
// staleness (the true boundary, a half-window-stale state, and a
// completely cold frontend) and resolved through the committer's
// adopt-or-replay step. Every case must land on exactly the state and
// counters the true path produces; the true-boundary case must adopt
// with zero replay.
func TestSpeculationSplice(t *testing.T) {
	cfg := DefaultConfig()
	const n = 20000
	const lo = 10000
	recs := randomRecords(9, n)

	// Leader view: exact miss flags for the whole trace.
	blk := trace.NewBlock(n)
	for i := range recs {
		blk.Append(&recs[i])
	}
	miss := make([]bool, n)
	newSpanRunner(bpu.NewGShare(12, 10), nil, n).phaseA(blk, miss)

	// True path for reference, and the true accounting state at lo.
	truth := newAcct(cfg, 0)
	truth.accountBlock(blk, miss, 0, lo)
	trueBoundary := truth.fe.Clone()
	trueBoundary.Stats = frontend.Stats{}
	truth.accountBlock(blk, miss, lo, n)
	want := truth.finish()

	stale := newAcct(cfg, 0)
	stale.accountBlock(blk, miss, 0, lo/2)
	staleBoundary := stale.fe.Clone()
	staleBoundary.Stats = frontend.Stats{}

	cases := []struct {
		name      string
		b         *boundary
		wantExact bool
	}{
		{"true-boundary", &boundary{idx: 0, fe: trueBoundary}, true},
		{"stale-boundary", &boundary{idx: -1, fe: staleBoundary}, false},
		{"cold-boundary", &boundary{idx: -1, fe: frontend.New(cfg.Frontend)}, false},
	}
	for _, tc := range cases {
		job := buildWindowJob(t, cfg, recs, miss, lo, n)
		r := speculateWindow(cfg, 0, job, tc.b)

		a := newAcct(cfg, 0)
		a.accountBlock(blk, miss, 0, lo)
		replayed, _ := a.adoptOrReplay(job, r, nil)
		got := a.finish()
		if got != want {
			t.Errorf("%s: spliced %+v != true %+v", tc.name, got, want)
		}
		if tc.wantExact && replayed != 0 {
			t.Errorf("%s: replayed %d records from the true boundary", tc.name, replayed)
		}
		if replayed == job.blk.N && tc.wantExact {
			t.Errorf("%s: full replay of an exact window", tc.name)
		}
	}
}

// FuzzWindowedVsScalar fuzzes the windowed engine against the scalar
// reference over random streams, window sizes, worker counts, and
// warmup windows: the summary must be byte-identical in every case.
func FuzzWindowedVsScalar(f *testing.F) {
	f.Add(uint64(1), 100, 2, 1000, 0)
	f.Add(uint64(2), 613, 4, 9999, 500)
	f.Add(uint64(3), 1<<14, 8, 20000, 0)
	f.Add(uint64(4), 1, 3, 777, 776)
	f.Fuzz(func(t *testing.T, seed uint64, window, par, n, warmup int) {
		if window < 1 || window > 1<<15 || par < 1 || par > 8 || n < 1 || n > 20000 || warmup < 0 {
			t.Skip()
		}
		recs := randomRecords(seed, n)
		opt := Options{Config: DefaultConfig(), WarmupRecords: uint64(warmup)}
		want := RunScalar(trace.NewSliceStream(recs), tage.New(tage.Config{SizeKB: 8}), opt)
		opt.WindowSize = window
		opt.Parallelism = par
		got := RunWindowed(trace.NewSliceStream(recs), tage.New(tage.Config{SizeKB: 8}), opt)
		if got != want {
			t.Fatalf("seed=%d window=%d j=%d n=%d warmup=%d: %+v != %+v",
				seed, window, par, n, warmup, got, want)
		}
	})
}
