package pipeline

import (
	"reflect"
	"testing"

	"github.com/whisper-sim/whisper/internal/attrib"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// attribState flattens a collector for equality comparison.
type attribState struct {
	Rows        []attrib.Row
	Overflow    attrib.Branch
	OverflowPCs uint64
	Execs, Misp uint64
}

func stateOf(c *attrib.Collector) attribState {
	return attribState{
		Rows:        c.Ranked(),
		Overflow:    c.Overflow,
		OverflowPCs: c.OverflowPCs,
		Execs:       c.CondExecs,
		Misp:        c.CondMisp,
	}
}

// TestAttribIdenticalAcrossEngines is the attribution determinism lock:
// the scalar, batched, and windowed engines must feed the collector the
// exact same observation stream — same per-branch counts, same totals —
// at every block size, window size, and worker count, with and without
// warmup. Reports built from these collectors are then byte-identical
// by construction.
func TestAttribIdenticalAcrossEngines(t *testing.T) {
	app := workload.DataCenterApp("mysql")
	if app == nil {
		t.Fatal("app mysql missing")
	}
	const records = 12000
	mk := func() *tage.TageSCL { return tage.New(tage.Config{SizeKB: 8}) }

	for _, warmup := range []uint64{0, 3000} {
		ref := attrib.NewCollector(0)
		refRes := RunScalar(app.Stream(0, records), mk(), Options{
			Config: DefaultConfig(), WarmupRecords: warmup, Attrib: ref,
		})
		want := stateOf(ref)
		if ref.CondExecs != refRes.CondExecs || ref.CondMisp != refRes.CondMisp {
			t.Fatalf("warmup=%d: collector totals %d/%d != result %d/%d",
				warmup, ref.CondExecs, ref.CondMisp, refRes.CondExecs, refRes.CondMisp)
		}

		for _, bs := range []int{1, 7, 512, trace.DefaultBlockSize} {
			c := attrib.NewCollector(0)
			Run(app.Stream(0, records), mk(), Options{
				Config: DefaultConfig(), WarmupRecords: warmup, BlockSize: bs, Attrib: c,
			})
			if got := stateOf(c); !reflect.DeepEqual(got, want) {
				t.Errorf("warmup=%d block=%d: batched attribution diverged", warmup, bs)
			}
		}
		for _, par := range []int{1, 2, 4, 8} {
			for _, ws := range []int{613, 4096} {
				c := attrib.NewCollector(0)
				RunWindowed(app.Stream(0, records), mk(), Options{
					Config: DefaultConfig(), WarmupRecords: warmup,
					Parallelism: par, WindowSize: ws, Attrib: c,
				})
				if got := stateOf(c); !reflect.DeepEqual(got, want) {
					t.Errorf("warmup=%d j=%d window=%d: windowed attribution diverged", warmup, par, ws)
				}
			}
		}
	}
}

// TestAttribNilCollectorUnchangedResult pins that threading a nil
// collector through every engine changes nothing.
func TestAttribNilCollectorUnchangedResult(t *testing.T) {
	recs := randomRecords(17, 20000)
	mk := func() *tage.TageSCL { return tage.New(tage.Config{SizeKB: 8}) }
	want := RunScalar(trace.NewSliceStream(recs), mk(), Options{Config: DefaultConfig()})
	for _, opt := range []Options{
		{Config: DefaultConfig(), BlockSize: -1},
		{Config: DefaultConfig()},
		{Config: DefaultConfig(), Parallelism: 4, WindowSize: 4096},
	} {
		if got := Run(trace.NewSliceStream(recs), mk(), opt); got != want {
			t.Errorf("opt %+v: result with nil collector %+v != %+v", opt, got, want)
		}
	}
}

// TestAttribMatchesResultCounters cross-checks the collector against the
// engine's own accounting on a randomized trace with warmup.
func TestAttribMatchesResultCounters(t *testing.T) {
	recs := randomRecords(23, 25000)
	c := attrib.NewCollector(0)
	res := Run(trace.NewSliceStream(recs), tage.New(tage.Config{SizeKB: 8}), Options{
		Config: DefaultConfig(), WarmupRecords: 5000, Attrib: c,
	})
	if c.CondExecs != res.CondExecs || c.CondMisp != res.CondMisp {
		t.Fatalf("collector %d/%d != result %d/%d", c.CondExecs, c.CondMisp, res.CondExecs, res.CondMisp)
	}
	var taken uint64
	for _, r := range c.Ranked() {
		taken += r.Taken
	}
	if taken == 0 || taken > c.CondExecs {
		t.Fatalf("taken accounting out of range: %d of %d", taken, c.CondExecs)
	}
}
