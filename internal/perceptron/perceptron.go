// Package perceptron implements a hashed perceptron branch predictor in
// the lineage the paper discusses under "Online branch predictors"
// (Jiménez & Lin, HPCA 2001; the multiperspective perceptron, CBP-5).
//
// Each static branch (PC-indexed row) holds a bias weight plus one signed
// weight per recent global-history bit; two additional tables hold
// weights for hashed long-history segments, the multiperspective idea.
// The prediction is the sign of the dot product between the weights and
// the ±1 history; training follows the perceptron rule with Seznec's
// adaptive threshold.
//
// It exists as an additional online baseline for the comparison harness:
// like TAGE-SC-L it is capacity-limited, so Whisper's hints compose with
// it the same way.
package perceptron

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
)

// HistBits is the per-bit weight window. Shorter than the classic 28-60
// so the row table keeps enough entries for data-center static-branch
// populations; longer reach comes from the hashed segment features.
const HistBits = 8

// segment features: hashed long-history perspectives beyond the per-bit
// window.
var segments = []struct{ From, To int }{
	{8, 32},
	{32, 128},
	{128, 512},
}

// Config sizes the predictor.
type Config struct {
	// SizeKB is the total weight storage budget (weights are 8-bit).
	SizeKB int
}

// DefaultConfig matches the paper's 64KB predictor budgets.
func DefaultConfig() Config { return Config{SizeKB: 64} }

// Perceptron is a hashed perceptron predictor. Not safe for concurrent
// use.
//
// Every weight column (the bias, each history-bit weight, each segment
// weight) lives in its own table indexed by a column-specific hash of the
// PC (Tarjan & Skadron's hashed perceptron). Decorrelated column indices
// are what make the predictor degrade gracefully under the huge static
// branch populations of data center applications: a branch that collides
// with an antagonist in one column still sums clean weights from the
// others.
type Perceptron struct {
	cfg     Config
	bitTbl  [][]int8 // HistBits+1 tables (index 0 = bias), each entries long
	bitMask uint64
	segTbl  [][]int8
	segMask uint64
	hist    bpu.History

	theta    int32
	thetaMin int32
	tc       int32
	lastSum  int32
	lastBit  []uint64
	lastSeg  []uint64
	lastPC   uint64
	valid    bool

	// segHash stages the per-segment history hashes for the current
	// prediction; segPlan is the precompiled plan over the To lengths.
	segHash []uint64
	segPlan *bpu.HashPlan
}

// New builds a predictor with the given budget.
func New(cfg Config) *Perceptron {
	if cfg.SizeKB < 1 {
		panic("perceptron: SizeKB must be >= 1")
	}
	budget := cfg.SizeKB * 1024
	// Half the budget to the bias/bit columns, half to the segment
	// tables.
	nBit := HistBits + 1
	bitEntries := 1
	for bitEntries*2*nBit <= budget*3/4 {
		bitEntries *= 2
	}
	segEntries := 1
	for segEntries*2*len(segments) <= budget/4 {
		segEntries *= 2
	}
	p := &Perceptron{
		cfg:      cfg,
		bitMask:  uint64(bitEntries - 1),
		segMask:  uint64(segEntries - 1),
		thetaMin: int32(1.93*float64(HistBits+len(segments))) + 14,
		lastBit:  make([]uint64, nBit),
		lastSeg:  make([]uint64, len(segments)),
		segHash:  make([]uint64, len(segments)),
	}
	var segLens []int
	for _, seg := range segments {
		segLens = append(segLens, seg.To)
	}
	p.segPlan = bpu.MakeHashPlan(segLens)
	p.bitTbl = make([][]int8, nBit)
	for i := range p.bitTbl {
		p.bitTbl[i] = make([]int8, bitEntries)
	}
	p.theta = p.thetaMin
	p.segTbl = make([][]int8, len(segments))
	for i := range p.segTbl {
		p.segTbl[i] = make([]int8, segEntries)
	}
	return p
}

// Name implements bpu.Predictor.
func (p *Perceptron) Name() string { return fmt.Sprintf("perceptron-%dKB", p.cfg.SizeKB) }

// colIdx hashes the PC for weight column c so collisions differ per
// column.
func (p *Perceptron) colIdx(pc uint64, c int) uint64 {
	x := (pc >> 2) * 0x9E3779B97F4A7C15
	x ^= uint64(c+1) * 0xBF58476D1CE4E5B9
	x ^= x >> 29
	return x & p.bitMask
}

// Predict implements bpu.Predictor.
func (p *Perceptron) Predict(pc uint64) bool {
	for si, seg := range segments {
		p.segHash[si] = p.hist.Hash(pc, seg.To)
	}
	return p.predictCore(pc)
}

// predictFast is Predict with the segment hashes computed through one
// precompiled prefix-shared pass; bit-identical by construction and by
// differential test.
func (p *Perceptron) predictFast(pc uint64) bool {
	p.hist.HashPlanned(pc, p.segPlan, p.segHash)
	return p.predictCore(pc)
}

// predictCore computes the dot product over the column weights using
// the segment hashes staged in p.segHash.
func (p *Perceptron) predictCore(pc uint64) bool {
	bi := p.colIdx(pc, 0)
	p.lastBit[0] = bi
	sum := int32(p.bitTbl[0][bi]) // bias
	for i := 0; i < HistBits; i++ {
		idx := p.colIdx(pc, i+1)
		p.lastBit[i+1] = idx
		w := int32(p.bitTbl[i+1][idx])
		if p.hist.Bit(i) {
			sum += w
		} else {
			sum -= w
		}
	}
	for si, seg := range segments {
		idx := (p.segHash[si] ^ uint64(seg.From)*0x9E3779B97F4A7C15) & p.segMask
		p.lastSeg[si] = idx
		sum += int32(p.segTbl[si][idx])
	}
	p.lastSum = sum
	p.lastPC = pc
	p.valid = true
	return sum >= 0
}

func sat(w int32, up bool) int8 {
	if up {
		if w < 127 {
			w++
		}
	} else if w > -128 {
		w--
	}
	return int8(w)
}

// Update implements bpu.Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	if !p.valid || p.lastPC != pc {
		p.Predict(pc)
	}
	p.valid = false
	pred := p.lastSum >= 0
	mag := p.lastSum
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		p.bitTbl[0][p.lastBit[0]] = sat(int32(p.bitTbl[0][p.lastBit[0]]), taken)
		for i := 0; i < HistBits; i++ {
			// Strengthen agreement between history bit and outcome.
			up := p.hist.Bit(i) == taken
			p.bitTbl[i+1][p.lastBit[i+1]] = sat(int32(p.bitTbl[i+1][p.lastBit[i+1]]), up)
		}
		for si := range segments {
			p.segTbl[si][p.lastSeg[si]] = sat(int32(p.segTbl[si][p.lastSeg[si]]), taken)
		}
		// Adaptive threshold (Seznec): grow on mispredictions, shrink on
		// confident-enough correct low-magnitude predictions.
		if pred != taken {
			p.tc++
			if p.tc >= 32 {
				p.tc = 0
				p.theta++
			}
		} else {
			p.tc--
			if p.tc <= -32 {
				p.tc = 0
				// The floor keeps the training margin wide: freezing a
				// branch with a thin margin lets per-bit weight noise
				// flip its predictions.
				if p.theta > p.thetaMin {
					p.theta--
				}
			}
		}
	}
	p.hist.Push(taken)
}

// Theta exposes the adaptive threshold for tests.
func (p *Perceptron) Theta() int32 { return p.theta }

// PredictUpdateBatch implements bpu.BatchPredictor: Predict+Update per
// record with the segment hashes routed through the prefix-shared fast
// kernel. Locked bit-identical by the differential tests.
func (p *Perceptron) PredictUpdateBatch(pcs []uint64, taken, miss []bool) {
	for i, pc := range pcs {
		miss[i] = p.predictFast(pc) != taken[i]
		p.Update(pc, taken[i])
	}
}
