package perceptron_test

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/perceptron"
	"github.com/whisper-sim/whisper/internal/snaptest"
)

// TestSnapshotFidelity locks the bpu.Snapshotter contract the windowed
// pipeline engine depends on.
func TestSnapshotFidelity(t *testing.T) {
	snaptest.Fidelity(t, func() bpu.Predictor {
		return perceptron.New(perceptron.DefaultConfig())
	}, nil)
}
