package perceptron

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
	"github.com/whisper-sim/whisper/internal/xrand"
)

func TestImplementsPredictor(t *testing.T) {
	var _ bpu.Predictor = New(DefaultConfig())
	if New(DefaultConfig()).Name() != "perceptron-64KB" {
		t.Fatal("name")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestLearnsBias(t *testing.T) {
	p := New(DefaultConfig())
	correct := 0
	for i := 0; i < 2000; i++ {
		if p.Predict(0x400100) == false {
			correct++
		}
		p.Update(0x400100, false)
	}
	if correct < 1900 {
		t.Fatalf("not-taken bias accuracy %d/2000", correct)
	}
}

func TestLearnsAlternation(t *testing.T) {
	p := New(DefaultConfig())
	correct := 0
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		if i > 1000 && p.Predict(0x400100) == taken {
			correct++
		} else if i <= 1000 {
			p.Predict(0x400100)
		}
		p.Update(0x400100, taken)
	}
	if float64(correct)/3000 < 0.95 {
		t.Fatalf("alternation accuracy %d/3000", correct)
	}
}

func TestLearnsLinearlySeparableHistoryFunction(t *testing.T) {
	// Outcome = majority of the last 3 outcomes of a driver branch:
	// linearly separable over history bits, a perceptron specialty.
	r := xrand.New(3)
	p := New(DefaultConfig())
	var d [3]bool
	correct, total := 0, 0
	for i := 0; i < 30000; i++ {
		nd := r.Bool(0.5)
		p.Predict(0x400200)
		p.Update(0x400200, nd)
		d[0], d[1], d[2] = d[1], d[2], nd
		maj := 0
		for _, v := range d {
			if v {
				maj++
			}
		}
		want := maj >= 2
		pred := p.Predict(0x400300)
		if i > 10000 {
			if pred == want {
				correct++
			}
			total++
		}
		p.Update(0x400300, want)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("majority-function accuracy %v", acc)
	}
}

func TestAdaptiveThresholdMoves(t *testing.T) {
	p := New(DefaultConfig())
	start := p.Theta()
	r := xrand.New(4)
	for i := 0; i < 50000; i++ {
		pc := 0x400000 + uint64(r.Intn(64))*8
		p.Predict(pc)
		p.Update(pc, r.Bool(0.5))
	}
	if p.Theta() == start {
		t.Fatal("adaptive threshold never moved under random outcomes")
	}
}

func TestRandomNearChance(t *testing.T) {
	r := xrand.New(5)
	p := New(DefaultConfig())
	correct := 0
	for i := 0; i < 20000; i++ {
		taken := r.Bool(0.5)
		if p.Predict(0x400400) == taken {
			correct++
		}
		p.Update(0x400400, taken)
	}
	if float64(correct)/20000 > 0.6 {
		t.Fatalf("implausible accuracy on random branch: %d/20000", correct)
	}
}

func TestComparableToTageOnWorkload(t *testing.T) {
	// The perceptron is an alternative online baseline: measured past
	// the cold-start window (it needs ~4-5 training steps per branch
	// where TAGE's bimodal needs 1-2), it should land within a factor
	// of ~2.5 of TAGE-SC-L's misprediction rate.
	app := workload.DataCenterApp("drupal")
	tageMisp, total := runScore(tage.New(tage.DefaultConfig()), app)
	percMisp, _ := runScore(New(DefaultConfig()), app)
	tageRate := float64(tageMisp) / float64(total)
	percRate := float64(percMisp) / float64(total)
	if percRate > tageRate*2.5 {
		t.Fatalf("perceptron rate %v vs tage %v: out of regime", percRate, tageRate)
	}
	if percMisp == 0 {
		t.Fatal("no mispredictions measured")
	}
}

// runScore drives a predictor over a fixed window, skipping the first 40%
// as warm-up, and returns the measured misprediction/execution counts.
func runScore(pred bpu.Predictor, app *workload.App) (misp, total int) {
	const n = 120000
	s := app.Stream(0, n)
	var rec trace.Record
	seen := 0
	for s.Next(&rec) {
		seen++
		if rec.Kind != trace.CondBranch {
			continue
		}
		m := pred.Predict(rec.PC) != rec.Taken
		pred.Update(rec.PC, rec.Taken)
		if seen <= n*2/5 {
			continue
		}
		if m {
			misp++
		}
		total++
	}
	return misp, total
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i&1023)*8
		p.Predict(pc)
		p.Update(pc, r.Bool(0.5))
	}
}
