package perceptron

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/snap"
)

const snapVersion = 1

func appendTables(b []byte, tbls [][]int8) []byte {
	b = snap.U32(b, uint32(len(tbls)))
	b = snap.U32(b, uint32(len(tbls[0])))
	for _, tbl := range tbls {
		for _, w := range tbl {
			b = snap.I8(b, w)
		}
	}
	return b
}

func readTables(r *snap.Reader, tbls [][]int8, what string) error {
	if n := int(r.U32()); n != len(tbls) {
		return fmt.Errorf("perceptron: %d %s tables, want %d", n, what, len(tbls))
	}
	if n := int(r.U32()); r.Err() == nil && n != len(tbls[0]) {
		return fmt.Errorf("perceptron: %s table size %d, want %d", what, n, len(tbls[0]))
	}
	for _, tbl := range tbls {
		for i := range tbl {
			tbl[i] = r.I8()
		}
	}
	return r.Err()
}

// Snapshot implements bpu.Snapshotter: weights, adaptive threshold
// state, and history. The Predict→Update scratch is transient (Update
// consumes it) and excluded; Restore clears it.
func (p *Perceptron) Snapshot() []byte {
	var b []byte
	b = appendTables(b, p.bitTbl)
	b = appendTables(b, p.segTbl)
	b = snap.I32(b, p.theta)
	b = snap.I32(b, p.tc)
	b = bpu.AppendHistory(b, &p.hist)
	return snap.Seal(snap.KindPerceptron, snapVersion, b)
}

// Restore implements bpu.Snapshotter. The receiver must share the
// snapshotted predictor's Config.
func (p *Perceptron) Restore(s []byte) error {
	payload, err := snap.Open(snap.KindPerceptron, snapVersion, s)
	if err != nil {
		return err
	}
	r := snap.NewReader(payload)
	if err := readTables(r, p.bitTbl, "bit"); err != nil {
		return err
	}
	if err := readTables(r, p.segTbl, "segment"); err != nil {
		return err
	}
	p.theta = r.I32()
	p.tc = r.I32()
	bpu.ReadHistory(r, &p.hist)
	if err := r.Done(); err != nil {
		return err
	}
	p.valid = false
	return nil
}
