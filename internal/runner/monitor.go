package runner

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// UnitStat is one completed unit's accounting record.
type UnitStat struct {
	Label string
	// Wall is the unit's wall-clock duration.
	Wall time.Duration
	// Instrs is the number of simulated instructions the unit credited.
	Instrs uint64
}

// MIPS returns the unit's own simulation throughput in million
// instructions per second.
func (s UnitStat) MIPS() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Instrs) / s.Wall.Seconds() / 1e6
}

// Monitor aggregates unit telemetry across every driver sharing it and,
// when given a writer, renders a live one-line progress/ETA display
// (meant for stderr so tables on stdout stay clean).
type Monitor struct {
	mu       sync.Mutex
	w        io.Writer
	start    time.Time
	total    int
	done     int
	workers  int
	wall     time.Duration
	instrs   uint64
	units    []UnitStat
	rendered bool
}

// NewMonitor creates a monitor; w may be nil to collect timing without
// rendering progress.
func NewMonitor(w io.Writer) *Monitor { return &Monitor{w: w} }

// expect registers n more upcoming units (a pool calls this when a
// driver fans out) and the widest worker count seen, used for the ETA.
func (m *Monitor) expect(n, workers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.start.IsZero() {
		m.start = time.Now()
	}
	m.total += n
	if workers > m.workers {
		m.workers = workers
	}
}

// finish records one completed unit and refreshes the progress line.
func (m *Monitor) finish(u UnitStat) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done++
	m.wall += u.Wall
	m.instrs += u.Instrs
	m.units = append(m.units, u)
	m.render()
}

// render repaints the progress line; callers hold m.mu.
func (m *Monitor) render() {
	if m.w == nil || m.total == 0 {
		return
	}
	elapsed := time.Since(m.start)
	line := fmt.Sprintf("[%d/%d units] %.0f%%", m.done, m.total,
		100*float64(m.done)/float64(m.total))
	if elapsed > 0 && m.instrs > 0 {
		line += fmt.Sprintf(" | %.1f MIPS", float64(m.instrs)/elapsed.Seconds()/1e6)
	}
	if m.done > 0 && m.done < m.total {
		workers := m.workers
		if workers < 1 {
			workers = 1
		}
		avg := m.wall / time.Duration(m.done)
		eta := avg * time.Duration(m.total-m.done) / time.Duration(workers)
		line += fmt.Sprintf(" | eta %s", eta.Round(time.Second))
	}
	fmt.Fprintf(m.w, "\r\x1b[K%s", line)
	m.rendered = true
}

// Done clears the progress line once the suite finishes.
func (m *Monitor) Done() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rendered {
		fmt.Fprint(m.w, "\r\x1b[K")
		m.rendered = false
	}
}

// Snapshot returns the aggregate counts collected so far.
func (m *Monitor) Snapshot() (done, total int, instrs uint64, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.done, m.total, m.instrs, m.wall
}

// Summary renders the timing report: aggregate throughput, effective
// concurrency, and the slowest units.
func (m *Monitor) Summary() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	elapsed := time.Since(m.start)
	if m.done == 0 || elapsed <= 0 {
		return "runner: no units executed"
	}
	fmt.Fprintf(&b, "runner: %d units in %s (unit wall %s, %.1fx effective concurrency)\n",
		m.done, elapsed.Round(time.Millisecond), m.wall.Round(time.Millisecond),
		m.wall.Seconds()/elapsed.Seconds())
	fmt.Fprintf(&b, "runner: %.1fM instructions simulated, %.1f MIPS effective\n",
		float64(m.instrs)/1e6, float64(m.instrs)/elapsed.Seconds()/1e6)
	slowest := append([]UnitStat(nil), m.units...)
	sort.SliceStable(slowest, func(i, j int) bool { return slowest[i].Wall > slowest[j].Wall })
	if len(slowest) > 5 {
		slowest = slowest[:5]
	}
	b.WriteString("runner: slowest units:\n")
	for _, u := range slowest {
		label := u.Label
		if label == "" {
			label = "(unlabeled)"
		}
		fmt.Fprintf(&b, "  %-32s %10s  %8.2fM instrs  %6.1f MIPS\n",
			label, u.Wall.Round(time.Millisecond), float64(u.Instrs)/1e6, u.MIPS())
	}
	return strings.TrimRight(b.String(), "\n")
}
