package runner

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/whisper-sim/whisper/internal/telemetry"
)

// renderInterval throttles progress repaints to ~10 Hz. At high -j with
// tiny units, per-finish "\r\x1b[K" rewrites flood stderr with kilobytes
// of escape codes per second; a terminal cannot show more states than
// this anyway. The final unit always repaints so the line ends accurate.
const renderInterval = 100 * time.Millisecond

// UnitStat is one completed unit's accounting record.
type UnitStat struct {
	Label string
	// Wall is the unit's wall-clock duration.
	Wall time.Duration
	// Instrs is the number of simulated instructions the unit credited.
	Instrs uint64
	// Records is the number of simulated branch records the unit
	// credited — the work unit cmd/bench reports throughput in.
	Records uint64
}

// MIPS returns the unit's own simulation throughput in million
// instructions per second.
func (s UnitStat) MIPS() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Instrs) / s.Wall.Seconds() / 1e6
}

// Monitor aggregates unit telemetry across every driver sharing it and,
// when given a writer, renders a live one-line progress/ETA display
// (meant for stderr so tables on stdout stay clean).
//
// Its aggregate accounting lives in telemetry instruments rather than
// bespoke fields; when the process registry is enabled the same cells
// are registered as the whisper_runner_* series, so the -timing summary
// and a /metrics scrape read one set of counters. Per-unit records (the
// slowest-units report) and render state stay monitor-local.
type Monitor struct {
	mu         sync.Mutex
	w          io.Writer
	start      time.Time
	total      int
	workers    int
	units      []UnitStat
	rendered   bool
	lastRender time.Time
	interval   time.Duration

	done     *telemetry.Counter
	instrs   *telemetry.Counter
	records  *telemetry.Counter
	wallNS   *telemetry.Counter
	expected *telemetry.Gauge
	inflight *telemetry.Gauge

	journal *telemetry.Journal
}

// NewMonitor creates a monitor; w may be nil to collect timing without
// rendering progress. If the process telemetry registry is enabled, the
// monitor's instruments are (re-)registered as the whisper_runner_*
// series — a fresh monitor therefore restarts those series, matching
// the one-monitor-per-run lifecycle of the CLIs.
func NewMonitor(w io.Writer) *Monitor {
	m := &Monitor{
		w:        w,
		interval: renderInterval,
		done:     telemetry.NewCounter(),
		instrs:   telemetry.NewCounter(),
		records:  telemetry.NewCounter(),
		wallNS:   telemetry.NewCounter(),
		expected: telemetry.NewGauge(),
		inflight: telemetry.NewGauge(),
	}
	if r := telemetry.Default(); r != nil {
		r.SetCounter("whisper_runner_units_completed_total", m.done)
		r.SetCounter("whisper_runner_instructions_total", m.instrs)
		r.SetCounter("whisper_runner_records_total", m.records)
		r.SetCounter("whisper_runner_unit_wall_ns_total", m.wallNS)
		r.SetGauge("whisper_runner_units_expected", m.expected)
		r.SetGauge("whisper_runner_units_inflight", m.inflight)
	}
	return m
}

// AttachJournal routes one "unit" event per completed unit into j
// (nil detaches). Attach before fanning out work.
func (m *Monitor) AttachJournal(j *telemetry.Journal) {
	m.mu.Lock()
	m.journal = j
	m.mu.Unlock()
}

// expect registers n more upcoming units (a pool calls this when a
// driver fans out) and the widest worker count seen, used for the ETA.
func (m *Monitor) expect(n, workers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.start.IsZero() {
		m.start = time.Now()
	}
	m.total += n
	m.expected.Set(int64(m.total))
	if workers > m.workers {
		m.workers = workers
	}
}

// begin marks one unit as running (in-flight gauge for /metrics).
func (m *Monitor) begin() { m.inflight.Add(1) }

// finish records one completed unit and refreshes the progress line.
func (m *Monitor) finish(u UnitStat) {
	m.inflight.Add(-1)
	m.done.Inc()
	m.instrs.Add(u.Instrs)
	m.records.Add(u.Records)
	m.wallNS.Add(uint64(u.Wall))

	m.mu.Lock()
	journal := m.journal
	m.units = append(m.units, u)
	m.render()
	m.mu.Unlock()

	// Journal writes leave the monitor lock so slow sinks never stall
	// progress rendering; the journal has its own lock.
	if journal != nil {
		journal.WriteUnit(u.Label, u.Wall, u.Instrs, u.Records)
	}
}

// render repaints the progress line, throttled to the render interval;
// suite completion (done == total) always repaints so the line ends
// accurate. Callers hold m.mu.
func (m *Monitor) render() {
	if m.w == nil || m.total == 0 {
		return
	}
	done := int(m.done.Value())
	now := time.Now()
	if done < m.total && now.Sub(m.lastRender) < m.interval {
		return
	}
	m.lastRender = now
	elapsed := time.Since(m.start)
	instrs := m.instrs.Value()
	line := fmt.Sprintf("[%d/%d units] %.0f%%", done, m.total,
		100*float64(done)/float64(m.total))
	if elapsed > 0 && instrs > 0 {
		line += fmt.Sprintf(" | %.1f MIPS", float64(instrs)/elapsed.Seconds()/1e6)
	}
	if done > 0 && done < m.total {
		workers := m.workers
		if workers < 1 {
			workers = 1
		}
		avg := time.Duration(m.wallNS.Value()) / time.Duration(done)
		eta := avg * time.Duration(m.total-done) / time.Duration(workers)
		line += fmt.Sprintf(" | eta %s", eta.Round(time.Second))
	}
	fmt.Fprintf(m.w, "\r\x1b[K%s", line)
	m.rendered = true
}

// Done clears the progress line once the suite finishes.
func (m *Monitor) Done() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rendered {
		fmt.Fprint(m.w, "\r\x1b[K")
		m.rendered = false
	}
}

// Snapshot returns the aggregate counts collected so far.
func (m *Monitor) Snapshot() (done, total int, instrs uint64, wall time.Duration) {
	m.mu.Lock()
	total = m.total
	m.mu.Unlock()
	return int(m.done.Value()), total, m.instrs.Value(), time.Duration(m.wallNS.Value())
}

// Summary renders the timing report: aggregate throughput, effective
// concurrency, and the slowest units.
func (m *Monitor) Summary() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	elapsed := time.Since(m.start)
	done := int(m.done.Value())
	if done == 0 || elapsed <= 0 {
		return "runner: no units executed"
	}
	wall := time.Duration(m.wallNS.Value())
	instrs := m.instrs.Value()
	fmt.Fprintf(&b, "runner: %d units in %s (unit wall %s, %.1fx effective concurrency)\n",
		done, elapsed.Round(time.Millisecond), wall.Round(time.Millisecond),
		wall.Seconds()/elapsed.Seconds())
	fmt.Fprintf(&b, "runner: %.1fM instructions simulated, %.1f MIPS effective\n",
		float64(instrs)/1e6, float64(instrs)/elapsed.Seconds()/1e6)
	if records := m.records.Value(); records > 0 {
		fmt.Fprintf(&b, "runner: %.1fM branch records simulated, %.0f records/sec effective\n",
			float64(records)/1e6, float64(records)/elapsed.Seconds())
	}
	slowest := append([]UnitStat(nil), m.units...)
	sort.SliceStable(slowest, func(i, j int) bool { return slowest[i].Wall > slowest[j].Wall })
	if len(slowest) > 5 {
		slowest = slowest[:5]
	}
	b.WriteString("runner: slowest units:\n")
	for _, u := range slowest {
		label := u.Label
		if label == "" {
			label = "(unlabeled)"
		}
		fmt.Fprintf(&b, "  %-32s %10s  %8.2fM instrs  %6.1f MIPS\n",
			label, u.Wall.Round(time.Millisecond), float64(u.Instrs)/1e6, u.MIPS())
	}
	return strings.TrimRight(b.String(), "\n")
}
