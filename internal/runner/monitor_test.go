package runner

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/whisper-sim/whisper/internal/telemetry"
)

func TestMonitorConcurrentFinishSnapshot(t *testing.T) {
	m := NewMonitor(nil)
	const goroutines, per = 8, 200
	m.expect(goroutines*per, goroutines)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Hammer Snapshot and Summary while finishes race in (run under
	// -race in CI).
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.Snapshot()
				m.Summary()
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.finish(UnitStat{Label: fmt.Sprintf("g%d/u%d", g, i), Wall: time.Microsecond, Instrs: 10})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	done, total, instrs, wall := m.Snapshot()
	if done != goroutines*per || total != goroutines*per {
		t.Fatalf("done/total = %d/%d, want %d/%d", done, total, goroutines*per, goroutines*per)
	}
	if instrs != goroutines*per*10 {
		t.Fatalf("instrs = %d, want %d", instrs, goroutines*per*10)
	}
	if wall != goroutines*per*time.Microsecond {
		t.Fatalf("wall = %v", wall)
	}
}

func TestMonitorETAWithZeroWorkers(t *testing.T) {
	var buf bytes.Buffer
	m := NewMonitor(&buf)
	// workers < 1 must not divide by zero in the ETA math; the render
	// clamps to one worker.
	m.expect(4, 0)
	m.finish(UnitStat{Label: "a", Wall: 10 * time.Millisecond, Instrs: 100})
	out := buf.String()
	if !strings.Contains(out, "[1/4 units]") {
		t.Fatalf("progress line missing: %q", out)
	}
	if !strings.Contains(out, "eta") {
		t.Fatalf("expected an eta with done in (0,total): %q", out)
	}
}

func TestMonitorSummaryNoUnits(t *testing.T) {
	m := NewMonitor(nil)
	if got := m.Summary(); got != "runner: no units executed" {
		t.Fatalf("empty summary = %q", got)
	}
	// Same after expectations with no completions.
	m.expect(3, 2)
	if got := m.Summary(); got != "runner: no units executed" {
		t.Fatalf("expected-but-idle summary = %q", got)
	}
}

func TestMonitorThrottlesRepaints(t *testing.T) {
	var buf bytes.Buffer
	m := NewMonitor(&buf)
	const n = 200
	m.expect(n, 4)
	for i := 0; i < n; i++ {
		m.finish(UnitStat{Label: "u", Wall: time.Microsecond, Instrs: 1})
	}
	repaints := strings.Count(buf.String(), "\r\x1b[K")
	// The first finish paints (interval elapsed since the zero time) and
	// the final one always paints; a fast loop must coalesce the rest.
	if repaints >= n/2 {
		t.Fatalf("%d repaints for %d finishes — throttle not applied", repaints, n)
	}
	if repaints < 1 {
		t.Fatal("no repaint at all")
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("[%d/%d units]", n, n)) {
		t.Fatalf("final state never painted: %q", buf.String())
	}
}

func TestMonitorRegistersRunnerSeries(t *testing.T) {
	prev := telemetry.Default()
	reg := telemetry.Install(telemetry.NewRegistry())
	defer telemetry.Install(prev)

	m := NewMonitor(nil)
	m.expect(2, 2)
	m.finish(UnitStat{Label: "a", Wall: time.Millisecond, Instrs: 500})
	if got := reg.Counter("whisper_runner_units_completed_total").Value(); got != 1 {
		t.Fatalf("registry units = %d, want 1", got)
	}
	if got := reg.Counter("whisper_runner_instructions_total").Value(); got != 500 {
		t.Fatalf("registry instrs = %d, want 500", got)
	}
	if got := reg.Gauge("whisper_runner_units_expected").Value(); got != 2 {
		t.Fatalf("registry expected = %d, want 2", got)
	}
	// A fresh monitor restarts the series (one-monitor-per-run CLIs).
	NewMonitor(nil)
	if got := reg.Counter("whisper_runner_units_completed_total").Value(); got != 0 {
		t.Fatalf("fresh monitor did not restart series: %d", got)
	}
}

func TestMonitorJournalUnitEvents(t *testing.T) {
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	j.WriteManifest(telemetry.Manifest{Tool: "test"})
	m := NewMonitor(nil)
	m.AttachJournal(j)
	p := &Pool{Workers: 4, Monitor: m}
	err := p.Run(10, func(i int, u *Unit) error {
		u.Label = fmt.Sprintf("unit%d", i)
		u.AddInstrs(100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j.WriteSnapshot(nil)
	units, err := telemetry.ValidateJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal invalid: %v\n%s", err, buf.String())
	}
	if units != 10 {
		t.Fatalf("journal units = %d, want 10", units)
	}
}
