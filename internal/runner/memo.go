package runner

import (
	"sync"
	"sync/atomic"
)

// Memo caches the results of deterministic computations across drivers.
// Several experiment drivers re-measure the same baseline window (the
// 64KB TAGE-SC-L run for a given app/input/records); keyed on the full
// input set, the memo computes each once and hands every later caller
// the cached value. Concurrent callers of the same key block on a single
// computation rather than duplicating it. The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu           sync.Mutex
	m            map[K]*memoEntry[V]
	hits, misses atomic.Uint64
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
}

// Do returns the memoized value for key, running compute at most once
// per key. compute must be a pure function of the key.
func (m *Memo[K, V]) Do(key K, compute func() V) V {
	m.mu.Lock()
	e := m.m[key]
	if e == nil {
		if m.m == nil {
			m.m = map[K]*memoEntry[V]{}
		}
		e = &memoEntry[V]{}
		m.m[key] = e
		m.misses.Add(1)
	} else {
		m.hits.Add(1)
	}
	m.mu.Unlock()
	e.once.Do(func() { e.v = compute() })
	return e.v
}

// Stats reports how often Do found a cached entry versus computing one.
func (m *Memo[K, V]) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Len returns the number of cached keys.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Reset drops every cached entry and zeroes the hit/miss counters.
// Callers must not race Reset with Do; tests use it to force
// recomputation between otherwise-identical runs.
func (m *Memo[K, V]) Reset() {
	m.mu.Lock()
	m.m = nil
	m.mu.Unlock()
	m.hits.Store(0)
	m.misses.Store(0)
}
