// Package runner is the parallel experiment execution engine: a bounded
// worker pool fans independent simulation units out across cores while
// results stay indexed by unit, never by completion order, so a parallel
// run's output is byte-identical to a sequential one. The package also
// carries the suite's observability — per-unit wall-time and
// instruction-throughput accounting with a live progress/ETA line
// (monitor.go) — and a cross-driver memo for repeated deterministic
// computations (memo.go).
package runner

import (
	"sync"
	"sync/atomic"
	"time"
)

// Unit is the per-unit context a work function receives: its stable
// index, a label for progress/timing reports, and an instruction counter
// feeding the engine's throughput accounting.
type Unit struct {
	// Index is the unit's position in the Run's [0, n) order.
	Index int
	// Label names the unit in progress and timing reports
	// (e.g. "fig13/mysql").
	Label string

	instrs  uint64
	records uint64
}

// AddInstrs credits simulated instructions to the unit for MIPS
// accounting. Memoized results count too: the reported throughput is the
// effective simulation rate, so cache hits show up as speedup.
func (u *Unit) AddInstrs(n uint64) { u.instrs += n }

// AddRecords credits simulated branch records to the unit. Records are
// the unit of work cmd/bench reports, so crediting them here makes the
// -timing records/sec figure directly comparable to benchmark output.
func (u *Unit) AddRecords(n uint64) { u.records += n }

// Pool executes independent units with bounded parallelism. The zero
// value runs sequentially with no observer.
type Pool struct {
	// Workers bounds how many units run concurrently; values below 1
	// mean sequential execution.
	Workers int
	// Monitor, when non-nil, observes unit completions.
	Monitor *Monitor
}

// Run executes fn for every index in [0, n). Units may run concurrently
// and complete in any order; callers must write results into pre-sized
// slices indexed by unit, which keeps output independent of scheduling.
// On failure no new units start and the error of the lowest-index failed
// unit is returned.
func (p *Pool) Run(n int, fn func(i int, u *Unit) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if p.Monitor != nil {
		p.Monitor.expect(n, workers)
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := p.runUnit(i, fn); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runUnit times one unit and reports it to the monitor.
func (p *Pool) runUnit(i int, fn func(int, *Unit) error) error {
	u := &Unit{Index: i}
	if p.Monitor != nil {
		p.Monitor.begin()
	}
	start := time.Now()
	err := fn(i, u)
	if p.Monitor != nil {
		p.Monitor.finish(UnitStat{Label: u.Label, Wall: time.Since(start), Instrs: u.instrs, Records: u.records})
	}
	return err
}

// Map runs fn for every index in [0, n) on the pool and collects the
// results in index order.
func Map[T any](p *Pool, n int, fn func(i int, u *Unit) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Run(n, func(i int, u *Unit) error {
		v, err := fn(i, u)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
