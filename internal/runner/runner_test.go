package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 32} {
		p := &Pool{Workers: workers}
		out, err := Map(p, 100, func(i int, u *Unit) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	p := &Pool{Workers: workers}
	err := p.Run(64, func(i int, u *Unit) error {
		n := inFlight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestPoolReturnsLowestIndexError(t *testing.T) {
	// Sequential: execution stops at the first failure, which is also the
	// lowest index.
	p := &Pool{Workers: 1}
	err := p.Run(16, func(i int, u *Unit) error {
		if i == 5 || i == 11 {
			return fmt.Errorf("unit %d failed", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "unit 5 failed") {
		t.Fatalf("sequential: got %v", err)
	}

	// Parallel: all units rendezvous before two of them fail, so both
	// errors are recorded and the lowest index wins.
	const n = 8
	var barrier sync.WaitGroup
	barrier.Add(n)
	p = &Pool{Workers: n}
	err = p.Run(n, func(i int, u *Unit) error {
		barrier.Done()
		barrier.Wait()
		if i == 3 || i == 4 {
			return fmt.Errorf("unit %d failed", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "unit 3 failed") {
		t.Fatalf("parallel: got %v", err)
	}
}

func TestPoolStopsSchedulingAfterError(t *testing.T) {
	var ran atomic.Int64
	p := &Pool{Workers: 1}
	err := p.Run(100, func(i int, u *Unit) error {
		ran.Add(1)
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n != 3 {
		t.Fatalf("ran %d units after early failure", n)
	}
}

func TestMonitorAccounting(t *testing.T) {
	var sb strings.Builder
	m := NewMonitor(&sb)
	p := &Pool{Workers: 4, Monitor: m}
	err := p.Run(10, func(i int, u *Unit) error {
		u.Label = fmt.Sprintf("unit/%d", i)
		u.AddInstrs(1000)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done, total, instrs, wall := m.Snapshot()
	if done != 10 || total != 10 {
		t.Fatalf("done %d / total %d", done, total)
	}
	if instrs != 10000 {
		t.Fatalf("instrs %d", instrs)
	}
	if wall <= 0 {
		t.Fatalf("wall %v", wall)
	}
	if !strings.Contains(sb.String(), "[10/10 units]") {
		t.Fatalf("progress output missing final count: %q", sb.String())
	}
	if s := m.Summary(); !strings.Contains(s, "10 units") || !strings.Contains(s, "unit/") {
		t.Fatalf("summary %q", s)
	}
	m.Done()
	if !strings.HasSuffix(sb.String(), "\r\x1b[K") {
		t.Fatal("Done did not clear the progress line")
	}
}

func TestMonitorAccumulatesAcrossPools(t *testing.T) {
	m := NewMonitor(nil)
	for k := 0; k < 3; k++ {
		p := &Pool{Workers: 2, Monitor: m}
		if err := p.Run(4, func(i int, u *Unit) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	done, total, _, _ := m.Snapshot()
	if done != 12 || total != 12 {
		t.Fatalf("done %d / total %d", done, total)
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				v := m.Do(k, func() int {
					calls.Add(1)
					return k * 7
				})
				if v != k*7 {
					t.Errorf("Do(%d) = %d", k, v)
				}
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 10 {
		t.Fatalf("compute ran %d times for 10 keys", n)
	}
	hits, misses := m.Stats()
	if misses != 10 || hits != 70 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
	if m.Len() != 10 {
		t.Fatalf("len %d", m.Len())
	}
}
