package tage_test

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/snaptest"
	"github.com/whisper-sim/whisper/internal/tage"
)

// TestSnapshotFidelity locks the bpu.Snapshotter contract the windowed
// pipeline engine depends on: canonical encoding, restore-into-fresh
// suffix equivalence, and encode/decode/re-encode identity.
func TestSnapshotFidelity(t *testing.T) {
	for _, c := range []struct {
		name string
		cfg  tage.Config
	}{
		{"64KB", tage.DefaultConfig()},
		{"8KB", tage.Config{SizeKB: 8}},
	} {
		t.Run(c.name, func(t *testing.T) {
			snaptest.Fidelity(t, func() bpu.Predictor { return tage.New(c.cfg) }, nil)
		})
	}
}
