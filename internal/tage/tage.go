// Package tage implements a storage-parameterized TAGE-SC-L conditional
// branch predictor (Seznec, CBP 2014/2016): a bimodal base predictor,
// twelve partially-tagged tables indexed with geometrically increasing
// history lengths, a loop predictor, and a GEHL-style statistical
// corrector.
//
// This is the paper's baseline (Table II: "64KB TAGE-SC-L"); the
// experiments also instantiate it at 8KB-1MB for the predictor-size sweep
// (paper Fig 21). The implementation favors faithful *behaviour* —
// geometric history capture, tag-match allocation, usefulness-based
// replacement, capacity pressure proportional to the storage budget —
// over bit-exact equivalence with the CBP submission.
package tage

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// numTables is the number of tagged components.
const numTables = 12

// geometric history lengths for the tagged tables, ~4..320 as in the
// 64KB TAGE-SC-L configuration.
var histLens = [numTables]int{4, 6, 9, 13, 19, 29, 43, 64, 96, 143, 214, 320}

// Config sizes a predictor instance.
type Config struct {
	// SizeKB is the total storage budget in kilobytes (8..1024).
	SizeKB int
	// Seed randomizes allocation tie-breaks; fixed by default so runs
	// are reproducible.
	Seed uint64
}

// DefaultConfig is the paper's 64KB baseline.
func DefaultConfig() Config { return Config{SizeKB: 64, Seed: 0xC0FFEE} }

type taggedEntry struct {
	tag  uint16
	ctr  bpu.Counter // 3-bit direction counter
	u    uint8       // 2-bit usefulness
	live bool
}

type loopEntry struct {
	tag      uint16
	pastIter uint16
	curIter  uint16
	conf     uint8
	age      uint8
	dir      bool // direction taken pastIter times before one flip
	live     bool
}

// TageSCL is a TAGE-SC-L predictor instance. Not safe for concurrent use.
type TageSCL struct {
	cfg Config

	base     []bpu.Counter // 2-bit bimodal
	baseMask uint64

	tables  [numTables][]taggedEntry
	tblMask uint64

	loop     []loopEntry
	loopMask uint64

	// Statistical corrector: per-feature weight tables of 6-bit signed
	// counters in [-32, 31].
	scTables [][]int8
	scLens   []int
	scMask   uint64
	scThresh int32
	useSC    bpu.Counter

	hist       bpu.History
	useAltOnNA bpu.Counter

	rng        *xrand.Rand
	updates    uint64
	suppressed map[uint64]bool // PCs whose entries Whisper forbids allocating

	// Prediction state carried from Predict to Update.
	last lastPred

	// scHash holds the per-feature SC hashes for the current
	// prediction; fastPlan/tagPlan and fastOut/tagOut are the
	// precompiled plans and scratch of the HashPlanned fast path.
	scHash   []uint64
	fastPlan *bpu.HashPlan
	tagPlan  *bpu.HashPlan
	fastOut  []uint64
	tagOut   []uint64
}

type lastPred struct {
	pc         uint64
	valid      bool
	idx        [numTables]uint64
	tag        [numTables]uint16
	provider   int // table index, or -1 for bimodal
	altPred    bool
	provPred   bool
	tagePred   bool // after use-alt policy
	final      bool
	newlyAlloc bool
	loopHit    bool
	loopPred   bool
	loopIdx    uint64
	scSum      int32
	scUsed     bool
	scIdx      []uint64
}

// New creates a predictor with the given configuration.
func New(cfg Config) *TageSCL {
	if cfg.SizeKB < 1 {
		panic("tage: SizeKB must be >= 1")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xC0FFEE
	}
	budget := cfg.SizeKB * 1024 // bytes

	// Budget split: ~25% bimodal (2-bit entries), ~60% tagged (2-byte
	// entries across 12 tables), remainder loop + SC. Sizes round down
	// to powers of two.
	baseEntries := pow2Floor(budget / 4 * 4) // 2-bit entries: bytes*4
	tagEntries := pow2Floor(budget * 60 / 100 / (numTables * 2))
	if tagEntries < 16 {
		tagEntries = 16
	}
	if baseEntries < 64 {
		baseEntries = 64
	}
	loopEntries := pow2Floor(budget / 512)
	if loopEntries < 64 {
		loopEntries = 64
	}
	scEntries := pow2Floor(budget / 64)
	if scEntries < 64 {
		scEntries = 64
	}

	t := &TageSCL{
		cfg:      cfg,
		base:     make([]bpu.Counter, baseEntries),
		baseMask: uint64(baseEntries - 1),
		tblMask:  uint64(tagEntries - 1),
		loop:     make([]loopEntry, loopEntries),
		loopMask: uint64(loopEntries - 1),
		scLens:   []int{8, 16, 32, 64},
		scMask:   uint64(scEntries - 1),
		scThresh: 6,
		rng:      xrand.New(cfg.Seed),
	}
	for i := range t.base {
		t.base[i] = bpu.NewCounter(2)
	}
	for i := range t.tables {
		t.tables[i] = make([]taggedEntry, tagEntries)
	}
	t.scTables = make([][]int8, len(t.scLens)+1) // +1 bias table
	for i := range t.scTables {
		t.scTables[i] = make([]int8, scEntries)
	}
	t.useSC = bpu.NewCounter(4)
	t.useAltOnNA = bpu.NewCounter(4)
	t.last.scIdx = make([]uint64, len(t.scTables))
	t.scHash = make([]uint64, len(t.scLens))
	// The fast path hashes table indices and SC features in one
	// prefix-shared pass; tags take a second pass with the tag seed.
	fastLens := append(append([]int{}, histLens[:]...), t.scLens...)
	t.fastPlan = bpu.MakeHashPlan(fastLens)
	t.tagPlan = bpu.MakeHashPlan(histLens[:])
	t.fastOut = make([]uint64, len(fastLens))
	t.tagOut = make([]uint64, numTables)
	return t
}

func pow2Floor(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// Name implements bpu.Predictor.
func (t *TageSCL) Name() string { return fmt.Sprintf("tage-sc-l-%dKB", t.cfg.SizeKB) }

// SizeKB returns the configured storage budget.
func (t *TageSCL) SizeKB() int { return t.cfg.SizeKB }

// SuppressAllocation marks pc so that mispredictions of that branch never
// allocate new tagged entries. Whisper uses this to stop hint-covered
// branches from consuming predictor capacity (paper §IV "run-time hint
// usage").
func (t *TageSCL) SuppressAllocation(pc uint64) {
	if t.suppressed == nil {
		t.suppressed = make(map[uint64]bool)
	}
	t.suppressed[pc] = true
}

// ClearSuppressed removes all allocation suppressions.
func (t *TageSCL) ClearSuppressed() { t.suppressed = nil }

func (t *TageSCL) baseIdx(pc uint64) uint64 { return (pc >> 2) & t.baseMask }

func (t *TageSCL) tableIdx(pc uint64, tbl int) uint64 {
	return t.hist.Hash(pc, histLens[tbl]) & t.tblMask
}

func (t *TageSCL) tableTag(pc uint64, tbl int) uint16 {
	h := t.hist.Hash(pc^0xB5297A4D3F84D5B5, histLens[tbl])
	return uint16(h>>13) & 0x3FF // 10-bit tags
}

// Predict implements bpu.Predictor.
func (t *TageSCL) Predict(pc uint64) bool {
	lp := &t.last
	for i := 0; i < numTables; i++ {
		lp.idx[i] = t.tableIdx(pc, i)
		lp.tag[i] = t.tableTag(pc, i)
	}
	for i, l := range t.scLens {
		t.scHash[i] = t.hist.Hash(pc, l)
	}
	return t.predictCore(pc)
}

// predictFast computes the same prediction (and the same lastPred
// metadata) as Predict, but derives every history hash through the
// precompiled prefix-shared kernel: one bpu.HashPlanned pass for the 12
// table indices plus the SC features, and one for the 12 tags. It is
// the per-record body of PredictUpdateBatch.
func (t *TageSCL) predictFast(pc uint64) bool {
	lp := &t.last
	t.hist.HashPlanned(pc, t.fastPlan, t.fastOut)
	t.hist.HashPlanned(pc^0xB5297A4D3F84D5B5, t.tagPlan, t.tagOut)
	for i := 0; i < numTables; i++ {
		lp.idx[i] = t.fastOut[i] & t.tblMask
		lp.tag[i] = uint16(t.tagOut[i]>>13) & 0x3FF
	}
	copy(t.scHash, t.fastOut[numTables:])
	return t.predictCore(pc)
}

// predictCore runs the TAGE-SC-L decision logic over the hashes staged
// in lp.idx, lp.tag and t.scHash by Predict or predictFast.
func (t *TageSCL) predictCore(pc uint64) bool {
	lp := &t.last
	lp.pc = pc
	lp.valid = true
	lp.provider = -1
	lp.loopHit = false
	lp.scUsed = false

	basePred := t.base[t.baseIdx(pc)].Taken()
	lp.altPred = basePred

	alt := -1
	for i := numTables - 1; i >= 0; i-- {
		e := &t.tables[i][lp.idx[i]]
		if e.live && e.tag == lp.tag[i] {
			if lp.provider < 0 {
				lp.provider = i
			} else {
				alt = i
				break
			}
		}
	}
	if lp.provider >= 0 {
		pe := &t.tables[lp.provider][lp.idx[lp.provider]]
		lp.provPred = pe.ctr.Taken()
		if alt >= 0 {
			lp.altPred = t.tables[alt][lp.idx[alt]].ctr.Taken()
		}
		weak := !pe.ctr.Confident() && pe.u == 0
		lp.newlyAlloc = weak
		if weak && t.useAltOnNA.Taken() {
			lp.tagePred = lp.altPred
		} else {
			lp.tagePred = lp.provPred
		}
	} else {
		lp.provPred = basePred
		lp.tagePred = basePred
		lp.newlyAlloc = false
	}

	lp.final = lp.tagePred

	// Loop predictor override.
	li := (pc >> 2) & t.loopMask
	lp.loopIdx = li
	le := &t.loop[li]
	if le.live && le.tag == uint16(pc>>12) && le.conf >= 3 && le.pastIter >= 4 {
		lp.loopHit = true
		if le.curIter+1 >= le.pastIter {
			lp.loopPred = !le.dir
		} else {
			lp.loopPred = le.dir
		}
		lp.final = lp.loopPred
	}

	// Statistical corrector.
	lp.scIdx[0] = (pc >> 2) & t.scMask
	sum := int32(t.scTables[0][lp.scIdx[0]])
	for i := range t.scLens {
		idx := (t.scHash[i] ^ uint64(i)*0x9E3779B9) & t.scMask
		lp.scIdx[i+1] = idx
		sum += int32(t.scTables[i+1][idx])
	}
	// Center with the TAGE prediction so SC corrects rather than
	// replaces.
	if lp.tagePred {
		sum += 4
	} else {
		sum -= 4
	}
	lp.scSum = sum
	if !lp.loopHit && t.useSC.Taken() {
		scPred := sum >= 0
		if scPred != lp.tagePred && abs32(sum) > t.scThresh {
			lp.scUsed = true
			lp.final = scPred
		}
	}
	return lp.final
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// Update implements bpu.Predictor. It must follow a Predict for the same
// pc; the harness guarantees this ordering.
func (t *TageSCL) Update(pc uint64, taken bool) {
	lp := &t.last
	if !lp.valid || lp.pc != pc {
		// Predict was skipped (e.g. the hybrid used a hint). Run it to
		// rebuild the metadata, then fall through.
		t.Predict(pc)
	}
	lp.valid = false
	t.updates++

	// --- Loop predictor training ---
	t.trainLoop(pc, taken, lp)

	// --- Statistical corrector training ---
	scPred := lp.scSum >= 0
	if lp.scUsed {
		t.useSC.Update(scPred == taken)
	}
	if scPred != taken || abs32(lp.scSum) <= t.scThresh+4 {
		d := int8(-1)
		if taken {
			d = 1
		}
		for i, tbl := range t.scTables {
			w := tbl[lp.scIdx[i]]
			nw := int16(w) + int16(d)
			if nw > 31 {
				nw = 31
			}
			if nw < -32 {
				nw = -32
			}
			tbl[lp.scIdx[i]] = int8(nw)
		}
	}

	// --- TAGE component training ---
	if lp.provider >= 0 {
		pe := &t.tables[lp.provider][lp.idx[lp.provider]]
		if lp.newlyAlloc && lp.provPred != lp.altPred {
			t.useAltOnNA.Update(lp.altPred == taken)
		}
		pe.ctr.Update(taken)
		if lp.provPred != lp.altPred {
			if lp.provPred == taken {
				if pe.u < 3 {
					pe.u++
				}
			} else if pe.u > 0 {
				pe.u--
			}
		}
		// Update base when the provider entry is still weak, keeping the
		// alt prediction trained.
		if !pe.ctr.Confident() {
			t.base[t.baseIdx(pc)].Update(taken)
		}
	} else {
		t.base[t.baseIdx(pc)].Update(taken)
	}

	// --- Allocation on TAGE misprediction ---
	if lp.tagePred != taken && lp.provider < numTables-1 && !t.suppressed[pc] {
		t.allocate(pc, taken, lp)
	}

	// Periodic graceful usefulness aging.
	if t.updates&(1<<18-1) == 0 {
		for i := range t.tables {
			for j := range t.tables[i] {
				t.tables[i][j].u >>= 1
			}
		}
	}

	t.hist.Push(taken)
}

func (t *TageSCL) allocate(pc uint64, taken bool, lp *lastPred) {
	start := lp.provider + 1
	// Randomized start (skip one table with probability 1/2) spreads
	// allocations across history lengths, as in the CBP code.
	if start < numTables-1 && t.rng.Bool(0.5) {
		start++
	}
	allocated := false
	for i := start; i < numTables; i++ {
		e := &t.tables[i][lp.idx[i]]
		if !e.live || e.u == 0 {
			e.live = true
			e.tag = lp.tag[i]
			e.ctr = bpu.NewCounter(3)
			e.ctr.Update(taken)
			e.u = 0
			allocated = true
			break
		}
	}
	if !allocated {
		for i := start; i < numTables; i++ {
			e := &t.tables[i][lp.idx[i]]
			if e.u > 0 {
				e.u--
			}
		}
	}
}

func (t *TageSCL) trainLoop(pc uint64, taken bool, lp *lastPred) {
	le := &t.loop[lp.loopIdx]
	tag := uint16(pc >> 12)
	if !le.live || le.tag != tag {
		// Replace only once the incumbent entry ages out.
		if le.live && le.age > 0 {
			le.age--
			return
		}
		*le = loopEntry{tag: tag, dir: taken, live: true, age: 7}
		return
	}
	// A confident entry that just mispredicted loses its confidence
	// immediately; a wrong loop hypothesis must not keep overriding TAGE.
	if lp.loopHit && lp.loopPred != taken {
		le.conf = 0
		le.pastIter = 0
		le.curIter = 0
		if le.age > 0 {
			le.age--
		}
		return
	}
	if taken == le.dir {
		if le.curIter < 0xFFFF {
			le.curIter++
		}
		// The body ran longer than the recorded trip count: the recorded
		// count is wrong.
		if le.pastIter != 0 && le.curIter > le.pastIter {
			le.conf = 0
			le.pastIter = 0
		}
		return
	}
	// Direction flipped: one full iteration count observed.
	if le.pastIter == le.curIter && le.pastIter != 0 {
		if le.conf < 7 {
			le.conf++
		}
	} else {
		le.conf = 0
		le.pastIter = le.curIter
	}
	le.curIter = 0
	if le.age < 7 {
		le.age++
	}
}

// PredictUpdateBatch implements bpu.BatchPredictor: it is exactly
// Predict+Update per record with the hash computation routed through
// the prefix-shared fast kernel. Differential tests
// (TestTagePredictBatchMatchesScalar and the pipeline/golden suites)
// lock the equivalence.
func (t *TageSCL) PredictUpdateBatch(pcs []uint64, taken, miss []bool) {
	for i, pc := range pcs {
		miss[i] = t.predictFast(pc) != taken[i]
		t.Update(pc, taken[i])
	}
}
