package tage

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// drive runs pattern-generated branches through p and returns accuracy.
func drive(p bpu.Predictor, n int, next func(i int, hist []bool) (pc uint64, taken bool)) float64 {
	var hist []bool
	correct := 0
	for i := 0; i < n; i++ {
		pc, taken := next(i, hist)
		if o, ok := p.(bpu.OraclePrimer); ok {
			o.Prime(taken)
		}
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
		hist = append(hist, taken)
		if len(hist) > 2048 {
			hist = hist[1:]
		}
	}
	return float64(correct) / float64(n)
}

func TestImplementsPredictor(t *testing.T) {
	var _ bpu.Predictor = New(DefaultConfig())
}

func TestName(t *testing.T) {
	if got := New(DefaultConfig()).Name(); got != "tage-sc-l-64KB" {
		t.Fatalf("Name = %q", got)
	}
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(DefaultConfig())
	acc := drive(p, 5000, func(i int, _ []bool) (uint64, bool) {
		return 0x400100, true
	})
	if acc < 0.99 {
		t.Fatalf("accuracy on always-taken: %v", acc)
	}
}

func TestLearnsAlternation(t *testing.T) {
	p := New(DefaultConfig())
	acc := drive(p, 5000, func(i int, _ []bool) (uint64, bool) {
		return 0x400100, i%2 == 0
	})
	if acc < 0.95 {
		t.Fatalf("accuracy on alternation: %v", acc)
	}
}

func TestLearnsShortHistoryCorrelation(t *testing.T) {
	// Branch B's outcome equals branch A's outcome two steps earlier.
	r := xrand.New(42)
	p := New(DefaultConfig())
	var aOut []bool
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		aTaken := r.Bool(0.5)
		p.Predict(0x400200)
		p.Update(0x400200, aTaken)
		aOut = append(aOut, aTaken)
		if len(aOut) >= 2 {
			want := aOut[len(aOut)-2]
			if p.Predict(0x400300) == want {
				correct++
			}
			total++
			p.Update(0x400300, want)
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("accuracy on history-correlated branch: %v", acc)
	}
}

func TestLoopPredictorCatchesFixedTripCount(t *testing.T) {
	// Loop branch: taken 37 times, then not-taken, repeating. The 37+1
	// period exceeds short history tables' reach combined with many
	// interfering branches; the loop predictor should lock on.
	p := New(DefaultConfig())
	correct, total := 0, 0
	iter := 0
	for i := 0; i < 60000; i++ {
		taken := iter < 37
		iter++
		if iter == 38 {
			iter = 0
		}
		pred := p.Predict(0x400400)
		if i > 20000 {
			if pred == taken {
				correct++
			}
			total++
		}
		p.Update(0x400400, taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Fatalf("accuracy on 38-period loop: %v", acc)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	r := xrand.New(7)
	p := New(DefaultConfig())
	acc := drive(p, 20000, func(i int, _ []bool) (uint64, bool) {
		return 0x400500, r.Bool(0.5)
	})
	if acc > 0.62 {
		t.Fatalf("accuracy on random branch implausibly high: %v", acc)
	}
}

func TestBiasedRandomBranchTracksBias(t *testing.T) {
	r := xrand.New(8)
	p := New(DefaultConfig())
	acc := drive(p, 20000, func(i int, _ []bool) (uint64, bool) {
		return 0x400600, r.Bool(0.9)
	})
	if acc < 0.85 {
		t.Fatalf("accuracy on 90%%-biased branch: %v", acc)
	}
}

func TestCapacityPressureDegradesAccuracy(t *testing.T) {
	// Many static branches with per-branch alternation: a small predictor
	// should do worse than a large one.
	gen := func(seed uint64) func(int, []bool) (uint64, bool) {
		r := xrand.New(seed)
		states := map[uint64]bool{}
		return func(i int, _ []bool) (uint64, bool) {
			pc := 0x400000 + uint64(r.Intn(30000))*16
			states[pc] = !states[pc]
			return pc, states[pc]
		}
	}
	small := New(Config{SizeKB: 8, Seed: 1})
	big := New(Config{SizeKB: 1024, Seed: 1})
	accSmall := drive(small, 60000, gen(3))
	accBig := drive(big, 60000, gen(3))
	if accBig <= accSmall {
		t.Fatalf("1MB (%v) not better than 8KB (%v) under capacity pressure", accBig, accSmall)
	}
}

func TestSuppressAllocation(t *testing.T) {
	p := New(DefaultConfig())
	p.SuppressAllocation(0x400700)
	r := xrand.New(9)
	// Random branch: suppressed PC should not pollute tables; we only
	// check that updates don't panic and predictions still happen.
	for i := 0; i < 1000; i++ {
		taken := r.Bool(0.5)
		p.Predict(0x400700)
		p.Update(0x400700, taken)
	}
	liveEntries := 0
	for i := range p.tables {
		for j := range p.tables[i] {
			if p.tables[i][j].live {
				liveEntries++
			}
		}
	}
	if liveEntries != 0 {
		t.Fatalf("suppressed branch allocated %d tagged entries", liveEntries)
	}
	p.ClearSuppressed()
	for i := 0; i < 1000; i++ {
		taken := r.Bool(0.5)
		p.Predict(0x400700)
		p.Update(0x400700, taken)
	}
	liveEntries = 0
	for i := range p.tables {
		for j := range p.tables[i] {
			if p.tables[i][j].live {
				liveEntries++
			}
		}
	}
	if liveEntries == 0 {
		t.Fatal("unsuppressed branch never allocated")
	}
}

func TestUpdateWithoutPredictRecovers(t *testing.T) {
	p := New(DefaultConfig())
	// Whisper's hybrid may Update without a prior Predict for this pc.
	p.Update(0x400800, true)
	p.Predict(0x400900)
	p.Update(0x400800, false) // mismatched pc
}

func TestSizeScalesTables(t *testing.T) {
	small := New(Config{SizeKB: 8})
	big := New(Config{SizeKB: 512})
	if len(big.tables[0]) <= len(small.tables[0]) {
		t.Fatalf("tagged table sizes do not scale: %d vs %d",
			len(big.tables[0]), len(small.tables[0]))
	}
	if len(big.base) <= len(small.base) {
		t.Fatal("bimodal size does not scale")
	}
	if big.SizeKB() != 512 {
		t.Fatal("SizeKB accessor wrong")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []bool {
		p := New(DefaultConfig())
		r := xrand.New(77)
		var out []bool
		for i := 0; i < 5000; i++ {
			pc := 0x400000 + uint64(r.Intn(100))*8
			taken := r.Bool(0.5)
			out = append(out, p.Predict(pc))
			p.Update(pc, taken)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic prediction at %d", i)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{SizeKB: 0})
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	r := xrand.New(1)
	pcs := make([]uint64, 1024)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(i)*8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i&1023]
		taken := r.Bool(0.5)
		p.Predict(pc)
		p.Update(pc, taken)
	}
}
