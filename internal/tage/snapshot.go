package tage

import (
	"fmt"
	"sort"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/snap"
)

const snapVersion = 1

// Snapshot implements bpu.Snapshotter: a canonical encoding of all
// mutable predictor state. The transient Predict→Update metadata is
// not included — Update consumes it, so at record boundaries (the only
// points the engines snapshot at) it is always dead; Restore clears it.
// The allocator's RNG position and the update counter driving periodic
// usefulness aging are included, so a restored predictor replays the
// exact allocation and aging sequence of the original.
func (t *TageSCL) Snapshot() []byte {
	var b []byte
	b = snap.U32(b, uint32(len(t.base)))
	for i := range t.base {
		b = snap.I16(b, t.base[i].RawValue())
	}
	b = snap.U32(b, uint32(len(t.tables[0])))
	for i := range t.tables {
		for j := range t.tables[i] {
			e := &t.tables[i][j]
			b = snap.U16(b, e.tag)
			b = snap.I16(b, e.ctr.RawValue())
			b = snap.U8(b, e.u)
			b = snap.Bool(b, e.live)
		}
	}
	b = snap.U32(b, uint32(len(t.loop)))
	for i := range t.loop {
		e := &t.loop[i]
		b = snap.U16(b, e.tag)
		b = snap.U16(b, e.pastIter)
		b = snap.U16(b, e.curIter)
		b = snap.U8(b, e.conf)
		b = snap.U8(b, e.age)
		b = snap.Bool(b, e.dir)
		b = snap.Bool(b, e.live)
	}
	b = snap.U32(b, uint32(len(t.scTables)))
	b = snap.U32(b, uint32(len(t.scTables[0])))
	for _, tbl := range t.scTables {
		for _, w := range tbl {
			b = snap.I8(b, w)
		}
	}
	b = snap.I16(b, t.useSC.RawValue())
	b = snap.I16(b, t.useAltOnNA.RawValue())
	b = bpu.AppendHistory(b, &t.hist)
	for _, s := range t.rng.State() {
		b = snap.U64(b, s)
	}
	b = snap.U64(b, t.updates)
	sup := make([]uint64, 0, len(t.suppressed))
	for pc := range t.suppressed {
		sup = append(sup, pc)
	}
	sort.Slice(sup, func(i, j int) bool { return sup[i] < sup[j] })
	b = snap.U32(b, uint32(len(sup)))
	for _, pc := range sup {
		b = snap.U64(b, pc)
	}
	return snap.Seal(snap.KindTAGE, snapVersion, b)
}

// Restore implements bpu.Snapshotter. The receiver must have been
// built with the same Config as the snapshotted predictor.
func (t *TageSCL) Restore(s []byte) error {
	payload, err := snap.Open(snap.KindTAGE, snapVersion, s)
	if err != nil {
		return err
	}
	r := snap.NewReader(payload)
	if n := int(r.U32()); n != len(t.base) {
		return fmt.Errorf("tage: base size %d, want %d", n, len(t.base))
	}
	for i := range t.base {
		if err := t.base[i].SetRawValue(r.I16()); err != nil {
			return err
		}
	}
	if n := int(r.U32()); n != len(t.tables[0]) {
		return fmt.Errorf("tage: tagged size %d, want %d", n, len(t.tables[0]))
	}
	for i := range t.tables {
		for j := range t.tables[i] {
			e := &t.tables[i][j]
			e.tag = r.U16()
			e.ctr = bpu.NewCounter(3)
			if err := e.ctr.SetRawValue(r.I16()); err != nil {
				return err
			}
			e.u = r.U8()
			e.live = r.Bool()
		}
	}
	if n := int(r.U32()); n != len(t.loop) {
		return fmt.Errorf("tage: loop size %d, want %d", n, len(t.loop))
	}
	for i := range t.loop {
		e := &t.loop[i]
		e.tag = r.U16()
		e.pastIter = r.U16()
		e.curIter = r.U16()
		e.conf = r.U8()
		e.age = r.U8()
		e.dir = r.Bool()
		e.live = r.Bool()
	}
	if n := int(r.U32()); n != len(t.scTables) {
		return fmt.Errorf("tage: sc table count %d, want %d", n, len(t.scTables))
	}
	if n := int(r.U32()); n != len(t.scTables[0]) {
		return fmt.Errorf("tage: sc size %d, want %d", n, len(t.scTables[0]))
	}
	for _, tbl := range t.scTables {
		for i := range tbl {
			tbl[i] = r.I8()
		}
	}
	if err := t.useSC.SetRawValue(r.I16()); err != nil {
		return err
	}
	if err := t.useAltOnNA.SetRawValue(r.I16()); err != nil {
		return err
	}
	bpu.ReadHistory(r, &t.hist)
	var rs [4]uint64
	for i := range rs {
		rs[i] = r.U64()
	}
	t.updates = r.U64()
	nSup := int(r.U32())
	var sup map[uint64]bool
	if nSup > 0 {
		sup = make(map[uint64]bool, nSup)
		for i := 0; i < nSup; i++ {
			sup[r.U64()] = true
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	if err := t.rng.SetState(rs); err != nil {
		return err
	}
	t.suppressed = sup
	t.last.valid = false
	return nil
}
