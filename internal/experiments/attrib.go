package experiments

// The attribution study (cmd/experiments -attrib): for every configured
// application, run the offline flow plus an instrumented baseline and
// hinted evaluation, and build the canonical per-branch attribution
// report — the observability companion to the Fig 12/13 headline
// numbers. One unit per app fans out on the engine; the reports land in
// app order, so output is byte-identical at every -j (and at every
// pipeline-engine setting, since the attribution observation stream is
// engine-invariant by construction).

import (
	"github.com/whisper-sim/whisper/internal/attrib"
	"github.com/whisper-sim/whisper/internal/classify"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/workload"
)

// AttribBaselineName labels the baseline run in attribution reports.
const AttribBaselineName = "tage-scl-64kb"

// AttribWhisperName labels the hinted run in attribution reports.
const AttribWhisperName = "whisper+tage-scl-64kb"

// AttribResult carries one attribution report per configured app, in
// app order.
type AttribResult struct {
	Reports []*attrib.Report
}

// RunAttrib runs the attribution study. topN bounds the per-app branch
// table and hint scoreboard (0 = the report default of 20).
func RunAttrib(opt Options, topN int) (*AttribResult, error) {
	o := opt.normalize()
	if err := o.checkApps(); err != nil {
		return nil, err
	}
	reports, err := mapApps(o, "attrib", func(_ int, app *workload.App, u *runner.Unit) (*attrib.Report, error) {
		b, err := o.buildWhisper(app)
		if err != nil {
			return nil, err
		}
		popt := o.popt()
		baseC := attrib.NewCollector(0)
		popt.Attrib = baseC
		base := sim.RunApp(app, o.TestInput, o.Records, sim.Tage64KB(), popt)

		whisperC := attrib.NewCollector(0)
		popt.Attrib = whisperC
		_, _ = b.RunWhisperWarm(app, o.TestInput, o.Records, sim.Tage64KB, popt)

		cl := classify.DefaultClassifier()
		cl.TrackBranches = attrib.DefaultCapacity
		counts := cl.Run(app.Stream(o.TestInput, o.Records), sim.Tage64KB())

		u.AddInstrs(3 * base.Instrs)
		u.AddRecords(3 * base.Records)
		return attrib.Build(attrib.Inputs{
			Workload:      app.Name(),
			Records:       base.Records,
			Instrs:        base.Instrs,
			WarmupRecords: base.WarmupRecords,
			BaselineName:  AttribBaselineName,
			WhisperName:   AttribWhisperName,
			Base:          baseC,
			Whisper:       whisperC,
			HintedPCs:     b.Binary.HintedPCs(),
			Trained:       len(b.Train.Hints),
			Placed:        b.Binary.Placed,
			Dropped:       b.Binary.Dropped,
			Classes:       counts.DominantLabels(),
			TopN:          topN,
			TopHints:      topN,
		}), nil
	})
	if err != nil {
		return nil, err
	}
	return &AttribResult{Reports: reports}, nil
}
