package experiments

import (
	"path/filepath"
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/spec"
	"github.com/whisper-sim/whisper/internal/tage"
)

// loadExampleSpec compiles one of the committed example specs.
func loadExampleSpec(t *testing.T, name string) *spec.Scenario {
	t.Helper()
	s, err := spec.Load(filepath.Join("..", "..", "examples", "specs", name))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestWindowedDeterminismSweep is the windowed engine's determinism
// lock, meant to run under -race in CI: for two example specs, every
// (-sim-j, window) combination — including windows smaller than, equal
// to, and larger than the trace — must reproduce the batched engine's
// Result exactly. The engine promises bit-identical output regardless
// of scheduling, so any divergence or data race here is a bug, not
// noise.
func TestWindowedDeterminismSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every spec 13 times")
	}
	mk := func() bpu.Predictor { return tage.New(tage.Config{SizeKB: 8}) }
	for _, name := range []string{"steady.yaml", "minimal.json"} {
		sc := loadExampleSpec(t, name)
		full := sc.Spec.TotalRecords()
		want := pipeline.Run(sc.Stream(), mk(), pipeline.Options{Config: pipeline.DefaultConfig()})
		for _, j := range []int{1, 2, 4, 8} {
			for _, win := range []int{1000, 1 << 16, full} {
				opt := pipeline.Options{
					Config:      pipeline.DefaultConfig(),
					Parallelism: j,
					WindowSize:  win,
				}
				got := pipeline.Run(sc.Stream(), mk(), opt)
				if got != want {
					t.Errorf("%s: sim-j=%d window=%d: %+v != batched %+v", name, j, win, got, want)
				}
			}
		}
	}
}
