package experiments

// Whisper-specific evaluation drivers: the trained-formula operation
// breakdown (Fig 7), the ablation (Fig 14), the randomized-testing sweep
// (Fig 15), input sensitivity (Fig 17), profile merging (Fig 18), and the
// hint overhead (Fig 19).

import (
	"fmt"
	"time"

	"github.com/whisper-sim/whisper/internal/cfg"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/rombf"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/workload"
)

// Fig7Ops are the categories of the paper's Fig 7 legend.
var Fig7Ops = []string{
	"And", "Always-taken", "Converse-nonimplication", "Implication",
	"Never-taken", "Or", "Others",
}

// Fig7Result distributes hinted branch *executions* among the logical
// operations of their trained formulas (paper Fig 7).
type Fig7Result struct {
	Apps []string
	// Shares[app][op] follows Fig7Ops ordering; fractions of hinted
	// executions.
	Shares [][]float64
}

// Fig7 trains Whisper per app and classifies the deployed formulas.
func Fig7(opt Options) (*Fig7Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	allShares, err := mapApps(opt, "fig7", func(ai int, app *workload.App, u *runner.Unit) ([]float64, error) {
		b, err := opt.buildWhisper(app)
		if err != nil {
			return nil, err
		}
		u.AddInstrs(b.Profile.Instrs)
		u.AddRecords(b.Profile.Records)
		shares := make([]float64, len(Fig7Ops))
		var total float64
		for pc, h := range b.Train.Hints {
			execs := float64(b.Profile.Stats[pc].Execs)
			total += execs
			shares[fig7Class(h)] += execs
		}
		if total > 0 {
			for i := range shares {
				shares[i] /= total
			}
		}
		return shares, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Apps: appNames(opt.Apps), Shares: allShares}, nil
}

// fig7Class maps a trained hint to its Fig 7 category index.
func fig7Class(h core.Hint) int {
	switch h.Bias {
	case hint.BiasTaken:
		return 1 // Always-taken
	case hint.BiasNotTaken:
		return 4 // Never-taken
	}
	if op, ok := h.Formula.DominantOp(); ok {
		switch op.String() {
		case "And":
			return 0
		case "Converse-nonimplication":
			return 2
		case "Implication":
			return 3
		case "Or":
			return 5
		}
	}
	return 6 // Others
}

// Table renders the figure.
func (r *Fig7Result) Table() *stats.Table {
	cols := append([]string{"app"}, Fig7Ops...)
	t := stats.NewTable("Fig 7: hinted executions by formula operation (%)", cols...)
	avg := make([]float64, len(Fig7Ops))
	for i, app := range r.Apps {
		cells := []string{app}
		for k, v := range r.Shares[i] {
			cells = append(cells, pct(v))
			avg[k] += v
		}
		t.AddRow(cells...)
	}
	cells := []string{"Avg"}
	for _, v := range avg {
		cells = append(cells, pct(v/float64(len(r.Apps))))
	}
	t.AddRow(cells...)
	return t
}

// Fig14Result is the ablation over 8b-ROMBF: the misprediction reduction
// contributed by hashed history correlation and by the Implication /
// Converse Non-Implication extension (paper Fig 14).
type Fig14Result struct {
	Apps []string
	// HashedHistory and ImplCnimpl are reduction-percentage-point
	// contributions over the 8b-ROMBF baseline.
	HashedHistory, ImplCnimpl []float64
}

// Fig14 measures the two contributions in the order the techniques
// compose: Whisper restricted to the raw 8-bit history (HashedHistory
// off) isolates the Implication/Converse-Non-Implication extension over
// 8b-ROMBF; enabling the full geometric length series on top isolates
// hashed history correlation. (The reverse attribution — monotone
// operators over hashed lengths — measures near zero here because the
// workload's long-history ground truths are balanced formulas outside
// the monotone space; the two techniques are complementary, not
// additive, and this order matches the paper's narrative.)
func Fig14(opt Options) (*Fig14Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	type fig14App struct {
		hashed, impl float64
	}
	per, err := mapApps(opt, "fig14", func(ai int, app *workload.App, u *runner.Unit) (fig14App, error) {
		base := opt.runBaseline(app, opt.TestInput)
		u.AddInstrs(base.Instrs)
		u.AddRecords(base.Records)

		// 8b-ROMBF reference, trained over the same hard-branch set the
		// Whisper variants see (the figure decomposes expressiveness;
		// coverage differences would contaminate it).
		ropt := profiler.DefaultOptions()
		ropt.Lengths = []int{8}
		rprof, err := opt.collectProfile(app, opt.TrainInput, opt.Records, 64, ropt)
		if err != nil {
			return fig14App{}, err
		}
		rtr, err := rombf.Train(rprof, rombf.DefaultConfig())
		if err != nil {
			return fig14App{}, err
		}
		rres := sim.RunApp(app, opt.TestInput, opt.Records,
			rombf.NewPredictor(tage.New(tage.DefaultConfig()), rtr.Hints, 8), opt.popt())
		rombfRed := sim.MispReduction(base, rres)

		// All variants search their formula spaces exhaustively so the
		// decomposition isolates expressiveness rather than sampling
		// luck (8b-ROMBF's 128-formula space is always searched
		// exhaustively; the factorized evaluator makes the 2^15 space
		// exhaustive too).
		run := func(params core.Params) (float64, error) {
			params.ExploreFraction = 1.0
			b, err := opt.buildWhisperAt(app, opt.TrainInput, opt.Records, 64, params)
			if err != nil {
				return 0, err
			}
			res, _ := b.RunWhisperWarm(app, opt.TestInput, opt.Records, sim.Tage64KB, opt.popt())
			return sim.MispReduction(base, res), nil
		}
		opsOnly := opt.Params
		opsOnly.HashedHistory = false
		opsRed, err := run(opsOnly)
		if err != nil {
			return fig14App{}, err
		}
		fullRed, err := run(opt.Params)
		if err != nil {
			return fig14App{}, err
		}
		return fig14App{hashed: fullRed - opsRed, impl: opsRed - rombfRed}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &Fig14Result{Apps: appNames(opt.Apps)}
	for _, pa := range per {
		r.HashedHistory = append(r.HashedHistory, pa.hashed)
		r.ImplCnimpl = append(r.ImplCnimpl, pa.impl)
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig14Result) Table() *stats.Table {
	t := stats.NewTable("Fig 14: improvement over 8b-ROMBF (percentage points)",
		"app", "Hashed-history-correlation", "Implication-converse-nonimplication")
	for i, app := range r.Apps {
		t.AddRow(app, pct(r.HashedHistory[i]), pct(r.ImplCnimpl[i]))
	}
	t.AddRow("Avg", pct(stats.Mean(r.HashedHistory)), pct(stats.Mean(r.ImplCnimpl)))
	return t
}

// Fig15Fractions is the default exploration sweep.
var Fig15Fractions = []float64{0.001, 0.01, 0.05, 0.2, 1.0}

// Fig15Result sweeps randomized formula testing's explored fraction
// against average misprediction reduction and training time (paper
// Fig 15). The 1.0 point uses the exact factorized exhaustive search.
type Fig15Result struct {
	Fractions []float64
	// Reduction is the mean misprediction reduction at each fraction;
	// TrainSeconds the mean per-app training time.
	Reduction    []float64
	TrainSeconds []float64
}

// Fig15 runs the sweep.
func Fig15(opt Options, fractions []float64) (*Fig15Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if fractions == nil {
		fractions = Fig15Fractions
	}
	r := &Fig15Result{Fractions: fractions}
	type fig15App struct {
		red   float64
		train time.Duration
	}
	for _, frac := range fractions {
		frac := frac
		per, err := mapApps(opt, fmt.Sprintf("fig15@%g", frac),
			func(ai int, app *workload.App, u *runner.Unit) (fig15App, error) {
				base := opt.runBaseline(app, opt.TestInput)
				u.AddInstrs(base.Instrs)
				u.AddRecords(base.Records)
				params := opt.Params
				params.ExploreFraction = frac
				b, err := opt.buildWhisperAt(app, opt.TrainInput, opt.Records, 64, params)
				if err != nil {
					return fig15App{}, err
				}
				res, _ := b.RunWhisperWarm(app, opt.TestInput, opt.Records, sim.Tage64KB, opt.popt())
				u.AddInstrs(res.Instrs)
				u.AddRecords(res.Records)
				return fig15App{red: sim.MispReduction(base, res), train: b.Train.Duration}, nil
			})
		if err != nil {
			return nil, err
		}
		var reds []float64
		var train time.Duration
		for _, pa := range per {
			reds = append(reds, pa.red)
			train += pa.train
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
		r.TrainSeconds = append(r.TrainSeconds, train.Seconds()/float64(len(opt.Apps)))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig15Result) Table() *stats.Table {
	t := stats.NewTable("Fig 15: randomized formula testing sweep",
		"% formulas explored", "avg misprediction reduction %", "avg training time (s)")
	for i, f := range r.Fractions {
		t.AddRow(stats.FormatFloat(f*100, 1), pct(r.Reduction[i]),
			stats.FormatFloat(r.TrainSeconds[i], 3))
	}
	return t
}

// Fig17Result compares cross-input against same-input profiles (paper
// Fig 17): for each app and test input, the reduction using the training
// input's profile versus a profile from the test input itself.
type Fig17Result struct {
	Apps []string
	// TestInputs lists the evaluated inputs (#1..#3).
	TestInputs []int
	// CrossInput[app][k] and SameInput[app][k] are reductions.
	CrossInput, SameInput [][]float64
}

// Fig17 runs the input-sensitivity study.
func Fig17(opt Options, testInputs []int) (*Fig17Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if testInputs == nil {
		testInputs = []int{1, 2, 3}
	}
	type fig17App struct {
		cross, same []float64
	}
	per, err := mapApps(opt, "fig17", func(ai int, app *workload.App, u *runner.Unit) (fig17App, error) {
		crossB, err := opt.buildWhisper(app)
		if err != nil {
			return fig17App{}, err
		}
		var cross, same []float64
		for _, ti := range testInputs {
			base := opt.runBaseline(app, ti)
			res, _ := crossB.RunWhisperWarm(app, ti, opt.Records, sim.Tage64KB, opt.popt())
			cross = append(cross, sim.MispReduction(base, res))
			u.AddInstrs(base.Instrs + res.Instrs)
			u.AddRecords(base.Records + res.Records)

			sameB, err := opt.buildWhisperAt(app, ti, opt.Records, 64, opt.Params)
			if err != nil {
				return fig17App{}, err
			}
			sres, _ := sameB.RunWhisperWarm(app, ti, opt.Records, sim.Tage64KB, opt.popt())
			same = append(same, sim.MispReduction(base, sres))
			u.AddInstrs(sres.Instrs)
			u.AddRecords(sres.Records)
		}
		return fig17App{cross: cross, same: same}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &Fig17Result{Apps: appNames(opt.Apps), TestInputs: testInputs}
	for _, pa := range per {
		r.CrossInput = append(r.CrossInput, pa.cross)
		r.SameInput = append(r.SameInput, pa.same)
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig17Result) Table() *stats.Table {
	t := stats.NewTable("Fig 17: reduction with training-input vs same-input profiles (%)",
		"app", "input", "profile-from-training-input", "profile-from-same-input")
	var cAll, sAll []float64
	for i, app := range r.Apps {
		for k, ti := range r.TestInputs {
			t.AddRow(app, fmt.Sprintf("#%d", ti),
				pct(r.CrossInput[i][k]), pct(r.SameInput[i][k]))
			cAll = append(cAll, r.CrossInput[i][k])
			sAll = append(sAll, r.SameInput[i][k])
		}
	}
	t.AddRow("Avg", "", pct(stats.Mean(cAll)), pct(stats.Mean(sAll)))
	return t
}

// Fig18Result measures merged profiles: Whisper, 8b-ROMBF, and
// unlimited-BranchNet trained on profiles merged from 1..k inputs and
// evaluated on a held-out input (paper Fig 18).
type Fig18Result struct {
	InputCounts []int
	// Reduction[technique][k] is the mean reduction across apps.
	Reduction map[Technique][]float64
}

// Fig18 runs the merged-profile study. Per-input profiles are collected
// once per app and merged incrementally, so the sweep costs k profile
// collections rather than k^2. The held-out test input is the app's last
// input.
func Fig18(opt Options, maxInputs int) (*Fig18Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if maxInputs <= 0 {
		maxInputs = 5
	}
	type fig18App struct {
		wh, ro []float64 // reductions indexed by merge level k-1
	}
	per, err := mapApps(opt, "fig18", func(ai int, app *workload.App, u *runner.Unit) (fig18App, error) {
		if maxInputs >= app.Inputs() {
			return fig18App{}, fmt.Errorf("experiments: app %s has only %d inputs, need > %d",
				app.Name(), app.Inputs(), maxInputs)
		}
		pa := fig18App{}
		testInput := app.Inputs() - 1
		base := opt.runBaseline(app, testInput)
		u.AddInstrs(base.Instrs)
		u.AddRecords(base.Records)
		g := cfg.Build(app.Stream(opt.TrainInput, opt.Records))

		var merged, rmerged *profiler.Profile
		for k := 1; k <= maxInputs; k++ {
			in := k - 1
			p, err := opt.collectProfile(app, in, opt.Records, 64, profiler.DefaultOptions())
			if err != nil {
				return pa, err
			}
			ropt := profiler.DefaultOptions()
			ropt.Lengths = []int{8}
			ropt.MaxHard = 0
			rp, err := opt.collectProfile(app, in, opt.Records, 64, ropt)
			if err != nil {
				return pa, err
			}
			// The per-input profiles are shared cache entries; Merge
			// mutates its receiver, so the accumulators are clones.
			if merged == nil {
				merged, rmerged = p.Clone(), rp.Clone()
			} else {
				if err := merged.Merge(p); err != nil {
					return pa, err
				}
				if err := rmerged.Merge(rp); err != nil {
					return pa, err
				}
			}

			// Whisper from the merged profile. trainCached keys on the
			// profile's content, so each merge level caches separately
			// even though the accumulator mutates in place.
			tr, err := opt.trainCached(merged, opt.Params)
			if err != nil {
				return pa, err
			}
			bin := core.Inject(tr, g, core.InjectOptions{
				Placement:    cfg.DefaultPlacementOptions(),
				WindowInstrs: merged.Instrs,
			})
			rt := core.NewRuntime(tage.New(tage.DefaultConfig()), bin, tr.Lengths, 0)
			popt := opt.popt()
			popt.Hook = rt
			res := sim.RunApp(app, testInput, opt.Records, rt, popt)
			pa.wh = append(pa.wh, sim.MispReduction(base, res))
			u.AddInstrs(res.Instrs)
			u.AddRecords(res.Records)

			// 8b-ROMBF from the merged raw-history profile.
			rtr, err := rombf.Train(rmerged, rombf.DefaultConfig())
			if err != nil {
				return pa, err
			}
			rres := sim.RunApp(app, testInput, opt.Records,
				rombf.NewPredictor(tage.New(tage.DefaultConfig()), rtr.Hints, 8), opt.popt())
			pa.ro = append(pa.ro, sim.MispReduction(base, rres))
			u.AddInstrs(rres.Instrs)
			u.AddRecords(rres.Records)
		}
		return pa, nil
	})
	if err != nil {
		return nil, err
	}
	r := &Fig18Result{Reduction: map[Technique][]float64{}}
	for k := 1; k <= maxInputs; k++ {
		var wh, ro []float64
		for _, pa := range per {
			wh = append(wh, pa.wh[k-1])
			ro = append(ro, pa.ro[k-1])
		}
		r.InputCounts = append(r.InputCounts, k)
		r.Reduction[TechWhisper] = append(r.Reduction[TechWhisper], stats.Mean(wh))
		r.Reduction[Tech8bROMBF] = append(r.Reduction[Tech8bROMBF], stats.Mean(ro))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig18Result) Table() *stats.Table {
	t := stats.NewTable("Fig 18: avg misprediction reduction with merged profiles (%)",
		"inputs merged", "8b-ROMBF", "Whisper")
	for i, k := range r.InputCounts {
		t.AddRow(fmt.Sprintf("%d-input", k),
			pct(r.Reduction[Tech8bROMBF][i]), pct(r.Reduction[TechWhisper][i]))
	}
	return t
}

// Fig19Result is the brhint overhead study (paper Fig 19).
type Fig19Result struct {
	Apps []string
	// Static and Dynamic are instruction-increase fractions.
	Static, Dynamic []float64
	// Placed and Dropped count hints; Coverage is placed/(placed+dropped).
	Placed, Dropped []int
}

// Fig19 builds Whisper per app and reports the injected-hint overheads.
func Fig19(opt Options) (*Fig19Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	type fig19App struct {
		static, dynamic float64
		placed, dropped int
	}
	per, err := mapApps(opt, "fig19", func(ai int, app *workload.App, u *runner.Unit) (fig19App, error) {
		b, err := opt.buildWhisper(app)
		if err != nil {
			return fig19App{}, err
		}
		u.AddInstrs(b.Profile.Instrs)
		u.AddRecords(b.Profile.Records)
		return fig19App{
			static:  b.Binary.StaticOverhead(),
			dynamic: b.Binary.DynamicOverhead(),
			placed:  b.Binary.Placed,
			dropped: b.Binary.Dropped,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &Fig19Result{Apps: appNames(opt.Apps)}
	for _, pa := range per {
		r.Static = append(r.Static, pa.static)
		r.Dynamic = append(r.Dynamic, pa.dynamic)
		r.Placed = append(r.Placed, pa.placed)
		r.Dropped = append(r.Dropped, pa.dropped)
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig19Result) Table() *stats.Table {
	t := stats.NewTable("Fig 19: brhint instruction overhead (%)",
		"app", "static", "dynamic", "hints placed", "hints dropped")
	for i, app := range r.Apps {
		t.AddRow(app, pct(r.Static[i]), pct(r.Dynamic[i]),
			fmt.Sprintf("%d", r.Placed[i]), fmt.Sprintf("%d", r.Dropped[i]))
	}
	t.AddRow("Avg", pct(stats.Mean(r.Static)), pct(stats.Mean(r.Dynamic)))
	return t
}
