package experiments

// The cross-workload hint-transfer study: train Whisper hints on every
// application A, then apply them to every application B and measure the
// misprediction reduction B sees. The paper motivates per-application
// profiles (§III); this driver quantifies the cost of getting that
// wrong. Because the synthetic apps share a code layout (functions
// allocated from the same base address), their branch PCs partially
// collide, so foreign hints attach to real branches of the test app —
// transfer quality then tracks how similar the two apps' branch
// footprints are, which the driver reports alongside each cell as a
// static (PC-set Jaccard) and dynamic (execution-frequency histogram
// intersection) overlap.

import (
	"fmt"
	"sort"

	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// Transfer holds the A×B cross-workload study. All matrices are indexed
// [train][test] in Apps order.
type Transfer struct {
	Apps []string
	// BaseMPKI is the 64KB TAGE-SC-L baseline per test app (TestInput).
	BaseMPKI []float64
	// Reduction[a][b] is the misprediction reduction test app b sees
	// under hints trained on app a. The diagonal reproduces the
	// single-workload comparison (RunComparison's Whisper column)
	// bit for bit: it is computed by the identical memoized calls.
	Reduction [][]float64
	// StaticOverlap[a][b] is the Jaccard index of the two apps'
	// conditional-branch PC sets on the TrainInput window; symmetric,
	// in [0, 1], 1 on the diagonal.
	StaticOverlap [][]float64
	// DynamicOverlap[a][b] is the histogram intersection of the two
	// apps' normalized conditional-branch execution frequencies over
	// the same window; symmetric, in [0, 1], 1 on the diagonal.
	DynamicOverlap [][]float64
}

// footprint is one app's conditional-branch profile of the train window:
// execution counts per static branch PC.
type footprint struct {
	counts map[uint64]uint64
	total  uint64
}

// collectFootprint scans one (app, input) window.
func collectFootprint(app *workload.App, input, records int) footprint {
	fp := footprint{counts: make(map[uint64]uint64)}
	s := app.Stream(input, records)
	var r trace.Record
	for s.Next(&r) {
		if r.Kind != trace.CondBranch {
			continue
		}
		fp.counts[r.PC]++
		fp.total++
	}
	return fp
}

// staticOverlap is the Jaccard index |A∩B| / |A∪B| of the branch PC sets.
func staticOverlap(a, b footprint) float64 {
	if len(a.counts) == 0 && len(b.counts) == 0 {
		return 0
	}
	inter := 0
	for pc := range a.counts {
		if _, ok := b.counts[pc]; ok {
			inter++
		}
	}
	union := len(a.counts) + len(b.counts) - inter
	return float64(inter) / float64(union)
}

// dynamicOverlap is the histogram intersection Σ min(fA, fB) of the
// normalized execution frequencies: the fraction of dynamic branch
// executions the two footprints have in common. Summing over the sorted
// PC intersection keeps the float accumulation order — and therefore
// the result — identical across runs and argument orders.
func dynamicOverlap(a, b footprint) float64 {
	if a.total == 0 || b.total == 0 {
		return 0
	}
	var pcs []uint64
	for pc := range a.counts {
		if _, ok := b.counts[pc]; ok {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	sum := 0.0
	for _, pc := range pcs {
		fa := float64(a.counts[pc]) / float64(a.total)
		fb := float64(b.counts[pc]) / float64(b.total)
		sum += min(fa, fb)
	}
	return sum
}

// RunTransfer trains hints on each configured app and evaluates them on
// every configured app (the A×B matrix). Profiles and trained bundles go
// through the shared memo and disk-cache layers, so a warm rerun does no
// profiling or training work, and each (train, test) evaluation is one
// journaled unit on the engine.
func RunTransfer(opt Options) (*Transfer, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	n := len(opt.Apps)

	// Phase 1: per-app footprints of the train window (one unit per app).
	fps, err := mapApps(opt, "transfer-footprint", func(i int, app *workload.App, u *runner.Unit) (footprint, error) {
		fp := collectFootprint(app, opt.TrainInput, opt.Records)
		u.AddRecords(uint64(opt.Records))
		return fp, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: the A×B evaluation, one unit per (train, test) pair. The
	// builds and baselines are memoized, so concurrent pairs sharing a
	// train app (or a test baseline) compute each once.
	type cell struct {
		baseMPKI  float64
		reduction float64
	}
	pool := opt.pool()
	cells, err := runner.Map(pool, n*n, func(k int, u *runner.Unit) (cell, error) {
		ai, bi := k/n, k%n
		train, test := opt.Apps[ai], opt.Apps[bi]
		u.Label = fmt.Sprintf("transfer/%s->%s", train.Name(), test.Name())
		b, err := opt.buildWhisper(train)
		if err != nil {
			return cell{}, err
		}
		base := opt.runBaseline(test, opt.TestInput)
		res, _ := opt.runWhisper(b, test, opt.TestInput)
		u.AddInstrs(base.Instrs + res.Instrs)
		u.AddRecords(base.Records + res.Records)
		return cell{baseMPKI: base.MPKI(), reduction: sim.MispReduction(base, res)}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Transfer{
		Apps:           appNames(opt.Apps),
		BaseMPKI:       make([]float64, n),
		Reduction:      make([][]float64, n),
		StaticOverlap:  make([][]float64, n),
		DynamicOverlap: make([][]float64, n),
	}
	for a := 0; a < n; a++ {
		t.Reduction[a] = make([]float64, n)
		t.StaticOverlap[a] = make([]float64, n)
		t.DynamicOverlap[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			t.Reduction[a][b] = cells[a*n+b].reduction
			t.StaticOverlap[a][b] = staticOverlap(fps[a], fps[b])
			t.DynamicOverlap[a][b] = dynamicOverlap(fps[a], fps[b])
		}
	}
	for b := 0; b < n; b++ {
		t.BaseMPKI[b] = cells[b].baseMPKI // row 0 covers every test app
	}
	return t, nil
}

// ReductionTable renders the A×B misprediction-reduction matrix: rows
// are the training apps, columns the test apps, "self" the diagonal.
func (t *Transfer) ReductionTable() *stats.Table {
	cols := []string{"train\\test"}
	cols = append(cols, t.Apps...)
	tb := stats.NewTable("Hint transfer: misprediction reduction on test app (%), hints trained on row app", cols...)
	for a, name := range t.Apps {
		cells := []string{name}
		for b := range t.Apps {
			cells = append(cells, pct(t.Reduction[a][b]))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// OverlapTable renders the pairwise branch-footprint overlap as
// "static/dynamic" cells (both fractions of 1).
func (t *Transfer) OverlapTable() *stats.Table {
	cols := []string{"app"}
	cols = append(cols, t.Apps...)
	tb := stats.NewTable("Branch-footprint overlap (static Jaccard / dynamic histogram intersection)", cols...)
	for a, name := range t.Apps {
		cells := []string{name}
		for b := range t.Apps {
			cells = append(cells, fmt.Sprintf("%s/%s",
				stats.FormatFloat(t.StaticOverlap[a][b], 2),
				stats.FormatFloat(t.DynamicOverlap[a][b], 2)))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// SummaryTable renders one row per (train, test) pair sorted by
// decreasing transfer quality: the reduction kept relative to
// self-training, next to the overlap that predicts it. Diagonal pairs
// are omitted (their ratio is 1 by construction).
func (t *Transfer) SummaryTable() *stats.Table {
	type pair struct {
		a, b int
		kept float64
	}
	var pairs []pair
	for a := range t.Apps {
		for b := range t.Apps {
			if a == b {
				continue
			}
			kept := 0.0
			if self := t.Reduction[b][b]; self != 0 {
				kept = t.Reduction[a][b] / self
			}
			pairs = append(pairs, pair{a: a, b: b, kept: kept})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].kept > pairs[j].kept })
	tb := stats.NewTable("Hint transfer: cross-training summary (best to worst)",
		"train->test", "reduction", "self", "kept", "static-ovl", "dynamic-ovl")
	for _, p := range pairs {
		tb.AddRow(
			t.Apps[p.a]+"->"+t.Apps[p.b],
			pct(t.Reduction[p.a][p.b]),
			pct(t.Reduction[p.b][p.b]),
			stats.FormatFloat(p.kept, 2),
			stats.FormatFloat(t.StaticOverlap[p.a][p.b], 2),
			stats.FormatFloat(t.DynamicOverlap[p.a][p.b], 2),
		)
	}
	return tb
}
