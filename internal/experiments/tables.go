package experiments

// The paper's three configuration tables, reproduced from the running
// system's actual parameters so drift between docs and code is impossible.

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/hint"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/workload"
)

// TableI lists the data center applications and their workloads
// (paper Table I), plus the synthetic population each one instantiates.
func TableI() *stats.Table {
	t := stats.NewTable("Table I: data center applications and workloads",
		"application", "workload", "static branches", "inputs")
	for _, spec := range workload.DataCenterSpecs() {
		app := workload.MustNew(spec.Config)
		t.AddRow(spec.Config.Name, spec.Workload,
			fmt.Sprintf("%d", app.StaticBranches()),
			fmt.Sprintf("%d", app.Inputs()))
	}
	return t
}

// TableII lists the simulated machine parameters (paper Table II).
func TableII(opt Options) *stats.Table {
	opt = opt.normalize()
	cfg := opt.Pipeline
	t := stats.NewTable("Table II: simulator parameters", "parameter", "value")
	t.AddRow("CPU", fmt.Sprintf("%d-wide OOO, %d-entry FTQ, %d-cycle squash penalty",
		cfg.Width, cfg.Frontend.FTQDepth, cfg.SquashPenalty))
	t.AddRow("Branch prediction unit",
		"64KB TAGE-SC-L, 8192-entry 4-way BTB, 32-entry RAS, 4096-entry IBTB")
	t.AddRow("Caches",
		"32KB 8-way L1i, 32KB 8-way L1d, 1MB 16-way L2, 10MB 20-way L3")
	t.AddRow("Cache latencies", fmt.Sprintf("L1 %d / L2 %d / L3 %d / mem %d cycles",
		cfg.Frontend.Latency.L1, cfg.Frontend.Latency.L2,
		cfg.Frontend.Latency.L3, cfg.Frontend.Latency.Memory))
	return t
}

// TableIII lists Whisper's design parameters (paper Table III).
func TableIII(opt Options) *stats.Table {
	opt = opt.normalize()
	p := opt.Params
	t := stats.NewTable("Table III: Whisper design parameters", "parameter", "value")
	t.AddRow("Minimum history length", fmt.Sprintf("%d", p.MinHistory))
	t.AddRow("Maximum history length", fmt.Sprintf("%d", p.MaxHistory))
	t.AddRow("Different history lengths", fmt.Sprintf("%d", p.NumLengths))
	t.AddRow("Length of the hashed history", fmt.Sprintf("%d", formula.Leaves))
	t.AddRow("Logical operations used", fmt.Sprintf("%d", formula.NumOps))
	t.AddRow("Hint buffer size", fmt.Sprintf("%d", hint.BufferSize))
	t.AddRow("Formula encoding bits", fmt.Sprintf("%d", formula.EncBits))
	t.AddRow("Explored formula fraction", stats.FormatFloat(p.ExploreFraction, 3))
	return t
}
