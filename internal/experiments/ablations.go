package experiments

// Design-choice ablations beyond the paper's own figures (DESIGN.md §3):
// the hint-buffer capacity sensitivity the paper summarizes in Table III
// ("high performance even with a 32-entry hint buffer"), the §IV
// allocation-suppression policy, and this reproduction's held-out
// validation split.

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/workload"
)

// BufferSweepSizes is the default hint-buffer capacity sweep.
var BufferSweepSizes = []int{1, 2, 4, 8, 16, 32, 64, 128}

// BufferSweepResult measures reduction versus hint-buffer capacity.
type BufferSweepResult struct {
	Sizes     []int
	Reduction []float64 // mean across apps
	HitRate   []float64 // mean buffer hit rate among hinted branches
}

// BufferSweep runs the Table III hint-buffer sensitivity study.
func BufferSweep(opt Options, sizes []int) (*BufferSweepResult, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if sizes == nil {
		sizes = BufferSweepSizes
	}
	// Build once per app, evaluate at every size.
	type built struct {
		b        *sim.WhisperBuild
		baseMisp uint64
	}
	basePopt := opt.popt()
	builds, err := mapApps(opt, "buffer/build", func(ai int, app *workload.App, u *runner.Unit) (built, error) {
		b, err := opt.buildWhisper(app)
		if err != nil {
			return built{}, err
		}
		base := opt.runBaseline(app, opt.TestInput)
		u.AddInstrs(b.Profile.Instrs + base.Instrs)
		u.AddRecords(b.Profile.Records + base.Records)
		return built{b: b, baseMisp: base.CondMisp}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &BufferSweepResult{Sizes: sizes}
	for _, size := range sizes {
		type sized struct {
			red, hit float64
		}
		per, err := mapApps(opt, fmt.Sprintf("buffer@%d", size), func(ai int, app *workload.App, u *runner.Unit) (sized, error) {
			rt := core.NewRuntimeOpts(tage.New(tage.DefaultConfig()),
				builds[ai].b.Binary, builds[ai].b.Train.Lengths, size, true)
			popt := basePopt
			popt.Hook = rt
			res := sim.RunApp(app, opt.TestInput, opt.Records, rt, popt)
			u.AddInstrs(res.Instrs)
			u.AddRecords(res.Records)
			red := 0.0
			if builds[ai].baseMisp > 0 {
				red = 1 - float64(res.CondMisp)/float64(builds[ai].baseMisp)
			}
			return sized{red: red, hit: rt.Buffer().HitRate()}, nil
		})
		if err != nil {
			return nil, err
		}
		var reds, hits []float64
		for _, pa := range per {
			reds = append(reds, pa.red)
			hits = append(hits, pa.hit)
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
		r.HitRate = append(r.HitRate, stats.Mean(hits))
	}
	return r, nil
}

// Table renders the sweep.
func (r *BufferSweepResult) Table() *stats.Table {
	t := stats.NewTable("Ablation: hint-buffer capacity sensitivity",
		"entries", "avg reduction %", "buffer hit rate")
	for i, s := range r.Sizes {
		t.AddRow(fmt.Sprintf("%d", s), pct(r.Reduction[i]),
			stats.FormatFloat(r.HitRate[i], 3))
	}
	return t
}

// AblationResult compares the full design against single-policy removals.
type AblationResult struct {
	Apps []string
	// Full is the shipped configuration; NoSuppression keeps hinted
	// branches inside TAGE's tables; NoValidation deploys hints without
	// the held-out check.
	Full, NoSuppression, NoValidation []float64
}

// Ablations measures the design-policy contributions.
func Ablations(opt Options) (*AblationResult, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	type ablationApp struct {
		full, noSup, noVal float64
	}
	per, err := mapApps(opt, "ablations", func(ai int, app *workload.App, u *runner.Unit) (ablationApp, error) {
		base := opt.runBaseline(app, opt.TestInput)
		u.AddInstrs(base.Instrs)
		u.AddRecords(base.Records)

		// Full design (shared build for full + no-suppression).
		b, err := opt.buildWhisper(app)
		if err != nil {
			return ablationApp{}, err
		}
		evalWith := func(bb *sim.WhisperBuild, suppress bool) float64 {
			rt := core.NewRuntimeOpts(tage.New(tage.DefaultConfig()),
				bb.Binary, bb.Train.Lengths, 0, suppress)
			popt := opt.popt()
			popt.Hook = rt
			res := sim.RunApp(app, opt.TestInput, opt.Records, rt, popt)
			u.AddInstrs(res.Instrs)
			u.AddRecords(res.Records)
			return sim.MispReduction(base, res)
		}
		pa := ablationApp{}
		pa.full = evalWith(b, true)
		pa.noSup = evalWith(b, false)

		params := opt.Params
		params.NoValidation = true
		nb, err := opt.buildWhisperAt(app, opt.TrainInput, opt.Records, 64, params)
		if err != nil {
			return ablationApp{}, err
		}
		pa.noVal = evalWith(nb, true)
		return pa, nil
	})
	if err != nil {
		return nil, err
	}
	r := &AblationResult{Apps: appNames(opt.Apps)}
	for _, pa := range per {
		r.Full = append(r.Full, pa.full)
		r.NoSuppression = append(r.NoSuppression, pa.noSup)
		r.NoValidation = append(r.NoValidation, pa.noVal)
	}
	return r, nil
}

// Table renders the ablation comparison.
func (r *AblationResult) Table() *stats.Table {
	t := stats.NewTable("Ablation: design policies (misprediction reduction %)",
		"app", "full", "no-alloc-suppression", "no-validation-split")
	for i, app := range r.Apps {
		t.AddRow(app, pct(r.Full[i]), pct(r.NoSuppression[i]), pct(r.NoValidation[i]))
	}
	t.AddRow("Avg", pct(stats.Mean(r.Full)), pct(stats.Mean(r.NoSuppression)),
		pct(stats.Mean(r.NoValidation)))
	return t
}
