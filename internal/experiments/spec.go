package experiments

// Spec-driven drivers: simulate a declarative workload scenario
// (internal/spec) phase by phase, and the hint-staleness study — how
// much of Whisper's benefit survives when the hints were trained
// phases ago and the workload has drifted since (the question behind
// the paper's §V-C input-sensitivity results, extended to an explicit
// timeline).

import (
	"fmt"
	"sort"

	"github.com/whisper-sim/whisper/internal/cfg"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/spec"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
)

// --- spec-phase memo layers -------------------------------------------
//
// Mirrors of the per-app memos, keyed on *Scenario identity plus the
// phase index. Disk keys use the spec's content hash, so a warm cache
// survives re-parsing the same file (or the same spec in a different
// format) in another process.

type specProfileKey struct {
	sc     *spec.Scenario
	phase  int
	sizeKB int
	popt   string
}

var specProfileMemo runner.Memo[specProfileKey, profileResult]

type specBaselineKey struct {
	sc     *spec.Scenario
	phase  int
	sizeKB int
	warmup uint64
	pcfg   pipeline.Config
}

var specBaselineMemo runner.Memo[specBaselineKey, pipeline.Result]

type specBuildKey struct {
	sc     *spec.Scenario
	phase  int
	sizeKB int
	params core.Params
}

type specBuildResult struct {
	tr  *core.TrainResult
	bin *core.Binary
	err error
}

var specBuildMemo runner.Memo[specBuildKey, specBuildResult]

// resetSpecMemos clears the spec-scenario memos (called by resetMemos).
func resetSpecMemos() {
	specProfileMemo.Reset()
	specBaselineMemo.Reset()
	specBuildMemo.Reset()
}

// phasePopt builds pipeline options with the warm-up window scaled to
// one phase's record budget (phases need not share the spec-level
// default).
func (o Options) phasePopt(records int) pipeline.Options {
	return pipeline.Options{
		Config:        o.Pipeline,
		WarmupRecords: uint64(float64(records) * o.WarmupFrac),
		BlockSize:     o.BlockSize,
		Parallelism:   o.SimParallelism,
		WindowSize:    o.SimWindow,
	}
}

// runPhaseBaseline measures (or recalls) the 64KB TAGE-SC-L baseline
// over one scenario phase.
func (o Options) runPhaseBaseline(sc *spec.Scenario, phase int) pipeline.Result {
	records := sc.Phases[phase].Records
	popt := o.phasePopt(records)
	key := specBaselineKey{sc: sc, phase: phase, sizeKB: 64, warmup: popt.WarmupRecords, pcfg: o.Pipeline}
	return specBaselineMemo.Do(key, func() pipeline.Result {
		return pipeline.Run(sc.PhaseStream(phase), sim.TageSized(64)(), popt)
	})
}

// collectPhaseProfile profiles one scenario phase under a sizeKB
// TAGE-SC-L, preferring the in-memory memo, then the disk cache (keyed
// by the spec's content hash), then computing.
func (o Options) collectPhaseProfile(sc *spec.Scenario, phase, sizeKB int, popt profiler.Options) (*profiler.Profile, error) {
	optKey := profileOptKey(popt)
	key := specProfileKey{sc: sc, phase: phase, sizeKB: sizeKB, popt: optKey}
	r := specProfileMemo.Do(key, func() profileResult {
		ph := &sc.Phases[phase]
		diskKey := fmt.Sprintf("profile|v%d|spec=%s|phase=%d|records=%d|tage=%dKB|%s",
			store.FormatVersion, sc.Hash(), phase, ph.Records, sizeKB, optKey)
		if o.Cache != nil {
			if p, ok := o.Cache.LoadProfile(diskKey); ok {
				return profileResult{p: p}
			}
		}
		p, err := profiler.Collect(func() trace.Stream { return sc.PhaseStream(phase) },
			sim.TageSized(sizeKB)(), popt)
		if err != nil {
			return profileResult{err: fmt.Errorf("experiments: profiling spec %s phase %s: %w",
				sc.Name(), ph.Name, err)}
		}
		if o.Cache != nil {
			_ = o.Cache.SaveProfile(diskKey,
				store.Meta{App: sc.Name(), Input: ph.Input, Records: ph.Records}, p)
		}
		return profileResult{p: p}
	})
	return r.p, r.err
}

// buildPhaseWhisper runs (or recalls) the offline flow against one
// scenario phase: profile it, train hints, and inject them into the
// CFG of that phase's stream. The result is the deployable state a
// training pass at the end of that phase would have produced.
func (o Options) buildPhaseWhisper(sc *spec.Scenario, phase int) (*core.TrainResult, *core.Binary, error) {
	key := specBuildKey{sc: sc, phase: phase, sizeKB: 64, params: o.Params}
	r := specBuildMemo.Do(key, func() specBuildResult {
		prof, err := o.collectPhaseProfile(sc, phase, 64, profiler.DefaultOptions())
		if err != nil {
			return specBuildResult{err: err}
		}
		tr, err := o.trainProfile(prof, o.Params)
		if err != nil {
			return specBuildResult{err: fmt.Errorf("experiments: training spec %s phase %d: %w",
				sc.Name(), phase, err)}
		}
		g := cfg.Build(sc.PhaseStream(phase))
		bin := core.Inject(tr, g, core.InjectOptions{
			Placement:    cfg.DefaultPlacementOptions(),
			WindowInstrs: prof.Instrs,
		})
		return specBuildResult{tr: tr, bin: bin}
	})
	return r.tr, r.bin, r.err
}

// evalPhaseWith measures phase evalPhase with hints trained on phase
// trainPhase: a fresh Whisper runtime (the Runtime is stateful) over a
// fresh baseline predictor.
func (o Options) evalPhaseWith(sc *spec.Scenario, trainPhase, evalPhase int) (pipeline.Result, *core.Runtime, error) {
	tr, bin, err := o.buildPhaseWhisper(sc, trainPhase)
	if err != nil {
		return pipeline.Result{}, nil, err
	}
	rt := core.NewRuntime(tage.New(tage.DefaultConfig()), bin, tr.Lengths, 0)
	popt := o.phasePopt(sc.Phases[evalPhase].Records)
	popt.Hook = rt
	res := pipeline.Run(sc.PhaseStream(evalPhase), rt, popt)
	return res, rt, nil
}

// hintCoverage is the fraction of conditional executions served from
// the hint buffer.
func hintCoverage(res pipeline.Result, rt *core.Runtime) float64 {
	if res.CondExecs == 0 {
		return 0
	}
	return float64(rt.HintPredictions) / float64(res.CondExecs)
}

// --- spec summary ------------------------------------------------------

// SpecSummary renders the compiled scenario itself — the resolved
// timeline the simulation drivers will execute. It runs no simulation,
// which is what makes it the -validate rendering.
func SpecSummary(sc *spec.Scenario) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("Spec %s: %d phases, %d records (hash %.12s)",
		sc.Name(), len(sc.Phases), sc.TotalRecords(), sc.Hash()),
		"phase", "start", "records", "mix", "arrival", "drift")
	for i := range sc.Phases {
		ph := &sc.Phases[i]
		t.AddRow(ph.Name,
			fmt.Sprintf("%d", ph.Start),
			fmt.Sprintf("%d", ph.Records),
			describeMix(sc, ph),
			describeArrival(&ph.Arrival),
			describeDrift(&ph.Drift))
	}
	return t
}

func describeMix(sc *spec.Scenario, ph *spec.ScenarioPhase) string {
	mix := ""
	for k, ai := range ph.AppIdx {
		if k > 0 {
			mix += ","
		}
		prev := 0.0
		if k > 0 {
			prev = ph.Cum[k-1]
		}
		mix += fmt.Sprintf("%s:%s", sc.Apps[ai].App.Name(), pct(ph.Cum[k]-prev))
	}
	return mix
}

func describeArrival(a *spec.Arrival) string {
	if a.Process == spec.ArrivalBursty {
		return fmt.Sprintf("%s(burst=%d,stick=%g)", a.Process, a.Burst, a.Stickiness)
	}
	return fmt.Sprintf("%s(burst=%d)", a.Process, a.Burst)
}

func describeDrift(d *spec.Drift) string {
	switch d.Kind {
	case spec.DriftRamp:
		return fmt.Sprintf("ramp %d->%d", d.From, d.To)
	case spec.DriftFlip:
		return fmt.Sprintf("flip %d->%d at %g", d.From, d.To, d.At)
	case spec.DriftDiurnal:
		return fmt.Sprintf("diurnal %d<->%d period %d", d.From, d.To, d.Period)
	default:
		return fmt.Sprintf("none (input %d)", d.From)
	}
}

// --- per-phase Whisper driver -----------------------------------------

// SpecPhasesResult measures each scenario phase under the 64KB
// TAGE-SC-L baseline and under Whisper trained on that same phase —
// the best case every staleness cadence is compared against.
type SpecPhasesResult struct {
	Name, Hash string
	Phases     []string
	Records    []int
	// BaseMPKI / WhisperMPKI are per-phase; Reduction is the fractional
	// misprediction reduction and Coverage the hint-served fraction of
	// conditional executions.
	BaseMPKI, WhisperMPKI []float64
	Reduction, Coverage   []float64
}

// SpecPhases runs the per-phase study. Phases are independent
// simulation units (PhaseStream is self-contained), so they fan out
// over -j workers with byte-identical results at any setting.
func SpecPhases(opt Options, sc *spec.Scenario) (*SpecPhasesResult, error) {
	opt = opt.normalize()
	type row struct {
		base, wh, red, cover float64
	}
	rows, err := runner.Map(opt.pool(), len(sc.Phases), func(i int, u *runner.Unit) (row, error) {
		u.Label = "spec/" + sc.Phases[i].Name
		base := opt.runPhaseBaseline(sc, i)
		u.AddInstrs(base.Instrs)
		u.AddRecords(base.Records)
		res, rt, err := opt.evalPhaseWith(sc, i, i)
		if err != nil {
			return row{}, err
		}
		u.AddInstrs(res.Instrs)
		u.AddRecords(res.Records)
		return row{
			base:  base.MPKI(),
			wh:    res.MPKI(),
			red:   sim.MispReduction(base, res),
			cover: hintCoverage(res, rt),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &SpecPhasesResult{Name: sc.Name(), Hash: sc.Hash()}
	for i := range sc.Phases {
		r.Phases = append(r.Phases, sc.Phases[i].Name)
		r.Records = append(r.Records, sc.Phases[i].Records)
		r.BaseMPKI = append(r.BaseMPKI, rows[i].base)
		r.WhisperMPKI = append(r.WhisperMPKI, rows[i].wh)
		r.Reduction = append(r.Reduction, rows[i].red)
		r.Coverage = append(r.Coverage, rows[i].cover)
	}
	return r, nil
}

// Table renders the per-phase comparison.
func (r *SpecPhasesResult) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("Spec %s: per-phase Whisper vs 64KB TAGE-SC-L", r.Name),
		"phase", "records", "TAGE MPKI", "Whisper MPKI", "reduction %", "coverage %")
	for i, ph := range r.Phases {
		t.AddRow(ph, fmt.Sprintf("%d", r.Records[i]),
			stats.FormatFloat(r.BaseMPKI[i], 3), stats.FormatFloat(r.WhisperMPKI[i], 3),
			pct(r.Reduction[i]), pct(r.Coverage[i]))
	}
	t.AddRow("Avg", "", stats.FormatFloat(stats.Mean(r.BaseMPKI), 3),
		stats.FormatFloat(stats.Mean(r.WhisperMPKI), 3),
		pct(stats.Mean(r.Reduction)), pct(stats.Mean(r.Coverage)))
	return t
}

// --- staleness driver --------------------------------------------------

// StalenessResult reports how Whisper's benefit degrades as hints age
// across a drifting scenario, and how much each retraining cadence
// recovers. For cadence c, the hints applied during phase p were
// trained at phase p-(p mod c); cadence 0 trains once at phase 0 and
// never again (maximally stale), cadence 1 retrains every phase
// (maximally fresh).
type StalenessResult struct {
	Name, Hash string
	Phases     []string
	// Cadences are the evaluated cadences, ascending; 0 and 1 are
	// always present (they anchor the recovery metric).
	Cadences []int
	// BaseMPKI is the per-phase 64KB TAGE-SC-L reference.
	BaseMPKI []float64
	// MPKI[c] and Coverage[c] are per-phase series for cadence c.
	MPKI, Coverage map[int][]float64
	// Recovery[c] is the mean fraction of the stale-to-fresh MPKI gap
	// that cadence c closes, over the phases where a gap exists:
	// (stale - c) / (stale - fresh). 0 = no better than never
	// retraining, 1 = as good as retraining every phase.
	Recovery map[int]float64
}

// Staleness runs the study. The (cadence, phase) evaluation grid fans
// out as independent units; each distinct training phase's
// profile/train/inject work is computed once behind the memos no
// matter how many cadences reuse it.
func Staleness(opt Options, sc *spec.Scenario) (*StalenessResult, error) {
	opt = opt.normalize()
	seen := map[int]bool{0: true, 1: true}
	for _, c := range sc.Spec.Staleness.Cadences {
		seen[c] = true
	}
	cads := make([]int, 0, len(seen))
	for c := range seen {
		cads = append(cads, c)
	}
	sort.Ints(cads)

	np := len(sc.Phases)
	type job struct {
		cad, phase int
		baseline   bool
	}
	var jobs []job
	for p := 0; p < np; p++ {
		jobs = append(jobs, job{phase: p, baseline: true})
	}
	for _, c := range cads {
		for p := 0; p < np; p++ {
			jobs = append(jobs, job{cad: c, phase: p})
		}
	}
	type cell struct {
		mpki, cover float64
	}
	cells, err := runner.Map(opt.pool(), len(jobs), func(i int, u *runner.Unit) (cell, error) {
		j := jobs[i]
		name := sc.Phases[j.phase].Name
		if j.baseline {
			u.Label = "staleness/base/" + name
			base := opt.runPhaseBaseline(sc, j.phase)
			u.AddInstrs(base.Instrs)
			u.AddRecords(base.Records)
			return cell{mpki: base.MPKI()}, nil
		}
		u.Label = fmt.Sprintf("staleness/c%d/%s", j.cad, name)
		res, rt, err := opt.evalPhaseWith(sc, trainPhaseFor(j.phase, j.cad), j.phase)
		if err != nil {
			return cell{}, err
		}
		u.AddInstrs(res.Instrs)
		u.AddRecords(res.Records)
		return cell{mpki: res.MPKI(), cover: hintCoverage(res, rt)}, nil
	})
	if err != nil {
		return nil, err
	}

	r := &StalenessResult{
		Name: sc.Name(), Hash: sc.Hash(), Cadences: cads,
		MPKI: map[int][]float64{}, Coverage: map[int][]float64{}, Recovery: map[int]float64{},
	}
	for p := 0; p < np; p++ {
		r.Phases = append(r.Phases, sc.Phases[p].Name)
		r.BaseMPKI = append(r.BaseMPKI, cells[p].mpki)
	}
	for k, c := range cads {
		off := np * (1 + k)
		for p := 0; p < np; p++ {
			r.MPKI[c] = append(r.MPKI[c], cells[off+p].mpki)
			r.Coverage[c] = append(r.Coverage[c], cells[off+p].cover)
		}
	}
	for _, c := range cads {
		r.Recovery[c] = meanRecovery(r.MPKI[0], r.MPKI[1], r.MPKI[c])
	}
	return r, nil
}

// trainPhaseFor maps (phase, cadence) to the phase whose training pass
// produced the hints in effect: the most recent retraining boundary.
func trainPhaseFor(phase, cadence int) int {
	if cadence == 0 {
		return 0
	}
	return phase - phase%cadence
}

// meanRecovery averages the per-phase recovered fraction of the
// stale-to-fresh MPKI gap, counting only phases where a gap exists (on
// gapless phases every cadence is equivalent and the ratio is 0/0).
func meanRecovery(stale, fresh, at []float64) float64 {
	var sum float64
	var n int
	for p := range stale {
		gap := stale[p] - fresh[p]
		if gap <= 1e-9 {
			continue
		}
		sum += (stale[p] - at[p]) / gap
		n++
	}
	if n == 0 {
		return 1 // no degradation anywhere: every cadence is already fresh
	}
	return sum / float64(n)
}

// Table renders per-phase MPKI under every cadence plus the recovery
// summary row.
func (r *StalenessResult) Table() *stats.Table {
	cols := []string{"phase", "TAGE"}
	for _, c := range r.Cadences {
		switch c {
		case 0:
			cols = append(cols, "stale (c=0)")
		case 1:
			cols = append(cols, "fresh (c=1)")
		default:
			cols = append(cols, fmt.Sprintf("c=%d", c))
		}
	}
	t := stats.NewTable(fmt.Sprintf("Staleness %s: MPKI by retraining cadence (phases between retrains)", r.Name), cols...)
	for p, ph := range r.Phases {
		cells := []string{ph, stats.FormatFloat(r.BaseMPKI[p], 3)}
		for _, c := range r.Cadences {
			cells = append(cells, stats.FormatFloat(r.MPKI[c][p], 3))
		}
		t.AddRow(cells...)
	}
	avg := []string{"Avg", stats.FormatFloat(stats.Mean(r.BaseMPKI), 3)}
	for _, c := range r.Cadences {
		avg = append(avg, stats.FormatFloat(stats.Mean(r.MPKI[c]), 3))
	}
	t.AddRow(avg...)
	rec := []string{"recovery %", ""}
	for _, c := range r.Cadences {
		rec = append(rec, pct(r.Recovery[c]))
	}
	t.AddRow(rec...)
	cov := []string{"coverage %", ""}
	for _, c := range r.Cadences {
		cov = append(cov, pct(stats.Mean(r.Coverage[c])))
	}
	t.AddRow(cov...)
	return t
}
