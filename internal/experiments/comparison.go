package experiments

// The cross-technique comparison behind the paper's headline figures:
// Fig 4 (prior profile-guided techniques), Fig 12 (speedup), Fig 13
// (misprediction reduction), and Fig 16 (training time). All techniques
// are trained on the TrainInput profile and evaluated on TestInput, the
// paper's cross-input methodology (§V-A).

import (
	"time"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/branchnet"
	"github.com/whisper-sim/whisper/internal/mtage"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/rombf"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// Technique identifies one compared mechanism.
type Technique string

// The techniques of the paper's Figs 4/12/13.
const (
	Tech4bROMBF      Technique = "4b-ROMBF"
	Tech8bROMBF      Technique = "8b-ROMBF"
	TechBranchNet8   Technique = "8KB-BranchNet"
	TechBranchNet32  Technique = "32KB-BranchNet"
	TechBranchNetUnl Technique = "Unlimited-BranchNet"
	TechWhisper      Technique = "Whisper"
	TechMTAGE        Technique = "Unlimited-MTAGE-SC"
	TechIdeal        Technique = "Ideal-Branch-Predictor"
)

// PriorTechniques are the profile-guided baselines of Fig 4.
var PriorTechniques = []Technique{
	Tech4bROMBF, Tech8bROMBF, TechBranchNet8, TechBranchNet32, TechBranchNetUnl,
}

// AllTechniques is the Fig 12 set, in the figure's legend order.
var AllTechniques = []Technique{
	Tech4bROMBF, Tech8bROMBF, TechBranchNet8, TechBranchNet32, TechBranchNetUnl,
	TechWhisper, TechMTAGE, TechIdeal,
}

// Comparison holds per-app, per-technique results.
type Comparison struct {
	Apps       []string
	Techniques []Technique
	// Reduction and Speedup are fractions per technique per app.
	Reduction map[Technique][]float64
	Speedup   map[Technique][]float64
	// TrainTime is total offline training time per technique (the
	// profile-guided ones).
	TrainTime map[Technique]time.Duration
	// BaseMPKI is the 64KB TAGE-SC-L baseline per app on the test input.
	BaseMPKI []float64
}

// RunComparison trains and evaluates every requested technique. A nil
// techniques slice selects AllTechniques.
func RunComparison(opt Options, techniques []Technique) (*Comparison, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if techniques == nil {
		techniques = AllTechniques
	}
	want := map[Technique]bool{}
	for _, t := range techniques {
		want[t] = true
	}
	// Each app is one independent unit on the engine; results are merged
	// back in app order afterwards so tables match a sequential run.
	type appComparison struct {
		baseMPKI  float64
		reduction map[Technique]float64
		speedup   map[Technique]float64
		trainTime map[Technique]time.Duration
	}
	per, err := mapApps(opt, "comparison", func(ai int, app *workload.App, u *runner.Unit) (appComparison, error) {
		pa := appComparison{
			reduction: map[Technique]float64{},
			speedup:   map[Technique]float64{},
			trainTime: map[Technique]time.Duration{},
		}
		base := opt.runBaseline(app, opt.TestInput)
		u.AddInstrs(base.Instrs)
		u.AddRecords(base.Records)
		pa.baseMPKI = base.MPKI()
		record := func(t Technique, res pipeline.Result) {
			u.AddInstrs(res.Instrs)
			u.AddRecords(res.Records)
			pa.reduction[t] = sim.MispReduction(base, res)
			pa.speedup[t] = sim.Speedup(base, res)
		}

		trainStream := func() trace.Stream { return app.Stream(opt.TrainInput, opt.Records) }

		// Profiles: the Whisper/BranchNet profile uses the full length
		// series over hard branches; the ROMBF profile covers every
		// mispredicting branch at the raw 8-bit history (the original
		// methodology).
		var hardProf, rombfProf *profiler.Profile
		var err error
		if want[TechWhisper] || want[TechBranchNet8] || want[TechBranchNet32] || want[TechBranchNetUnl] {
			hardProf, err = opt.collectProfile(app, opt.TrainInput, opt.Records, 64, profiler.DefaultOptions())
			if err != nil {
				return pa, err
			}
		}
		if want[Tech4bROMBF] || want[Tech8bROMBF] {
			ropt := profiler.DefaultOptions()
			ropt.Lengths = []int{8}
			ropt.MaxHard = 0
			rombfProf, err = opt.collectProfile(app, opt.TrainInput, opt.Records, 64, ropt)
			if err != nil {
				return pa, err
			}
		}

		for _, n := range []int{4, 8} {
			t := Tech4bROMBF
			if n == 8 {
				t = Tech8bROMBF
			}
			if !want[t] {
				continue
			}
			cfg := rombf.DefaultConfig()
			cfg.N = n
			tr, err := rombf.Train(rombfProf, cfg)
			if err != nil {
				return pa, err
			}
			pa.trainTime[t] += tr.Duration
			pred := rombf.NewPredictor(tage.New(tage.DefaultConfig()), tr.Hints, n)
			record(t, sim.RunApp(app, opt.TestInput, opt.Records, pred, opt.popt()))
		}

		for _, v := range []struct {
			t    Technique
			name string
		}{
			{TechBranchNet8, "8KB"},
			{TechBranchNet32, "32KB"},
			{TechBranchNetUnl, "unlimited"},
		} {
			if !want[v.t] {
				continue
			}
			cfg, err := branchnet.Variant(v.name)
			if err != nil {
				return pa, err
			}
			tr, err := branchnet.Train(hardProf, trainStream, cfg)
			if err != nil {
				return pa, err
			}
			pa.trainTime[v.t] += tr.Duration
			pred := branchnet.NewPredictor(tage.New(tage.DefaultConfig()), tr.Models, v.name)
			record(v.t, sim.RunApp(app, opt.TestInput, opt.Records, pred, opt.popt()))
		}

		if want[TechWhisper] {
			b, err := opt.buildWhisper(app)
			if err != nil {
				return pa, err
			}
			pa.trainTime[TechWhisper] += b.Train.Duration
			res, _ := opt.runWhisper(b, app, opt.TestInput)
			record(TechWhisper, res)
		}
		if want[TechMTAGE] {
			record(TechMTAGE, sim.RunApp(app, opt.TestInput, opt.Records, mtage.New(), opt.popt()))
		}
		if want[TechIdeal] {
			record(TechIdeal, sim.RunApp(app, opt.TestInput, opt.Records, &bpu.Oracle{}, opt.popt()))
		}
		return pa, nil
	})
	if err != nil {
		return nil, err
	}

	c := &Comparison{
		Apps:       appNames(opt.Apps),
		Techniques: techniques,
		Reduction:  map[Technique][]float64{},
		Speedup:    map[Technique][]float64{},
		TrainTime:  map[Technique]time.Duration{},
	}
	for _, pa := range per {
		c.BaseMPKI = append(c.BaseMPKI, pa.baseMPKI)
		for _, t := range techniques {
			if red, ok := pa.reduction[t]; ok {
				c.Reduction[t] = append(c.Reduction[t], red)
				c.Speedup[t] = append(c.Speedup[t], pa.speedup[t])
			}
		}
		// Only trained techniques carry entries; summing per key keeps
		// untrained ones absent so TrainTimeTable skips them.
		for t, d := range pa.trainTime {
			c.TrainTime[t] += d
		}
	}
	return c, nil
}

// ReductionTable renders the misprediction-reduction comparison
// (Fig 13, or Fig 4 when run with PriorTechniques).
func (c *Comparison) ReductionTable(title string) *stats.Table {
	cols := []string{"app"}
	for _, t := range c.Techniques {
		cols = append(cols, string(t))
	}
	tb := stats.NewTable(title, cols...)
	for i, app := range c.Apps {
		cells := []string{app}
		for _, t := range c.Techniques {
			cells = append(cells, pct(c.Reduction[t][i]))
		}
		tb.AddRow(cells...)
	}
	cells := []string{"Avg"}
	for _, t := range c.Techniques {
		cells = append(cells, pct(stats.Mean(c.Reduction[t])))
	}
	tb.AddRow(cells...)
	return tb
}

// SpeedupTable renders the IPC-speedup comparison (Fig 12).
func (c *Comparison) SpeedupTable(title string) *stats.Table {
	cols := []string{"app"}
	for _, t := range c.Techniques {
		cols = append(cols, string(t))
	}
	tb := stats.NewTable(title, cols...)
	for i, app := range c.Apps {
		cells := []string{app}
		for _, t := range c.Techniques {
			cells = append(cells, pct(c.Speedup[t][i]))
		}
		tb.AddRow(cells...)
	}
	cells := []string{"Avg"}
	for _, t := range c.Techniques {
		cells = append(cells, pct(stats.Mean(c.Speedup[t])))
	}
	tb.AddRow(cells...)
	return tb
}

// TrainTimeTable renders Fig 16: total offline training time per
// technique across the configured apps (log-scale in the paper; raw
// seconds here).
func (c *Comparison) TrainTimeTable() *stats.Table {
	tb := stats.NewTable("Fig 16: offline training time (seconds, all apps)",
		"technique", "seconds")
	for _, t := range c.Techniques {
		if d, ok := c.TrainTime[t]; ok {
			tb.AddRow(string(t), stats.FormatFloat(d.Seconds(), 3))
		}
	}
	return tb
}

// Fig4 runs the prior-technique comparison (paper Fig 4).
func Fig4(opt Options) (*Comparison, error) {
	return RunComparison(opt, PriorTechniques)
}

// Fig12and13 runs the full comparison behind Figs 12, 13 and 16.
func Fig12and13(opt Options) (*Comparison, error) {
	return RunComparison(opt, AllTechniques)
}

// AvgReduction returns a technique's mean reduction.
func (c *Comparison) AvgReduction(t Technique) float64 { return stats.Mean(c.Reduction[t]) }

// AvgSpeedup returns a technique's mean speedup.
func (c *Comparison) AvgSpeedup(t Technique) float64 { return stats.Mean(c.Speedup[t]) }
