package experiments

// The imported-trace driver: the standard Whisper-vs-baseline
// evaluation, but over an external branch trace (decoded by
// internal/traceio) instead of a synthetic workload. External traces
// carry one fixed window, so train and test share it — the result is
// the paper's profile-window upper-bound framing, the same one
// `whisper -trace-file` prints. Profiles and trained bundles persist in
// the disk cache keyed by the trace's content fingerprint, so a warm
// rerun does no profiling or training work.

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
)

// ImportedTrace holds the evaluation of one external trace window.
type ImportedTrace struct {
	// Name labels the trace (typically the file's base name).
	Name string
	// Fingerprint is the trace's canonical content hash
	// (traceio.Fingerprint), also the disk-cache key component.
	Fingerprint string
	// Records is the window length; Static counts distinct
	// conditional-branch PCs.
	Records, Static int
	// Hard, Hints and Placed describe the offline pipeline's output.
	Hard, Hints, Placed int
	// Base and Whisper are the two measured runs over the window.
	Base, Whisper pipeline.Result
}

// RunImportedTrace profiles, trains and evaluates Whisper over one
// decoded external trace. The evaluation is a single journaled unit on
// the engine; the profile is disk-cached under the trace fingerprint
// and the trained bundle under the profile's content fingerprint.
func RunImportedTrace(opt Options, name string, recs []trace.Record) (*ImportedTrace, error) {
	opt = opt.normalize()
	// Typed rejection (traceio.ErrEmptyTrace / ErrNoConditionals under
	// errors.Is): an unsimulatable window almost always means a broken
	// export, and the caller should say so actionably.
	if err := traceio.CheckRecords(name, recs); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	static := 0
	{
		pcs := make(map[uint64]struct{})
		for i := range recs {
			if recs[i].Kind == trace.CondBranch {
				pcs[recs[i].PC] = struct{}{}
			}
		}
		static = len(pcs)
	}
	fp := traceio.Fingerprint(recs)

	out, err := runner.Map(opt.pool(), 1, func(_ int, u *runner.Unit) (*ImportedTrace, error) {
		u.Label = "import/" + name
		prof, err := opt.traceProfile(name, fp, recs)
		if err != nil {
			return nil, err
		}
		tr, err := opt.trainCached(prof, opt.Params)
		if err != nil {
			return nil, fmt.Errorf("experiments: training trace %s: %w", name, err)
		}
		bopt := sim.DefaultBuildOptions()
		bopt.Records = len(recs)
		bopt.Params = opt.Params
		b := sim.AssembleTraceHints(recs, tr, prof.Instrs, bopt)

		popt := pipeline.Options{
			Config:        opt.Pipeline,
			WarmupRecords: uint64(float64(len(recs)) * opt.WarmupFrac),
			BlockSize:     opt.BlockSize,
			Parallelism:   opt.SimParallelism,
			WindowSize:    opt.SimWindow,
		}
		base := sim.RunTrace(recs, sim.Tage64KB(), popt)
		res, _ := b.RunWhisperTrace(recs, sim.Tage64KB, popt)
		u.AddInstrs(base.Instrs + res.Instrs)
		u.AddRecords(base.Records + res.Records)
		return &ImportedTrace{
			Name:        name,
			Fingerprint: fp,
			Records:     len(recs),
			Static:      static,
			Hard:        len(prof.Hard),
			Hints:       len(tr.Hints),
			Placed:      b.Binary.Placed,
			Base:        base,
			Whisper:     res,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// traceProfile collects (or loads) the profile of an external trace
// window under the 64KB TAGE-SC-L, keyed on the trace's content
// fingerprint — two files with identical records share one cache entry
// regardless of format or name.
func (o Options) traceProfile(name, fp string, recs []trace.Record) (*profiler.Profile, error) {
	popt := profiler.DefaultOptions()
	diskKey := fmt.Sprintf("profile|v%d|trace=%s|tage=64KB|%s",
		store.FormatVersion, fp, profileOptKey(popt))
	if o.Cache != nil {
		if p, ok := o.Cache.LoadProfile(diskKey); ok {
			return p, nil
		}
	}
	bopt := sim.DefaultBuildOptions()
	bopt.Records = len(recs)
	bopt.Profiler = popt
	p, err := sim.ProfileTrace(recs, bopt)
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling trace %s: %w", name, err)
	}
	if o.Cache != nil {
		_ = o.Cache.SaveProfile(diskKey,
			store.Meta{App: "trace:" + name, Records: len(recs)}, p)
	}
	return p, nil
}

// Table renders the imported-trace evaluation as a metric/value table.
func (t *ImportedTrace) Table() *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("Imported trace %s: Whisper vs 64KB TAGE-SC-L on the profiled window", t.Name),
		"metric", "value")
	tb.AddRow("records", fmt.Sprintf("%d", t.Records))
	tb.AddRow("static cond branches", fmt.Sprintf("%d", t.Static))
	tb.AddRow("hard branches", fmt.Sprintf("%d", t.Hard))
	tb.AddRow("hints trained", fmt.Sprintf("%d", t.Hints))
	tb.AddRow("hints placed", fmt.Sprintf("%d", t.Placed))
	tb.AddRow("baseline MPKI", stats.FormatFloat(t.Base.MPKI(), 2))
	tb.AddRow("whisper MPKI", stats.FormatFloat(t.Whisper.MPKI(), 2))
	tb.AddRow("misprediction reduction", pct(sim.MispReduction(t.Base, t.Whisper))+"%")
	tb.AddRow("baseline IPC", stats.FormatFloat(t.Base.IPC(), 3))
	tb.AddRow("whisper IPC", stats.FormatFloat(t.Whisper.IPC(), 3))
	tb.AddRow("speedup", pct(sim.Speedup(t.Base, t.Whisper))+"%")
	tb.AddRow("trace fingerprint", t.Fingerprint[:12])
	return tb
}
