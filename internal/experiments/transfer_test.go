package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/traceio"
	"github.com/whisper-sim/whisper/internal/workload"
)

// transferOptions builds a small deterministic configuration with fresh
// app instances (the memos key on app identity, so fresh instances keep
// runs independent).
func transferOptions(records int, names ...string) Options {
	opt := Default()
	opt.Records = records
	opt.Parallelism = 2
	opt.Apps = nil
	for _, n := range names {
		opt.Apps = append(opt.Apps, workload.AppByName(n))
	}
	return opt
}

// TestTransferDiagonalMatchesComparison: the A->A diagonal of the
// transfer matrix must equal the single-workload comparison's Whisper
// column bit for bit — both are computed by the same memoized
// build/baseline/evaluate calls, and this locks that equivalence even
// when the two drivers run from cold state independently.
func TestTransferDiagonalMatchesComparison(t *testing.T) {
	names := []string{"mysql", "rpc-chain"}
	records := 20000

	resetMemos()
	cmp, err := RunComparison(transferOptions(records, names...), []Technique{TechWhisper})
	if err != nil {
		t.Fatal(err)
	}

	resetMemos()
	tr, err := RunTransfer(transferOptions(records, names...))
	if err != nil {
		t.Fatal(err)
	}

	for i, name := range names {
		want := cmp.Reduction[TechWhisper][i]
		got := tr.Reduction[i][i]
		if got != want {
			t.Errorf("%s: diagonal reduction %v != comparison %v", name, got, want)
		}
	}
	if tr.Apps[0] != "mysql" || tr.Apps[1] != "rpc-chain" {
		t.Fatalf("unexpected app order: %v", tr.Apps)
	}
}

// TestTransferOverlapProperties: both overlap matrices are symmetric,
// bounded to [0, 1], and 1 on the diagonal (exactly for the static
// Jaccard, within float tolerance for the dynamic histogram sum).
func TestTransferOverlapProperties(t *testing.T) {
	resetMemos()
	tr, err := RunTransfer(transferOptions(15000, "kafka", "gc-mark", "rpc-chain"))
	if err != nil {
		t.Fatal(err)
	}
	n := len(tr.Apps)
	for a := 0; a < n; a++ {
		if tr.StaticOverlap[a][a] != 1 {
			t.Errorf("static diagonal [%d][%d] = %v, want 1", a, a, tr.StaticOverlap[a][a])
		}
		if d := tr.DynamicOverlap[a][a]; d < 1-1e-9 || d > 1+1e-9 {
			t.Errorf("dynamic diagonal [%d][%d] = %v, want 1", a, a, d)
		}
		for b := 0; b < n; b++ {
			for name, m := range map[string][][]float64{"static": tr.StaticOverlap, "dynamic": tr.DynamicOverlap} {
				v := m[a][b]
				if v < 0 || v > 1+1e-9 {
					t.Errorf("%s overlap [%d][%d] = %v out of [0,1]", name, a, b, v)
				}
				if v != m[b][a] {
					t.Errorf("%s overlap asymmetric: [%d][%d]=%v, [%d][%d]=%v", name, a, b, v, b, a, m[b][a])
				}
			}
		}
	}
	// The apps deliberately share a code layout, so distinct workloads
	// should still overlap partially — a zero off-diagonal everywhere
	// would mean the metric (or the layout) broke.
	off := 0.0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				off += tr.StaticOverlap[a][b]
			}
		}
	}
	if off == 0 {
		t.Error("all off-diagonal static overlaps are zero")
	}
}

// TestTransferWarmRerun: against a warm cache directory the transfer
// study performs zero profiling and zero training work and reproduces
// the cold matrices exactly.
func TestTransferWarmRerun(t *testing.T) {
	dir := t.TempDir()
	pass := func() (store.CacheStats, *Transfer) {
		resetMemos()
		cache, err := store.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		opt := transferOptions(15000, "kafka", "interp-dispatch")
		opt.Cache = cache
		tr, err := RunTransfer(opt)
		if err != nil {
			t.Fatal(err)
		}
		return cache.Stats(), tr
	}

	coldStats, cold := pass()
	if coldStats.ProfileMisses != 2 || coldStats.TrainMisses != 2 {
		t.Fatalf("cold pass should miss once per train app: %+v", coldStats)
	}
	warmStats, warm := pass()
	if warmStats.ProfileMisses != 0 || warmStats.TrainMisses != 0 {
		t.Fatalf("warm pass recomputed profile/train work: %+v", warmStats)
	}
	if warmStats.ProfileHits == 0 || warmStats.TrainHits == 0 {
		t.Fatalf("warm pass never consulted the cache: %+v", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm transfer matrices differ from cold")
	}
}

// TestImportedTraceWarmRerun: the imported-trace driver caches its
// profile under the trace fingerprint and its trained bundle under the
// profile fingerprint, so a warm rerun is pure disk reads plus
// evaluation, and reproduces the cold result exactly.
func TestImportedTraceWarmRerun(t *testing.T) {
	app := workload.AppByName("rpc-chain")
	recs := trace.Collect(app.Stream(0, 4000), 4000)

	dir := t.TempDir()
	pass := func() (store.CacheStats, *ImportedTrace) {
		cache, err := store.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		opt := Default()
		opt.Cache = cache
		r, err := RunImportedTrace(opt, "synthetic.txt", recs)
		if err != nil {
			t.Fatal(err)
		}
		return cache.Stats(), r
	}

	coldStats, cold := pass()
	if coldStats.ProfileMisses != 1 || coldStats.TrainMisses != 1 {
		t.Fatalf("cold pass should miss exactly once: %+v", coldStats)
	}
	warmStats, warm := pass()
	if warmStats.ProfileMisses != 0 || warmStats.TrainMisses != 0 {
		t.Fatalf("warm pass recomputed profile/train work: %+v", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm imported-trace result differs from cold")
	}
	if cold.Static == 0 || cold.Base.CondMisp == 0 {
		t.Fatalf("degenerate evaluation: %+v", cold)
	}
}

// TestImportedTraceRejectsDegenerate: empty traces and traces without
// conditional branches are rejected with the typed traceio errors, so
// callers can dispatch on errors.Is instead of matching message text.
func TestImportedTraceRejectsDegenerate(t *testing.T) {
	_, err := RunImportedTrace(Default(), "empty", nil)
	if !errors.Is(err, traceio.ErrEmptyTrace) {
		t.Fatalf("empty trace: err = %v, want traceio.ErrEmptyTrace", err)
	}
	uncond := []trace.Record{
		{PC: 0x10, Target: 0x40, Kind: trace.Call, Taken: true, Instrs: 4},
		{PC: 0x44, Target: 0x14, Kind: trace.Return, Taken: true, Instrs: 4},
	}
	_, err = RunImportedTrace(Default(), "uncond", uncond)
	if !errors.Is(err, traceio.ErrNoConditionals) {
		t.Fatalf("cond-free trace: err = %v, want traceio.ErrNoConditionals", err)
	}
	// The message stays actionable (it tells the operator what to do),
	// not just typed.
	if !strings.Contains(err.Error(), "uncond") || !strings.Contains(err.Error(), "re-export") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}
