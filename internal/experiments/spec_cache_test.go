package experiments

import (
	"reflect"
	"testing"

	"github.com/whisper-sim/whisper/internal/spec"
	"github.com/whisper-sim/whisper/internal/store"
)

// loadScenario re-parses and re-compiles a spec from source, giving
// each pass a fresh *Scenario identity so the in-memory memos (keyed on
// that identity) start cold.
func loadScenario(t *testing.T, src string) *spec.Scenario {
	t.Helper()
	s, err := spec.Parse([]byte(src), "yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

const cacheSpecYAML = `
name: cache-check
seed: 11
records: 30000
mix:
  - app: mysql
    weight: 2
  - app: kafka
phases:
  - name: a
  - name: b
    input: 1
staleness:
  cadences: [0, 1]
`

// TestSpecDiskCacheWarmRerun extends the store's cross-process
// guarantee to spec-driven runs: because profiles are keyed by the
// spec's content hash (not the file path or the Scenario identity), a
// second process re-parsing the same spec performs zero profiling and
// zero training work, and reproduces the staleness tables exactly.
func TestSpecDiskCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	pass := func() (store.CacheStats, *SpecPhasesResult, *StalenessResult) {
		resetMemos()
		cache, err := store.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		sc := loadScenario(t, cacheSpecYAML)
		opt := Default()
		opt.Parallelism = 2
		opt.Cache = cache
		ph, err := SpecPhases(opt, sc)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Staleness(opt, sc)
		if err != nil {
			t.Fatal(err)
		}
		return cache.Stats(), ph, st
	}

	coldStats, coldPh, coldSt := pass()
	// One profile and one training per phase: the staleness cadences
	// {0, 1} over two phases only ever train at phases 0 and 1, which
	// the per-phase driver already computed.
	if coldStats.ProfileMisses != 2 || coldStats.TrainMisses != 2 {
		t.Fatalf("cold pass should miss once per phase: %+v", coldStats)
	}

	warmStats, warmPh, warmSt := pass()
	if warmStats.ProfileMisses != 0 || warmStats.TrainMisses != 0 {
		t.Fatalf("warm pass recomputed work: %+v", warmStats)
	}
	if warmStats.ProfileHits == 0 {
		t.Fatalf("warm pass never consulted the cache: %+v", warmStats)
	}
	if !reflect.DeepEqual(warmPh, coldPh) || !reflect.DeepEqual(warmSt, coldSt) {
		t.Fatal("warm results differ from cold results")
	}
}

// TestStalenessAnchors pins the driver's semantics: cadence 0 and 1 are
// always evaluated even when the spec requests neither, phase 0 is
// identical under every cadence (nothing is stale yet), and cadence 1
// matches the per-phase driver's fresh-trained MPKI on every phase.
func TestStalenessAnchors(t *testing.T) {
	sc := loadScenario(t, cacheSpecYAML)
	opt := Default()
	opt.Parallelism = 2
	st, err := Staleness(opt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cadences) < 2 || st.Cadences[0] != 0 || st.Cadences[1] != 1 {
		t.Fatalf("cadences missing anchors: %v", st.Cadences)
	}
	for _, c := range st.Cadences {
		if st.MPKI[c][0] != st.MPKI[0][0] {
			t.Fatalf("phase 0 differs between cadences: %v", st.MPKI)
		}
	}
	ph, err := SpecPhases(opt, sc)
	if err != nil {
		t.Fatal(err)
	}
	for p := range ph.Phases {
		if st.MPKI[1][p] != ph.WhisperMPKI[p] {
			t.Fatalf("cadence-1 MPKI %v != fresh per-phase MPKI %v", st.MPKI[1], ph.WhisperMPKI)
		}
	}
	if st.Recovery[1] != 1 {
		t.Fatalf("fresh cadence must recover 100%%, got %v", st.Recovery[1])
	}
}
