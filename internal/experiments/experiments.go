// Package experiments contains one driver per table and figure of the
// paper's evaluation (§II characterization and §V results). Each driver
// returns a typed result with a Table() rendering, so the CLI, the tests,
// and the benchmarks share the same code paths.
//
// Scale note: the paper simulates 100M-instruction Intel PT windows per
// application; drivers here default to workload.ScaleSmall (~400k records
// ≈ 2.3M instructions per app) so the whole suite runs on a laptop.
// EXPERIMENTS.md records paper-vs-measured values for every driver.
package experiments

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Scale selects the per-app record budget (default ScaleSmall).
	Scale workload.Scale
	// Records overrides the scale's record budget when positive.
	Records int
	// Apps overrides the application list (default: the 12 Table I
	// apps).
	Apps []*workload.App
	// WarmupFrac is the fraction of records used to warm predictors and
	// caches before measuring (default 0.3); the paper's scale amortizes
	// cold-start, ours needs the explicit window (see DESIGN.md).
	WarmupFrac float64
	// TrainInput and TestInput select the profile and evaluation inputs
	// (paper §V-A: optimize with one input, test with another).
	TrainInput, TestInput int
	// Pipeline overrides the machine model (zero value = Table II).
	Pipeline pipeline.Config
	// Params override Whisper's design parameters (zero = Table III).
	Params core.Params
}

// Default returns the standard configuration.
func Default() Options {
	return Options{
		Scale:      workload.ScaleSmall,
		WarmupFrac: 0.3,
		TrainInput: 0,
		TestInput:  1,
		Pipeline:   pipeline.DefaultConfig(),
		Params:     core.DefaultParams(),
	}
}

// normalize fills defaults in place and returns the options for chaining.
func (o Options) normalize() Options {
	if o.Apps == nil {
		o.Apps = workload.DataCenterApps()
	}
	if o.Records <= 0 {
		o.Records = o.Scale.Records()
	}
	if o.WarmupFrac <= 0 || o.WarmupFrac >= 1 {
		o.WarmupFrac = 0.3
	}
	if o.Pipeline.Width == 0 {
		o.Pipeline = pipeline.DefaultConfig()
	}
	if o.Params.NumLengths == 0 {
		o.Params = core.DefaultParams()
	}
	if o.TestInput == 0 && o.TrainInput == 0 {
		o.TestInput = 1
	}
	return o
}

// popt builds the pipeline options with the warm-up window.
func (o Options) popt() pipeline.Options {
	return pipeline.Options{
		Config:        o.Pipeline,
		WarmupRecords: uint64(float64(o.Records) * o.WarmupFrac),
	}
}

// runBaseline measures the 64KB TAGE-SC-L baseline for one app/input.
func (o Options) runBaseline(app *workload.App, input int) pipeline.Result {
	return sim.RunApp(app, input, o.Records, sim.Tage64KB(), o.popt())
}

// runIdeal measures the ideal direction predictor.
func (o Options) runIdeal(app *workload.App, input int) pipeline.Result {
	return sim.RunApp(app, input, o.Records, &bpu.Oracle{}, o.popt())
}

// appNames extracts names plus the trailing "Avg" label used by the
// paper's figures.
func appNames(apps []*workload.App) []string {
	names := make([]string, 0, len(apps)+1)
	for _, a := range apps {
		names = append(names, a.Name())
	}
	return names
}

// pct formats a fraction as "12.3".
func pct(frac float64) string { return stats.FormatFloat(frac*100, 1) }

// buildWhisper runs the end-to-end offline flow for one app under the
// experiment options.
func (o Options) buildWhisper(app *workload.App) (*sim.WhisperBuild, error) {
	bopt := sim.DefaultBuildOptions()
	bopt.TrainInput = o.TrainInput
	bopt.Records = o.Records
	bopt.Params = o.Params
	return sim.BuildWhisper(app, bopt)
}

// runWhisper measures a built Whisper binary on the test input.
func (o Options) runWhisper(b *sim.WhisperBuild, app *workload.App, input int) (pipeline.Result, *core.Runtime) {
	return b.RunWhisperWarm(app, input, o.Records, sim.Tage64KB, o.popt())
}

// checkApps validates the option's application list.
func (o Options) checkApps() error {
	if len(o.Apps) == 0 {
		return fmt.Errorf("experiments: no applications configured")
	}
	return nil
}
