// Package experiments contains one driver per table and figure of the
// paper's evaluation (§II characterization and §V results). Each driver
// returns a typed result with a Table() rendering, so the CLI, the tests,
// and the benchmarks share the same code paths.
//
// Scale note: the paper simulates 100M-instruction Intel PT windows per
// application; drivers here default to workload.ScaleSmall (~400k records
// ≈ 2.3M instructions per app) so the whole suite runs on a laptop.
// EXPERIMENTS.md records paper-vs-measured values for every driver.
package experiments

import (
	"fmt"
	"runtime"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Scale selects the per-app record budget (default ScaleSmall).
	Scale workload.Scale
	// Records overrides the scale's record budget when positive.
	Records int
	// Apps overrides the application list (default: the 12 Table I
	// apps).
	Apps []*workload.App
	// WarmupFrac is the fraction of records used to warm predictors and
	// caches before measuring (default 0.3); the paper's scale amortizes
	// cold-start, ours needs the explicit window (see DESIGN.md).
	WarmupFrac float64
	// TrainInput and TestInput select the profile and evaluation inputs
	// (paper §V-A: optimize with one input, test with another).
	TrainInput, TestInput int
	// Pipeline overrides the machine model (zero value = Table II).
	Pipeline pipeline.Config
	// Params override Whisper's design parameters (zero = Table III).
	Params core.Params
	// BlockSize selects the pipeline's record-block granularity: 0 runs
	// the batched engine at trace.DefaultBlockSize, positive values set
	// an explicit block size, negative forces the scalar reference loop
	// (the CLI's -block flag). Results are bit-identical at every
	// setting — locked by the engine's differential tests and the golden
	// files — so this is purely a performance/debugging knob.
	BlockSize int
	// SimParallelism > 1 runs each simulation on the windowed parallel
	// engine with that many goroutines (the CLI's -sim-j flag), and
	// SimWindow sets its window length in records (the -sim-window
	// flag, pipeline.DefaultWindowSize when 0). Within-trace
	// parallelism composes with the across-unit Parallelism below;
	// results are bit-identical at every setting, locked by the
	// windowed engine's differential tests.
	SimParallelism int
	SimWindow      int
	// Parallelism bounds how many simulation units run concurrently
	// (the CLI's -j flag). Zero means one worker per CPU. Results are
	// byte-identical at every setting: units derive their RNG streams
	// from (app, input) and land in pre-sized, index-addressed slices.
	Parallelism int
	// Monitor, when non-nil, observes every unit completion for the
	// live progress line and the -timing report.
	Monitor *runner.Monitor
	// Cache, when non-nil, persists profiles and trained hint bundles
	// across processes (the CLI's -cache flag). It layers under the
	// in-memory memos: a warm cache turns every profiling and training
	// computation of a rerun into a disk read.
	Cache *store.Cache
}

// Default returns the standard configuration.
func Default() Options {
	return Options{
		Scale:      workload.ScaleSmall,
		WarmupFrac: 0.3,
		TrainInput: 0,
		TestInput:  1,
		Pipeline:   pipeline.DefaultConfig(),
		Params:     core.DefaultParams(),
	}
}

// normalize fills defaults in place and returns the options for chaining.
func (o Options) normalize() Options {
	if o.Apps == nil {
		o.Apps = workload.DataCenterApps()
	}
	if o.Records <= 0 {
		o.Records = o.Scale.Records()
	}
	if o.WarmupFrac <= 0 || o.WarmupFrac >= 1 {
		o.WarmupFrac = 0.3
	}
	if o.Pipeline.Width == 0 {
		o.Pipeline = pipeline.DefaultConfig()
	}
	if o.Params.NumLengths == 0 {
		o.Params = core.DefaultParams()
	}
	if o.TestInput == 0 && o.TrainInput == 0 {
		o.TestInput = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// pool builds the execution engine for this run.
func (o Options) pool() *runner.Pool {
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &runner.Pool{Workers: workers, Monitor: o.Monitor}
}

// mapApps fans one unit per configured app out on the engine and
// collects the per-app results in app order, so tables render exactly as
// a sequential run would print them. phase labels the units in progress
// and timing reports.
func mapApps[T any](o Options, phase string, fn func(i int, app *workload.App, u *runner.Unit) (T, error)) ([]T, error) {
	return runner.Map(o.pool(), len(o.Apps), func(i int, u *runner.Unit) (T, error) {
		u.Label = phase + "/" + o.Apps[i].Name()
		return fn(i, o.Apps[i], u)
	})
}

// popt builds the pipeline options with the warm-up window.
func (o Options) popt() pipeline.Options {
	return pipeline.Options{
		Config:        o.Pipeline,
		WarmupRecords: uint64(float64(o.Records) * o.WarmupFrac),
		BlockSize:     o.BlockSize,
		Parallelism:   o.SimParallelism,
		WindowSize:    o.SimWindow,
	}
}

// baselineKey identifies one deterministic sized-TAGE-SC-L baseline run.
// Keying on the *App identity (not its name) keeps custom app instances
// from colliding; sharing across drivers therefore requires the caller
// to reuse one instantiated app set, which cmd/experiments does.
type baselineKey struct {
	app     *workload.App
	input   int
	records int
	warmup  uint64
	sizeKB  int
	pcfg    pipeline.Config
}

// baselineMemo caches baseline runs behind the engine: several drivers
// re-measure the identical TAGE-SC-L window (Figs 1 and 2 on the train
// input; Figs 12/13, 14, 15, 17, the ablations and the buffer sweep on
// the test input), and the result is a pure function of the key.
var baselineMemo runner.Memo[baselineKey, pipeline.Result]

// BaselineCacheStats reports the cross-driver baseline memo's hit and
// miss counts (surfaced by the CLI's -timing report).
func BaselineCacheStats() (hits, misses uint64) { return baselineMemo.Stats() }

// memoBaseline measures (or recalls) a sized TAGE-SC-L baseline over one
// (app, input) window. The predictor is always constructed through
// sim.TageSized, whose seed normalization makes sizeKB a complete
// description of the configuration.
// The engine knobs (block size, within-trace parallelism, window size)
// are not part of the key: the engines produce bit-identical results at
// every setting (locked by differential tests), so the memo may serve a
// result computed at any granularity.
func memoBaseline(app *workload.App, input, records int, warmup uint64, sizeKB int, pcfg pipeline.Config, eng Options) pipeline.Result {
	key := baselineKey{app: app, input: input, records: records, warmup: warmup, sizeKB: sizeKB, pcfg: pcfg}
	return baselineMemo.Do(key, func() pipeline.Result {
		popt := pipeline.Options{
			Config:        pcfg,
			WarmupRecords: warmup,
			BlockSize:     eng.BlockSize,
			Parallelism:   eng.SimParallelism,
			WindowSize:    eng.SimWindow,
		}
		return sim.RunApp(app, input, records, sim.TageSized(sizeKB)(), popt)
	})
}

// runBaseline measures the 64KB TAGE-SC-L baseline for one app/input.
func (o Options) runBaseline(app *workload.App, input int) pipeline.Result {
	return memoBaseline(app, input, o.Records,
		uint64(float64(o.Records)*o.WarmupFrac), 64, o.Pipeline, o)
}

// runIdeal measures the ideal direction predictor.
func (o Options) runIdeal(app *workload.App, input int) pipeline.Result {
	return sim.RunApp(app, input, o.Records, &bpu.Oracle{}, o.popt())
}

// appNames extracts the apps' display names in option order. The
// figures' trailing "Avg" label is NOT included: every Table() renderer
// appends its own Avg row after the per-app rows.
func appNames(apps []*workload.App) []string {
	names := make([]string, 0, len(apps))
	for _, a := range apps {
		names = append(names, a.Name())
	}
	return names
}

// pct formats a fraction as "12.3".
func pct(frac float64) string { return stats.FormatFloat(frac*100, 1) }

// --- profile / train / build caching ----------------------------------
//
// Three memo layers sit between the drivers and the offline pipeline.
// The in-memory memos (keyed on *App identity like baselineMemo) serve
// repeats within one process; the profile and train layers additionally
// consult Options.Cache, whose artifacts persist across processes. All
// keys describe their computation completely — profiles by (app, input,
// records, profiled-predictor size, profiler options), trained bundles
// by (profile content, params) — so a cache can never alias two
// different configurations.

// profileKey identifies one profiler.Collect run.
type profileKey struct {
	app     *workload.App
	input   int
	records int
	sizeKB  int
	popt    string
}

// profileOptKey canonicalizes profiler.Options for keying.
func profileOptKey(popt profiler.Options) string {
	return fmt.Sprintf("lengths=%v,minexecs=%d,minmisp=%d,minrate=%g,maxhard=%d,warmexecs=%d",
		popt.Lengths, popt.MinExecs, popt.MinMisp, popt.MinRate, popt.MaxHard, popt.WarmExecs)
}

type profileResult struct {
	p   *profiler.Profile
	err error
}

var profileMemo runner.Memo[profileKey, profileResult]

// buildKey identifies one full Whisper build. The baseline predictor is
// keyed by its TAGE size (constructed via sim.TageSized, so the size is
// a complete description); params are a comparable struct.
type buildKey struct {
	app     *workload.App
	input   int
	records int
	sizeKB  int
	params  core.Params
}

type buildResult struct {
	b   *sim.WhisperBuild
	err error
}

var buildMemo runner.Memo[buildKey, buildResult]

type trainKey struct {
	prof   *profiler.Profile
	params core.Params
}

type trainResult struct {
	tr  *core.TrainResult
	err error
}

var trainMemo runner.Memo[trainKey, trainResult]

// resetMemos clears every cross-driver memo. Tests use it to separate
// cold from warm passes; correctness never depends on memo state.
func resetMemos() {
	baselineMemo.Reset()
	profileMemo.Reset()
	trainMemo.Reset()
	buildMemo.Reset()
	resetSpecMemos()
}

// collectProfile collects (or recalls) a profile of app's (input,
// records) window under a sizeKB TAGE-SC-L, preferring the in-memory
// memo, then the disk cache, then computing.
func (o Options) collectProfile(app *workload.App, input, records, sizeKB int, popt profiler.Options) (*profiler.Profile, error) {
	optKey := profileOptKey(popt)
	key := profileKey{app: app, input: input, records: records, sizeKB: sizeKB, popt: optKey}
	r := profileMemo.Do(key, func() profileResult {
		diskKey := fmt.Sprintf("profile|v%d|app=%s|input=%d|records=%d|tage=%dKB|%s",
			store.FormatVersion, app.Name(), input, records, sizeKB, optKey)
		if o.Cache != nil {
			if p, ok := o.Cache.LoadProfile(diskKey); ok {
				return profileResult{p: p}
			}
		}
		p, err := profiler.Collect(func() trace.Stream { return app.Stream(input, records) },
			sim.TageSized(sizeKB)(), popt)
		if err != nil {
			return profileResult{err: fmt.Errorf("experiments: profiling %s: %w", app.Name(), err)}
		}
		if o.Cache != nil {
			// Persist failures degrade to an unpopulated cache, nothing more.
			_ = o.Cache.SaveProfile(diskKey,
				store.Meta{App: app.Name(), Input: input, Records: records}, p)
		}
		return profileResult{p: p}
	})
	return r.p, r.err
}

// trainCached trains (or loads) hints for a profile. The disk key is
// the profile's content fingerprint plus the params, so incrementally
// merged profiles (Fig 18) cache correctly at every merge level. No
// in-memory memo here: callers that mutate profiles between calls go
// through this directly, everything else through trainProfile.
func (o Options) trainCached(prof *profiler.Profile, params core.Params) (*core.TrainResult, error) {
	var diskKey string
	if o.Cache != nil {
		fp, err := store.Fingerprint(prof)
		if err == nil {
			diskKey = fmt.Sprintf("train|v%d|profile=%s|params=%+v", store.FormatVersion, fp, params)
			if tr, ok := o.Cache.LoadTrain(diskKey); ok {
				return tr, nil
			}
		}
	}
	tr, err := core.Train(prof, params)
	if err != nil {
		return nil, err
	}
	if diskKey != "" {
		_ = o.Cache.SaveTrain(diskKey, store.Meta{}, tr, prof.Instrs)
	}
	return tr, nil
}

// trainProfile memoizes trainCached by profile identity. Only safe for
// profiles that are never mutated after training (all cached/memoized
// profiles qualify).
func (o Options) trainProfile(prof *profiler.Profile, params core.Params) (*core.TrainResult, error) {
	r := trainMemo.Do(trainKey{prof: prof, params: params}, func() trainResult {
		tr, err := o.trainCached(prof, params)
		return trainResult{tr: tr, err: err}
	})
	return r.tr, r.err
}

// buildWhisperAt runs (or recalls) the staged offline flow — profile,
// train, assemble — for one app at an explicit input/records/baseline
// configuration.
func (o Options) buildWhisperAt(app *workload.App, trainInput, records, sizeKB int, params core.Params) (*sim.WhisperBuild, error) {
	key := buildKey{app: app, input: trainInput, records: records, sizeKB: sizeKB, params: params}
	r := buildMemo.Do(key, func() buildResult {
		prof, err := o.collectProfile(app, trainInput, records, sizeKB, profiler.DefaultOptions())
		if err != nil {
			return buildResult{err: err}
		}
		tr, err := o.trainProfile(prof, params)
		if err != nil {
			return buildResult{err: fmt.Errorf("experiments: training %s: %w", app.Name(), err)}
		}
		bopt := sim.DefaultBuildOptions()
		bopt.TrainInput = trainInput
		bopt.Records = records
		bopt.Params = params
		bopt.Baseline = sim.TageSized(sizeKB)
		return buildResult{b: sim.AssembleWhisper(app, prof, tr, bopt)}
	})
	return r.b, r.err
}

// buildWhisper runs the end-to-end offline flow for one app under the
// experiment options.
func (o Options) buildWhisper(app *workload.App) (*sim.WhisperBuild, error) {
	return o.buildWhisperAt(app, o.TrainInput, o.Records, 64, o.Params)
}

// runWhisper measures a built Whisper binary on the test input.
func (o Options) runWhisper(b *sim.WhisperBuild, app *workload.App, input int) (pipeline.Result, *core.Runtime) {
	return b.RunWhisperWarm(app, input, o.Records, sim.Tage64KB, o.popt())
}

// checkApps validates the option's application list.
func (o Options) checkApps() error {
	if len(o.Apps) == 0 {
		return fmt.Errorf("experiments: no applications configured")
	}
	return nil
}
