package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/workload"
)

// TestDiskCacheWarmRerun is the store's cross-process guarantee: a second
// run against a warm cache directory performs zero profiling and zero
// training work (every request is a disk hit), produces identical tables,
// and finishes in well under half the cold wall-clock. Fresh app
// instances and a memo reset between passes make the in-memory layer
// cold both times, so only the disk cache separates the two passes.
func TestDiskCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	pass := func() (time.Duration, store.CacheStats, *Fig7Result, *Fig19Result) {
		resetMemos()
		cache, err := store.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		opt := Default()
		opt.Records = 20000
		opt.Apps = []*workload.App{
			workload.DataCenterApp("mysql"),
			workload.DataCenterApp("kafka"),
		}
		opt.Parallelism = 2
		opt.Cache = cache
		start := time.Now()
		f7, err := Fig7(opt)
		if err != nil {
			t.Fatal(err)
		}
		f19, err := Fig19(opt)
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), cache.Stats(), f7, f19
	}

	coldDur, coldStats, coldF7, coldF19 := pass()
	if coldStats.ProfileMisses != 2 || coldStats.TrainMisses != 2 {
		t.Fatalf("cold pass should miss once per app: %+v", coldStats)
	}
	if coldStats.Rejected != 0 {
		t.Fatalf("cold pass rejected entries: %+v", coldStats)
	}

	warmDur, warmStats, warmF7, warmF19 := pass()
	if warmStats.ProfileMisses != 0 || warmStats.TrainMisses != 0 {
		t.Fatalf("warm pass recomputed work: %+v", warmStats)
	}
	if warmStats.ProfileHits == 0 || warmStats.TrainHits == 0 {
		t.Fatalf("warm pass never consulted the cache: %+v", warmStats)
	}
	if !reflect.DeepEqual(warmF7, coldF7) || !reflect.DeepEqual(warmF19, coldF19) {
		t.Fatal("warm results differ from cold results")
	}
	// The cached pass skips all profiling and formula search; only stream
	// replay for hint placement remains. 2x is a conservative floor (the
	// observed ratio is far larger), kept loose for noisy CI machines.
	if warmDur*2 > coldDur {
		t.Fatalf("warm pass too slow: cold=%v warm=%v", coldDur, warmDur)
	}
}
