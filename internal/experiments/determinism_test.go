package experiments

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/workload"
)

// renderAt runs a deterministic driver subset at the given parallelism
// and returns the concatenated table text. Wall-clock-bearing tables
// (Fig 15/16 training seconds) are deliberately excluded: their values
// depend on host timing, not on the schedule.
func renderAt(t *testing.T, parallelism int) string {
	t.Helper()
	opt := tinyOptions()
	opt.Parallelism = parallelism
	// Fresh app instances per run: the baseline memo keys on app
	// identity, so sharing instances across the two runs would recall
	// rather than recompute and weaken the test.
	opt.Apps = []*workload.App{
		workload.DataCenterApp("mysql"),
		workload.DataCenterApp("kafka"),
	}

	var out string
	r1, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	out += r1.Table().String()
	r2, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	out += r2.Table().String()
	r6, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	out += r6.Table().String()
	c, err := RunComparison(opt, []Technique{Tech8bROMBF, TechWhisper, TechIdeal})
	if err != nil {
		t.Fatal(err)
	}
	out += c.ReductionTable("reduction").String()
	out += c.SpeedupTable("speedup").String()
	return out
}

// TestParallelismDeterminism is the engine's core guarantee: -j 1 and
// -j 8 emit byte-identical tables, because every unit derives its RNG
// from (app, input) and results land in index-addressed slices.
func TestParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full drivers twice")
	}
	seq := renderAt(t, 1)
	par := renderAt(t, 8)
	if seq != par {
		t.Fatalf("tables differ between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("empty render")
	}
}
