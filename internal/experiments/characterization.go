package experiments

// Drivers for the paper's §II characterization: the limit study (Fig 1),
// the baseline MPKI (Fig 2), the misprediction taxonomy (Fig 3), the
// misprediction CDF contrast (Fig 5), and the history-length distribution
// (Fig 6).

import (
	"fmt"
	"sort"

	"github.com/whisper-sim/whisper/internal/classify"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// Fig1Result is the limit study: ideal-direction-predictor speedup over
// the 64KB TAGE-SC-L baseline, decomposed into avoided misprediction
// stalls and avoided frontend stalls (paper Fig 1).
type Fig1Result struct {
	Apps []string
	// Total, MispStall, FrontendStall are per-app speedup fractions.
	Total, MispStall, FrontendStall []float64
	// BaseMPKI / BaseIPC record the baseline for reuse (Fig 2).
	BaseMPKI, BaseIPC []float64
}

// Fig1 runs the limit study.
func Fig1(opt Options) (*Fig1Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	type fig1App struct {
		total, misp, fe, mpki, ipc float64
	}
	per, err := mapApps(opt, "fig1", func(i int, app *workload.App, u *runner.Unit) (fig1App, error) {
		base := opt.runBaseline(app, opt.TrainInput)
		ideal := opt.runIdeal(app, opt.TrainInput)
		u.AddInstrs(base.Instrs + ideal.Instrs)
		u.AddRecords(base.Records + ideal.Records)
		// Decomposition: cycles saved in each bucket relative to the
		// ideal run's cycle count (so the parts sum to the total).
		mispSaved := float64(base.SquashCycles) - float64(ideal.SquashCycles)
		feSaved := float64(base.FrontendCycles) - float64(ideal.FrontendCycles)
		return fig1App{
			total: sim.Speedup(base, ideal),
			misp:  mispSaved / float64(ideal.Cycles),
			fe:    feSaved / float64(ideal.Cycles),
			mpki:  base.MPKI(),
			ipc:   base.IPC(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &Fig1Result{Apps: appNames(opt.Apps)}
	for _, pa := range per {
		r.Total = append(r.Total, pa.total)
		r.MispStall = append(r.MispStall, pa.misp)
		r.FrontendStall = append(r.FrontendStall, pa.fe)
		r.BaseMPKI = append(r.BaseMPKI, pa.mpki)
		r.BaseIPC = append(r.BaseIPC, pa.ipc)
	}
	return r, nil
}

// Table renders the figure's series.
func (r *Fig1Result) Table() *stats.Table {
	t := stats.NewTable(
		"Fig 1: ideal branch predictor speedup over 64KB TAGE-SC-L (%)",
		"app", "misprediction-stalls", "frontend-stalls", "total")
	for i, app := range r.Apps {
		t.AddRow(app, pct(r.MispStall[i]), pct(r.FrontendStall[i]), pct(r.Total[i]))
	}
	t.AddRow("Avg", pct(stats.Mean(r.MispStall)), pct(stats.Mean(r.FrontendStall)),
		pct(stats.Mean(r.Total)))
	return t
}

// Fig2Result is the per-app baseline branch-MPKI (paper Fig 2).
type Fig2Result struct {
	Apps []string
	MPKI []float64
}

// Fig2 measures baseline MPKI.
func Fig2(opt Options) (*Fig2Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	mpki, err := mapApps(opt, "fig2", func(i int, app *workload.App, u *runner.Unit) (float64, error) {
		base := opt.runBaseline(app, opt.TrainInput)
		u.AddInstrs(base.Instrs)
		u.AddRecords(base.Records)
		return base.MPKI(), nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Apps: appNames(opt.Apps), MPKI: mpki}, nil
}

// Table renders the figure.
func (r *Fig2Result) Table() *stats.Table {
	t := stats.NewTable("Fig 2: branch-MPKI under 64KB TAGE-SC-L", "app", "MPKI")
	for i, app := range r.Apps {
		t.AddRow(app, stats.FormatFloat(r.MPKI[i], 2))
	}
	t.AddRow("Avg", stats.FormatFloat(stats.Mean(r.MPKI), 2))
	return t
}

// Fig3Result is the misprediction class breakdown (paper Fig 3).
type Fig3Result struct {
	Apps []string
	// Fractions[app][class] with classes indexed by classify.Class.
	Fractions [][4]float64
}

// Fig3 classifies every baseline misprediction.
func Fig3(opt Options) (*Fig3Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	fractions, err := mapApps(opt, "fig3", func(i int, app *workload.App, u *runner.Unit) ([4]float64, error) {
		counts := classify.DefaultClassifier().Run(
			app.Stream(opt.TrainInput, opt.Records), tage.New(tage.DefaultConfig()))
		var fr [4]float64
		for c := classify.Compulsory; c <= classify.DataDependent; c++ {
			fr[int(c)] = counts.Fraction(c)
		}
		return fr, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Apps: appNames(opt.Apps), Fractions: fractions}, nil
}

// Table renders the figure.
func (r *Fig3Result) Table() *stats.Table {
	t := stats.NewTable("Fig 3: breakdown of branch mispredictions (%)",
		"app", "Compulsory", "Capacity", "Conflict", "Conditional-on-data")
	var avg [4]float64
	for i, app := range r.Apps {
		f := r.Fractions[i]
		t.AddRow(app, pct(f[0]), pct(f[1]), pct(f[2]), pct(f[3]))
		for k := range avg {
			avg[k] += f[k]
		}
	}
	n := float64(len(r.Apps))
	t.AddRow("Avg", pct(avg[0]/n), pct(avg[1]/n), pct(avg[2]/n), pct(avg[3]/n))
	return t
}

// Fig5Result contrasts misprediction concentration: how many static
// branches cover given shares of all mispredictions (paper Fig 5).
type Fig5Result struct {
	Apps []string
	// Branches is the number of static branches with >= 1 misprediction.
	Branches []int
	// NeededFor[i][k] is the branch count covering {25,50,75,90}% of
	// mispredictions for app i.
	NeededFor [][4]int
	// Top50Share is the misprediction share of the top 50 branches.
	Top50Share []float64
}

// Fig5Quantiles are the CDF points reported by the driver.
var Fig5Quantiles = [4]float64{0.25, 0.50, 0.75, 0.90}

// Fig5 computes the misprediction CDF statistics for the given apps
// (callers pass data-center and SPEC-like app sets separately to
// reproduce the figure's two panels).
func Fig5(opt Options) (*Fig5Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	type fig5App struct {
		branches int
		needed   [4]int
		top50    float64
	}
	per, err := mapApps(opt, "fig5", func(ai int, app *workload.App, u *runner.Unit) (fig5App, error) {
		misp := map[uint64]uint64{}
		pred := tage.New(tage.DefaultConfig())
		s := app.Stream(opt.TrainInput, opt.Records)
		var rec trace.Record
		var total uint64
		for s.Next(&rec) {
			u.AddInstrs(uint64(rec.Instrs))
			u.AddRecords(1)
			if rec.Kind != trace.CondBranch {
				continue
			}
			if pred.Predict(rec.PC) != rec.Taken {
				misp[rec.PC]++
				total++
			}
			pred.Update(rec.PC, rec.Taken)
		}
		counts := make([]uint64, 0, len(misp))
		for _, c := range misp {
			counts = append(counts, c)
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		var needed [4]int
		var cum uint64
		qi := 0
		var top50 uint64
		for i, c := range counts {
			cum += c
			if i < 50 {
				top50 += c
			}
			for qi < len(Fig5Quantiles) && float64(cum) >= Fig5Quantiles[qi]*float64(total) {
				needed[qi] = i + 1
				qi++
			}
		}
		for ; qi < len(Fig5Quantiles); qi++ {
			needed[qi] = len(counts)
		}
		share := 0.0
		if total > 0 {
			share = float64(top50) / float64(total)
		}
		return fig5App{branches: len(counts), needed: needed, top50: share}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &Fig5Result{Apps: appNames(opt.Apps)}
	for _, pa := range per {
		r.Branches = append(r.Branches, pa.branches)
		r.NeededFor = append(r.NeededFor, pa.needed)
		r.Top50Share = append(r.Top50Share, pa.top50)
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig5Result) Table() *stats.Table {
	t := stats.NewTable(
		"Fig 5: misprediction CDF across static branches (branches needed per share)",
		"app", "mispredicting branches", "25%", "50%", "75%", "90%", "top-50 share %")
	for i, app := range r.Apps {
		n := r.NeededFor[i]
		t.AddRow(app, fmt.Sprintf("%d", r.Branches[i]),
			fmt.Sprintf("%d", n[0]), fmt.Sprintf("%d", n[1]),
			fmt.Sprintf("%d", n[2]), fmt.Sprintf("%d", n[3]),
			pct(r.Top50Share[i]))
	}
	return t
}

// Fig6Buckets are the history-length buckets of the paper's Fig 6.
var Fig6Buckets = []struct {
	Label    string
	Min, Max int
}{
	{"1-8", 1, 8}, {"9-16", 9, 16}, {"17-32", 17, 32}, {"33-64", 33, 64},
	{"65-128", 65, 128}, {"129-256", 129, 256}, {"257-512", 257, 512},
	{"513-1024", 513, 1024}, {"1024+", 1025, 1 << 30},
}

// Fig6Result distributes baseline mispredictions among the history
// lengths required to predict the branch (paper Fig 6). The required
// length comes from the workload's ground truth: loops need their trip
// count, short-history branches their window, hashed-history branches
// their fold window; data-dependent branches correlate with no history
// and land in the 1024+ bucket.
type Fig6Result struct {
	Apps []string
	// Shares[app][bucket] are misprediction fractions.
	Shares [][]float64
}

// Fig6 computes the distribution.
func Fig6(opt Options) (*Fig6Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	warmup := uint64(float64(opt.Records) * opt.WarmupFrac)
	allShares, err := mapApps(opt, "fig6", func(ai int, app *workload.App, u *runner.Unit) ([]float64, error) {
		pred := tage.New(tage.DefaultConfig())
		s := app.Stream(opt.TrainInput, opt.Records)
		var rec trace.Record
		shares := make([]float64, len(Fig6Buckets))
		var total float64
		var seen uint64
		for s.Next(&rec) {
			u.AddInstrs(uint64(rec.Instrs))
			u.AddRecords(1)
			seen++
			if rec.Kind != trace.CondBranch {
				continue
			}
			misp := pred.Predict(rec.PC) != rec.Taken
			pred.Update(rec.PC, rec.Taken)
			if !misp || seen <= warmup {
				continue
			}
			br, ok := app.Branch(rec.PC)
			if !ok {
				continue
			}
			l := requiredLength(br)
			for bi, b := range Fig6Buckets {
				if l >= b.Min && l <= b.Max {
					shares[bi]++
					break
				}
			}
			total++
		}
		if total > 0 {
			for i := range shares {
				shares[i] /= total
			}
		}
		return shares, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Apps: appNames(opt.Apps), Shares: allShares}, nil
}

// requiredLength maps a ground-truth behaviour to the history depth a
// predictor must correlate with.
func requiredLength(br workload.Branch) int {
	switch br.Class {
	case workload.Loop:
		return br.Trip + 1
	case workload.ShortHist:
		return br.MonoN
	case workload.LongHist, workload.ComplexHist:
		return br.HistLen
	case workload.Biased:
		return 1
	default: // DataDep: no history length predicts it
		return 1 << 20
	}
}

// Table renders the figure.
func (r *Fig6Result) Table() *stats.Table {
	cols := []string{"app"}
	for _, b := range Fig6Buckets {
		cols = append(cols, b.Label)
	}
	t := stats.NewTable("Fig 6: mispredictions by required history length (%)", cols...)
	avg := make([]float64, len(Fig6Buckets))
	for i, app := range r.Apps {
		cells := []string{app}
		for bi, v := range r.Shares[i] {
			cells = append(cells, pct(v))
			avg[bi] += v
		}
		t.AddRow(cells...)
	}
	cells := []string{"Avg"}
	for _, v := range avg {
		cells = append(cells, pct(v/float64(len(r.Apps))))
	}
	t.AddRow(cells...)
	return t
}
