package experiments

import (
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/workload"
)

// tinyOptions keeps experiment tests fast: two contrasting apps, a small
// record budget.
func tinyOptions() Options {
	opt := Default()
	opt.Records = 60000
	opt.Apps = []*workload.App{
		workload.DataCenterApp("mysql"),
		workload.DataCenterApp("kafka"),
	}
	return opt
}

func TestTableI(t *testing.T) {
	tb := TableI()
	if len(tb.Rows) != 12 {
		t.Fatalf("Table I has %d rows", len(tb.Rows))
	}
	s := tb.String()
	for _, want := range []string{"mysql", "TPC-C", "python", "pyperformance"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	s := TableII(Default()).String()
	for _, want := range []string{"6-wide", "FTQ", "TAGE-SC-L", "BTB", "RAS"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table II missing %q", want)
		}
	}
}

func TestTableIII(t *testing.T) {
	s := TableIII(Default()).String()
	for _, want := range []string{"Minimum history length", "8", "1024", "16", "Hint buffer"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table III missing %q", want)
		}
	}
}

func TestFig1LimitStudy(t *testing.T) {
	r, err := Fig1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("apps %v", r.Apps)
	}
	for i, app := range r.Apps {
		if r.Total[i] <= 0 {
			t.Fatalf("%s: ideal speedup %v not positive", app, r.Total[i])
		}
		if r.MispStall[i] <= 0 {
			t.Fatalf("%s: misprediction-stall component %v", app, r.MispStall[i])
		}
		if r.MispStall[i] < r.FrontendStall[i] {
			t.Fatalf("%s: frontend component exceeds misprediction component", app)
		}
		sum := r.MispStall[i] + r.FrontendStall[i]
		if sum < r.Total[i]*0.9 || sum > r.Total[i]*1.1 {
			t.Fatalf("%s: components %.4f do not sum to total %.4f", app, sum, r.Total[i])
		}
	}
	if !strings.Contains(r.Table().String(), "Avg") {
		t.Fatal("table missing Avg row")
	}
}

func TestFig2MPKIBand(t *testing.T) {
	r, err := Fig2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// mysql is a hard app, kafka an easy one; both must sit in a broad
	// version of the paper's 0.5-7.2 band and order correctly.
	if r.MPKI[0] <= r.MPKI[1] {
		t.Fatalf("mysql MPKI %v not above kafka %v", r.MPKI[0], r.MPKI[1])
	}
	for i, m := range r.MPKI {
		if m < 0.2 || m > 12 {
			t.Fatalf("%s MPKI %v outside plausible band", r.Apps[i], m)
		}
	}
}

func TestFig3CapacityDominant(t *testing.T) {
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1] // mysql only; classification is the slow path
	r, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Fractions[0]
	total := f[0] + f[1] + f[2] + f[3]
	if total < 0.99 || total > 1.01 {
		t.Fatalf("fractions sum %v", total)
	}
	// Capacity must dominate (paper Fig 3: 76.4% average).
	if f[1] < f[0] || f[1] < f[2] || f[1] < f[3] {
		t.Fatalf("capacity not dominant: %v", f)
	}
}

func TestFig5Concentration(t *testing.T) {
	opt := tinyOptions()
	opt.Apps = []*workload.App{
		workload.DataCenterApp("mysql"),
		workload.SpecApps()[0],
	}
	r, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	// SPEC-like top-50 share must exceed the data-center app's.
	if r.Top50Share[1] <= r.Top50Share[0] {
		t.Fatalf("spec top-50 %v not above DC %v", r.Top50Share[1], r.Top50Share[0])
	}
	for i := range r.Apps {
		n := r.NeededFor[i]
		if !(n[0] <= n[1] && n[1] <= n[2] && n[2] <= n[3]) {
			t.Fatalf("CDF points not monotone: %v", n)
		}
	}
}

func TestFig6LongHistoriesMatter(t *testing.T) {
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1]
	r, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares[0]
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("shares sum %v", sum)
	}
	// Paper Fig 6: a large share of mispredictions requires history
	// beyond 32 branches (buckets 33-64 and up).
	beyond32 := 0.0
	for bi, b := range Fig6Buckets {
		if b.Min >= 33 {
			beyond32 += shares[bi]
		}
	}
	if beyond32 < 0.2 {
		t.Fatalf("only %v of mispredictions need >32 history", beyond32)
	}
}

func TestFig4PriorTechniquesModest(t *testing.T) {
	if testing.Short() {
		t.Skip("trains BranchNet variants")
	}
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1] // mysql
	c, err := Fig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range PriorTechniques {
		if len(c.Reduction[tech]) != 1 {
			t.Fatalf("%s missing results", tech)
		}
	}
	// Prior techniques reduce something but far less than everything
	// (paper Fig 4: 3.4%-11.9%).
	if c.AvgReduction(Tech8bROMBF) <= -0.05 {
		t.Fatalf("8b-ROMBF reduction %v implausibly negative", c.AvgReduction(Tech8bROMBF))
	}
	if c.AvgReduction(Tech8bROMBF) > 0.5 {
		t.Fatalf("8b-ROMBF reduction %v implausibly high", c.AvgReduction(Tech8bROMBF))
	}
}

func TestFig12and13Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	opt := tinyOptions()
	opt.Records = 250000    // enough profile mass per branch for stable hints
	opt.Apps = opt.Apps[:1] // mysql
	c, err := Fig12and13(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline ordering: ideal >= MTAGE >= Whisper >= prior.
	ideal := c.AvgReduction(TechIdeal)
	mt := c.AvgReduction(TechMTAGE)
	wh := c.AvgReduction(TechWhisper)
	ro := c.AvgReduction(Tech8bROMBF)
	if ideal != 1 {
		t.Fatalf("ideal reduction %v, want 1", ideal)
	}
	if !(mt > wh) {
		t.Fatalf("MTAGE (%v) not above Whisper (%v)", mt, wh)
	}
	if !(wh > ro) {
		t.Fatalf("Whisper (%v) not above 8b-ROMBF (%v)", wh, ro)
	}
	if wh <= 0.05 {
		t.Fatalf("Whisper reduction %v too small", wh)
	}
	// Speedup ordering follows.
	if c.AvgSpeedup(TechWhisper) <= c.AvgSpeedup(Tech8bROMBF) {
		t.Fatalf("Whisper speedup %v not above ROMBF %v",
			c.AvgSpeedup(TechWhisper), c.AvgSpeedup(Tech8bROMBF))
	}
	// Training time recorded for all trained techniques.
	for _, tech := range []Technique{Tech4bROMBF, Tech8bROMBF, TechWhisper, TechBranchNetUnl} {
		if c.TrainTime[tech] <= 0 {
			t.Fatalf("%s train time missing", tech)
		}
	}
	// Tables render.
	for _, tb := range []string{
		c.ReductionTable("r").String(),
		c.SpeedupTable("s").String(),
		c.TrainTimeTable().String(),
	} {
		if !strings.Contains(tb, "Whisper") {
			t.Fatal("table missing Whisper column")
		}
	}
}

func TestFig7OperationMix(t *testing.T) {
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1]
	r, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares[0]
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestFig15MoreExplorationMoreTime(t *testing.T) {
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1]
	r, err := Fig15(opt, []float64{0.001, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reduction[1] < r.Reduction[0]-0.02 {
		t.Fatalf("more exploration reduced less: %v", r.Reduction)
	}
	if r.TrainSeconds[1] <= r.TrainSeconds[0] {
		t.Fatalf("more exploration was not slower: %v", r.TrainSeconds)
	}
}

func TestFig19Overhead(t *testing.T) {
	opt := tinyOptions()
	r, err := Fig19(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range r.Apps {
		if r.Static[i] < 0 || r.Static[i] > 0.5 {
			t.Fatalf("%s static overhead %v", app, r.Static[i])
		}
		if r.Dynamic[i] < 0 || r.Dynamic[i] > 0.5 {
			t.Fatalf("%s dynamic overhead %v", app, r.Dynamic[i])
		}
		if r.Placed[i] == 0 {
			t.Fatalf("%s placed no hints", app)
		}
	}
}

func TestFig21SmallerPredictorsMoreReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("size sweep is slow")
	}
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1]
	r, err := Fig21(opt, []int{8, 1024})
	if err != nil {
		t.Fatal(err)
	}
	// A smaller baseline leaves more mispredictions on the table; MPKI
	// must be higher at 8KB and Whisper must still help at 1MB (paper:
	// >10% at every size).
	if r.BaseMPKI[0] <= r.BaseMPKI[1] {
		t.Fatalf("8KB MPKI %v not above 1MB %v", r.BaseMPKI[0], r.BaseMPKI[1])
	}
	if r.Reduction[1] <= 0 {
		t.Fatalf("no reduction at 1MB: %v", r.Reduction)
	}
}

func TestFig22WarmupSweep(t *testing.T) {
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1]
	r, err := Fig22(opt, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i, red := range r.Reduction {
		if red <= 0 {
			t.Fatalf("reduction at warmup %v is %v", r.WarmupFracs[i], red)
		}
	}
}

func TestFig23WindowSweep(t *testing.T) {
	opt := tinyOptions()
	opt.Apps = opt.Apps[:1]
	r, err := Fig23(opt, []int{40000, 80000})
	if err != nil {
		t.Fatal(err)
	}
	for i, red := range r.Reduction {
		if red <= 0 {
			t.Fatalf("reduction at %d records is %v", r.Records[i], red)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	opt := Options{Apps: []*workload.App{}}
	opt.Apps = []*workload.App{}
	// normalize replaces empty Apps with the full set only when nil;
	// empty must error via checkApps.
	if err := (Options{Apps: []*workload.App{}}).checkApps(); err == nil {
		t.Fatal("empty app list accepted")
	}
}

func TestFig17SameInputAtLeastCross(t *testing.T) {
	if testing.Short() {
		t.Skip("trains Whisper per input")
	}
	opt := tinyOptions()
	opt.Records = 120000
	opt.Apps = opt.Apps[:1]
	r, err := Fig17(opt, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	cross, same := r.CrossInput[0][0], r.SameInput[0][0]
	// Same-input profiles must not be meaningfully worse than
	// cross-input ones (paper: +6.6% better on average).
	if same < cross-0.05 {
		t.Fatalf("same-input %v far below cross-input %v", same, cross)
	}
	if !strings.Contains(r.Table().String(), "#1") {
		t.Fatal("table missing input label")
	}
}

func TestFig18MergingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("merges multiple profiles")
	}
	opt := tinyOptions()
	opt.Records = 80000
	opt.Apps = opt.Apps[:1]
	r, err := Fig18(opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	wh := r.Reduction[TechWhisper]
	if len(wh) != 2 {
		t.Fatalf("input counts %v", r.InputCounts)
	}
	// Merging a second input's profile must not collapse the reduction.
	if wh[1] < wh[0]-0.05 {
		t.Fatalf("merged profile much worse: %v", wh)
	}
	// Whisper beats 8b-ROMBF at every merge level.
	for i := range wh {
		if wh[i] <= r.Reduction[Tech8bROMBF][i] {
			t.Fatalf("whisper %v not above rombf %v at %d inputs",
				wh[i], r.Reduction[Tech8bROMBF][i], r.InputCounts[i])
		}
	}
}

func TestFig20LargerBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds whisper against 128KB baseline")
	}
	opt := tinyOptions()
	opt.Records = 120000
	opt.Apps = opt.Apps[:1]
	r, err := Fig20(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reduction[0] <= 0 {
		t.Fatalf("no reduction over 128KB baseline: %v", r.Reduction)
	}
	if r.BaseMPKI[0] <= 0 {
		t.Fatal("baseline MPKI missing")
	}
}

func TestFig14AblationContributions(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three whisper variants")
	}
	opt := tinyOptions()
	opt.Records = 120000
	opt.Apps = opt.Apps[:1]
	r, err := Fig14(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Hashed history correlation is the larger contribution (paper:
	// 6.4% vs 1.5%); at minimum it must be positive.
	if r.HashedHistory[0] <= 0 {
		t.Fatalf("hashed-history contribution %v not positive", r.HashedHistory[0])
	}
}

func TestBufferSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps buffer sizes")
	}
	opt := tinyOptions()
	opt.Records = 100000
	opt.Apps = opt.Apps[:1]
	r, err := BufferSweep(opt, []int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	// The 32-entry default must not be meaningfully worse than 1 entry,
	// and the hit rate must not decrease with capacity.
	if r.Reduction[1] < r.Reduction[0]-0.02 {
		t.Fatalf("32-entry buffer worse: %v", r.Reduction)
	}
	if r.HitRate[1] < r.HitRate[0] {
		t.Fatalf("hit rate decreased with capacity: %v", r.HitRate)
	}
}

func TestAblationsPoliciesHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three whisper variants")
	}
	opt := tinyOptions()
	opt.Records = 120000
	opt.Apps = opt.Apps[:1]
	r, err := Ablations(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The validation split exists to protect cross-input robustness: the
	// full design must not be meaningfully worse than the ablations, and
	// all three must be recorded.
	if len(r.Full) != 1 || len(r.NoSuppression) != 1 || len(r.NoValidation) != 1 {
		t.Fatal("missing ablation results")
	}
	if r.Full[0] <= 0 {
		t.Fatalf("full design reduction %v", r.Full[0])
	}
	if !strings.Contains(r.Table().String(), "no-validation-split") {
		t.Fatal("ablation table incomplete")
	}
}
