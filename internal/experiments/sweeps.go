package experiments

// Sensitivity sweeps: larger baseline (Fig 20), predictor size (Fig 21),
// warm-up fraction (Fig 22), and simulated window length (Fig 23).

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
)

// whisperReductionWith builds Whisper against the given baseline budget
// and returns per-app reductions on the test input.
func whisperReductionWith(opt Options, sizeKB int, records int, warmupFrac float64) ([]float64, []float64, error) {
	var reds, mpkis []float64
	factory := sim.TageSized(sizeKB)
	for _, app := range opt.Apps {
		bopt := sim.DefaultBuildOptions()
		bopt.TrainInput = opt.TrainInput
		bopt.Records = records
		bopt.Params = opt.Params
		bopt.Baseline = factory
		b, err := sim.BuildWhisper(app, bopt)
		if err != nil {
			return nil, nil, err
		}
		popt := pipeline.Options{
			Config:        opt.Pipeline,
			WarmupRecords: uint64(float64(records) * warmupFrac),
		}
		base := sim.RunApp(app, opt.TestInput, records, factory(), popt)
		res, _ := b.RunWhisperWarm(app, opt.TestInput, records, factory, popt)
		reds = append(reds, sim.MispReduction(base, res))
		mpkis = append(mpkis, base.MPKI())
	}
	return reds, mpkis, nil
}

// Fig20Result is Whisper against a 128KB TAGE-SC-L baseline (paper
// Fig 20).
type Fig20Result struct {
	Apps      []string
	Reduction []float64
	BaseMPKI  []float64
}

// Fig20 runs the 128KB-baseline study.
func Fig20(opt Options) (*Fig20Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	reds, mpkis, err := whisperReductionWith(opt, 128, opt.Records, opt.WarmupFrac)
	if err != nil {
		return nil, err
	}
	return &Fig20Result{Apps: appNames(opt.Apps), Reduction: reds, BaseMPKI: mpkis}, nil
}

// Table renders the figure.
func (r *Fig20Result) Table() *stats.Table {
	t := stats.NewTable("Fig 20: misprediction reduction over 128KB TAGE-SC-L (%)",
		"app", "reduction", "baseline MPKI")
	for i, app := range r.Apps {
		t.AddRow(app, pct(r.Reduction[i]), stats.FormatFloat(r.BaseMPKI[i], 2))
	}
	t.AddRow("Avg", pct(stats.Mean(r.Reduction)), stats.FormatFloat(stats.Mean(r.BaseMPKI), 2))
	return t
}

// Fig21Sizes is the predictor-size sweep of the paper's Fig 21.
var Fig21Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024}

// Fig21Result sweeps the baseline predictor budget.
type Fig21Result struct {
	SizesKB   []int
	Reduction []float64 // mean across apps per size
	BaseMPKI  []float64
}

// Fig21 runs the sweep.
func Fig21(opt Options, sizes []int) (*Fig21Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if sizes == nil {
		sizes = Fig21Sizes
	}
	r := &Fig21Result{SizesKB: sizes}
	for _, kb := range sizes {
		reds, mpkis, err := whisperReductionWith(opt, kb, opt.Records, opt.WarmupFrac)
		if err != nil {
			return nil, err
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
		r.BaseMPKI = append(r.BaseMPKI, stats.Mean(mpkis))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig21Result) Table() *stats.Table {
	t := stats.NewTable("Fig 21: avg reduction vs baseline predictor size",
		"size", "avg reduction %", "avg baseline MPKI")
	for i, kb := range r.SizesKB {
		t.AddRow(fmt.Sprintf("%dKB", kb), pct(r.Reduction[i]),
			stats.FormatFloat(r.BaseMPKI[i], 2))
	}
	return t
}

// Fig22Fracs is the warm-up sweep of the paper's Fig 22.
var Fig22Fracs = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// Fig22Result sweeps the warm-up fraction.
type Fig22Result struct {
	WarmupFracs []float64
	Reduction   []float64
}

// Fig22 runs the sweep. A zero warm-up measures the whole window
// (cold-start mispredictions included, where Whisper helps most).
func Fig22(opt Options, fracs []float64) (*Fig22Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if fracs == nil {
		fracs = Fig22Fracs
	}
	r := &Fig22Result{WarmupFracs: fracs}
	// One build per app; only the measurement window varies.
	builds := make([]*sim.WhisperBuild, len(opt.Apps))
	for i, app := range opt.Apps {
		b, err := opt.buildWhisper(app)
		if err != nil {
			return nil, err
		}
		builds[i] = b
	}
	for _, f := range fracs {
		var reds []float64
		for i, app := range opt.Apps {
			popt := pipeline.Options{
				Config:        opt.Pipeline,
				WarmupRecords: uint64(float64(opt.Records) * f),
			}
			base := sim.RunApp(app, opt.TestInput, opt.Records, sim.Tage64KB(), popt)
			res, _ := builds[i].RunWhisperWarm(app, opt.TestInput, opt.Records, sim.Tage64KB, popt)
			reds = append(reds, sim.MispReduction(base, res))
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig22Result) Table() *stats.Table {
	t := stats.NewTable("Fig 22: avg reduction vs warm-up fraction",
		"warm-up %", "avg reduction %")
	for i, f := range r.WarmupFracs {
		t.AddRow(stats.FormatFloat(f*100, 0)+"%", pct(r.Reduction[i]))
	}
	return t
}

// Fig23Result sweeps the measured window length (paper Fig 23: 100M to
// 1B instructions; here scaled record counts).
type Fig23Result struct {
	Records   []int
	Reduction []float64
}

// Fig23 runs the sweep; counts default to 1x..10x of a tenth of the
// configured record budget, mirroring the paper's 100M..1B range.
func Fig23(opt Options, counts []int) (*Fig23Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if counts == nil {
		base := opt.Records / 10
		if base < 10000 {
			base = 10000
		}
		for k := 1; k <= 10; k++ {
			counts = append(counts, base*k)
		}
	}
	r := &Fig23Result{Records: counts}
	for _, n := range counts {
		reds, _, err := whisperReductionWith(opt, 64, n, opt.WarmupFrac)
		if err != nil {
			return nil, err
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig23Result) Table() *stats.Table {
	t := stats.NewTable("Fig 23: avg reduction vs simulated window length",
		"records", "avg reduction %")
	for i, n := range r.Records {
		t.AddRow(fmt.Sprintf("%d", n), pct(r.Reduction[i]))
	}
	return t
}
