package experiments

// Sensitivity sweeps: larger baseline (Fig 20), predictor size (Fig 21),
// warm-up fraction (Fig 22), and simulated window length (Fig 23).

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/runner"
	"github.com/whisper-sim/whisper/internal/sim"
	"github.com/whisper-sim/whisper/internal/stats"
	"github.com/whisper-sim/whisper/internal/workload"
)

// whisperReductionWith builds Whisper against the given baseline budget
// and returns per-app reductions on the test input. Each app is one
// engine unit; the baseline goes through the cross-driver memo.
func whisperReductionWith(opt Options, phase string, sizeKB int, records int, warmupFrac float64) ([]float64, []float64, error) {
	factory := sim.TageSized(sizeKB)
	warmup := uint64(float64(records) * warmupFrac)
	type sweepApp struct {
		red, mpki float64
	}
	per, err := mapApps(opt, phase, func(ai int, app *workload.App, u *runner.Unit) (sweepApp, error) {
		b, err := opt.buildWhisperAt(app, opt.TrainInput, records, sizeKB, opt.Params)
		if err != nil {
			return sweepApp{}, err
		}
		popt := pipeline.Options{Config: opt.Pipeline, WarmupRecords: warmup, BlockSize: opt.BlockSize}
		base := memoBaseline(app, opt.TestInput, records, warmup, sizeKB, opt.Pipeline, opt)
		res, _ := b.RunWhisperWarm(app, opt.TestInput, records, factory, popt)
		u.AddInstrs(base.Instrs + res.Instrs)
		u.AddRecords(base.Records + res.Records)
		return sweepApp{red: sim.MispReduction(base, res), mpki: base.MPKI()}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	reds := make([]float64, len(per))
	mpkis := make([]float64, len(per))
	for i, pa := range per {
		reds[i], mpkis[i] = pa.red, pa.mpki
	}
	return reds, mpkis, nil
}

// Fig20Result is Whisper against a 128KB TAGE-SC-L baseline (paper
// Fig 20).
type Fig20Result struct {
	Apps      []string
	Reduction []float64
	BaseMPKI  []float64
}

// Fig20 runs the 128KB-baseline study.
func Fig20(opt Options) (*Fig20Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	reds, mpkis, err := whisperReductionWith(opt, "fig20", 128, opt.Records, opt.WarmupFrac)
	if err != nil {
		return nil, err
	}
	return &Fig20Result{Apps: appNames(opt.Apps), Reduction: reds, BaseMPKI: mpkis}, nil
}

// Table renders the figure.
func (r *Fig20Result) Table() *stats.Table {
	t := stats.NewTable("Fig 20: misprediction reduction over 128KB TAGE-SC-L (%)",
		"app", "reduction", "baseline MPKI")
	for i, app := range r.Apps {
		t.AddRow(app, pct(r.Reduction[i]), stats.FormatFloat(r.BaseMPKI[i], 2))
	}
	t.AddRow("Avg", pct(stats.Mean(r.Reduction)), stats.FormatFloat(stats.Mean(r.BaseMPKI), 2))
	return t
}

// Fig21Sizes is the predictor-size sweep of the paper's Fig 21.
var Fig21Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024}

// Fig21Result sweeps the baseline predictor budget.
type Fig21Result struct {
	SizesKB   []int
	Reduction []float64 // mean across apps per size
	BaseMPKI  []float64
}

// Fig21 runs the sweep.
func Fig21(opt Options, sizes []int) (*Fig21Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if sizes == nil {
		sizes = Fig21Sizes
	}
	r := &Fig21Result{SizesKB: sizes}
	for _, kb := range sizes {
		reds, mpkis, err := whisperReductionWith(opt, fmt.Sprintf("fig21@%dKB", kb), kb, opt.Records, opt.WarmupFrac)
		if err != nil {
			return nil, err
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
		r.BaseMPKI = append(r.BaseMPKI, stats.Mean(mpkis))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig21Result) Table() *stats.Table {
	t := stats.NewTable("Fig 21: avg reduction vs baseline predictor size",
		"size", "avg reduction %", "avg baseline MPKI")
	for i, kb := range r.SizesKB {
		t.AddRow(fmt.Sprintf("%dKB", kb), pct(r.Reduction[i]),
			stats.FormatFloat(r.BaseMPKI[i], 2))
	}
	return t
}

// Fig22Fracs is the warm-up sweep of the paper's Fig 22.
var Fig22Fracs = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// Fig22Result sweeps the warm-up fraction.
type Fig22Result struct {
	WarmupFracs []float64
	Reduction   []float64
}

// Fig22 runs the sweep. A zero warm-up measures the whole window
// (cold-start mispredictions included, where Whisper helps most).
func Fig22(opt Options, fracs []float64) (*Fig22Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if fracs == nil {
		fracs = Fig22Fracs
	}
	r := &Fig22Result{WarmupFracs: fracs}
	// One build per app; only the measurement window varies.
	builds, err := mapApps(opt, "fig22/build", func(ai int, app *workload.App, u *runner.Unit) (*sim.WhisperBuild, error) {
		b, err := opt.buildWhisper(app)
		if err != nil {
			return nil, err
		}
		u.AddInstrs(b.Profile.Instrs)
		u.AddRecords(b.Profile.Records)
		return b, nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range fracs {
		warmup := uint64(float64(opt.Records) * f)
		reds, err := mapApps(opt, fmt.Sprintf("fig22@%g", f), func(ai int, app *workload.App, u *runner.Unit) (float64, error) {
			popt := pipeline.Options{Config: opt.Pipeline, WarmupRecords: warmup, BlockSize: opt.BlockSize}
			base := memoBaseline(app, opt.TestInput, opt.Records, warmup, 64, opt.Pipeline, opt)
			res, _ := builds[ai].RunWhisperWarm(app, opt.TestInput, opt.Records, sim.Tage64KB, popt)
			u.AddInstrs(base.Instrs + res.Instrs)
			u.AddRecords(base.Records + res.Records)
			return sim.MispReduction(base, res), nil
		})
		if err != nil {
			return nil, err
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig22Result) Table() *stats.Table {
	t := stats.NewTable("Fig 22: avg reduction vs warm-up fraction",
		"warm-up %", "avg reduction %")
	for i, f := range r.WarmupFracs {
		t.AddRow(stats.FormatFloat(f*100, 0)+"%", pct(r.Reduction[i]))
	}
	return t
}

// Fig23Result sweeps the measured window length (paper Fig 23: 100M to
// 1B instructions; here scaled record counts).
type Fig23Result struct {
	Records   []int
	Reduction []float64
}

// Fig23 runs the sweep; counts default to 1x..10x of a tenth of the
// configured record budget, mirroring the paper's 100M..1B range.
func Fig23(opt Options, counts []int) (*Fig23Result, error) {
	opt = opt.normalize()
	if err := opt.checkApps(); err != nil {
		return nil, err
	}
	if counts == nil {
		base := opt.Records / 10
		if base < 10000 {
			base = 10000
		}
		for k := 1; k <= 10; k++ {
			counts = append(counts, base*k)
		}
	}
	r := &Fig23Result{Records: counts}
	for _, n := range counts {
		reds, _, err := whisperReductionWith(opt, fmt.Sprintf("fig23@%d", n), 64, n, opt.WarmupFrac)
		if err != nil {
			return nil, err
		}
		r.Reduction = append(r.Reduction, stats.Mean(reds))
	}
	return r, nil
}

// Table renders the figure.
func (r *Fig23Result) Table() *stats.Table {
	t := stats.NewTable("Fig 23: avg reduction vs simulated window length",
		"records", "avg reduction %")
	for i, n := range r.Records {
		t.AddRow(fmt.Sprintf("%d", n), pct(r.Reduction[i]))
	}
	return t
}
