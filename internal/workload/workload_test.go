package workload

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/xrand"
)

func testConfig() Config {
	return Config{
		Name:           "test",
		Seed:           42,
		Functions:      50,
		BranchesPerFn:  5,
		ZipfS:          0.6,
		InstrPerRecord: 5,
		Mix:            Mix{Biased: 0.4, Loop: 0.1, ShortHist: 0.15, LongHist: 0.25, DataDep: 0.1},
		Noise:          0.01,
		InputVariance:  0.15,
		Inputs:         3,
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Name: "x", Functions: 1, BranchesPerFn: 1}); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestDeterministicStream(t *testing.T) {
	a := MustNew(testConfig())
	s1 := trace.Collect(a.Stream(0, 5000), 0)
	s2 := trace.Collect(a.Stream(0, 5000), 0)
	if len(s1) != 5000 || len(s2) != 5000 {
		t.Fatalf("lengths %d,%d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestInputsDiffer(t *testing.T) {
	a := MustNew(testConfig())
	s0 := trace.Collect(a.Stream(0, 5000), 0)
	s1 := trace.Collect(a.Stream(1, 5000), 0)
	same := 0
	for i := range s0 {
		if s0[i] == s1[i] {
			same++
		}
	}
	if same == len(s0) {
		t.Fatal("inputs 0 and 1 produced identical streams")
	}
}

func TestStreamRecordSanity(t *testing.T) {
	a := MustNew(testConfig())
	recs := trace.Collect(a.Stream(0, 20000), 0)
	conds, calls, rets := 0, 0, 0
	for _, r := range recs {
		switch r.Kind {
		case trace.CondBranch:
			conds++
			if _, ok := a.Branch(r.PC); !ok {
				t.Fatalf("conditional at unknown pc %#x", r.PC)
			}
		case trace.Call:
			calls++
		case trace.Return:
			rets++
		}
		if !r.Kind.Valid() {
			t.Fatalf("invalid kind %v", r.Kind)
		}
	}
	if conds == 0 || calls == 0 || rets == 0 {
		t.Fatalf("missing kinds: cond=%d call=%d ret=%d", conds, calls, rets)
	}
	if float64(conds)/float64(len(recs)) < 0.5 {
		t.Fatalf("conditional fraction too low: %d/%d", conds, len(recs))
	}
}

func TestGroundTruthReproducible(t *testing.T) {
	// Replaying the stream while maintaining our own history must let us
	// verify LongHist branches: outcome equals formula over fold, up to
	// the branch's noise rate.
	a := MustNew(testConfig())
	var hist bpu.History
	var rec trace.Record
	s := a.Stream(0, 40000)
	agree, total := 0, 0
	for s.Next(&rec) {
		if rec.Kind != trace.CondBranch {
			continue
		}
		br, ok := a.Branch(rec.PC)
		if !ok {
			t.Fatal("unknown branch")
		}
		if br.Class == LongHist {
			want := br.F.Eval(hist.Fold(br.HistLen))
			if want == rec.Taken {
				agree++
			}
			total++
		}
		hist.Push(rec.Taken)
	}
	if total == 0 {
		t.Fatal("no LongHist executions observed")
	}
	frac := float64(agree) / float64(total)
	if frac < 0.93 {
		t.Fatalf("LongHist ground truth agreement %v (noise should be ~2%%)", frac)
	}
}

func TestLoopBranchesHaveFixedTrips(t *testing.T) {
	a := MustNew(testConfig())
	var rec trace.Record
	s := a.Stream(0, 40000)
	runs := map[uint64][]int{} // pc -> observed taken-run lengths
	cur := map[uint64]int{}
	for s.Next(&rec) {
		if rec.Kind != trace.CondBranch {
			continue
		}
		br, ok := a.Branch(rec.PC)
		if !ok || br.Class != Loop {
			continue
		}
		if rec.Taken {
			cur[rec.PC]++
		} else {
			runs[rec.PC] = append(runs[rec.PC], cur[rec.PC])
			cur[rec.PC] = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no loop branches observed")
	}
	for pc, rs := range runs {
		br, _ := a.Branch(pc)
		matched := 0
		for _, r := range rs {
			if r == br.Trip {
				matched++
			}
		}
		// Noise can perturb a few runs; most must match the trip count.
		if float64(matched)/float64(len(rs)) < 0.8 {
			t.Fatalf("loop %#x trip=%d, runs %v", pc, br.Trip, rs[:min(8, len(rs))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestClassMixRoughlyHonored(t *testing.T) {
	cfg := testConfig()
	cfg.Functions = 400
	a := MustNew(cfg)
	var counts [numClasses]int
	for _, b := range a.branches {
		counts[b.Class]++
	}
	total := float64(len(a.branches))
	if got := float64(counts[Biased]) / total; got < 0.3 || got > 0.5 {
		t.Fatalf("biased fraction %v, want ~0.4", got)
	}
	if got := float64(counts[LongHist]) / total; got < 0.17 || got > 0.33 {
		t.Fatalf("long-hist fraction %v, want ~0.25", got)
	}
}

func TestBranchClassStrings(t *testing.T) {
	for c := Biased; c < numClasses; c++ {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
}

func TestStreamInputRangePanics(t *testing.T) {
	a := MustNew(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Stream(99, 10)
}

func TestDataCenterCatalog(t *testing.T) {
	specs := DataCenterSpecs()
	if len(specs) != 12 {
		t.Fatalf("%d data center apps, want 12", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Config.Name] {
			t.Fatalf("duplicate app %s", s.Config.Name)
		}
		names[s.Config.Name] = true
		if s.Workload == "" {
			t.Fatalf("app %s missing workload description", s.Config.Name)
		}
	}
	for _, want := range []string{"mysql", "postgres", "clang", "python", "cassandra",
		"kafka", "tomcat", "drupal", "wordpress", "mediawiki", "finagle-chirper", "finagle-http"} {
		if !names[want] {
			t.Fatalf("missing app %s", want)
		}
	}
}

func TestDataCenterAppLookup(t *testing.T) {
	if DataCenterApp("mysql") == nil {
		t.Fatal("mysql lookup failed")
	}
	if DataCenterApp("nonesuch") != nil {
		t.Fatal("bogus lookup succeeded")
	}
}

func TestSpecAppsConcentrated(t *testing.T) {
	apps := SpecApps()
	if len(apps) != 10 {
		t.Fatalf("%d spec apps", len(apps))
	}
	// A SPEC-like app funnels most executions into few branches; a DC app
	// spreads them. Compare top-50 execution shares.
	share := func(a *App) float64 {
		counts := map[uint64]int{}
		var rec trace.Record
		s := a.Stream(0, 30000)
		total := 0
		for s.Next(&rec) {
			if rec.Kind == trace.CondBranch {
				counts[rec.PC]++
				total++
			}
		}
		all := make([]int, 0, len(counts))
		for _, c := range counts {
			all = append(all, c)
		}
		// top-50 share
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j] > all[i] {
					all[i], all[j] = all[j], all[i]
				}
			}
			if i >= 49 {
				break
			}
		}
		top := 0
		for i := 0; i < 50 && i < len(all); i++ {
			top += all[i]
		}
		return float64(top) / float64(total)
	}
	spec := share(apps[0]) // deepsjeng-like
	dc := share(DataCenterApp("mysql"))
	if spec <= dc {
		t.Fatalf("spec top-50 share %v not above data-center %v", spec, dc)
	}
	if spec < 0.35 {
		t.Fatalf("spec top-50 share %v too flat", spec)
	}
}

func TestScaleRecords(t *testing.T) {
	if ScaleTiny.Records() >= ScaleSmall.Records() ||
		ScaleSmall.Records() >= ScaleFull.Records() {
		t.Fatal("scales not increasing")
	}
	if ScaleSmall.String() != "small" {
		t.Fatal("scale name")
	}
}

func TestPerInputOverridesApplied(t *testing.T) {
	cfg := testConfig()
	cfg.InputVariance = 0.5
	a := MustNew(cfg)
	changed := 0
	for bi := range a.branches {
		b0 := a.branchFor(0, bi)
		b1 := a.branchFor(1, bi)
		if b0.Class != b1.Class || b0.PTaken != b1.PTaken || b0.HistLen != b1.HistLen {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no behaviours changed between inputs with variance 0.5")
	}
}

func TestFoldLengthsAreFromGeomSeries(t *testing.T) {
	a := MustNew(testConfig())
	valid := map[int]bool{}
	for _, l := range bpu.DefaultGeomLengths {
		valid[l] = true
	}
	for _, b := range a.branches {
		if b.Class == LongHist && !valid[b.HistLen] {
			t.Fatalf("LongHist length %d not in geometric series", b.HistLen)
		}
	}
}

func BenchmarkStream(b *testing.B) {
	a := MustNew(testConfig())
	var rec trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i += 10000 {
		s := a.Stream(0, 10000)
		for s.Next(&rec) {
		}
	}
}

var _ = xrand.New // keep import if unused in some builds

// TestFillBlockMatchesNext locks the generator's block producer to the
// per-record Next protocol: identical records in identical order,
// across block sizes that do and do not divide the record count.
func TestFillBlockMatchesNext(t *testing.T) {
	for _, appName := range []string{"mysql", "kafka"} {
		a := DataCenterApp(appName)
		if a == nil {
			t.Fatalf("app %s missing", appName)
		}
		const records = 10007
		want := trace.Collect(a.Stream(3, records), records+1)
		for _, bs := range []int{1, 7, 4096} {
			s := a.Stream(3, records)
			f, ok := s.(trace.BlockFiller)
			if !ok {
				t.Fatal("generator does not implement trace.BlockFiller")
			}
			b := trace.NewBlock(bs)
			var got []trace.Record
			for f.FillBlock(b) > 0 {
				got = append(got, b.Records()...)
			}
			if len(got) != len(want) {
				t.Fatalf("%s block=%d: %d records, want %d", appName, bs, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s block=%d: record %d differs: %+v != %+v", appName, bs, i, got[i], want[i])
				}
			}
		}
	}
}
