// Package workload synthesizes the branch-record streams of the paper's 12
// data center applications (Table I) plus a SPEC2017-like family used for
// the misprediction-concentration contrast (paper Fig 5).
//
// The paper evaluates on Intel PT traces of proprietary deployments; those
// traces are unavailable, so this package builds the closest synthetic
// equivalent (see DESIGN.md §1). Each application is a population of
// static branches grouped into functions. A deterministic Zipf-driven walk
// invokes functions; each invocation retires the function's branches in
// order. Every static branch has a ground-truth behaviour drawn from the
// classes the paper's characterization identifies:
//
//   - Biased: strongly taken or not-taken (always/never-taken hints).
//   - Loop: fixed trip count, exercising the loop predictor.
//   - ShortHist: a monotone AND/OR formula over the last 4-8 raw
//     outcomes — exactly the ROMBF-learnable class.
//   - LongHist: a *balanced* extended Boolean formula over the XOR-folded
//     hash of a long history window (32-1024 branches, Fig 6) — the class
//     Whisper's hashed history correlation targets.
//   - ComplexHist: parity or a popcount threshold of the folded long
//     history — deterministic in the history (so its mispredictions
//     classify as capacity) but *outside* the extended-ROMBF formula
//     space. This is the residual that keeps Whisper's reduction at the
//     paper's ~17% instead of solving everything.
//   - DataDep: a Bernoulli coin — the "conditional-on-data" class no
//     history-based predictor can learn.
//
// Per-application knobs (static branch count, class mix, popularity skew,
// noise) are calibrated so the 64KB TAGE-SC-L baseline lands in the
// paper's branch-MPKI band (0.5-7.2) with capacity-dominated
// mispredictions (Fig 2/3).
package workload

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/formula"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/xrand"
)

// Class is a ground-truth branch behaviour class.
type Class int

// Behaviour classes; see the package comment.
const (
	Biased Class = iota
	Loop
	ShortHist
	LongHist
	ComplexHist
	DataDep

	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Biased:
		return "biased"
	case Loop:
		return "loop"
	case ShortHist:
		return "short-hist"
	case LongHist:
		return "long-hist"
	case ComplexHist:
		return "complex-hist"
	case DataDep:
		return "data-dep"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Mix gives the probability of each class when drawing a branch's
// behaviour. Fields should sum to 1; Normalize rescales.
type Mix struct {
	Biased, Loop, ShortHist, LongHist, ComplexHist, DataDep float64
}

// Normalize rescales the mix to sum to 1. It panics on a non-positive sum.
func (m *Mix) Normalize() {
	s := m.Biased + m.Loop + m.ShortHist + m.LongHist + m.ComplexHist + m.DataDep
	if s <= 0 {
		panic("workload: class mix sums to zero")
	}
	m.Biased /= s
	m.Loop /= s
	m.ShortHist /= s
	m.LongHist /= s
	m.ComplexHist /= s
	m.DataDep /= s
}

// Config parameterizes one synthetic application.
type Config struct {
	// Name identifies the app in result tables.
	Name string
	// Seed is the root seed; everything about the app derives from it.
	Seed uint64
	// Functions is the number of synthetic functions.
	Functions int
	// BranchesPerFn is the mean number of conditional branches per
	// function (drawn uniformly in [1, 2*BranchesPerFn-1]).
	BranchesPerFn int
	// ZipfS is the popularity skew of function invocation: small values
	// (~0.5) give the flat data-center profile of Fig 5b, large values
	// (~1.4) the concentrated SPEC profile of Fig 5a.
	ZipfS float64
	// InstrPerRecord is the mean sequential instruction run before each
	// branch record.
	InstrPerRecord int
	// Mix is the class mix.
	Mix Mix
	// Noise is the probability a branch outcome flips against its
	// ground-truth behaviour (models unprofiled data dependence).
	Noise float64
	// InputVariance is the fraction of branches whose behaviour is
	// re-drawn for each non-zero input, modelling workload/input drift
	// (paper Fig 17/18).
	InputVariance float64
	// Inputs is how many input variants exist (>= 1; input 0 is the
	// canonical training input).
	Inputs int
}

// Validate fills defaults and checks ranges.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: config needs a name")
	}
	if c.Functions <= 0 || c.BranchesPerFn <= 0 {
		return fmt.Errorf("workload %s: functions and branches must be positive", c.Name)
	}
	if c.Inputs == 0 {
		c.Inputs = 4
	}
	if c.InstrPerRecord <= 0 {
		c.InstrPerRecord = 5
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 0.5
	}
	m := c.Mix
	if m.Biased+m.Loop+m.ShortHist+m.LongHist+m.ComplexHist+m.DataDep <= 0 {
		return fmt.Errorf("workload %s: empty class mix", c.Name)
	}
	c.Mix.Normalize()
	return nil
}

// Branch is one static conditional branch with its ground-truth behaviour.
type Branch struct {
	// PC is the branch instruction address.
	PC uint64
	// Class is the behaviour class.
	Class Class
	// Instrs is the sequential instruction run preceding the branch.
	Instrs uint32
	// Noise is the per-branch outcome flip probability.
	Noise float64

	// PTaken is the taken probability (Biased, DataDep).
	PTaken float64
	// Trip is the loop trip count (Loop): taken Trip times, then one
	// not-taken exit.
	Trip int
	// Mono is the ground-truth monotone formula (ShortHist) over MonoN
	// raw history bits.
	Mono  formula.Monotone
	MonoN int
	// F is the ground-truth extended formula (LongHist) over the fold of
	// the most recent HistLen outcomes.
	F       formula.Formula
	HistLen int
	// Parity selects the ComplexHist flavour: fold parity when true,
	// popcount >= 5 otherwise.
	Parity bool
}

// outcome evaluates the ground-truth direction given the global history
// and the branch's dynamic loop state.
func (b *Branch) outcome(h *bpu.History, loopState *int, rng *xrand.Rand) bool {
	var v bool
	switch b.Class {
	case Biased, DataDep:
		v = rng.Bool(b.PTaken)
		// Bernoulli classes embed their own randomness; noise is part of
		// PTaken already.
		return v
	case Loop:
		if *loopState < b.Trip {
			*loopState++
			v = true
		} else {
			*loopState = 0
			v = false
		}
	case ShortHist:
		v = b.Mono.Eval(h.Raw(b.MonoN))
	case LongHist:
		v = b.F.Eval(h.Fold(b.HistLen))
	case ComplexHist:
		fold := h.Fold(b.HistLen)
		ones := popcount8(fold)
		if b.Parity {
			v = ones&1 == 1
		} else {
			v = ones >= 5
		}
	default:
		panic("workload: invalid class")
	}
	if b.Noise > 0 && rng.Bool(b.Noise) {
		v = !v
	}
	return v
}

// function is a straight-line group of branches invoked as a unit.
type function struct {
	base     uint64
	branches []int // indices into App.branches
	callPC   uint64
	retPC    uint64
}

// App is an instantiated synthetic application.
type App struct {
	cfg      Config
	branches []Branch
	fns      []function
	byPC     map[uint64]int
	// perInput[i] overrides branch behaviours for input i (nil for the
	// canonical input 0).
	perInput []map[int]Branch
	// perm[i] is the popularity permutation of functions for input i.
	perm [][]int
}

// New instantiates an application from cfg deterministically.
func New(cfg Config) (*App, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := cfg.Seed
	structRng := xrand.New(xrand.SplitMix64(&st))
	behavRng := xrand.New(xrand.SplitMix64(&st))
	inputRng := xrand.New(xrand.SplitMix64(&st))

	a := &App{cfg: cfg, byPC: make(map[uint64]int)}
	base := uint64(0x400000)
	const blockBytes = 24 // ~6 instructions per basic block
	for f := 0; f < cfg.Functions; f++ {
		nBr := 1 + structRng.Intn(2*cfg.BranchesPerFn-1)
		fn := function{
			base:   base,
			callPC: base - 8,
		}
		for i := 0; i < nBr; i++ {
			pc := base + uint64(i)*blockBytes + 16
			br := a.drawBranch(pc, behavRng)
			a.byPC[pc] = len(a.branches)
			fn.branches = append(fn.branches, len(a.branches))
			a.branches = append(a.branches, br)
		}
		fn.retPC = base + uint64(nBr)*blockBytes + 4
		a.fns = append(a.fns, fn)
		// Spread functions across a multi-megabyte footprint: 4KB apart
		// plus jitter so set-mapping is not degenerate.
		base += 4096 + uint64(structRng.Intn(8))*64
	}

	// Input variants: permuted popularity + re-drawn behaviours.
	a.perInput = make([]map[int]Branch, cfg.Inputs)
	a.perm = make([][]int, cfg.Inputs)
	ident := make([]int, cfg.Functions)
	for i := range ident {
		ident[i] = i
	}
	a.perm[0] = ident
	for in := 1; in < cfg.Inputs; in++ {
		// Swap a fraction of popularity ranks.
		p := append([]int(nil), ident...)
		swaps := int(float64(cfg.Functions) * cfg.InputVariance)
		for s := 0; s < swaps; s++ {
			i, j := inputRng.Intn(cfg.Functions), inputRng.Intn(cfg.Functions)
			p[i], p[j] = p[j], p[i]
		}
		a.perm[in] = p
		over := make(map[int]Branch)
		for bi := range a.branches {
			if inputRng.Bool(cfg.InputVariance) {
				old := a.branches[bi]
				switch old.Class {
				case Biased:
					// Input drift never inverts a guard-style branch:
					// an error check that is ~always not-taken stays
					// that way on every input; only its flip rate
					// jitters.
					nb := old
					flip := cfg.Noise * (0.2 + 1.6*inputRng.Float64())
					if old.PTaken > 0.5 {
						nb.PTaken = 1 - flip
					} else {
						nb.PTaken = flip
					}
					over[bi] = nb
				case DataDep:
					// Data-dependent branches keep their lean across
					// inputs too (the data distribution shifts, the
					// comparison does not invert); only the rate moves.
					nb := old
					p := 0.2 + 0.2*inputRng.Float64()
					if old.PTaken > 0.5 {
						p = 1 - p
					}
					nb.PTaken = p
					over[bi] = nb
				default:
					over[bi] = a.drawBranch(old.PC, inputRng)
				}
			}
		}
		a.perInput[in] = over
	}
	return a, nil
}

// MustNew is New panicking on error, for static app tables.
func MustNew(cfg Config) *App {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// drawBranch rolls a branch behaviour from the app's class mix.
func (a *App) drawBranch(pc uint64, rng *xrand.Rand) Branch {
	cfg := &a.cfg
	br := Branch{
		PC:     pc,
		Instrs: uint32(1 + rng.Intn(2*cfg.InstrPerRecord-1)),
		Noise:  cfg.Noise * (0.5 + rng.Float64()),
	}
	u := rng.Float64()
	m := cfg.Mix
	switch {
	case u < m.Biased:
		br.Class = Biased
		// Strongly biased: the flip rate scales with the app's noise
		// knob. Data-center code is dominated by error checks and
		// guards that almost never flip.
		p := 1 - cfg.Noise*(0.2+1.6*rng.Float64())
		if rng.Bool(0.4) {
			p = 1 - p
		}
		br.PTaken = p
		br.Noise = 0 // bias noise is already part of PTaken
	case u < m.Biased+m.Loop:
		br.Class = Loop
		br.Trip = 4 + rng.Intn(12)
		// Loop branches are deterministic: their role is exercising the
		// loop predictor, and noisy exits would make the generator's
		// inner expansion unbounded.
		br.Noise = 0
	case u < m.Biased+m.Loop+m.ShortHist:
		br.Class = ShortHist
		n := 4
		if rng.Bool(0.5) {
			n = 8
		}
		enc := uint16(rng.Intn(formula.MonotoneFormulas(n)))
		mono, err := formula.NewMonotone(n, enc)
		if err != nil {
			panic(err)
		}
		br.Mono = mono
		br.MonoN = n
	case u < m.Biased+m.Loop+m.ShortHist+m.LongHist:
		br.Class = LongHist
		br.F = drawBalancedFormula(rng)
		br.HistLen = drawHistLen(rng)
	case u < m.Biased+m.Loop+m.ShortHist+m.LongHist+m.ComplexHist:
		br.Class = ComplexHist
		br.HistLen = drawHistLen(rng)
		br.Parity = rng.Bool(0.5)
	default:
		br.Class = DataDep
		// Outcome leans one way but flips often: ~25-35% misprediction
		// floor for any history-based predictor.
		p := 0.2 + 0.2*rng.Float64()
		if rng.Bool(0.5) {
			p = 1 - p
		}
		br.PTaken = p
		br.Noise = 0
	}
	return br
}

// drawBalancedFormula samples a ground-truth extended formula whose truth
// table is balanced (64-192 of 256 inputs taken): an unbalanced formula
// would just be a biased branch, trivially predicted by any baseline. The
// operation mix follows the paper's Fig 7 emphasis (And-heavy, with
// meaningful Impl and Cnimpl populations): the tree is built with a
// majority of the target operation so DominantOp still classifies it,
// then rejection-sampled for balance.
func drawBalancedFormula(rng *xrand.Rand) formula.Formula {
	target := pickOp(rng)
	for tries := 0; tries < 64; tries++ {
		ops := make([]formula.Op, formula.Units)
		for i := range ops {
			if i < 5 { // strict majority carries the Fig 7 label
				ops[i] = target
			} else {
				ops[i] = formula.Op(rng.Intn(int(formula.NumOps)))
			}
		}
		for i := len(ops) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			ops[i], ops[j] = ops[j], ops[i]
		}
		f := formula.New(ops, rng.Bool(0.5))
		if pc := f.Table().PopCount(); pc >= 64 && pc <= 192 {
			return f
		}
		if tries == 31 {
			target = pickOp(rng) // this op may not balance; re-draw
		}
	}
	// Fallback: fully random balanced tree.
	for {
		ops := make([]formula.Op, formula.Units)
		for i := range ops {
			ops[i] = formula.Op(rng.Intn(int(formula.NumOps)))
		}
		f := formula.New(ops, rng.Bool(0.5))
		if pc := f.Table().PopCount(); pc >= 64 && pc <= 192 {
			return f
		}
	}
}

// pickOp draws the target operation with the Fig 7 weighting.
func pickOp(rng *xrand.Rand) formula.Op {
	u := rng.Float64()
	switch {
	case u < 0.45:
		return formula.And
	case u < 0.55:
		return formula.Or
	case u < 0.78:
		return formula.Impl
	default:
		return formula.Cnimpl
	}
}

// drawHistLen samples a history length from the geometric series with the
// Fig 6 emphasis on 32-1024.
func drawHistLen(rng *xrand.Rand) int {
	ls := bpu.DefaultGeomLengths
	// Weight toward the middle/upper lengths: indices 4..15 get most of
	// the mass (lengths ~27 and up).
	idx := 0
	u := rng.Float64()
	switch {
	case u < 0.10:
		idx = rng.Intn(4) // 8..20
	case u < 0.65:
		idx = 4 + rng.Intn(6) // ~27..123
	default:
		idx = 10 + rng.Intn(6) // ~167..1024
	}
	return ls[idx]
}

// Name returns the application name.
func (a *App) Name() string { return a.cfg.Name }

// Inputs returns the number of input variants.
func (a *App) Inputs() int { return a.cfg.Inputs }

// StaticBranches returns the number of static conditional branches.
func (a *App) StaticBranches() int { return len(a.branches) }

// Branch returns the ground-truth behaviour of the branch at pc for the
// canonical input, and whether pc is a known branch.
func (a *App) Branch(pc uint64) (Branch, bool) {
	i, ok := a.byPC[pc]
	if !ok {
		return Branch{}, false
	}
	return a.branches[i], true
}

// branchFor returns the effective behaviour of branch index bi under the
// given input.
func (a *App) branchFor(input, bi int) *Branch {
	if input > 0 && a.perInput[input] != nil {
		if b, ok := a.perInput[input][bi]; ok {
			// Return a pointer into the override map copy; loop state is
			// kept externally so value semantics are fine here.
			ov := b
			return &ov
		}
	}
	return &a.branches[bi]
}

// Stream returns a deterministic record stream for the given input
// producing at most records records. Two streams with identical arguments
// produce identical records.
func (a *App) Stream(input, records int) trace.Stream {
	if input < 0 || input >= a.cfg.Inputs {
		panic(fmt.Sprintf("workload %s: input %d out of range", a.cfg.Name, input))
	}
	st := a.cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(input+1))
	rng := xrand.New(xrand.SplitMix64(&st))
	g := &generator{
		app:       a,
		input:     input,
		remaining: records,
		rng:       rng,
		zipf:      xrand.NewZipf(xrand.New(xrand.SplitMix64(&st)), len(a.fns), a.cfg.ZipfS),
		loopState: make([]int, len(a.branches)),
	}
	return g
}

// generator is the deterministic walk producing the record stream.
type generator struct {
	app       *App
	input     int
	remaining int
	rng       *xrand.Rand
	zipf      *xrand.Zipf
	hist      bpu.History
	loopState []int
	queue     []trace.Record
	qpos      int
	lastPC    uint64
}

// Next implements trace.Stream.
func (g *generator) Next(rec *trace.Record) bool {
	if g.remaining <= 0 {
		return false
	}
	for g.qpos >= len(g.queue) {
		g.fillQueue()
	}
	*rec = g.queue[g.qpos]
	g.qpos++
	g.remaining--
	return true
}

// FillBlock implements trace.BlockFiller: it drains whole invocation
// queues into the block, so the batched pipeline receives records
// without a Next call (and its bounds checks and copy) per record.
func (g *generator) FillBlock(b *trace.Block) int {
	b.Reset()
	for g.remaining > 0 && b.N < b.Cap() {
		for g.qpos >= len(g.queue) {
			g.fillQueue()
		}
		n := len(g.queue) - g.qpos
		if n > g.remaining {
			n = g.remaining
		}
		if room := b.Cap() - b.N; n > room {
			n = room
		}
		for _, rec := range g.queue[g.qpos : g.qpos+n] {
			i := b.N
			b.PC[i] = rec.PC
			b.Target[i] = rec.Target
			b.Kind[i] = rec.Kind
			b.Taken[i] = rec.Taken
			b.Instrs[i] = rec.Instrs
			b.N = i + 1
		}
		g.qpos += n
		g.remaining -= n
	}
	return b.N
}

// fillQueue synthesizes one function invocation worth of records.
func (g *generator) fillQueue() {
	g.queue = g.queue[:0]
	g.qpos = 0
	a := g.app
	rank := g.zipf.Next()
	f := &a.fns[a.perm[g.input][rank]]

	// Call into the function from wherever we were.
	g.queue = append(g.queue, trace.Record{
		PC:     g.lastPC + 8,
		Target: f.base,
		Kind:   trace.Call,
		Taken:  true,
		Instrs: 2,
	})
	for _, bi := range f.branches {
		br := a.branchFor(g.input, bi)
		if br.Class == Loop {
			// A loop branch retires trip+1 times per invocation.
			for {
				taken := br.outcome(&g.hist, &g.loopState[bi], g.rng)
				g.emitCond(br, taken)
				if !taken {
					break
				}
			}
			continue
		}
		taken := br.outcome(&g.hist, &g.loopState[bi], g.rng)
		g.emitCond(br, taken)
	}
	g.queue = append(g.queue, trace.Record{
		PC:     f.retPC,
		Target: g.lastPC + 12,
		Kind:   trace.Return,
		Taken:  true,
		Instrs: 2,
	})
	g.lastPC = f.retPC
}

func (g *generator) emitCond(br *Branch, taken bool) {
	tgt := br.PC + 24
	if taken {
		tgt = br.PC + 96
	}
	g.queue = append(g.queue, trace.Record{
		PC:     br.PC,
		Target: tgt,
		Kind:   trace.CondBranch,
		Taken:  taken,
		Instrs: br.Instrs,
	})
	g.hist.Push(taken)
	g.lastPC = br.PC
}

// popcount8 counts set bits in an 8-bit value.
func popcount8(x uint8) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
