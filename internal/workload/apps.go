package workload

// This file instantiates the application catalog: the 12 data center
// applications of the paper's Table I and a 10-member SPEC2017-like
// family used for the Fig 5 concentration contrast.
//
// Per-app parameters are calibrated (see EXPERIMENTS.md) so the 64KB
// TAGE-SC-L baseline lands inside the paper's reported branch-MPKI band
// (0.5-7.2, average ~3.0) with capacity-dominated mispredictions. The
// *relative* character of each app follows the paper's figures: python
// and clang are the hardest (MPKI ~7 and ~5), kafka and cassandra the
// easiest, the PHP trio (drupal/mediawiki/wordpress) sits in the middle
// with flat misprediction CDFs.

// AppSpec pairs a Config with the paper workload description (Table I).
type AppSpec struct {
	Config   Config
	Workload string
}

// dcSpecs returns the Table I catalog.
func dcSpecs() []AppSpec {
	mk := func(name, wl string, seed uint64, fns, brPerFn int, zipf float64,
		mix Mix, noise float64) AppSpec {
		return AppSpec{
			Config: Config{
				Name:           name,
				Seed:           seed,
				Functions:      fns,
				BranchesPerFn:  brPerFn,
				ZipfS:          zipf,
				InstrPerRecord: 5,
				Mix:            mix,
				Noise:          noise,
				InputVariance:  0.06,
				Inputs:         6,
			},
			Workload: wl,
		}
	}
	return []AppSpec{
		mk("cassandra", "Java DaCapo benchmark suite", 0xCA55, 350, 6, 0.55,
			Mix{Biased: 0.957, Loop: 0.020, ShortHist: 0.0072, LongHist: 0.0036, ComplexHist: 0.0036, DataDep: 0.00216}, 0.00216),
		mk("clang", "Building LLVM", 0xC1A6, 600, 8, 0.45,
			Mix{Biased: 0.885, Loop: 0.020, ShortHist: 0.0252, LongHist: 0.01584, ComplexHist: 0.01656, DataDep: 0.0108}, 0.00576),
		mk("drupal", "Facebook OSS-performance suite", 0xD8A1, 450, 7, 0.50,
			Mix{Biased: 0.923, Loop: 0.020, ShortHist: 0.018, LongHist: 0.00864, ComplexHist: 0.00864, DataDep: 0.00576}, 0.00432),
		mk("finagle-chirper", "Java Renaissance benchmark suite", 0xF1C4, 400, 6, 0.55,
			Mix{Biased: 0.9385, Loop: 0.020, ShortHist: 0.01224, LongHist: 0.00576, ComplexHist: 0.00576, DataDep: 0.00396}, 0.0036),
		mk("finagle-http", "Java Renaissance benchmark suite", 0xF144, 380, 6, 0.55,
			Mix{Biased: 0.9454, Loop: 0.020, ShortHist: 0.0108, LongHist: 0.00526, ComplexHist: 0.00526, DataDep: 0.0036}, 0.00324),
		mk("kafka", "Java DaCapo benchmark suite", 0x5AF5, 250, 5, 0.60,
			Mix{Biased: 0.975, Loop: 0.015, ShortHist: 0.00216, LongHist: 0.00108, ComplexHist: 0.00108, DataDep: 0.00072}, 0.00086),
		mk("mediawiki", "Facebook OSS-performance suite", 0x3ED1, 420, 7, 0.50,
			Mix{Biased: 0.9265, Loop: 0.020, ShortHist: 0.01584, LongHist: 0.00792, ComplexHist: 0.00792, DataDep: 0.0054}, 0.00432),
		mk("mysql", "Different TPC-C queries", 0x3501, 550, 8, 0.45,
			Mix{Biased: 0.901, Loop: 0.020, ShortHist: 0.0216, LongHist: 0.01296, ComplexHist: 0.01296, DataDep: 0.00936}, 0.00504),
		mk("postgres", "Different pgbench queries", 0x9057, 500, 8, 0.45,
			Mix{Biased: 0.912, Loop: 0.020, ShortHist: 0.02016, LongHist: 0.0108, ComplexHist: 0.0108, DataDep: 0.0072}, 0.00504),
		mk("python", "pyperformance benchmarks", 0x9774, 700, 9, 0.40,
			Mix{Biased: 0.865, Loop: 0.020, ShortHist: 0.0216, LongHist: 0.0216, ComplexHist: 0.0216, DataDep: 0.018}, 0.00648),
		mk("tomcat", "Java DaCapo benchmark suite", 0x703C, 350, 6, 0.55,
			Mix{Biased: 0.9425, Loop: 0.020, ShortHist: 0.00936, LongHist: 0.00468, ComplexHist: 0.00468, DataDep: 0.00324}, 0.00288),
		mk("wordpress", "Facebook OSS-performance suite", 0x30D9, 430, 7, 0.50,
			Mix{Biased: 0.9235, Loop: 0.020, ShortHist: 0.01656, LongHist: 0.00828, ComplexHist: 0.00828, DataDep: 0.00612}, 0.00432),
	}
}

// DataCenterSpecs returns the Table I application specifications.
func DataCenterSpecs() []AppSpec { return dcSpecs() }

// DataCenterApps instantiates the 12 Table I applications.
func DataCenterApps() []*App {
	specs := dcSpecs()
	apps := make([]*App, len(specs))
	for i, s := range specs {
		apps[i] = MustNew(s.Config)
	}
	return apps
}

// DataCenterApp instantiates one Table I application by name, or nil.
func DataCenterApp(name string) *App {
	for _, s := range dcSpecs() {
		if s.Config.Name == name {
			return MustNew(s.Config)
		}
	}
	return nil
}

// SpecApps instantiates a 10-member SPEC2017-int-like family: few static
// branches, strongly concentrated popularity, with the hard branches
// concentrated in the top ranks — the regime where BranchNet's top-K
// assumption holds (paper Fig 5a).
func SpecApps() []*App {
	names := []string{
		"deepsjeng", "exchange2", "gcc", "leela", "mcf",
		"omnetpp", "perlbench", "x264", "xalancbmk", "xz",
	}
	apps := make([]*App, len(names))
	for i, n := range names {
		fns := 60
		mix := Mix{Biased: 0.905, Loop: 0.025, ShortHist: 0.025, LongHist: 0.0160, ComplexHist: 0.0160, DataDep: 0.0130}
		if n == "gcc" {
			// The paper singles out gcc as the one SPEC benchmark with a
			// flat, data-center-like misprediction distribution.
			fns = 900
		}
		apps[i] = MustNew(Config{
			Name:           "spec-" + n,
			Seed:           0x57EC0000 + uint64(i),
			Functions:      fns,
			BranchesPerFn:  6,
			ZipfS:          1.35,
			InstrPerRecord: 5,
			Mix:            mix,
			Noise:          0.010,
			InputVariance:  0.10,
			Inputs:         2,
		})
	}
	return apps
}

// Scale selects how many records experiments generate per application.
type Scale int

// Scales: Small keeps the full suite in laptop territory; Full
// approximates the paper's 100M-instruction windows.
const (
	ScaleTiny  Scale = iota // CI-sized
	ScaleSmall              // default for experiments
	ScaleFull               // paper-sized (slow)
)

// Records returns the per-app record budget for the scale.
func (s Scale) Records() int {
	switch s {
	case ScaleTiny:
		return 60_000
	case ScaleSmall:
		return 400_000
	default:
		return 4_000_000
	}
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	default:
		return "full"
	}
}
