package workload

// This file adds three workload families beyond the Table I catalog,
// used by the cross-workload hint-transfer study and as extra
// calibration points for imported-trace comparisons. Each family picks
// the class mix of a well-known data center code shape:
//
//   - interp-dispatch: a bytecode interpreter's dispatch loop. A large
//     hot core of history-correlated branches (the opcode sequence is
//     the history), python-like MPKI at the top of the paper's band.
//   - gc-mark: a garbage collector's mark phase. Loop- and
//     data-dependent-heavy (pointer-graph shape decides the scan), a
//     mid-band app whose hard branches are exactly the class
//     profile-guided hints cannot help, keeping transfer gains honest.
//   - rpc-chain: a microservice RPC chain. Guard-dominated like
//     kafka/finagle with a flat popularity profile, at the easy end of
//     the band.
//
// Like the Table I apps they share the 0x400000 code layout, so static
// PCs partially collide across applications — which is what makes the
// transfer study's overlap metric (and transferred hints hitting real
// branches) non-trivial.

// familySpecs returns the extra-family catalog.
func familySpecs() []AppSpec {
	mk := func(name, wl string, seed uint64, fns, brPerFn int, zipf float64,
		mix Mix, noise float64) AppSpec {
		return AppSpec{
			Config: Config{
				Name:           name,
				Seed:           seed,
				Functions:      fns,
				BranchesPerFn:  brPerFn,
				ZipfS:          zipf,
				InstrPerRecord: 5,
				Mix:            mix,
				Noise:          noise,
				InputVariance:  0.06,
				Inputs:         6,
			},
			Workload: wl,
		}
	}
	return []AppSpec{
		mk("interp-dispatch", "Bytecode interpreter dispatch loop", 0x1D15, 650, 9, 0.40,
			Mix{Biased: 0.910, Loop: 0.020, ShortHist: 0.0126, LongHist: 0.0144, ComplexHist: 0.0126, DataDep: 0.0072}, 0.00648),
		mk("gc-mark", "Tracing collector mark phase", 0x6C3A, 480, 7, 0.50,
			Mix{Biased: 0.940, Loop: 0.032, ShortHist: 0.0072, LongHist: 0.0054, ComplexHist: 0.0054, DataDep: 0.0081}, 0.00504),
		mk("rpc-chain", "Microservice RPC fan-out chain", 0x49C4, 320, 5, 0.58,
			Mix{Biased: 0.975, Loop: 0.018, ShortHist: 0.0033, LongHist: 0.0016, ComplexHist: 0.0016, DataDep: 0.0011}, 0.00173),
	}
}

// FamilySpecs returns the extra workload-family specifications.
func FamilySpecs() []AppSpec { return familySpecs() }

// FamilyApps instantiates the extra workload families.
func FamilyApps() []*App {
	specs := familySpecs()
	apps := make([]*App, len(specs))
	for i, s := range specs {
		apps[i] = MustNew(s.Config)
	}
	return apps
}

// AppByName instantiates any catalogued application — Table I, extra
// family, or SPEC-like — by name, or nil if the name is unknown.
func AppByName(name string) *App {
	if a := DataCenterApp(name); a != nil {
		return a
	}
	for _, s := range familySpecs() {
		if s.Config.Name == name {
			return MustNew(s.Config)
		}
	}
	for _, a := range SpecApps() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
