package cache

import (
	"testing"
	"testing/quick"

	"github.com/whisper-sim/whisper/internal/xrand"
)

func TestBasicHitMiss(t *testing.T) {
	c := New("t", 8*1024, 8)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1010) { // same line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("next-line access hit")
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %v", c.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache with a handful of sets: fill one set with 2 lines,
	// access a third mapping to the same set, check the LRU victim.
	c := New("t", 2*LineSize*4, 2) // 4 sets, 2 ways
	sets := uint64(c.Sets())
	a := uint64(0)
	b := a + sets*LineSize   // same set as a
	d := a + 2*sets*LineSize // same set again
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Probe(b) {
		t.Fatal("b not evicted")
	}
	if !c.Probe(d) {
		t.Fatal("d not inserted")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New("t", 2*LineSize*2, 2) // 2 sets, 2 ways
	sets := uint64(c.Sets())
	a, b, d := uint64(0), sets*LineSize, 2*sets*LineSize
	c.Access(a)
	c.Access(b) // b MRU, a LRU
	for i := 0; i < 10; i++ {
		c.Probe(a) // must not refresh a
	}
	c.Access(d) // should evict a (still LRU)
	if c.Probe(a) {
		t.Fatal("Probe refreshed LRU state")
	}
	if c.Accesses() != 3 {
		t.Fatalf("Probe counted as access: %d", c.Accesses())
	}
}

func TestInsertPrefetchPath(t *testing.T) {
	c := New("t", 8*1024, 8)
	c.Insert(0x2000)
	if c.Accesses() != 0 {
		t.Fatal("Insert counted as access")
	}
	if !c.Access(0x2000) {
		t.Fatal("inserted line missed")
	}
}

func TestCapacitySweep(t *testing.T) {
	// Working set larger than the cache must thrash; smaller must fit.
	c := New("t", 32*1024, 8)
	lines := 32 * 1024 / LineSize
	// Fit: working set = half capacity, round-robin.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines/2; i++ {
			c.Access(uint64(i) * LineSize)
		}
	}
	if c.MissRate() > 0.4 {
		t.Fatalf("fitting working set thrashed: %v", c.MissRate())
	}
	c.Reset()
	// Thrash: working set = 4x capacity with LRU and sequential sweep.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines*4; i++ {
			c.Access(uint64(i) * LineSize)
		}
	}
	if c.MissRate() < 0.9 {
		t.Fatalf("oversized sweep did not thrash: %v", c.MissRate())
	}
}

func TestResetClears(t *testing.T) {
	c := New("t", 8*1024, 8)
	c.Access(0x3000)
	c.Reset()
	if c.Probe(0x3000) || c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 0, 8) },
		func() { New("x", 6*LineSize, 2) }, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLRUInvariantProperty(t *testing.T) {
	// Property: after any access sequence, each set's LRU ranks are a
	// permutation of 0..ways-1 over valid ways (ranks unique).
	f := func(seed uint64) bool {
		c := New("p", 4*1024, 4)
		r := xrand.New(seed)
		for i := 0; i < 2000; i++ {
			c.Access(uint64(r.Intn(1 << 14)))
		}
		for s := 0; s < c.Sets(); s++ {
			seen := map[uint8]bool{}
			for w := 0; w < c.Ways(); w++ {
				i := s*c.Ways() + w
				if !c.valid[i] {
					continue
				}
				if seen[c.lru[i]] {
					return false
				}
				seen[c.lru[i]] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy("L1i")
	if got := h.Access(0x400000); got != Memory {
		t.Fatalf("cold access served by %v", got)
	}
	if got := h.Access(0x400000); got != L1 {
		t.Fatalf("warm access served by %v", got)
	}
	// Evict from L1 by sweeping > 32KB of lines; line should be in L2.
	for i := 0; i < 2*32*1024/LineSize; i++ {
		h.Access(0x800000 + uint64(i)*LineSize)
	}
	if got := h.Access(0x400000); got != L2 {
		t.Fatalf("L1-evicted access served by %v", got)
	}
}

func TestHierarchyPrefetch(t *testing.T) {
	h := NewHierarchy("L1i")
	lvl := h.Prefetch(0x500000)
	if lvl != Memory {
		t.Fatalf("cold prefetch source %v", lvl)
	}
	if got := h.Access(0x500000); got != L1 {
		t.Fatalf("prefetched line served by %v", got)
	}
}

func TestLatency(t *testing.T) {
	lat := DefaultLatency()
	if lat.Cycles(L1) >= lat.Cycles(L2) || lat.Cycles(L2) >= lat.Cycles(L3) ||
		lat.Cycles(L3) >= lat.Cycles(Memory) {
		t.Fatal("latencies not monotone")
	}
	if L2.String() != "L2" || Memory.String() != "mem" {
		t.Fatal("level names wrong")
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New("b", 32*1024, 8)
	r := xrand.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}
