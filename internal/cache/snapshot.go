package cache

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/snap"
)

// Clone returns a deep copy of the cache. The clone and the original
// share no mutable state.
func (c *Cache) Clone() *Cache {
	d := *c
	d.tags = append([]uint64(nil), c.tags...)
	d.valid = append([]bool(nil), c.valid...)
	d.lru = append([]uint8(nil), c.lru...)
	return &d
}

// AppendState encodes the cache's functional contents (tags, valid
// bits, LRU ranks) in canonical form. The demand counters are
// deliberately excluded: they are observational, never feed back into
// hit/miss behavior, and the windowed engine accounts them as
// per-window deltas. Two caches with equal AppendState bytes behave
// identically on any future access sequence.
func (c *Cache) AppendState(b []byte) []byte {
	b = snap.U32(b, uint32(len(c.tags)))
	for _, t := range c.tags {
		b = snap.U64(b, t)
	}
	for i := range c.valid {
		b = snap.Bool(b, c.valid[i])
	}
	for _, r := range c.lru {
		b = snap.U8(b, r)
	}
	return b
}

// ReadState restores contents written by AppendState into a cache of
// the same geometry.
func (c *Cache) ReadState(r *snap.Reader) error {
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(c.tags) {
		return fmt.Errorf("cache %s: snapshot has %d lines, want %d", c.name, n, len(c.tags))
	}
	for i := range c.tags {
		c.tags[i] = r.U64()
	}
	for i := range c.valid {
		c.valid[i] = r.Bool()
	}
	for i := range c.lru {
		c.lru[i] = r.U8()
	}
	return r.Err()
}

// Clone returns a deep copy of the hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{L1c: h.L1c.Clone(), L2c: h.L2c.Clone(), L3c: h.L3c.Clone()}
}

// AppendState encodes all three levels canonically.
func (h *Hierarchy) AppendState(b []byte) []byte {
	b = h.L1c.AppendState(b)
	b = h.L2c.AppendState(b)
	return h.L3c.AppendState(b)
}

// ReadState restores all three levels.
func (h *Hierarchy) ReadState(r *snap.Reader) error {
	if err := h.L1c.ReadState(r); err != nil {
		return err
	}
	if err := h.L2c.ReadState(r); err != nil {
		return err
	}
	return h.L3c.ReadState(r)
}
