// Package cache provides a generic set-associative LRU cache model and the
// L1i/L1d/L2/L3 hierarchy of the paper's simulated machine (Table II:
// 32KB 8-way L1i, 32KB 8-way L1d, 1MB 16-way unified L2, 10MB 20-way
// shared L3).
//
// The model tracks presence only — it answers "which level served this
// access" so the pipeline model can charge the corresponding latency.
package cache

import "fmt"

// LineSize is the cache line size in bytes for every level.
const LineSize = 64

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name     string
	sets     int
	ways     int
	setMask  uint64
	setShift uint
	// tags[set*ways+way]; lru holds per-set recency ranks (lower = older).
	tags  []uint64
	valid []bool
	lru   []uint8

	accesses uint64
	misses   uint64
}

// New creates a cache of the given total size and associativity.
// sizeBytes must be a multiple of ways*LineSize with a power-of-two number
// of sets.
func New(name string, sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: size and ways must be positive")
	}
	lines := sizeBytes / LineSize
	sets := lines / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets not a positive power of two", name, sets))
	}
	if ways > 255 {
		panic("cache: ways > 255 unsupported")
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		setMask:  uint64(sets - 1),
		setShift: uint(log2(sets)),
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		lru:      make([]uint8, sets*ways),
	}
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(addr uint64) (set uint64, tag uint64) {
	line := addr / LineSize
	return line & c.setMask, line >> c.setShift
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Access looks up addr, inserting it on a miss (allocate-on-miss), and
// reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	set, tag := c.setOf(addr)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.touch(base, w)
			return true
		}
	}
	c.misses++
	c.insert(base, tag)
	return false
}

// Probe reports whether addr is present without updating LRU state or
// counters.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.setOf(addr)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Insert places addr in the cache without counting an access (prefetch
// fill path).
func (c *Cache) Insert(addr uint64) {
	set, tag := c.setOf(addr)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.touch(base, w)
			return
		}
	}
	c.insert(base, tag)
}

// touch marks way w in the set starting at base as most recently used.
func (c *Cache) touch(base, w int) {
	old := c.lru[base+w]
	mru := uint8(c.ways - 1)
	if old == mru {
		// Already most recent: no rank above old exists, so the rewrite
		// below would be a no-op. Hot lines hit this path constantly.
		return
	}
	for i := 0; i < c.ways; i++ {
		if c.lru[base+i] > old {
			c.lru[base+i]--
		}
	}
	c.lru[base+w] = mru
}

// insert allocates tag into the LRU way of the set starting at base.
func (c *Cache) insert(base int, tag uint64) {
	victim := 0
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.touch(base, victim)
}

// Accesses returns the total number of counted lookups.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the total number of counted misses.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	c.accesses = 0
	c.misses = 0
}

// Level identifies which level of the hierarchy served an access.
type Level int

// Hierarchy levels, ordered by distance from the core.
const (
	L1 Level = iota
	L2
	L3
	Memory
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "mem"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Latency holds per-level access latencies in cycles.
type Latency struct {
	L1, L2, L3, Memory int
}

// DefaultLatency reflects a contemporary server part: 2-cycle L1,
// 14-cycle L2, 46-cycle L3, 200-cycle memory.
func DefaultLatency() Latency { return Latency{L1: 2, L2: 14, L3: 46, Memory: 200} }

// Cycles returns the latency for the given serving level.
func (lat Latency) Cycles(l Level) int {
	switch l {
	case L1:
		return lat.L1
	case L2:
		return lat.L2
	case L3:
		return lat.L3
	default:
		return lat.Memory
	}
}

// Hierarchy models an L1 (instruction or data) backed by unified L2 and
// shared L3.
type Hierarchy struct {
	L1c, L2c, L3c *Cache
}

// NewHierarchy builds the Table II hierarchy for one L1.
func NewHierarchy(l1Name string) *Hierarchy {
	return &Hierarchy{
		L1c: New(l1Name, 32*1024, 8),
		L2c: New("L2", 1024*1024, 16),
		L3c: New("L3", 10*1024*1024, 20),
	}
}

// Access walks the hierarchy, filling lines on the way back, and returns
// the level that served the access.
func (h *Hierarchy) Access(addr uint64) Level {
	if h.L1c.Access(addr) {
		return L1
	}
	if h.L2c.Access(addr) {
		return L2
	}
	if h.L3c.Access(addr) {
		return L3
	}
	return Memory
}

// Prefetch fills addr into L1 (and below) without counting a demand
// access at L1, returning the level the line came from so the frontend
// can model partial hiding.
func (h *Hierarchy) Prefetch(addr uint64) Level {
	served := Memory
	if h.L2c.Access(addr) {
		served = L2
	} else if h.L3c.Access(addr) {
		served = L3
	}
	h.L1c.Insert(addr)
	return served
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1c.Reset()
	h.L2c.Reset()
	h.L3c.Reset()
}
