package trace

// DefaultBlockSize is the record-block granularity of the batched
// simulation engine: large enough to amortize per-block dispatch, small
// enough that the parallel slices of one block stay cache-resident.
const DefaultBlockSize = 4096

// Block is a reusable fixed-capacity batch of records in
// structure-of-arrays layout: the i-th record is
// (PC[i], Target[i], Kind[i], Taken[i], Instrs[i]) for i < N. Producers
// fill blocks (see Fill and the BlockFiller interface) and the batched
// pipeline consumes them whole, so the per-record interface dispatch of
// the scalar Stream protocol disappears from the hot loop.
type Block struct {
	PC     []uint64
	Target []uint64
	Kind   []Kind
	Taken  []bool
	Instrs []uint32
	// N is the number of valid records; the slices are sized to the
	// block's fixed capacity.
	N int
}

// NewBlock allocates a block with the given capacity (DefaultBlockSize
// when size <= 0).
func NewBlock(size int) *Block {
	if size <= 0 {
		size = DefaultBlockSize
	}
	return &Block{
		PC:     make([]uint64, size),
		Target: make([]uint64, size),
		Kind:   make([]Kind, size),
		Taken:  make([]bool, size),
		Instrs: make([]uint32, size),
	}
}

// Cap returns the block's fixed capacity.
func (b *Block) Cap() int { return len(b.PC) }

// Reset empties the block for reuse.
func (b *Block) Reset() { b.N = 0 }

// Append adds one record; it panics when the block is full.
func (b *Block) Append(rec *Record) {
	i := b.N
	b.PC[i] = rec.PC
	b.Target[i] = rec.Target
	b.Kind[i] = rec.Kind
	b.Taken[i] = rec.Taken
	b.Instrs[i] = rec.Instrs
	b.N = i + 1
}

// Record materializes record i into rec.
func (b *Block) Record(i int, rec *Record) {
	rec.PC = b.PC[i]
	rec.Target = b.Target[i]
	rec.Kind = b.Kind[i]
	rec.Taken = b.Taken[i]
	rec.Instrs = b.Instrs[i]
}

// Records copies the block's contents into a fresh slice (test helper).
func (b *Block) Records() []Record {
	out := make([]Record, b.N)
	for i := range out {
		b.Record(i, &out[i])
	}
	return out
}

// BlockFiller is implemented by streams that can fill a whole block
// without going through the per-record Next protocol (the synthetic
// workload generator does). FillBlock resets b, appends up to Cap()
// records, and returns b.N; zero means end of stream. Records delivered
// through FillBlock and Next must be identical.
type BlockFiller interface {
	FillBlock(b *Block) int
}

// Fill loads the next block from s: via the producer's own FillBlock
// when available, otherwise by draining Next into the block. It returns
// the number of records filled; zero means end of stream.
func Fill(s Stream, b *Block) int {
	if f, ok := s.(BlockFiller); ok {
		return f.FillBlock(b)
	}
	b.Reset()
	var rec Record
	for b.N < b.Cap() && s.Next(&rec) {
		b.Append(&rec)
	}
	return b.N
}
