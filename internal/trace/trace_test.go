package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"github.com/whisper-sim/whisper/internal/xrand"
)

func randomRecords(seed uint64, n int) []Record {
	r := xrand.New(seed)
	recs := make([]Record, n)
	pc := uint64(0x400000)
	for i := range recs {
		pc += uint64(4 * (1 + r.Intn(32)))
		recs[i] = Record{
			PC:     pc,
			Target: pc + uint64(int64(r.Intn(8192))-4096),
			Kind:   Kind(r.Intn(int(numKinds))),
			Taken:  r.Bool(0.6),
			Instrs: uint32(r.Intn(64)),
		}
	}
	return recs
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		CondBranch: "cond", UncondDirect: "jmp", Call: "call",
		Return: "ret", IndirectJump: "ijmp",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind string")
	}
	if Kind(99).Valid() {
		t.Fatal("Kind(99) should be invalid")
	}
}

func TestSliceStream(t *testing.T) {
	recs := randomRecords(1, 10)
	s := NewSliceStream(recs)
	got := Collect(s, 0)
	if len(got) != 10 {
		t.Fatalf("collected %d records", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	var r Record
	if s.Next(&r) {
		t.Fatal("stream not exhausted")
	}
	s.Reset()
	if !s.Next(&r) || r != recs[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestCollectMax(t *testing.T) {
	s := NewSliceStream(randomRecords(2, 100))
	if got := Collect(s, 7); len(got) != 7 {
		t.Fatalf("Collect(7) returned %d", len(got))
	}
}

func TestLimit(t *testing.T) {
	s := NewLimit(NewSliceStream(randomRecords(3, 100)), 5)
	if got := Collect(s, 0); len(got) != 5 {
		t.Fatalf("Limit(5) produced %d", len(got))
	}
	zero := NewLimit(NewSliceStream(randomRecords(3, 10)), 0)
	var r Record
	if zero.Next(&r) {
		t.Fatal("Limit(0) produced a record")
	}
}

func TestCountInstructions(t *testing.T) {
	recs := []Record{{Instrs: 3}, {Instrs: 0}, {Instrs: 10}}
	if got := CountInstructions(recs); got != 16 {
		t.Fatalf("CountInstructions = %d, want 16", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := randomRecords(4, 5000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecCompactness(t *testing.T) {
	recs := randomRecords(5, 1000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	perRec := float64(buf.Len()) / float64(len(recs))
	if perRec > 10 {
		t.Fatalf("codec uses %.1f bytes/record, expected < 10", perRec)
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("XXXX....")))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("WB")))
	if err == nil {
		t.Fatal("expected error on short header")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	recs := randomRecords(6, 3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range recs {
		w.Write(&recs[i])
	}
	w.Flush()
	// Drop the last 2 bytes.
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	n := 0
	for r.Next(&rec) {
		n++
	}
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	if n >= 3 {
		t.Fatalf("decoded %d records from truncated input", n)
	}
}

func TestWriterRejectsInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	err := w.Write(&Record{Kind: Kind(200)})
	if err == nil {
		t.Fatal("expected error for invalid kind")
	}
}

func TestReaderCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if r.Next(&rec) {
		t.Fatal("empty trace produced a record")
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF produced error %v", r.Err())
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		recs := randomRecords(seed, 64)
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for i := range recs {
			if w.Write(&recs[i]) != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got := Collect(r, 0)
		if r.Err() != nil || len(got) != len(recs) {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriter(b *testing.B) {
	recs := randomRecords(7, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, _ := NewWriter(io.Discard)
		for j := range recs {
			w.Write(&recs[j])
		}
		w.Flush()
	}
}

func BenchmarkReader(b *testing.B) {
	recs := randomRecords(8, 1024)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range recs {
		w.Write(&recs[i])
	}
	w.Flush()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(bytes.NewReader(data))
		var rec Record
		for r.Next(&rec) {
		}
	}
}
