package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip checks the codec on arbitrary bytes: decoding
// never panics, and any stream that decodes cleanly (valid header, no
// decode error) re-encodes byte-identically — the reader accepts
// exactly the writer's canonical output.
func FuzzTraceRoundTrip(f *testing.F) {
	encode := func(recs []Record) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			f.Fatal(err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(encode(nil))
	f.Add(encode([]Record{
		{PC: 0x401000, Target: 0x401050, Kind: CondBranch, Taken: true, Instrs: 5},
		{PC: 0x401050, Target: 0x400000, Kind: Return, Taken: true, Instrs: 0},
		{PC: 0x3f0000, Target: 0x401000, Kind: IndirectJump, Taken: true, Instrs: 1<<32 - 1},
	}))
	f.Add([]byte("WBT1"))
	f.Add([]byte("WBT1\x00"))
	f.Add([]byte("XXXX"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad or short magic: rejected before any decode
		}
		var recs []Record
		var rec Record
		for r.Next(&rec) {
			recs = append(recs, rec)
		}
		if r.Err() != nil {
			return // corrupt or truncated input, correctly refused
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatalf("decoded record %d fails to encode: %v", i, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("decode/encode not identity (%d records):\nin  %x\nout %x",
				len(recs), data, buf.Bytes())
		}
	})
}
