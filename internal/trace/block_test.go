package trace

import "testing"

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:     0x4000 + uint64(i)*4,
			Target: 0x8000 + uint64(i)*8,
			Kind:   Kind(i % 5),
			Taken:  i%3 == 0,
			Instrs: uint32(i % 11),
		}
	}
	return recs
}

func TestBlockRoundTrip(t *testing.T) {
	b := NewBlock(8)
	if b.Cap() != 8 {
		t.Fatalf("cap %d", b.Cap())
	}
	recs := sampleRecords(8)
	for i := range recs {
		b.Append(&recs[i])
	}
	if b.N != 8 {
		t.Fatalf("N %d", b.N)
	}
	var rec Record
	for i := range recs {
		b.Record(i, &rec)
		if rec != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, rec, recs[i])
		}
	}
	got := b.Records()
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("Records()[%d] mismatch", i)
		}
	}
	b.Reset()
	if b.N != 0 {
		t.Fatal("reset")
	}
}

func TestNewBlockDefaultsSize(t *testing.T) {
	if got := NewBlock(0).Cap(); got != DefaultBlockSize {
		t.Fatalf("cap %d != %d", got, DefaultBlockSize)
	}
	if got := NewBlock(-5).Cap(); got != DefaultBlockSize {
		t.Fatalf("cap %d != %d", got, DefaultBlockSize)
	}
}

// TestFillDrainsStream checks the generic Next-based Fill path,
// including the partial tail block.
func TestFillDrainsStream(t *testing.T) {
	recs := sampleRecords(25)
	s := NewSliceStream(recs)
	b := NewBlock(7)
	var got []Record
	for Fill(s, b) > 0 {
		got = append(got, b.Records()...)
	}
	if len(got) != len(recs) {
		t.Fatalf("drained %d of %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// fillerStream exercises the BlockFiller delegation path.
type fillerStream struct {
	recs []Record
	pos  int
}

func (f *fillerStream) Next(rec *Record) bool {
	if f.pos >= len(f.recs) {
		return false
	}
	*rec = f.recs[f.pos]
	f.pos++
	return true
}

func (f *fillerStream) FillBlock(b *Block) int {
	b.Reset()
	for f.pos < len(f.recs) && b.N < b.Cap() {
		b.Append(&f.recs[f.pos])
		f.pos++
	}
	return b.N
}

func TestFillUsesBlockFiller(t *testing.T) {
	recs := sampleRecords(10)
	f := &fillerStream{recs: recs}
	b := NewBlock(4)
	var got []Record
	for Fill(f, b) > 0 {
		got = append(got, b.Records()...)
	}
	if len(got) != len(recs) {
		t.Fatalf("drained %d of %d", len(got), len(recs))
	}
}
