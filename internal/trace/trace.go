// Package trace defines the retired-branch record stream that every other
// component of the simulator consumes, plus a compact binary codec that
// plays the role of an Intel PT-style trace file.
//
// A Record corresponds to one retired control-flow instruction. The
// non-branch instructions executed since the previous record are carried on
// the record (Instrs), which is what lets the harness compute branch-MPKI
// and IPC without materializing every instruction.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind classifies a control-flow instruction.
type Kind uint8

const (
	// CondBranch is a conditional direct branch; the only kind that the
	// direction predictors are scored on (CBP-5 methodology).
	CondBranch Kind = iota
	// UncondDirect is an unconditional direct jump.
	UncondDirect
	// Call is a direct call (pushes a return address).
	Call
	// Return pops the return-address stack.
	Return
	// IndirectJump is an indirect jump or indirect call.
	IndirectJump

	numKinds
)

// String returns the short human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case CondBranch:
		return "cond"
	case UncondDirect:
		return "jmp"
	case Call:
		return "call"
	case Return:
		return "ret"
	case IndirectJump:
		return "ijmp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined Kind.
func (k Kind) Valid() bool { return k < numKinds }

// Record is one retired control-flow instruction.
type Record struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Target is the address control transfers to when the branch is
	// taken (or the next sequential PC for a not-taken conditional).
	Target uint64
	// Kind classifies the instruction.
	Kind Kind
	// Taken is the resolved direction. Always true for unconditional
	// kinds.
	Taken bool
	// Instrs is the number of non-branch instructions retired since the
	// previous record (the sequential run leading up to this branch).
	Instrs uint32
}

// Stream produces records one at a time. Next fills rec and reports
// whether a record was produced; it returns false at end of stream.
type Stream interface {
	Next(rec *Record) bool
}

// SliceStream adapts a []Record to the Stream interface.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream returns a Stream over recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next(rec *Record) bool {
	if s.pos >= len(s.recs) {
		return false
	}
	*rec = s.recs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Collect drains up to max records from s (all records if max <= 0).
func Collect(s Stream, max int) []Record {
	var out []Record
	var r Record
	for s.Next(&r) {
		out = append(out, r)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// CountInstructions returns the total number of retired instructions
// represented by recs: every record is itself one instruction plus its
// preceding sequential run.
func CountInstructions(recs []Record) uint64 {
	var total uint64
	for i := range recs {
		total += uint64(recs[i].Instrs) + 1
	}
	return total
}

// Limit wraps s, producing at most n records.
type Limit struct {
	s Stream
	n int
}

// NewLimit returns a stream producing at most n records from s.
func NewLimit(s Stream, n int) *Limit { return &Limit{s: s, n: n} }

// Next implements Stream.
func (l *Limit) Next(rec *Record) bool {
	if l.n <= 0 {
		return false
	}
	l.n--
	return l.s.Next(rec)
}

// --- Binary codec -----------------------------------------------------
//
// The on-disk format is a stand-in for a decoded Intel PT trace:
//
//	magic "WBT1" | then per record:
//	  varint  pc delta (zigzag from previous pc)
//	  varint  target delta (zigzag from pc)
//	  byte    kind<<1 | taken
//	  varint  instrs
//
// Deltas keep typical records to a few bytes, like real PT packets.

var magic = [4]byte{'W', 'B', 'T', '1'}

// ErrBadMagic is returned by NewReader when the input does not begin with
// the trace file magic.
var ErrBadMagic = errors.New("trace: bad magic")

// Writer encodes records to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	wrote  bool
	buf    [binary.MaxVarintLen64]byte
}

// NewWriter creates a Writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write encodes one record.
func (w *Writer) Write(rec *Record) error {
	if !rec.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", rec.Kind)
	}
	if err := w.putUvarint(zigzag(int64(rec.PC - w.prevPC))); err != nil {
		return err
	}
	if err := w.putUvarint(zigzag(int64(rec.Target - rec.PC))); err != nil {
		return err
	}
	b := byte(rec.Kind) << 1
	if rec.Taken {
		b |= 1
	}
	if err := w.w.WriteByte(b); err != nil {
		return err
	}
	if err := w.putUvarint(uint64(rec.Instrs)); err != nil {
		return err
	}
	w.prevPC = rec.PC
	w.wrote = true
	return nil
}

// Flush flushes buffered output. Must be called before the underlying
// writer is closed.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes records from an io.Reader and implements Stream.
//
// The reader accepts exactly the writer's output: varints must be
// minimal-length, so any stream that decodes cleanly re-encodes
// byte-identically (the property the fuzz harness checks).
type Reader struct {
	r      *bufio.Reader
	prevPC uint64
	err    error
}

// errNonMinimal marks a padded varint; the writer never emits one.
var errNonMinimal = errors.New("trace: non-minimal varint")

// readUvarint reads one canonical uvarint. A clean EOF before the first
// byte propagates as io.EOF; EOF mid-varint becomes ErrUnexpectedEOF.
func (r *Reader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		c, err := r.r.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i == 9 {
			if c != 1 {
				return 0, fmt.Errorf("trace: varint overflows uint64")
			}
			return x | uint64(c)<<s, nil
		}
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, errNonMinimal
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next implements Stream. After it returns false, Err distinguishes clean
// EOF from corruption.
func (r *Reader) Next(rec *Record) bool {
	if r.err != nil {
		return false
	}
	dpc, err := r.readUvarint()
	if err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("trace: truncated record: %w", err)
		}
		return false
	}
	dtgt, err := r.readUvarint()
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	kb, err := r.r.ReadByte()
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	instrs, err := r.readUvarint()
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	if instrs > 1<<32-1 {
		r.err = fmt.Errorf("trace: instrs field %d overflows uint32", instrs)
		return false
	}
	kind := Kind(kb >> 1)
	if !kind.Valid() {
		r.err = fmt.Errorf("trace: invalid kind byte %#x", kb)
		return false
	}
	pc := r.prevPC + uint64(unzigzag(dpc))
	rec.PC = pc
	rec.Target = pc + uint64(unzigzag(dtgt))
	rec.Kind = kind
	rec.Taken = kb&1 != 0
	rec.Instrs = uint32(instrs)
	r.prevPC = pc
	return true
}

// Err returns the first decoding error encountered, or nil on clean EOF.
func (r *Reader) Err() error { return r.err }
