package sim

// Cross-module integration tests: the binary trace codec, the workload
// generator, the profiler, and the pipeline must compose without changing
// results — a trace written to disk and read back is the same experiment.

import (
	"bytes"
	"testing"

	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// roundTrip encodes an app window through the binary codec and returns a
// stream factory over the decoded bytes.
func roundTrip(t *testing.T, app *workload.App, input, records int) func() trace.Stream {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := app.Stream(input, records)
	var rec trace.Record
	n := 0
	for s.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n != records {
		t.Fatalf("encoded %d of %d records", n, records)
	}
	data := buf.Bytes()
	return func() trace.Stream {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
}

func TestTraceFileEquivalentPipelineResults(t *testing.T) {
	app := workload.DataCenterApp("drupal")
	const n = 60000
	popt := pipeline.Options{Config: pipeline.DefaultConfig(), WarmupRecords: n / 5}

	direct := pipeline.Run(app.Stream(0, n), tage.New(tage.DefaultConfig()), popt)
	mk := roundTrip(t, app, 0, n)
	fromFile := pipeline.Run(mk(), tage.New(tage.DefaultConfig()), popt)

	if direct.CondMisp != fromFile.CondMisp ||
		direct.Cycles != fromFile.Cycles ||
		direct.Instrs != fromFile.Instrs {
		t.Fatalf("trace round-trip changed results: direct %+v vs file %+v",
			direct, fromFile)
	}
}

func TestTraceFileEquivalentProfiles(t *testing.T) {
	app := workload.DataCenterApp("tomcat")
	const n = 50000
	opt := profiler.DefaultOptions()

	p1, err := profiler.Collect(func() trace.Stream { return app.Stream(0, n) },
		tage.New(tage.DefaultConfig()), opt)
	if err != nil {
		t.Fatal(err)
	}
	mk := roundTrip(t, app, 0, n)
	p2, err := profiler.Collect(mk, tage.New(tage.DefaultConfig()), opt)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Mispreds != p2.Mispreds || p1.CondExecs != p2.CondExecs {
		t.Fatalf("profiles differ: %d/%d vs %d/%d",
			p1.Mispreds, p1.CondExecs, p2.Mispreds, p2.CondExecs)
	}
	if len(p1.Hard) != len(p2.Hard) {
		t.Fatalf("hard sets differ: %d vs %d", len(p1.Hard), len(p2.Hard))
	}
	for pc, h1 := range p1.Hard {
		h2, ok := p2.Hard[pc]
		if !ok {
			t.Fatalf("branch %#x missing from file-backed profile", pc)
		}
		if h1.Misp != h2.Misp || h1.Execs != h2.Execs {
			t.Fatalf("branch %#x stats differ", pc)
		}
		for i := range p1.Lengths {
			if h1.T[i] != h2.T[i] || h1.NT[i] != h2.NT[i] {
				t.Fatalf("branch %#x histograms differ at length %d", pc, p1.Lengths[i])
			}
		}
	}
}

func TestWhisperFromFileBackedProfileMatches(t *testing.T) {
	// Training from a file-backed stream must produce the same hints as
	// training from the generator directly.
	app := workload.DataCenterApp("cassandra")
	const n = 60000

	direct, err := BuildWhisper(app, BuildOptions{Records: n})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild by hand from the decoded trace.
	mk := roundTrip(t, app, 0, n)
	prof, err := profiler.Collect(mk, Tage64KB(), profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Hard) != len(direct.Profile.Hard) {
		t.Fatalf("hard sets differ: %d vs %d", len(prof.Hard), len(direct.Profile.Hard))
	}
	if prof.Mispreds != direct.Profile.Mispreds {
		t.Fatalf("misprediction counts differ: %d vs %d",
			prof.Mispreds, direct.Profile.Mispreds)
	}
}
