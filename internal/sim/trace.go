package sim

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/cfg"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/trace"
)

// This file is the imported-trace mirror of the app-based flows: the
// same profile -> train -> inject -> evaluate pipeline, but driven by a
// buffered record slice (a decoded external trace) instead of a
// workload generator. External traces carry one fixed window, so the
// train and test streams are the same records; the evaluation answers
// "how much of this window's mispredictions would Whisper hints
// eliminate", the paper's profile-window upper-bound framing.

// RunTrace measures pred over a buffered record window.
func RunTrace(recs []trace.Record, pred bpu.Predictor, opt pipeline.Options) pipeline.Result {
	return pipeline.Run(trace.NewSliceStream(recs), pred, opt)
}

// ProfileTrace runs the profiling stage over a buffered record window.
func ProfileTrace(recs []trace.Record, opt BuildOptions) (*profiler.Profile, error) {
	opt = opt.normalize()
	mk := func() trace.Stream { return trace.NewSliceStream(recs) }
	prof, err := profiler.Collect(mk, opt.Baseline(), opt.Profiler)
	if err != nil {
		return nil, fmt.Errorf("sim: profiling trace: %w", err)
	}
	return prof, nil
}

// BuildWhisperTrace is the fused offline flow over a buffered record
// window. Like BuildWhisper it decomposes into ProfileTrace, core.Train
// and AssembleTraceHints with bit-identical results.
func BuildWhisperTrace(recs []trace.Record, opt BuildOptions) (*WhisperBuild, error) {
	opt = opt.normalize()
	prof, err := ProfileTrace(recs, opt)
	if err != nil {
		return nil, err
	}
	tr, err := core.Train(prof, opt.Params)
	if err != nil {
		return nil, fmt.Errorf("sim: training trace: %w", err)
	}
	b := AssembleTraceHints(recs, tr, prof.Instrs, opt)
	b.Profile = prof
	return b, nil
}

// AssembleTraceHints runs the link-time stage over a buffered record
// window: rebuild the window's dynamic CFG and inject the trained
// hints.
func AssembleTraceHints(recs []trace.Record, tr *core.TrainResult, windowInstrs uint64, opt BuildOptions) *WhisperBuild {
	opt = opt.normalize()
	g := cfg.Build(trace.NewSliceStream(recs))
	bin := core.Inject(tr, g, core.InjectOptions{
		Placement:    opt.Placement,
		StaticInstrs: traceStaticInstrs(recs),
		WindowInstrs: windowInstrs,
	})
	return &WhisperBuild{Train: tr, Graph: g, Binary: bin}
}

// traceStaticInstrs estimates the traced binary's static instruction
// count the same way staticInstrs does for synthetic apps: each
// distinct conditional branch PC stands for a ~6-instruction block.
func traceStaticInstrs(recs []trace.Record) uint64 {
	pcs := make(map[uint64]struct{})
	for i := range recs {
		if recs[i].Kind == trace.CondBranch {
			pcs[recs[i].PC] = struct{}{}
		}
	}
	return uint64(len(pcs)) * 6
}

// RunWhisperTrace measures the updated binary over the record window
// with a fresh baseline underneath; the options' Hook is overridden
// with the Whisper runtime.
func (b *WhisperBuild) RunWhisperTrace(recs []trace.Record, baseline PredictorFactory, opt pipeline.Options) (pipeline.Result, *core.Runtime) {
	if baseline == nil {
		baseline = Tage64KB
	}
	rt := core.NewRuntime(baseline(), b.Binary, b.Train.Lengths, 0)
	opt.Hook = rt
	res := pipeline.Run(trace.NewSliceStream(recs), rt, opt)
	return res, rt
}
