// Package sim wires workloads, predictors, and the pipeline model into
// the end-to-end flows the experiments (and the public API) repeat:
// profile an application in "production", train Whisper offline, inject
// hints into the binary, and measure the updated binary on a test input —
// the paper's Fig 10 usage model.
package sim

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/cfg"
	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/profiler"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// PredictorFactory builds a fresh baseline predictor for a run.
type PredictorFactory func() bpu.Predictor

// Tage64KB is the paper's default baseline factory.
func Tage64KB() bpu.Predictor { return tage.New(tage.DefaultConfig()) }

// TageSized returns a factory for a given TAGE-SC-L budget.
func TageSized(kb int) PredictorFactory {
	return func() bpu.Predictor { return tage.New(tage.Config{SizeKB: kb}) }
}

// RunApp measures pred over one (app, input) window.
func RunApp(app *workload.App, input, records int, pred bpu.Predictor, opt pipeline.Options) pipeline.Result {
	return pipeline.Run(app.Stream(input, records), pred, opt)
}

// Speedup returns the IPC improvement of other over base as a fraction
// (0.028 = 2.8%).
func Speedup(base, other pipeline.Result) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return other.IPC()/base.IPC() - 1
}

// MispReduction returns the fraction of base's mispredictions that other
// eliminates (0.168 = 16.8%).
func MispReduction(base, other pipeline.Result) float64 {
	if base.CondMisp == 0 {
		return 0
	}
	return 1 - float64(other.CondMisp)/float64(base.CondMisp)
}

// WhisperBuild is everything Whisper produces for one application: the
// production profile, the trained hints, the dynamic CFG, and the updated
// binary.
type WhisperBuild struct {
	Profile *profiler.Profile
	Train   *core.TrainResult
	Graph   *cfg.Graph
	Binary  *core.Binary
}

// BuildOptions parameterize the end-to-end build.
type BuildOptions struct {
	// TrainInput is the workload input profiled in production (paper:
	// input #0).
	TrainInput int
	// Records is the profiled window length.
	Records int
	// Params are Whisper's design parameters.
	Params core.Params
	// Baseline builds the profiled (deployed) predictor.
	Baseline PredictorFactory
	// Profiler overrides hard-branch selection (zero value = defaults).
	Profiler profiler.Options
	// Placement overrides hint placement (zero value = defaults).
	Placement cfg.PlacementOptions
}

// DefaultBuildOptions mirror the paper's setup.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		TrainInput: 0,
		Records:    workload.ScaleSmall.Records(),
		Params:     core.DefaultParams(),
		Baseline:   Tage64KB,
		Profiler:   profiler.DefaultOptions(),
		Placement:  cfg.DefaultPlacementOptions(),
	}
}

// normalize fills unset build options with the paper defaults.
func (opt BuildOptions) normalize() BuildOptions {
	if opt.Baseline == nil {
		opt.Baseline = Tage64KB
	}
	if opt.Records <= 0 {
		opt.Records = workload.ScaleSmall.Records()
	}
	if opt.Params.NumLengths == 0 {
		opt.Params = core.DefaultParams()
	}
	if opt.Profiler.MinExecs == 0 && opt.Profiler.Lengths == nil {
		opt.Profiler = profiler.DefaultOptions()
	}
	if opt.Placement.MaxOffset == 0 && opt.Placement.MinPrecision == 0 {
		opt.Placement = cfg.DefaultPlacementOptions()
	}
	return opt
}

// BuildWhisper runs the full offline flow for one application. It is
// the fused form of the staged pipeline: ProfileApp, then core.Train,
// then AssembleWhisper — each stage's output can also be persisted in a
// store artifact and the pipeline resumed in another process with
// bit-identical results.
func BuildWhisper(app *workload.App, opt BuildOptions) (*WhisperBuild, error) {
	opt = opt.normalize()
	prof, err := ProfileApp(app, opt)
	if err != nil {
		return nil, err
	}
	tr, err := core.Train(prof, opt.Params)
	if err != nil {
		return nil, fmt.Errorf("sim: training %s: %w", app.Name(), err)
	}
	return AssembleWhisper(app, prof, tr, opt), nil
}

// ProfileApp runs the in-production profiling stage (paper Fig 10,
// step 1) for one application window.
func ProfileApp(app *workload.App, opt BuildOptions) (*profiler.Profile, error) {
	opt = opt.normalize()
	mk := func() trace.Stream { return app.Stream(opt.TrainInput, opt.Records) }
	prof, err := profiler.Collect(mk, opt.Baseline(), opt.Profiler)
	if err != nil {
		return nil, fmt.Errorf("sim: profiling %s: %w", app.Name(), err)
	}
	return prof, nil
}

// AssembleWhisper runs the link-time stage: build the CFG of the
// training window and inject the trained hints into it. prof supplies
// the window instruction count for overhead accounting.
func AssembleWhisper(app *workload.App, prof *profiler.Profile, tr *core.TrainResult, opt BuildOptions) *WhisperBuild {
	b := AssembleHints(app, tr, prof.Instrs, opt)
	b.Profile = prof
	return b
}

// AssembleHints is AssembleWhisper without the profile: the `whisper
// apply` path, where only the trained hint bundle (plus the window
// instruction count it carries) crossed the process boundary.
func AssembleHints(app *workload.App, tr *core.TrainResult, windowInstrs uint64, opt BuildOptions) *WhisperBuild {
	opt = opt.normalize()
	g := cfg.Build(app.Stream(opt.TrainInput, opt.Records))
	bin := core.Inject(tr, g, core.InjectOptions{
		Placement:    opt.Placement,
		StaticInstrs: staticInstrs(app),
		WindowInstrs: windowInstrs,
	})
	return &WhisperBuild{Train: tr, Graph: g, Binary: bin}
}

// staticInstrs estimates the original binary's static instruction count:
// each static branch sits in a block of its sequential run plus the
// branch itself.
func staticInstrs(app *workload.App) uint64 {
	// The synthetic blocks average ~6 instructions (24-byte blocks).
	return uint64(app.StaticBranches()) * 6
}

// RunWhisper measures the updated binary on the given input with a fresh
// baseline predictor underneath.
func (b *WhisperBuild) RunWhisper(app *workload.App, input, records int, baseline PredictorFactory, cfgP pipeline.Config) (pipeline.Result, *core.Runtime) {
	return b.RunWhisperWarm(app, input, records, baseline, pipeline.Options{Config: cfgP})
}

// RunWhisperWarm is RunWhisper with full pipeline options (warm-up etc.).
// The options' Hook is overridden with the Whisper runtime.
func (b *WhisperBuild) RunWhisperWarm(app *workload.App, input, records int, baseline PredictorFactory, opt pipeline.Options) (pipeline.Result, *core.Runtime) {
	if baseline == nil {
		baseline = Tage64KB
	}
	rt := core.NewRuntime(baseline(), b.Binary, b.Train.Lengths, 0)
	opt.Hook = rt
	res := pipeline.Run(app.Stream(input, records), rt, opt)
	return res, rt
}
