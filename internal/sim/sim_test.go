package sim

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/workload"
)

const testRecords = 100000

func TestRunAppAndMetrics(t *testing.T) {
	app := workload.DataCenterApp("postgres")
	base := RunApp(app, 0, testRecords, Tage64KB(), pipeline.Options{Config: pipeline.DefaultConfig()})
	ideal := RunApp(app, 0, testRecords, &bpu.Oracle{}, pipeline.Options{Config: pipeline.DefaultConfig()})
	if Speedup(base, ideal) <= 0 {
		t.Fatal("ideal speedup not positive")
	}
	if MispReduction(base, ideal) != 1 {
		t.Fatalf("ideal reduction %v, want 1", MispReduction(base, ideal))
	}
	if Speedup(base, base) != 0 || MispReduction(base, base) != 0 {
		t.Fatal("self-comparison not zero")
	}
}

func TestTageSizedFactory(t *testing.T) {
	p := TageSized(128)()
	if p.Name() != "tage-sc-l-128KB" {
		t.Fatalf("factory built %q", p.Name())
	}
}

func TestBuildWhisperEndToEnd(t *testing.T) {
	app := workload.DataCenterApp("mysql")
	opt := DefaultBuildOptions()
	opt.Records = testRecords
	b, err := BuildWhisper(app, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Train.Hints) == 0 {
		t.Fatal("no hints trained")
	}
	if b.Binary.Placed == 0 {
		t.Fatal("no hints placed")
	}

	base := RunApp(app, 0, testRecords, Tage64KB(), pipeline.Options{Config: pipeline.DefaultConfig()})
	res, rt := b.RunWhisper(app, 0, testRecords, Tage64KB, pipeline.DefaultConfig())
	if rt.HintPredictions == 0 {
		t.Fatal("whisper runtime unused")
	}
	red := MispReduction(base, res)
	sp := Speedup(base, res)
	t.Logf("same-input reduction %.1f%%, speedup %.2f%% (placed %d, dropped %d)",
		red*100, sp*100, b.Binary.Placed, b.Binary.Dropped)
	if red <= 0 {
		t.Fatalf("whisper did not reduce mispredictions (%.3f)", red)
	}
	if sp <= 0 {
		t.Fatalf("whisper did not speed up (%.4f)", sp)
	}
}

func TestBuildWhisperCrossInput(t *testing.T) {
	// Train on input #0, test on input #1 (the paper's methodology,
	// §V-A): the reduction must survive the input change.
	app := workload.DataCenterApp("clang")
	opt := DefaultBuildOptions()
	opt.Records = testRecords
	b, err := BuildWhisper(app, opt)
	if err != nil {
		t.Fatal(err)
	}
	base := RunApp(app, 1, testRecords, Tage64KB(), pipeline.Options{Config: pipeline.DefaultConfig()})
	res, _ := b.RunWhisper(app, 1, testRecords, Tage64KB, pipeline.DefaultConfig())
	red := MispReduction(base, res)
	t.Logf("cross-input reduction %.1f%%", red*100)
	if red <= 0 {
		t.Fatalf("cross-input reduction %.3f not positive", red)
	}
}

func TestBuildWhisperDefaultsFill(t *testing.T) {
	app := workload.DataCenterApp("kafka")
	b, err := BuildWhisper(app, BuildOptions{Records: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if b.Profile == nil || b.Train == nil || b.Graph == nil || b.Binary == nil {
		t.Fatal("incomplete build")
	}
}
