package sim

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/workload"
)

// TestFamilyCalibration pins the extra workload families (the
// transfer-study additions) inside the Table I catalog's difficulty
// envelope: at any common window, each family's 64KB TAGE-SC-L
// baseline MPKI must land between kafka (the catalog's easiest app)
// and python (its hardest), with the intended internal ordering
// (interp-dispatch hardest, rpc-chain easiest) and a positive
// same-input Whisper reduction. Measuring the endpoints at the same
// window keeps the check scale-independent: absolute MPKI shrinks as
// the window grows and cold effects amortize.
func TestFamilyCalibration(t *testing.T) {
	endpoint := func(name string) float64 {
		app := workload.DataCenterApp(name)
		res := RunApp(app, 0, testRecords, Tage64KB(), pipeline.Options{Config: pipeline.DefaultConfig()})
		return res.MPKI()
	}
	lo, hi := endpoint("kafka"), endpoint("python")
	mpki := make(map[string]float64)
	for _, app := range workload.FamilyApps() {
		base := RunApp(app, 0, testRecords, Tage64KB(), pipeline.Options{Config: pipeline.DefaultConfig()})
		m := base.MPKI()
		t.Logf("%s: baseline MPKI %.2f (%d static branches, envelope [%.2f, %.2f])",
			app.Name(), m, app.StaticBranches(), lo, hi)
		if m < lo || m > hi {
			t.Errorf("%s baseline MPKI %.2f outside the catalog envelope [%.2f, %.2f]", app.Name(), m, lo, hi)
		}
		mpki[app.Name()] = m

		opt := DefaultBuildOptions()
		opt.Records = testRecords
		b, err := BuildWhisper(app, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := b.RunWhisper(app, 0, testRecords, Tage64KB, pipeline.DefaultConfig())
		if red := MispReduction(base, res); red <= 0 {
			t.Errorf("%s whisper reduction %.3f not positive", app.Name(), red)
		}
	}
	if !(mpki["interp-dispatch"] > mpki["gc-mark"] && mpki["gc-mark"] > mpki["rpc-chain"]) {
		t.Errorf("family hardness ordering broken: %v", mpki)
	}
}

// TestAppByName resolves every catalogue tier and rejects unknowns.
func TestAppByName(t *testing.T) {
	for _, name := range []string{"mysql", "interp-dispatch", "gc-mark", "rpc-chain", "spec-gcc"} {
		a := workload.AppByName(name)
		if a == nil || a.Name() != name {
			t.Fatalf("AppByName(%q) = %v", name, a)
		}
	}
	if workload.AppByName("no-such-app") != nil {
		t.Fatal("AppByName accepted an unknown name")
	}
}
