package sim

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/whisper-sim/whisper/internal/core"
	"github.com/whisper-sim/whisper/internal/pipeline"
	"github.com/whisper-sim/whisper/internal/store"
	"github.com/whisper-sim/whisper/internal/workload"
)

// TestStagedMatchesFused is the store's core guarantee: running the
// pipeline in stages — profile, persist, reload, train, persist,
// reload, assemble — produces the same build and the same evaluation
// results as the fused BuildWhisper call, bit for bit.
func TestStagedMatchesFused(t *testing.T) {
	app := workload.DataCenterApp("mysql")
	opt := DefaultBuildOptions()
	opt.Records = 20000

	fused, err := BuildWhisper(app, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 1: profile, through a store round trip.
	prof, err := ProfileApp(workload.DataCenterApp("mysql"), opt)
	if err != nil {
		t.Fatal(err)
	}
	profArt := &store.Artifact{
		Meta:    store.Meta{App: app.Name(), Input: opt.TrainInput, Records: opt.Records},
		Profile: prof,
	}
	var buf bytes.Buffer
	if err := store.Write(&buf, profArt); err != nil {
		t.Fatal(err)
	}
	loadedProf, err := store.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// The accuracy pass keeps private warm-up counters that only matter
	// during collection and deliberately don't persist; the canonical
	// encoding covers exactly the fields training reads, so compare
	// fingerprints rather than raw structs.
	wantFP, err := store.Fingerprint(fused.Profile)
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := store.Fingerprint(loadedProf.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != wantFP {
		t.Fatal("persisted profile differs from the fused run's")
	}

	// Stage 2: train from the reloaded profile, through a round trip.
	tr, err := core.Train(loadedProf.Profile, opt.Params)
	if err != nil {
		t.Fatal(err)
	}
	hintArt := &store.Artifact{
		Meta:         loadedProf.Meta,
		Train:        tr,
		WindowInstrs: loadedProf.Profile.Instrs,
	}
	buf.Reset()
	if err := store.Write(&buf, hintArt); err != nil {
		t.Fatal(err)
	}
	loadedTr, err := store.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Training wall-clock is the one field that legitimately differs.
	wantTr := *fused.Train
	gotTr := *loadedTr.Train
	wantTr.Duration, gotTr.Duration = 0, 0
	if !reflect.DeepEqual(&gotTr, &wantTr) {
		t.Fatal("persisted train result differs from the fused run's")
	}

	// Stage 3: assemble from the hint bundle alone (the apply path).
	applyApp := workload.DataCenterApp(loadedTr.Meta.App)
	if applyApp == nil {
		t.Fatalf("meta names unknown app %q", loadedTr.Meta.App)
	}
	aopt := DefaultBuildOptions()
	aopt.TrainInput = loadedTr.Meta.Input
	aopt.Records = loadedTr.Meta.Records
	staged := AssembleHints(applyApp, loadedTr.Train, loadedTr.WindowInstrs, aopt)
	if !reflect.DeepEqual(staged.Binary, fused.Binary) {
		t.Fatal("staged binary differs from fused binary")
	}

	// Final check: identical evaluation numbers on the test input.
	popt := pipeline.Options{
		Config:        pipeline.DefaultConfig(),
		WarmupRecords: uint64(float64(opt.Records) * 0.3),
	}
	fusedRes, _ := fused.RunWhisperWarm(app, 1, opt.Records, Tage64KB, popt)
	stagedRes, _ := staged.RunWhisperWarm(applyApp, 1, opt.Records, Tage64KB, popt)
	if fusedRes != stagedRes {
		t.Fatalf("evaluation differs:\nfused  %+v\nstaged %+v", fusedRes, stagedRes)
	}
}
