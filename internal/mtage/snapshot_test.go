package mtage_test

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/mtage"
	"github.com/whisper-sim/whisper/internal/snaptest"
)

// TestSnapshotFidelity locks the bpu.Snapshotter contract the windowed
// pipeline engine depends on. MTAGE's open-addressed tables make
// canonical encoding the interesting property here: entries must be
// emitted in key order, not probe order.
func TestSnapshotFidelity(t *testing.T) {
	snaptest.Fidelity(t, func() bpu.Predictor { return mtage.New() }, nil)
}
