package mtage

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/tage"
	"github.com/whisper-sim/whisper/internal/xrand"
)

func TestImplementsPredictor(t *testing.T) {
	var _ bpu.Predictor = New()
}

func TestLearnsBias(t *testing.T) {
	p := New()
	correct := 0
	for i := 0; i < 1000; i++ {
		if p.Predict(0x400100) == true {
			correct++
		}
		p.Update(0x400100, true)
	}
	if correct < 990 {
		t.Fatalf("always-taken accuracy %d/1000", correct)
	}
}

func TestLearnsAlternation(t *testing.T) {
	p := New()
	correct := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if p.Predict(0x400100) == taken {
			correct++
		}
		p.Update(0x400100, taken)
	}
	if float64(correct)/2000 < 0.95 {
		t.Fatalf("alternation accuracy %d/2000", correct)
	}
}

func TestMemorizesLongPeriodicPattern(t *testing.T) {
	// A branch repeating a fixed random 2000-bit pattern: every 1024-bit
	// history window uniquely identifies the position, so the unlimited
	// predictor memorizes one substream per position and becomes nearly
	// perfect after two periods. A small TAGE cannot hold 2000 contexts.
	r := xrand.New(5)
	pattern := make([]bool, 2000)
	for i := range pattern {
		pattern[i] = r.Bool(0.5)
	}
	p := New()
	correct, total := 0, 0
	for i := 0; i < 30000; i++ {
		taken := pattern[i%len(pattern)]
		pred := p.Predict(0x400300)
		if i > 3*len(pattern) {
			if pred == taken {
				correct++
			}
			total++
		}
		p.Update(0x400300, taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Fatalf("long-pattern accuracy %v", acc)
	}
}

func TestNoCapacityPressure(t *testing.T) {
	// Tens of thousands of biased static branches: unlimited storage
	// retains them all; accuracy must stay high, unlike a small TAGE.
	r := xrand.New(6)
	p := New()
	small := tage.New(tage.Config{SizeKB: 8})
	biases := make(map[uint64]bool)
	score := func(pred bpu.Predictor) float64 {
		rr := xrand.New(7)
		correct, total := 0, 0
		for i := 0; i < 80000; i++ {
			pc := 0x400000 + uint64(rr.Intn(4000))*16
			b, ok := biases[pc]
			if !ok {
				b = r.Bool(0.5)
				biases[pc] = b
			}
			if i > 40000 {
				if pred.Predict(pc) == b {
					correct++
				}
				total++
			} else {
				pred.Predict(pc)
			}
			pred.Update(pc, b)
		}
		return float64(correct) / float64(total)
	}
	accUnlimited := score(p)
	accSmall := score(small)
	if accUnlimited < 0.97 {
		t.Fatalf("unlimited accuracy on biased population: %v", accUnlimited)
	}
	if accUnlimited <= accSmall {
		t.Fatalf("unlimited (%v) not better than 8KB TAGE (%v)", accUnlimited, accSmall)
	}
}

func TestEntriesGrow(t *testing.T) {
	p := New()
	r := xrand.New(8)
	for i := 0; i < 1000; i++ {
		pc := 0x400000 + uint64(i)*8
		p.Predict(pc)
		p.Update(pc, r.Bool(0.5))
	}
	if p.Entries() < 1000 {
		t.Fatalf("Entries = %d after 1000 distinct branches", p.Entries())
	}
}

func TestUpdateWithoutPredict(t *testing.T) {
	p := New()
	p.Update(0x400100, true) // must not panic
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New()
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i&4095)*8
		p.Predict(pc)
		p.Update(pc, r.Bool(0.5))
	}
}

// BenchmarkPredictUpdateBatch is the regression gate for the batch
// fast path: open-addressed tables probed once per component per
// record, with branchless counter updates. Compare against
// BenchmarkPredictUpdate to see the batch path's advantage.
func BenchmarkPredictUpdateBatch(b *testing.B) {
	const span = 4096
	p := New()
	r := xrand.New(1)
	pcs := make([]uint64, span)
	taken := make([]bool, span)
	miss := make([]bool, span)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(i)*8
		taken[i] = r.Bool(0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += span {
		n := span
		if rem := b.N - i; rem < n {
			n = rem
		}
		p.PredictUpdateBatch(pcs[:n], taken[:n], miss[:n])
	}
}
