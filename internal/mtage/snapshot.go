package mtage

import (
	"fmt"
	"sort"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/snap"
)

const snapVersion = 1

// appendSortedKeys encodes (key, value) pairs sorted by (pc, h) so the
// encoding is canonical regardless of table layout or insertion order.
func appendComp(b []byte, c *comp) []byte {
	order := make([]int, 0, c.live)
	for i, v := range c.vals {
		if v != emptySlot {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, bIdx int) bool {
		ka, kb := c.keys[order[a]], c.keys[order[bIdx]]
		if ka.pc != kb.pc {
			return ka.pc < kb.pc
		}
		return ka.h < kb.h
	})
	b = snap.U32(b, uint32(len(order)))
	for _, i := range order {
		b = snap.U64(b, c.keys[i].pc)
		b = snap.U64(b, c.keys[i].h)
		b = snap.U8(b, c.vals[i])
	}
	return b
}

func readComp(r *snap.Reader, c *comp) error {
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	*c = newComp()
	for i := 0; i < n; i++ {
		k := key{pc: r.U64(), h: r.U64()}
		v := r.U8()
		if v > 7 {
			return fmt.Errorf("mtage: counter value %d out of range", v)
		}
		slot, ok := c.find(k)
		if ok {
			return fmt.Errorf("mtage: duplicate key in snapshot")
		}
		c.insertAt(slot, k, v)
	}
	return r.Err()
}

// Snapshot implements bpu.Snapshotter: all mutable state in canonical
// (sorted-key) form. The Predict→Update metadata is transient and
// excluded; Restore clears it.
func (m *MTageSC) Snapshot() []byte {
	var b []byte
	b = snap.U32(b, uint32(len(m.comps)))
	for i := range m.comps {
		b = appendComp(b, &m.comps[i])
	}
	b = appendU64Ctr(b, m.base)
	b = appendU64U8(b, m.trust)
	b = bpu.AppendHistory(b, &m.hist)
	return snap.Seal(snap.KindMTAGE, snapVersion, b)
}

// Restore implements bpu.Snapshotter.
func (m *MTageSC) Restore(s []byte) error {
	payload, err := snap.Open(snap.KindMTAGE, snapVersion, s)
	if err != nil {
		return err
	}
	r := snap.NewReader(payload)
	if n := int(r.U32()); n != len(m.comps) {
		return fmt.Errorf("mtage: %d components, want %d", n, len(m.comps))
	}
	comps := make([]comp, len(m.comps))
	for i := range comps {
		if err := readComp(r, &comps[i]); err != nil {
			return err
		}
	}
	base, err := readU64Ctr(r)
	if err != nil {
		return err
	}
	trust, err := readU64U8(r)
	if err != nil {
		return err
	}
	bpu.ReadHistory(r, &m.hist)
	if err := r.Done(); err != nil {
		return err
	}
	m.comps = comps
	m.base = base
	m.trust = trust
	m.last.valid = false
	return nil
}

func sortedU64[V any](mp map[uint64]V) []uint64 {
	ks := make([]uint64, 0, len(mp))
	for k := range mp {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func appendU64Ctr(b []byte, mp map[uint64]ctr) []byte {
	ks := sortedU64(mp)
	b = snap.U32(b, uint32(len(ks)))
	for _, k := range ks {
		b = snap.U64(b, k)
		b = snap.U8(b, uint8(mp[k]))
	}
	return b
}

func readU64Ctr(r *snap.Reader) (map[uint64]ctr, error) {
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	mp := make(map[uint64]ctr, n)
	for i := 0; i < n; i++ {
		k := r.U64()
		v := r.U8()
		if v > 7 {
			return nil, fmt.Errorf("mtage: base counter %d out of range", v)
		}
		mp[k] = ctr(v)
	}
	return mp, r.Err()
}

func appendU64U8(b []byte, mp map[uint64]uint8) []byte {
	ks := sortedU64(mp)
	b = snap.U32(b, uint32(len(ks)))
	for _, k := range ks {
		b = snap.U64(b, k)
		b = snap.U8(b, mp[k])
	}
	return b
}

func readU64U8(r *snap.Reader) (map[uint64]uint8, error) {
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	mp := make(map[uint64]uint8, n)
	for i := 0; i < n; i++ {
		k := r.U64()
		v := r.U8()
		if v > 15 {
			return nil, fmt.Errorf("mtage: trust counter %d out of range", v)
		}
		mp[k] = v
	}
	return mp, r.Err()
}
