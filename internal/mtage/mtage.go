// Package mtage implements an unlimited-storage MTAGE-SC-style predictor,
// the paper's upper-bound comparison point ("the best predictor in the
// unlimited storage category of CBP-5", §V-B).
//
// With no storage constraint there are no tags, no associativity and no
// eviction: each geometric history component maps (PC, history hash) to a
// saturating counter, and a statistical corrector combines per-PC bias
// with the longest-match prediction. The predictor still mispredicts on
// compulsory (first-seen substream) and data-dependent branches, which is
// exactly the residual the paper reports for MTAGE-SC (branch-MPKI 1.4
// where 1MB TAGE-SC-L sits at 1.9).
//
// The components are custom open-addressed hash tables rather than Go
// maps: linear probing over power-of-two slot arrays storing the full
// 128-bit key, with the counter byte doubling as the empty marker. The
// predictor never deletes, so probes need no tombstones, and the slot
// found during prediction is carried into Update so each of the 16
// components pays one probe per record instead of three (predict scan,
// trainer read, trainer write). Counter updates are branchless
// saturating arithmetic. Together these took the component cost from
// the dominant share of ~2.9us/record down to where the batched hash
// kernel shows the same kind of win it does on TAGE (see
// docs/performance.md).
package mtage

import (
	"github.com/whisper-sim/whisper/internal/bpu"
)

// history lengths for the unlimited components: a denser geometric series
// than the 64KB TAGE, reaching the full 1024-bit history window.
var histLens = []int{2, 4, 6, 9, 13, 19, 29, 43, 64, 96, 143, 214, 320, 480, 720, 1024}

type key struct {
	pc uint64
	h  uint64
}

// ctr is a 3-bit saturating counter in [0,7], weak threshold 4,
// stored as one byte.
type ctr uint8

func (c ctr) taken() bool     { return c > 3 }
func (c ctr) confident() bool { return c == 0 || c == 7 }

// update saturates branchlessly: nv ranges over [-1, 8]; the first mask
// floors negative values at 0 (arithmetic shift smears the sign bit),
// the second folds 8 back to 7 (only 8 has bit 3 set).
func (c ctr) update(taken bool) ctr {
	t := int8(0)
	if taken {
		t = 1
	}
	nv := int8(c) + 2*t - 1
	nv &^= nv >> 7
	nv -= nv >> 3
	return ctr(nv)
}

// trustUpdate is the same trick for the 4-bit trust counters in [0,15].
func trustUpdate(tc uint8, up bool) uint8 {
	t := int8(0)
	if up {
		t = 1
	}
	nv := int8(tc) + 2*t - 1
	nv &^= nv >> 7
	nv -= nv >> 4
	return uint8(nv)
}

// emptySlot marks a free table slot in the value array; live counters
// only use 0..7.
const emptySlot = 0xFF

// comp is one unbounded history component: an open-addressed hash table
// from key to a counter byte, grown at 7/8 load. Entries are never
// deleted, so linear probing needs no tombstones and a recorded slot
// stays valid until the component itself grows.
type comp struct {
	keys []key
	vals []uint8
	live int
	mask uint64
}

const compInitSlots = 1024

func newComp() comp {
	c := comp{
		keys: make([]key, compInitSlots),
		vals: make([]uint8, compInitSlots),
		mask: compInitSlots - 1,
	}
	for i := range c.vals {
		c.vals[i] = emptySlot
	}
	return c
}

// khash mixes the two key words with a murmur-style finalizer; the low
// bits index the table, so the raw history hash cannot be used alone.
func khash(k key) uint64 {
	x := k.pc*0x9E3779B97F4A7C15 ^ k.h
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// find probes for k and returns its slot, or the empty slot where k
// would be inserted; ok reports whether k is present.
func (c *comp) find(k key) (slot int, ok bool) {
	i := khash(k) & c.mask
	for {
		if c.vals[i] == emptySlot {
			return int(i), false
		}
		if c.keys[i] == k {
			return int(i), true
		}
		i = (i + 1) & c.mask
	}
}

// insertAt fills the empty slot previously returned by find.
func (c *comp) insertAt(slot int, k key, v uint8) {
	c.keys[slot] = k
	c.vals[slot] = v
	c.live++
	if uint64(c.live)*8 >= (c.mask+1)*7 {
		c.grow()
	}
}

func (c *comp) grow() {
	oldKeys, oldVals := c.keys, c.vals
	n := (c.mask + 1) * 2
	c.keys = make([]key, n)
	c.vals = make([]uint8, n)
	for i := range c.vals {
		c.vals[i] = emptySlot
	}
	c.mask = n - 1
	for i, v := range oldVals {
		if v == emptySlot {
			continue
		}
		s, _ := c.find(oldKeys[i])
		c.keys[s] = oldKeys[i]
		c.vals[s] = v
	}
}

// MTageSC is an unlimited-storage multi-component TAGE with a statistical
// corrector. Not safe for concurrent use.
type MTageSC struct {
	comps []comp
	base  map[uint64]ctr // per-PC bias component
	hist  bpu.History

	// trust is a per-PC 4-bit counter [0,15] (weak 8) deciding whether
	// long-history matches have been reliable for the PC.
	trust map[uint64]uint8

	last lastPred

	// plan/hashOut are the precompiled plan and scratch of the batched
	// fast path.
	plan    *bpu.HashPlan
	hashOut []uint64
}

type lastPred struct {
	pc       uint64
	valid    bool
	keys     []key
	slots    []int32 // component slot for keys[i], valid until Update
	found    []bool  // whether keys[i] was present at predict time
	provider int     // component index of longest confident match, -1 if none
	pred     bool
	basePred bool
	baseVal  ctr
	baseOK   bool
	trustVal uint8
	trustOK  bool
}

// New returns an empty unlimited predictor.
func New() *MTageSC {
	m := &MTageSC{
		comps: make([]comp, len(histLens)),
		base:  make(map[uint64]ctr),
		trust: make(map[uint64]uint8),
	}
	for i := range m.comps {
		m.comps[i] = newComp()
	}
	m.last.keys = make([]key, len(histLens))
	m.last.slots = make([]int32, len(histLens))
	m.last.found = make([]bool, len(histLens))
	m.plan = bpu.MakeHashPlan(histLens)
	m.hashOut = make([]uint64, len(histLens))
	return m
}

// Name implements bpu.Predictor.
func (m *MTageSC) Name() string { return "mtage-sc-unlimited" }

// Predict implements bpu.Predictor.
func (m *MTageSC) Predict(pc uint64) bool {
	lp := &m.last
	for i, l := range histLens {
		lp.keys[i] = key{pc: pc, h: m.hist.Hash(pc, l)}
	}
	return m.predictCore(pc)
}

// predictFast is Predict with the 16 component hashes computed through
// one precompiled prefix-shared pass; it is the per-record body of
// PredictUpdateBatch and bit-identical to Predict.
func (m *MTageSC) predictFast(pc uint64) bool {
	lp := &m.last
	m.hist.HashPlanned(pc, m.plan, m.hashOut)
	for i := range histLens {
		lp.keys[i] = key{pc: pc, h: m.hashOut[i]}
	}
	return m.predictCore(pc)
}

// predictCore runs the longest-confident-match and corrector logic over
// the component keys staged in lp.keys. Every component is probed once
// and the slot recorded, so Update trains without re-probing.
func (m *MTageSC) predictCore(pc uint64) bool {
	lp := &m.last
	lp.pc = pc
	lp.valid = true
	lp.provider = -1

	bc, ok := m.base[pc]
	lp.baseVal, lp.baseOK = bc, ok
	if ok {
		lp.basePred = bc.taken()
	} else {
		lp.basePred = true // static taken default
	}
	lp.pred = lp.basePred

	for i := len(histLens) - 1; i >= 0; i-- {
		c := &m.comps[i]
		slot, found := c.find(lp.keys[i])
		lp.slots[i] = int32(slot)
		lp.found[i] = found
		if found && lp.provider < 0 {
			if v := ctr(c.vals[slot]); v.confident() {
				lp.provider = i
				lp.pred = v.taken()
			}
		}
	}
	if lp.provider >= 0 {
		// Statistical corrector: if long-history matches have been
		// unreliable for this PC, fall back to the per-PC bias.
		tc, ok := m.trust[pc]
		lp.trustVal, lp.trustOK = tc, ok
		if ok && tc <= 7 {
			lp.pred = lp.basePred
		}
	}
	return lp.pred
}

// Update implements bpu.Predictor.
func (m *MTageSC) Update(pc uint64, taken bool) {
	lp := &m.last
	if !lp.valid || lp.pc != pc {
		m.Predict(pc)
	}
	lp.valid = false

	bc := lp.baseVal
	if !lp.baseOK {
		bc = 4 // weak taken
	}
	m.base[pc] = bc.update(taken)

	if lp.provider >= 0 {
		provCorrect := ctr(m.comps[lp.provider].vals[lp.slots[lp.provider]]).taken() == taken
		tc := lp.trustVal
		if !lp.trustOK {
			tc = 8
		}
		m.trust[pc] = trustUpdate(tc, provCorrect)
	}

	// Train every component on its substream; unlimited storage means
	// every substream gets its own counter. Slots were recorded during
	// prediction and nothing has probed since, so each write is direct.
	for i := range m.comps {
		c := &m.comps[i]
		slot := int(lp.slots[i])
		if !lp.found[i] {
			// Bias the fresh counter toward the observed outcome so a
			// second occurrence already predicts it confidently.
			v := uint8(0)
			if taken {
				v = 7
			}
			c.insertAt(slot, lp.keys[i], v)
			continue
		}
		c.vals[slot] = uint8(ctr(c.vals[slot]).update(taken))
	}

	m.hist.Push(taken)
}

// Entries returns the total number of allocated component entries, a
// proxy for the unbounded storage the predictor has consumed.
func (m *MTageSC) Entries() int {
	n := len(m.base)
	for i := range m.comps {
		n += m.comps[i].live
	}
	return n
}

// PredictUpdateBatch implements bpu.BatchPredictor: Predict+Update per
// record with the component hashes routed through the prefix-shared
// fast kernel. Locked bit-identical by the differential tests.
func (m *MTageSC) PredictUpdateBatch(pcs []uint64, taken, miss []bool) {
	for i, pc := range pcs {
		miss[i] = m.predictFast(pc) != taken[i]
		m.Update(pc, taken[i])
	}
}
