// Package mtage implements an unlimited-storage MTAGE-SC-style predictor,
// the paper's upper-bound comparison point ("the best predictor in the
// unlimited storage category of CBP-5", §V-B).
//
// With no storage constraint there are no tags, no associativity and no
// eviction: each geometric history component is a hash map from
// (PC, history hash) to a saturating counter, and a statistical corrector
// combines per-PC bias with the longest-match prediction. The predictor
// still mispredicts on compulsory (first-seen substream) and
// data-dependent branches, which is exactly the residual the paper reports
// for MTAGE-SC (branch-MPKI 1.4 where 1MB TAGE-SC-L sits at 1.9).
//
// Counters are stored by value (one byte per substream) so the unbounded
// tables stay affordable at multi-million-record windows.
package mtage

import (
	"github.com/whisper-sim/whisper/internal/bpu"
)

// history lengths for the unlimited components: a denser geometric series
// than the 64KB TAGE, reaching the full 1024-bit history window.
var histLens = []int{2, 4, 6, 9, 13, 19, 29, 43, 64, 96, 143, 214, 320, 480, 720, 1024}

type key struct {
	pc uint64
	h  uint64
}

// ctr is a 3-bit saturating counter in [0,7], weak threshold 4,
// stored as one byte.
type ctr uint8

func (c ctr) taken() bool     { return c > 3 }
func (c ctr) confident() bool { return c == 0 || c == 7 }
func (c ctr) update(taken bool) ctr {
	if taken {
		if c < 7 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// MTageSC is an unlimited-storage multi-component TAGE with a statistical
// corrector. Not safe for concurrent use.
type MTageSC struct {
	comps []map[key]ctr
	base  map[uint64]ctr // per-PC bias component
	hist  bpu.History

	// trust is a per-PC 4-bit counter [0,15] (weak 8) deciding whether
	// long-history matches have been reliable for the PC.
	trust map[uint64]uint8

	last lastPred

	// plan/hashOut are the precompiled plan and scratch of the batched
	// fast path.
	plan    *bpu.HashPlan
	hashOut []uint64
}

type lastPred struct {
	pc       uint64
	valid    bool
	keys     []key
	provider int // component index of longest confident match, -1 if none
	pred     bool
	basePred bool
}

// New returns an empty unlimited predictor.
func New() *MTageSC {
	m := &MTageSC{
		comps: make([]map[key]ctr, len(histLens)),
		base:  make(map[uint64]ctr),
		trust: make(map[uint64]uint8),
	}
	for i := range m.comps {
		m.comps[i] = make(map[key]ctr)
	}
	m.last.keys = make([]key, len(histLens))
	m.plan = bpu.MakeHashPlan(histLens)
	m.hashOut = make([]uint64, len(histLens))
	return m
}

// Name implements bpu.Predictor.
func (m *MTageSC) Name() string { return "mtage-sc-unlimited" }

// Predict implements bpu.Predictor.
func (m *MTageSC) Predict(pc uint64) bool {
	lp := &m.last
	for i, l := range histLens {
		lp.keys[i] = key{pc: pc, h: m.hist.Hash(pc, l)}
	}
	return m.predictCore(pc)
}

// predictFast is Predict with the 16 component hashes computed through
// one precompiled prefix-shared pass; it is the per-record body of
// PredictUpdateBatch and bit-identical to Predict.
func (m *MTageSC) predictFast(pc uint64) bool {
	lp := &m.last
	m.hist.HashPlanned(pc, m.plan, m.hashOut)
	for i := range histLens {
		lp.keys[i] = key{pc: pc, h: m.hashOut[i]}
	}
	return m.predictCore(pc)
}

// predictCore runs the longest-confident-match and corrector logic over
// the component keys staged in lp.keys.
func (m *MTageSC) predictCore(pc uint64) bool {
	lp := &m.last
	lp.pc = pc
	lp.valid = true
	lp.provider = -1

	bc, ok := m.base[pc]
	if ok {
		lp.basePred = bc.taken()
	} else {
		lp.basePred = true // static taken default
	}
	lp.pred = lp.basePred

	for i := len(histLens) - 1; i >= 0; i-- {
		if c, ok := m.comps[i][lp.keys[i]]; ok && c.confident() {
			lp.provider = i
			lp.pred = c.taken()
			break
		}
	}
	if lp.provider >= 0 {
		// Statistical corrector: if long-history matches have been
		// unreliable for this PC, fall back to the per-PC bias.
		if tc, ok := m.trust[pc]; ok && tc <= 7 {
			lp.pred = lp.basePred
		}
	}
	return lp.pred
}

// Update implements bpu.Predictor.
func (m *MTageSC) Update(pc uint64, taken bool) {
	lp := &m.last
	if !lp.valid || lp.pc != pc {
		m.Predict(pc)
	}
	lp.valid = false

	bc, ok := m.base[pc]
	if !ok {
		bc = 4 // weak taken
	}
	m.base[pc] = bc.update(taken)

	if lp.provider >= 0 {
		provCorrect := m.comps[lp.provider][lp.keys[lp.provider]].taken() == taken
		tc, ok := m.trust[pc]
		if !ok {
			tc = 8
		}
		if provCorrect {
			if tc < 15 {
				tc++
			}
		} else if tc > 0 {
			tc--
		}
		m.trust[pc] = tc
	}

	// Train every component on its substream; unlimited storage means
	// every substream gets its own counter.
	for i := range m.comps {
		c, ok := m.comps[i][lp.keys[i]]
		if !ok {
			// Bias the fresh counter toward the observed outcome so a
			// second occurrence already predicts it confidently.
			if taken {
				m.comps[i][lp.keys[i]] = 7
			} else {
				m.comps[i][lp.keys[i]] = 0
			}
			continue
		}
		m.comps[i][lp.keys[i]] = c.update(taken)
	}

	m.hist.Push(taken)
}

// Entries returns the total number of allocated component entries, a
// proxy for the unbounded storage the predictor has consumed.
func (m *MTageSC) Entries() int {
	n := len(m.base)
	for i := range m.comps {
		n += len(m.comps[i])
	}
	return n
}

// PredictUpdateBatch implements bpu.BatchPredictor: Predict+Update per
// record with the component hashes routed through the prefix-shared
// fast kernel. Locked bit-identical by the differential tests.
func (m *MTageSC) PredictUpdateBatch(pcs []uint64, taken, miss []bool) {
	for i, pc := range pcs {
		miss[i] = m.predictFast(pc) != taken[i]
		m.Update(pc, taken[i])
	}
}
