package traceio

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
)

// The committed fuzz seed corpora live under testdata/fuzz/<Target>/ in
// the standard `go test fuzz v1` encoding, so CI's fuzz-smoke starts
// from real format structure instead of rediscovering the magic bytes.
// Regenerate them with:
//
//	TRACEIO_WRITE_CORPUS=1 go test ./internal/traceio -run TestSeedCorpus

// corpusEntries returns the seed inputs for both fuzz targets.
func corpusEntries(t *testing.T) map[string][]byte {
	t.Helper()
	entries := map[string][]byte{
		"FuzzTextImporter/seed-canonical": nil,
		"FuzzTextImporter/seed-tolerant": []byte(
			"# an LBR dump\n\n0x400010  0X400070 COND t 5 # trailing\n400070 400088 cond 0 0\n"),
		"FuzzTextImporter/seed-bad-kind":   []byte("400070 400088 branch T 5\n"),
		"FuzzTextImporter/seed-truncated":  []byte("400010 400070 cond T 5\n4000"),
		"FuzzBinaryImporter/seed-header":   []byte("WSPT\x01\x07\x03"),
		"FuzzBinaryImporter/seed-badmagic": []byte("WBT1\x01"),
	}
	var text bytes.Buffer
	if err := WriteAll(&text, FormatText, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	entries["FuzzTextImporter/seed-canonical"] = text.Bytes()
	var empty, sample, multi bytes.Buffer
	if err := WriteAll(&empty, FormatBinary, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(&sample, FormatBinary, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Record, blockRecords+2)
	for i := range recs {
		recs[i] = trace.Record{
			PC:     0x400000 + uint64(i*4),
			Target: 0x400000 + uint64((i*7)%512),
			Kind:   trace.CondBranch,
			Taken:  i%2 == 0,
			Instrs: uint32(i % 5),
		}
	}
	if err := WriteAll(&multi, FormatBinary, recs); err != nil {
		t.Fatal(err)
	}
	entries["FuzzBinaryImporter/seed-empty"] = empty.Bytes()
	entries["FuzzBinaryImporter/seed-sample"] = sample.Bytes()
	entries["FuzzBinaryImporter/seed-multiblock"] = multi.Bytes()
	return entries
}

// TestSeedCorpus checks the committed corpora match the generator (and
// rewrites them when TRACEIO_WRITE_CORPUS is set).
func TestSeedCorpus(t *testing.T) {
	write := os.Getenv("TRACEIO_WRITE_CORPUS") != ""
	for name, data := range corpusEntries(t) {
		path := filepath.Join("testdata", "fuzz", name)
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if write {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with TRACEIO_WRITE_CORPUS=1)", path, err)
		}
		if string(got) != want {
			t.Fatalf("%s is stale (regenerate with TRACEIO_WRITE_CORPUS=1)", path)
		}
	}
}
