package traceio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/whisper-sim/whisper/internal/trace"
)

// The WSPT binary trace format:
//
//	magic "WSPT" | version byte | blocks... | terminator
//
// Each block is:
//
//	uvarint count      records in the block (1..blockRecords)
//	uvarint length     payload byte length
//	payload            count encoded records
//	u32 LE             CRC32 (IEEE) of the payload
//
// and the terminator is a single 0 count, after which EOF must follow.
// Per-record payload encoding (PC deltas carry across blocks):
//
//	uvarint zigzag(pc - prevPC)
//	uvarint zigzag(target - pc)
//	byte    kind<<1 | taken
//	uvarint instrs
//
// The encoding is canonical: every block except the last holds exactly
// blockRecords records, varints are minimal-length, unconditional
// kinds are always taken, and the declared payload length is consumed
// exactly. Any byte string that decodes cleanly therefore re-encodes
// byte-identically (the FuzzBinaryImporter property), and the CRC
// turns silent bit rot into ErrCorrupt instead of a subtly different
// record stream.

var binaryMagic = [4]byte{'W', 'S', 'P', 'T'}

// BinaryVersion is the current WSPT revision. Newer files are rejected
// with ErrVersion so readers never misparse a future layout.
const BinaryVersion = 1

// blockRecords is the canonical block granularity. Every non-final
// block carries exactly this many records.
const blockRecords = 4096

// maxBlockBytes bounds a block payload: a worst-case record is under
// 32 bytes, so the cap bounds hostile allocations without constraining
// real traces.
const maxBlockBytes = 32 * blockRecords

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// --- writer -----------------------------------------------------------

// BinaryWriter encodes the canonical WSPT form.
type BinaryWriter struct {
	w      io.Writer
	buf    []byte // current block payload
	n      int    // records buffered in buf
	prevPC uint64
	wrote  bool // header emitted
	closed bool
	tmp    [binary.MaxVarintLen64]byte
}

// NewBinaryWriter returns a writer over w. The header is emitted on
// the first Write or by Close.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: w}
}

// header emits magic and version once.
func (b *BinaryWriter) header() error {
	if b.wrote {
		return nil
	}
	b.wrote = true
	hdr := append(append([]byte(nil), binaryMagic[:]...), BinaryVersion)
	_, err := b.w.Write(hdr)
	return err
}

// putUvarint appends v to the block payload.
func (b *BinaryWriter) putUvarint(v uint64) {
	n := binary.PutUvarint(b.tmp[:], v)
	b.buf = append(b.buf, b.tmp[:n]...)
}

// Write encodes one record.
func (b *BinaryWriter) Write(rec *trace.Record) error {
	if b.closed {
		return fmt.Errorf("traceio: write after Close")
	}
	if !rec.Kind.Valid() {
		return fmt.Errorf("traceio: invalid kind %d", rec.Kind)
	}
	if !rec.Taken && rec.Kind != trace.CondBranch {
		return fmt.Errorf("traceio: %s record marked not-taken", rec.Kind)
	}
	if err := b.header(); err != nil {
		return err
	}
	b.putUvarint(zigzag(int64(rec.PC - b.prevPC)))
	b.putUvarint(zigzag(int64(rec.Target - rec.PC)))
	kb := byte(rec.Kind) << 1
	if rec.Taken {
		kb |= 1
	}
	b.buf = append(b.buf, kb)
	b.putUvarint(uint64(rec.Instrs))
	b.prevPC = rec.PC
	b.n++
	if b.n == blockRecords {
		return b.flushBlock()
	}
	return nil
}

// flushBlock emits the buffered payload as one framed block.
func (b *BinaryWriter) flushBlock() error {
	var hdr []byte
	n := binary.PutUvarint(b.tmp[:], uint64(b.n))
	hdr = append(hdr, b.tmp[:n]...)
	n = binary.PutUvarint(b.tmp[:], uint64(len(b.buf)))
	hdr = append(hdr, b.tmp[:n]...)
	if _, err := b.w.Write(hdr); err != nil {
		return err
	}
	if _, err := b.w.Write(b.buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.buf))
	if _, err := b.w.Write(crc[:]); err != nil {
		return err
	}
	b.buf = b.buf[:0]
	b.n = 0
	return nil
}

// Close flushes the final partial block and writes the terminator.
func (b *BinaryWriter) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if err := b.header(); err != nil {
		return err
	}
	if b.n > 0 {
		if err := b.flushBlock(); err != nil {
			return err
		}
	}
	_, err := b.w.Write([]byte{0})
	return err
}

// --- reader -----------------------------------------------------------

// BinaryReader decodes WSPT and implements Reader.
type BinaryReader struct {
	r         io.ByteReader
	payload   []byte // current block payload
	pos       int    // cursor into payload
	left      int    // records remaining in current block
	lastCount int    // record count the current block declared
	prevPC    uint64
	blocks    int
	done      bool // terminator seen
	err       error
}

// byteReaderOnly guards against bufio auto-wrapping surprises: the
// reader consumes exclusively through ReadByte so framing stays exact.
func byteReader(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return &singleByteReader{r: r}
}

// singleByteReader adapts any io.Reader to io.ByteReader.
type singleByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (s *singleByteReader) ReadByte() (byte, error) {
	for {
		n, err := s.r.Read(s.buf[:])
		if n == 1 {
			return s.buf[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// NewBinaryReader validates the header and returns a reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := byteReader(r)
	var hdr [5]byte
	for i := range hdr {
		c, err := br.ReadByte()
		if err != nil {
			if i < 4 {
				return nil, fmt.Errorf("%w: input shorter than the WSPT magic", ErrBadMagic)
			}
			return nil, fmt.Errorf("%w: missing version byte", ErrTruncated)
		}
		hdr[i] = c
	}
	if [4]byte(hdr[:4]) != binaryMagic {
		return nil, fmt.Errorf("%w: want WSPT", ErrBadMagic)
	}
	if hdr[4] != BinaryVersion {
		return nil, fmt.Errorf("%w: version %d (reader understands %d)", ErrVersion, hdr[4], BinaryVersion)
	}
	return &BinaryReader{r: br}, nil
}

// fail records the first error and stops the stream.
func (b *BinaryReader) fail(err error) bool {
	b.err = err
	return false
}

// readFrameUvarint reads a minimal uvarint from the block framing.
func (b *BinaryReader) readFrameUvarint(what string) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		c, err := b.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return 0, fmt.Errorf("%w: EOF in %s of block %d%s", ErrTruncated, what, b.blocks, errSuffix(err))
		}
		if i == 9 {
			if c != 1 {
				return 0, fmt.Errorf("%w: %s varint overflows uint64", ErrCorrupt, what)
			}
			return x | uint64(c)<<s, nil
		}
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, fmt.Errorf("%w: non-minimal %s varint", ErrCorrupt, what)
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}

// errSuffix renders a wrapped I/O error, if any.
func errSuffix(err error) string {
	if err == nil {
		return ""
	}
	return ": " + err.Error()
}

// loadBlock reads the next block frame into the payload buffer. It
// returns false at the terminator or on error.
func (b *BinaryReader) loadBlock() bool {
	if b.done {
		return false
	}
	count, err := b.readFrameUvarint("record count")
	if err != nil {
		return b.fail(err)
	}
	if count == 0 {
		// Terminator: EOF must follow, or the frame was tampered with.
		if _, err := b.r.ReadByte(); err != io.EOF {
			return b.fail(fmt.Errorf("%w: data after the stream terminator", ErrCorrupt))
		}
		b.done = true
		return false
	}
	if count > blockRecords {
		return b.fail(fmt.Errorf("%w: block %d declares %d records (max %d)", ErrCorrupt, b.blocks, count, blockRecords))
	}
	length, err := b.readFrameUvarint("payload length")
	if err != nil {
		return b.fail(err)
	}
	if length == 0 || length > maxBlockBytes {
		return b.fail(fmt.Errorf("%w: block %d declares %d payload bytes (max %d)", ErrCorrupt, b.blocks, length, maxBlockBytes))
	}
	payload := make([]byte, length)
	for i := range payload {
		c, err := b.r.ReadByte()
		if err != nil {
			return b.fail(fmt.Errorf("%w: EOF inside block %d payload (%d of %d bytes)", ErrTruncated, b.blocks, i, length))
		}
		payload[i] = c
	}
	var crc [4]byte
	for i := range crc {
		c, err := b.r.ReadByte()
		if err != nil {
			return b.fail(fmt.Errorf("%w: EOF in block %d checksum", ErrTruncated, b.blocks))
		}
		crc[i] = c
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return b.fail(fmt.Errorf("%w: block %d checksum mismatch (%#08x != %#08x)", ErrCorrupt, b.blocks, got, want))
	}
	b.payload = payload
	b.pos = 0
	b.left = int(count)
	b.lastCount = int(count)
	b.blocks++
	return true
}

// payloadUvarint reads a minimal uvarint from the current payload.
func (b *BinaryReader) payloadUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		if b.pos >= len(b.payload) {
			return 0, fmt.Errorf("%w: block %d payload ends mid-record", ErrCorrupt, b.blocks-1)
		}
		c := b.payload[b.pos]
		b.pos++
		if i == 9 {
			if c != 1 {
				return 0, fmt.Errorf("%w: record varint overflows uint64", ErrCorrupt)
			}
			return x | uint64(c)<<s, nil
		}
		if c < 0x80 {
			if i > 0 && c == 0 {
				return 0, fmt.Errorf("%w: non-minimal record varint", ErrCorrupt)
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}

// Next implements trace.Stream.
func (b *BinaryReader) Next(rec *trace.Record) bool {
	if b.err != nil {
		return false
	}
	for b.left == 0 {
		// The canonical form allows a short block only in final
		// position: seeing more data after one is corruption.
		if len(b.payload) > 0 && b.pos != len(b.payload) {
			return b.fail(fmt.Errorf("%w: block %d carries %d undeclared payload bytes", ErrCorrupt, b.blocks-1, len(b.payload)-b.pos))
		}
		short := b.blocks > 0 && b.lastCount < blockRecords
		if !b.loadBlock() {
			return false
		}
		if short {
			return b.fail(fmt.Errorf("%w: short block %d is not final", ErrCorrupt, b.blocks-2))
		}
	}
	dpc, err := b.payloadUvarint()
	if err != nil {
		return b.fail(err)
	}
	dtgt, err := b.payloadUvarint()
	if err != nil {
		return b.fail(err)
	}
	if b.pos >= len(b.payload) {
		return b.fail(fmt.Errorf("%w: block %d payload ends mid-record", ErrCorrupt, b.blocks-1))
	}
	kb := b.payload[b.pos]
	b.pos++
	kind := trace.Kind(kb >> 1)
	taken := kb&1 != 0
	if !kind.Valid() {
		return b.fail(fmt.Errorf("%w: invalid kind byte %#x", ErrCorrupt, kb))
	}
	if !taken && kind != trace.CondBranch {
		return b.fail(fmt.Errorf("%w: %s record marked not-taken", ErrCorrupt, kind))
	}
	instrs, err := b.payloadUvarint()
	if err != nil {
		return b.fail(err)
	}
	if instrs > 1<<32-1 {
		return b.fail(fmt.Errorf("%w: instrs %d overflows uint32", ErrCorrupt, instrs))
	}
	pc := b.prevPC + uint64(unzigzag(dpc))
	rec.PC = pc
	rec.Target = pc + uint64(unzigzag(dtgt))
	rec.Kind = kind
	rec.Taken = taken
	rec.Instrs = uint32(instrs)
	b.prevPC = pc
	b.left--
	return true
}

// Err returns the first decode error, or nil on clean EOF.
func (b *BinaryReader) Err() error { return b.err }
