package traceio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
)

// encodeBinary encodes recs in the WSPT format.
func encodeBinary(t *testing.T, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, FormatBinary, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeBinary decodes a WSPT byte string.
func decodeBinary(data []byte) ([]trace.Record, error) {
	recs, _, err := ReadAll(bytes.NewReader(data), FormatBinary)
	return recs, err
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords()
	enc := encodeBinary(t, recs)
	got, detected, err := ReadAll(bytes.NewReader(enc), FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if detected != FormatBinary {
		t.Fatalf("detected %s, want binary", detected)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if enc2 := encodeBinary(t, got); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding decoded records changed the bytes")
	}
}

// TestBinaryMultiBlock crosses the 4096-record block boundary and
// checks that PC deltas carry across blocks.
func TestBinaryMultiBlock(t *testing.T) {
	recs := make([]trace.Record, 3*blockRecords+17)
	pc := uint64(0x400000)
	for i := range recs {
		pc += uint64(i%97) * 4
		recs[i] = trace.Record{
			PC:     pc,
			Target: pc + uint64(i%251) - 100,
			Kind:   trace.CondBranch,
			Taken:  i%3 != 0,
			Instrs: uint32(i % 11),
		}
	}
	enc := encodeBinary(t, recs)
	got, err := decodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if enc2 := encodeBinary(t, got); !bytes.Equal(enc, enc2) {
		t.Fatal("multi-block re-encode changed the bytes")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	enc := encodeBinary(t, nil)
	want := append([]byte("WSPT"), BinaryVersion, 0)
	if !bytes.Equal(enc, want) {
		t.Fatalf("empty trace encodes as %x, want %x", enc, want)
	}
	got, err := decodeBinary(enc)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace decodes to %d records, err %v", len(got), err)
	}
}

func TestBinaryHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"short magic", []byte("WS"), ErrBadMagic},
		{"wrong magic", []byte("WSPA\x01\x00"), ErrBadMagic},
		{"missing version", []byte("WSPT"), ErrTruncated},
		{"future version", []byte("WSPT\x02\x00"), ErrVersion},
		{"zero version", []byte("WSPT\x00\x00"), ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeBinary(tc.in)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestBinaryTruncation: every strict prefix of a valid file must be
// rejected — with ErrBadMagic inside the magic, ErrTruncated beyond it.
func TestBinaryTruncation(t *testing.T) {
	enc := encodeBinary(t, sampleRecords())
	for n := 0; n < len(enc); n++ {
		_, err := decodeBinary(enc[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(enc))
		}
		want := ErrTruncated
		if n < 4 {
			want = ErrBadMagic
		}
		if !errors.Is(err, want) {
			t.Fatalf("prefix of %d bytes: got %v, want %v", n, err, want)
		}
	}
}

// fixture returns a small single-block encoding and its section
// offsets, asserting the layout assumptions the surgical corruption
// tests below rely on (single-byte count and length varints).
func fixture(t *testing.T) (enc []byte, countOff, lenOff, payOff, crcOff, termOff int) {
	t.Helper()
	enc = encodeBinary(t, sampleRecords())
	countOff = 5
	if enc[countOff] != byte(len(sampleRecords())) {
		t.Fatalf("fixture count byte is %d", enc[countOff])
	}
	lenOff = countOff + 1
	plen := int(enc[lenOff])
	if plen >= 0x80 {
		t.Fatalf("fixture payload length %d is not a single-byte varint", plen)
	}
	payOff = lenOff + 1
	crcOff = payOff + plen
	termOff = crcOff + 4
	if termOff != len(enc)-1 || enc[termOff] != 0 {
		t.Fatalf("fixture terminator not at %d (len %d)", termOff, len(enc))
	}
	return
}

// mutate returns a copy of enc with f applied.
func mutate(enc []byte, f func(b []byte) []byte) []byte {
	return f(append([]byte(nil), enc...))
}

// refixPayload rewrites the fixture's payload with f's result and
// recomputes the length varint and CRC so only the payload-level
// damage under test is visible to the reader.
func refixPayload(t *testing.T, f func(p []byte) []byte) []byte {
	t.Helper()
	enc, _, _, payOff, crcOff, _ := fixture(t)
	payload := f(append([]byte(nil), enc[payOff:crcOff]...))
	if len(payload) >= 0x80 {
		t.Fatalf("mutated payload of %d bytes needs a multi-byte length varint", len(payload))
	}
	out := append([]byte(nil), enc[:payOff-1]...) // header + count
	out = append(out, byte(len(payload)))
	out = append(out, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	out = append(out, crc[:]...)
	out = append(out, 0)
	return out
}

// TestBinaryCorruptionPerSection damages every WSPT section in turn —
// count, length, payload, checksum, terminator — and checks the typed
// rejection, mirroring the internal/snaptest corruption idiom.
func TestBinaryCorruptionPerSection(t *testing.T) {
	enc, countOff, lenOff, payOff, crcOff, termOff := fixture(t)
	cases := []struct {
		name string
		in   []byte
		want error
		msg  string
	}{
		{"count one high", mutate(enc, func(b []byte) []byte { b[countOff]++; return b }),
			ErrCorrupt, "mid-record"},
		{"count one low", mutate(enc, func(b []byte) []byte { b[countOff]--; return b }),
			ErrCorrupt, "undeclared payload bytes"},
		{"count over block cap", mutate(enc, func(b []byte) []byte {
			// 4097 as a 2-byte varint in place of the count byte.
			return append(b[:countOff], append([]byte{0x81, 0x20}, b[countOff+1:]...)...)
		}), ErrCorrupt, "declares 4097 records"},
		{"non-minimal count varint", mutate(enc, func(b []byte) []byte {
			v := b[countOff]
			return append(b[:countOff], append([]byte{v | 0x80, 0x00}, b[countOff+1:]...)...)
		}), ErrCorrupt, "non-minimal record count varint"},
		{"length zero", mutate(enc, func(b []byte) []byte { b[lenOff] = 0; return b }),
			ErrCorrupt, "declares 0 payload bytes"},
		{"length one high", mutate(enc, func(b []byte) []byte { b[lenOff]++; return b }),
			ErrCorrupt, "checksum mismatch"},
		{"length over cap", mutate(enc, func(b []byte) []byte {
			// maxBlockBytes+1 as a 3-byte varint in place of the length.
			return append(b[:lenOff], append([]byte{0x81, 0x80, 0x08}, b[lenOff+1:]...)...)
		}), ErrCorrupt, "payload bytes (max"},
		{"payload bit flip", mutate(enc, func(b []byte) []byte { b[payOff+2] ^= 0x10; return b }),
			ErrCorrupt, "checksum mismatch"},
		{"checksum bit flip", mutate(enc, func(b []byte) []byte { b[crcOff] ^= 0x01; return b }),
			ErrCorrupt, "checksum mismatch"},
		{"data after terminator", mutate(enc, func(b []byte) []byte { return append(b, 0x41) }),
			ErrCorrupt, "data after the stream terminator"},
		{"short block not final", mutate(enc, func(b []byte) []byte {
			// Duplicate the (short) block before the terminator.
			block := append([]byte(nil), b[countOff:termOff]...)
			return append(b[:termOff], append(block, 0)...)
		}), ErrCorrupt, "short block 0 is not final"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeBinary(tc.in)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("error %q does not mention %q", err, tc.msg)
			}
		})
	}
}

// TestBinaryCorruptPayloadContents rebuilds the CRC after damaging the
// payload itself, so the structural record checks (not the checksum)
// must catch it.
func TestBinaryCorruptPayloadContents(t *testing.T) {
	// One minimal record so payload offsets are fixed:
	// dpc varint | dtgt varint | kind byte | instrs varint.
	one := []trace.Record{{PC: 8, Target: 16, Kind: trace.Call, Taken: true, Instrs: 5}}
	kindOff, instrsOff := 2, 3
	cases := []struct {
		name string
		f    func(p []byte) []byte
		msg  string
	}{
		{"invalid kind", func(p []byte) []byte { p[kindOff] = 0xff; return p }, "invalid kind byte"},
		{"uncond not-taken", func(p []byte) []byte { p[kindOff] &^= 1; return p }, "marked not-taken"},
		{"non-minimal instrs varint", func(p []byte) []byte {
			return append(p[:instrsOff], p[instrsOff]|0x80, 0x00)
		}, "non-minimal record varint"},
		{"instrs overflow", func(p []byte) []byte {
			// 1<<32 as a uvarint.
			return append(p[:instrsOff], 0x80, 0x80, 0x80, 0x80, 0x10)
		}, "overflows uint32"},
		{"record cut short", func(p []byte) []byte { return p[:instrsOff] }, "ends mid-record"},
		{"trailing payload bytes", func(p []byte) []byte { return append(p, 0x02) }, "undeclared payload bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc, _, _, payOff, crcOff, _ := fixtureFor(t, one)
			in := refixPayloadOf(t, enc, payOff, crcOff, tc.f)
			_, err := decodeBinary(in)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("error %q does not mention %q", err, tc.msg)
			}
		})
	}
}

// fixtureFor is fixture for an arbitrary small record set.
func fixtureFor(t *testing.T, recs []trace.Record) (enc []byte, countOff, lenOff, payOff, crcOff, termOff int) {
	t.Helper()
	enc = encodeBinary(t, recs)
	countOff = 5
	lenOff = countOff + 1
	plen := int(enc[lenOff])
	if enc[countOff] >= 0x80 || plen >= 0x80 {
		t.Fatal("fixture framing is not single-byte varints")
	}
	payOff = lenOff + 1
	crcOff = payOff + plen
	termOff = crcOff + 4
	return
}

// refixPayloadOf rewrites a single-block encoding's payload and refits
// length and CRC.
func refixPayloadOf(t *testing.T, enc []byte, payOff, crcOff int, f func(p []byte) []byte) []byte {
	t.Helper()
	payload := f(append([]byte(nil), enc[payOff:crcOff]...))
	if len(payload) >= 0x80 {
		t.Fatal("mutated payload needs a multi-byte length varint")
	}
	out := append([]byte(nil), enc[:payOff-1]...)
	out = append(out, byte(len(payload)))
	out = append(out, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	out = append(out, crc[:]...)
	out = append(out, 0)
	return out
}

// TestBinaryBitFlipSweep flips every bit of a valid encoding. Each
// flip must either fail decoding or (never, in practice) decode to a
// different record stream — a clean decode to the original bytes would
// mean the flip was silently absorbed.
func TestBinaryBitFlipSweep(t *testing.T) {
	recs := sampleRecords()
	enc := encodeBinary(t, recs)
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), enc...)
			bad[i] ^= 1 << bit
			got, err := decodeBinary(bad)
			if err != nil {
				continue
			}
			if len(got) == len(recs) {
				same := true
				for j := range recs {
					if got[j] != recs[j] {
						same = false
						break
					}
				}
				if same {
					t.Fatalf("flip of byte %d bit %d decoded to the original stream", i, bit)
				}
			}
		}
	}
}

func TestBinaryWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	rec := trace.Record{PC: 1, Target: 2, Kind: trace.CondBranch, Taken: true}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Write(&rec); err == nil {
		t.Fatal("Write after Close accepted")
	}
	for _, bad := range []trace.Record{
		{PC: 1, Target: 2, Kind: trace.Kind(9), Taken: true},
		{PC: 1, Target: 2, Kind: trace.Return, Taken: false},
	} {
		var b bytes.Buffer
		w := NewBinaryWriter(&b)
		if err := w.Write(&bad); err == nil {
			t.Errorf("writer accepted %+v", bad)
		}
	}
}

// TestConvertRoundTrips locks the transcoding bijections: canonical
// text <-> binary <-> wbt all preserve the record stream, and
// text->binary->text of a canonical file is byte-exact.
func TestConvertRoundTrips(t *testing.T) {
	recs := sampleRecords()
	var text bytes.Buffer
	if err := WriteAll(&text, FormatText, recs); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	n, detected, err := Convert(&bin, bytes.NewReader(text.Bytes()), FormatAuto, FormatBinary)
	if err != nil || n != len(recs) || detected != FormatText {
		t.Fatalf("text->binary: n=%d detected=%s err=%v", n, detected, err)
	}
	if want := encodeBinary(t, recs); !bytes.Equal(bin.Bytes(), want) {
		t.Fatal("text->binary differs from direct binary encoding")
	}
	var text2 bytes.Buffer
	if _, _, err := Convert(&text2, bytes.NewReader(bin.Bytes()), FormatAuto, FormatText); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text.Bytes(), text2.Bytes()) {
		t.Fatalf("text->binary->text is not bit-exact:\n%q\nvs\n%q", text.String(), text2.String())
	}
	var wbt bytes.Buffer
	if _, _, err := Convert(&wbt, bytes.NewReader(bin.Bytes()), FormatBinary, FormatWBT); err != nil {
		t.Fatal(err)
	}
	got, detected, err := ReadAll(bytes.NewReader(wbt.Bytes()), FormatAuto)
	if err != nil || detected != FormatWBT {
		t.Fatalf("wbt read back: detected=%s err=%v", detected, err)
	}
	if len(got) != len(recs) {
		t.Fatalf("wbt round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("wbt record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if _, _, err := Convert(&bin, bytes.NewReader(text.Bytes()), FormatAuto, FormatAuto); err == nil {
		t.Fatal("Convert accepted FormatAuto as output")
	}
}

func TestFingerprint(t *testing.T) {
	recs := sampleRecords()
	a, b := Fingerprint(recs), Fingerprint(recs)
	if a != b || len(a) != 64 {
		t.Fatalf("fingerprint unstable or malformed: %q vs %q", a, b)
	}
	recs[0].Instrs++
	if c := Fingerprint(recs); c == a {
		t.Fatal("fingerprint ignores record contents")
	}
}
