// Package traceio imports and exports externally-sourced branch traces,
// turning untrusted trace files into the canonical trace.Record stream
// every simulator component consumes.
//
// Two interchange formats are defined here, plus read support for the
// legacy in-repo WBT format (package trace):
//
//   - Text (FormatText): a perf-script/LBR-style line format, one
//     retired branch per line in Intel-LBR-ish field order (from-PC
//     before to-PC), with # comments and blank lines. Tolerant in what
//     it skips, strict in what it accepts: every malformed record is
//     rejected with a line-numbered error (see ParseError).
//   - Binary (FormatBinary): a compact length-prefixed block format
//     ("WSPT" magic, version byte, varint-delta-encoded PCs,
//     CRC32-guarded blocks). The encoding is canonical — fixed block
//     size, minimal varints — so any byte string that decodes cleanly
//     re-encodes byte-identically, the same bijection property
//     internal/store pins down for artifacts.
//
// Readers reject damage with typed errors (ErrBadMagic, ErrVersion,
// ErrTruncated, ErrCorrupt) mirroring internal/store, so callers can
// errors.Is-dispatch and fall back instead of consuming garbage. Both
// formats convert losslessly in either direction (Convert); the
// importer fuzz targets lock never-panic and round-trip identity.
package traceio

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/whisper-sim/whisper/internal/trace"
)

// Typed decode failures. Every reader error wraps exactly one of these
// (or an underlying I/O error), so callers can errors.Is-dispatch.
var (
	// ErrBadMagic means the input does not start with a known trace
	// file magic.
	ErrBadMagic = errors.New("traceio: bad magic")
	// ErrVersion means the trace was written by a newer format revision
	// than this reader understands.
	ErrVersion = errors.New("traceio: unsupported format version")
	// ErrTruncated means the input ended before the declared content.
	ErrTruncated = errors.New("traceio: truncated trace")
	// ErrCorrupt means a checksum or structural invariant failed.
	ErrCorrupt = errors.New("traceio: corrupt trace")
)

// Format selects a trace interchange format.
type Format int

// The supported formats. FormatAuto sniffs the input's leading bytes:
// "WSPT" selects binary, "WBT1" the legacy trace codec, anything else
// text.
const (
	FormatAuto Format = iota
	FormatText
	FormatBinary
	FormatWBT
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	case FormatWBT:
		return "wbt"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseFormat resolves a CLI format name.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "auto":
		return FormatAuto, nil
	case "text", "txt":
		return FormatText, nil
	case "binary", "bin", "wspt":
		return FormatBinary, nil
	case "wbt":
		return FormatWBT, nil
	default:
		return FormatAuto, fmt.Errorf("traceio: unknown trace format %q (want auto, text, binary or wbt)", s)
	}
}

// Reader is a decoded trace stream. After Next returns false, Err
// distinguishes clean EOF (nil) from a decode failure.
type Reader interface {
	trace.Stream
	Err() error
}

// Writer encodes records one at a time. Close finalizes the encoding
// (trailing block, terminator) and must be called exactly once; it does
// not close the underlying io.Writer.
type Writer interface {
	Write(rec *trace.Record) error
	Close() error
}

// sniff maps leading magic bytes to a concrete format. Inputs shorter
// than four bytes (including empty) sniff as text: the text reader
// accepts them iff every present line parses.
func sniff(br *bufio.Reader) Format {
	head, _ := br.Peek(4)
	switch {
	case string(head) == "WSPT":
		return FormatBinary
	case string(head) == "WBT1":
		return FormatWBT
	default:
		return FormatText
	}
}

// NewReader wraps r in a decoder for the given format. FormatAuto
// sniffs the magic. The returned Detected format is the concrete format
// chosen (never FormatAuto).
func NewReader(r io.Reader, format Format) (Reader, Format, error) {
	br := bufio.NewReader(r)
	if format == FormatAuto {
		format = sniff(br)
	}
	switch format {
	case FormatText:
		return NewTextReader(br), FormatText, nil
	case FormatBinary:
		br2, err := NewBinaryReader(br)
		return br2, FormatBinary, err
	case FormatWBT:
		tr, err := trace.NewReader(br)
		if err != nil {
			if errors.Is(err, trace.ErrBadMagic) {
				err = fmt.Errorf("%w: not a WBT trace", ErrBadMagic)
			}
			return nil, FormatWBT, err
		}
		return tr, FormatWBT, nil
	default:
		return nil, format, fmt.Errorf("traceio: unsupported read format %s", format)
	}
}

// NewWriter wraps w in an encoder for the given format (FormatAuto is
// not a writable format).
func NewWriter(w io.Writer, format Format) (Writer, error) {
	switch format {
	case FormatText:
		return NewTextWriter(w), nil
	case FormatBinary:
		return NewBinaryWriter(w), nil
	case FormatWBT:
		tw, err := trace.NewWriter(w)
		if err != nil {
			return nil, err
		}
		return wbtWriter{tw}, nil
	default:
		return nil, fmt.Errorf("traceio: unsupported write format %s", format)
	}
}

// wbtWriter adapts trace.Writer (Flush) to the Writer contract (Close).
type wbtWriter struct{ w *trace.Writer }

func (w wbtWriter) Write(rec *trace.Record) error { return w.w.Write(rec) }
func (w wbtWriter) Close() error                  { return w.w.Flush() }

// ReadAll decodes every record from r. On failure it returns the
// records decoded before the error alongside the error.
func ReadAll(r io.Reader, format Format) ([]trace.Record, Format, error) {
	dec, detected, err := NewReader(r, format)
	if err != nil {
		return nil, detected, err
	}
	var recs []trace.Record
	var rec trace.Record
	for dec.Next(&rec) {
		recs = append(recs, rec)
	}
	return recs, detected, dec.Err()
}

// LoadFile reads a whole trace file, auto-detecting the format when
// format is FormatAuto.
func LoadFile(path string, format Format) ([]trace.Record, Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, format, err
	}
	defer f.Close()
	recs, detected, err := ReadAll(f, format)
	if err != nil {
		return nil, detected, fmt.Errorf("%s: %w", path, err)
	}
	return recs, detected, nil
}

// WriteAll encodes recs to w in the given format.
func WriteAll(w io.Writer, format Format, recs []trace.Record) error {
	enc, err := NewWriter(w, format)
	if err != nil {
		return err
	}
	for i := range recs {
		if err := enc.Write(&recs[i]); err != nil {
			return err
		}
	}
	return enc.Close()
}

// Window-content failures. A trace that decodes cleanly can still be
// useless to the profiling/attribution pipeline: an empty window or one
// without a single conditional branch almost always means a broken
// export, so consumers reject it with a typed, actionable error instead
// of producing an all-zero table (the same stance the -from-trace guard
// takes on legacy WBT files).
var (
	// ErrEmptyTrace means the decoded window holds no records at all.
	ErrEmptyTrace = errors.New("traceio: trace window contains no records")
	// ErrNoConditionals means the window holds records but not one
	// conditional branch, so there is nothing to predict, profile, or
	// attribute.
	ErrNoConditionals = errors.New("traceio: trace window contains no conditional branches")
)

// CheckRecords validates that a decoded window is simulatable: non-empty
// and containing at least one conditional branch. The name argument
// labels the window in the error ("" for an anonymous one). Errors wrap
// ErrEmptyTrace or ErrNoConditionals for errors.Is dispatch and carry a
// remedy the operator can act on.
func CheckRecords(name string, recs []trace.Record) error {
	prefix := ""
	if name != "" {
		prefix = name + ": "
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s%w: re-export the trace or widen the capture window", prefix, ErrEmptyTrace)
	}
	for i := range recs {
		if recs[i].Kind == trace.CondBranch {
			return nil
		}
	}
	return fmt.Errorf("%s%w (%d records): the exporter likely dropped branch kinds; re-export with conditional branches included",
		prefix, ErrNoConditionals, len(recs))
}

// Fingerprint returns a stable content hash of a record sequence (the
// SHA-256 of its canonical binary encoding), used to key disk-cached
// work derived from imported traces.
func Fingerprint(recs []trace.Record) string {
	h := sha256.New()
	// The canonical binary encoder cannot fail on in-memory records
	// with valid kinds; Fingerprint is only called on records that came
	// through a validating reader or the workload generator.
	if err := WriteAll(h, FormatBinary, recs); err != nil {
		panic(fmt.Sprintf("traceio: fingerprint encode: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}
