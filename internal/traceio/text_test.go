package traceio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
)

// sampleRecords is a small stream exercising every kind, both
// directions, zero and large instruction runs, and backward deltas.
func sampleRecords() []trace.Record {
	return []trace.Record{
		{PC: 0x400010, Target: 0x400070, Kind: trace.CondBranch, Taken: true, Instrs: 5},
		{PC: 0x400070, Target: 0x400088, Kind: trace.CondBranch, Taken: false, Instrs: 0},
		{PC: 0x400090, Target: 0x401000, Kind: trace.Call, Taken: true, Instrs: 3},
		{PC: 0x401040, Target: 0x3f0000, Kind: trace.UncondDirect, Taken: true, Instrs: 12},
		{PC: 0x3f0010, Target: 0x400098, Kind: trace.Return, Taken: true, Instrs: 2},
		{PC: 0x4000a0, Target: 0xdeadbeefcafe, Kind: trace.IndirectJump, Taken: true, Instrs: 1<<32 - 1},
		{PC: 0xdeadbeefcafe, Target: 0x400010, Kind: trace.CondBranch, Taken: true, Instrs: 7},
	}
}

// parseText decodes a text trace from a string.
func parseText(t *testing.T, in string) ([]trace.Record, error) {
	t.Helper()
	r := NewTextReader(strings.NewReader(in))
	var recs []trace.Record
	var rec trace.Record
	for r.Next(&rec) {
		recs = append(recs, rec)
	}
	return recs, r.Err()
}

func TestTextWriterReaderRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteAll(&buf, FormatText, recs); err != nil {
		t.Fatal(err)
	}
	got, detected, err := ReadAll(bytes.NewReader(buf.Bytes()), FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if detected != FormatText {
		t.Fatalf("detected %s, want text", detected)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	// Canonical: re-encoding the parsed stream reproduces the bytes.
	var buf2 bytes.Buffer
	if err := WriteAll(&buf2, FormatText, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("canonical text not stable:\n%q\nvs\n%q", buf.String(), buf2.String())
	}
}

// TestTextReaderTolerance locks what the importer is lenient about:
// comments, blank lines, flexible whitespace, 0x prefixes, letter case
// and numeric direction flags.
func TestTextReaderTolerance(t *testing.T) {
	in := strings.Join([]string{
		"# an LBR dump, massaged",
		"",
		"0x400010  0x400070   COND t 5",
		"  400070 400088 cond N 0   # trailing comment",
		"\t0X400090\t401000\tCall\t1\t3",
		"401040 3f0000 JMP T 12",
	}, "\n")
	recs, err := parseText(t, in)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Record{
		{PC: 0x400010, Target: 0x400070, Kind: trace.CondBranch, Taken: true, Instrs: 5},
		{PC: 0x400070, Target: 0x400088, Kind: trace.CondBranch, Taken: false, Instrs: 0},
		{PC: 0x400090, Target: 0x401000, Kind: trace.Call, Taken: true, Instrs: 3},
		{PC: 0x401040, Target: 0x3f0000, Kind: trace.UncondDirect, Taken: true, Instrs: 12},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, recs[i], want[i])
		}
	}
}

// TestTextReaderErrors is the table-driven error-path suite: every
// malformed record must stop the stream with a message carrying the
// exact 1-based line number of the offending line.
func TestTextReaderErrors(t *testing.T) {
	const good = "400010 400070 cond T 5\n"
	cases := []struct {
		name string
		in   string
		want string // substring of the error, including "line N"
	}{
		{"bad field count short", good + "400070 400088 cond\n", "line 2: record has 3 fields, want 5"},
		{"bad field count long", good + "400070 400088 cond N 0 extra\n", "line 2: record has 6 fields, want 5"},
		{"mid-stream truncation", good + good + "4000", "line 3: record has 1 fields, want 5"},
		{"non-hex from PC", "40zz10 400070 cond T 5\n", "line 1: bad from PC \"40zz10\""},
		{"non-hex target PC", good + "400070 0xnope cond T 5\n", "line 2: bad target PC \"0xnope\""},
		{"empty hex", "0x 400070 cond T 5\n", "line 1: bad from PC"},
		{"hex overflow", "1ffffffffffffffff 400070 cond T 5\n", "line 1: bad from PC"},
		{"unknown branch kind", good + "400070 400088 branch T 5\n", "line 2: unknown branch kind \"branch\""},
		{"bad taken flag", "400010 400070 cond maybe 5\n", "line 1: bad taken flag \"maybe\""},
		{"not-taken call", good + "400090 401000 call N 3\n", "line 2: call branch marked not-taken"},
		{"not-taken return", "3f0010 400098 ret 0 2\n", "line 1: ret branch marked not-taken"},
		{"bad instrs", "400010 400070 cond T five\n", "line 1: bad instruction count \"five\""},
		{"instrs overflow", "400010 400070 cond T 4294967296\n", "line 1: bad instruction count"},
		{"negative instrs", "400010 400070 cond T -1\n", "line 1: bad instruction count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := parseText(t, tc.in)
			if err == nil {
				t.Fatalf("accepted %q (%d records)", tc.in, len(recs))
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError", err)
			}
		})
	}
}

// TestTextErrorLineCountsComments: line numbers refer to physical input
// lines, comments and blanks included.
func TestTextErrorLineCountsComments(t *testing.T) {
	in := "# header\n\n400010 400070 cond T 5\n# note\nbogus line here broke it\n"
	_, err := parseText(t, in)
	if err == nil || !strings.Contains(err.Error(), "line 5:") {
		t.Fatalf("want a line 5 error, got %v", err)
	}
}

// TestTextReaderStopsAtError: records before the bad line are
// delivered, nothing after it is.
func TestTextReaderStopsAtError(t *testing.T) {
	in := "400010 400070 cond T 5\nbroken\n400090 401000 call T 3\n"
	recs, err := parseText(t, in)
	if err == nil {
		t.Fatal("want error")
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records before the error, want 1", len(recs))
	}
}

// TestTextWriterRejectsInvalid: the canonical writer refuses records
// the readers would reject, keeping the formats' valid ranges aligned.
func TestTextWriterRejectsInvalid(t *testing.T) {
	for _, rec := range []trace.Record{
		{PC: 1, Target: 2, Kind: trace.Kind(9), Taken: true},
		{PC: 1, Target: 2, Kind: trace.Call, Taken: false},
	} {
		var buf bytes.Buffer
		w := NewTextWriter(&buf)
		if err := w.Write(&rec); err == nil {
			t.Errorf("writer accepted %+v", rec)
		}
	}
}

// TestTextEmptyInputs: empty and comment-only files decode to zero
// records without error (CLI layers reject empty traces themselves).
func TestTextEmptyInputs(t *testing.T) {
	for _, in := range []string{"", "\n\n", "# nothing here\n", "   \n# x"} {
		recs, err := parseText(t, in)
		if err != nil || len(recs) != 0 {
			t.Fatalf("%q: got %d records, err %v", in, len(recs), err)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
		ok   bool
	}{
		{"auto", FormatAuto, true}, {"", FormatAuto, true},
		{"text", FormatText, true}, {"txt", FormatText, true},
		{"binary", FormatBinary, true}, {"wspt", FormatBinary, true}, {"bin", FormatBinary, true},
		{"wbt", FormatWBT, true},
		{"protobuf", 0, false},
	} {
		got, err := ParseFormat(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseFormat(%q) accepted", tc.in)
		}
	}
}
