package traceio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/whisper-sim/whisper/internal/trace"
)

// The text trace format, one retired branch per line:
//
//	# comment (whole-line or trailing)
//	FROM TO KIND TAKEN INSTRS
//
// FROM/TO are hex branch and target addresses (0x prefix optional),
// in the Intel-LBR field order (source before destination). KIND is
// one of cond, jmp, call, ret, ijmp (trace.Kind names). TAKEN is T/N
// (1/0 also accepted); unconditional kinds must be taken. INSTRS is
// the decimal count of non-branch instructions retired since the
// previous record (fits uint32).
//
// The reader is tolerant about what it skips — comments, blank lines,
// arbitrary whitespace, letter case — and strict about what it
// accepts: any malformed record stops the stream with a ParseError
// carrying the 1-based line number. A file cut mid-line therefore
// reports the exact line where the truncation landed.

// ParseError is a text-importer failure pinned to its input line.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // what was wrong with it
}

// Error formats the failure with its line number.
func (e *ParseError) Error() string { return fmt.Sprintf("traceio: line %d: %s", e.Line, e.Msg) }

// maxTextLine bounds a single input line (comments included); longer
// lines are rejected, which keeps hostile inputs from ballooning the
// scanner buffer.
const maxTextLine = 1 << 20

// TextReader decodes the text format and implements Reader.
type TextReader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewTextReader returns a streaming reader over r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTextLine)
	return &TextReader{sc: sc}
}

// fail records the first error and stops the stream.
func (t *TextReader) fail(msg string, args ...any) bool {
	t.err = &ParseError{Line: t.line, Msg: fmt.Sprintf(msg, args...)}
	return false
}

// Next implements trace.Stream.
func (t *TextReader) Next(rec *trace.Record) bool {
	if t.err != nil {
		return false
	}
	for t.sc.Scan() {
		t.line++
		line := t.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue // blank or comment-only line
		}
		return t.parseRecord(fields, rec)
	}
	if err := t.sc.Err(); err != nil {
		t.line++
		if err == bufio.ErrTooLong {
			t.fail("line exceeds %d bytes", maxTextLine)
		} else {
			t.err = err
		}
	}
	return false
}

// parseRecord validates one record line.
func (t *TextReader) parseRecord(fields []string, rec *trace.Record) bool {
	if len(fields) != 5 {
		return t.fail("record has %d fields, want 5 (from to kind taken instrs)", len(fields))
	}
	from, err := parseHex(fields[0])
	if err != nil {
		return t.fail("bad from PC %q: %v", fields[0], err)
	}
	to, err := parseHex(fields[1])
	if err != nil {
		return t.fail("bad target PC %q: %v", fields[1], err)
	}
	kind, ok := parseKind(fields[2])
	if !ok {
		return t.fail("unknown branch kind %q (want cond, jmp, call, ret or ijmp)", fields[2])
	}
	taken, ok := parseTaken(fields[3])
	if !ok {
		return t.fail("bad taken flag %q (want T, N, 1 or 0)", fields[3])
	}
	if !taken && kind != trace.CondBranch {
		return t.fail("%s branch marked not-taken (only cond branches fall through)", kind)
	}
	instrs, err := strconv.ParseUint(fields[4], 10, 32)
	if err != nil {
		return t.fail("bad instruction count %q: must be a decimal uint32", fields[4])
	}
	rec.PC = from
	rec.Target = to
	rec.Kind = kind
	rec.Taken = taken
	rec.Instrs = uint32(instrs)
	return true
}

// Err returns the first decode error, or nil on clean EOF.
func (t *TextReader) Err() error { return t.err }

// parseHex accepts a hex address with or without the 0x prefix.
func parseHex(s string) (uint64, error) {
	h := strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if h == "" {
		return 0, fmt.Errorf("empty hex value")
	}
	return strconv.ParseUint(h, 16, 64)
}

// parseKind resolves a trace.Kind name, case-insensitively.
func parseKind(s string) (trace.Kind, bool) {
	switch strings.ToLower(s) {
	case "cond":
		return trace.CondBranch, true
	case "jmp":
		return trace.UncondDirect, true
	case "call":
		return trace.Call, true
	case "ret":
		return trace.Return, true
	case "ijmp":
		return trace.IndirectJump, true
	default:
		return 0, false
	}
}

// parseTaken resolves a direction flag.
func parseTaken(s string) (taken, ok bool) {
	switch strings.ToLower(s) {
	case "t", "1":
		return true, true
	case "n", "0":
		return false, true
	default:
		return false, false
	}
}

// textHeader is the canonical writer's lead-in. Readers treat it as
// ordinary comments, so its presence is not required on import.
const textHeader = "# whisper branch trace v1\n# from to kind taken instrs\n"

// TextWriter emits the canonical text form: the two header comment
// lines, then one bare-hex record line per Write. Its output is a pure
// function of the record sequence, which is what makes text<->binary
// conversion of canonical files bit-exact.
type TextWriter struct {
	w     *bufio.Writer
	wrote bool
}

// NewTextWriter returns a writer over w. The header is emitted lazily
// on the first Write (or by Close for an empty trace).
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// header emits the lead-in once.
func (t *TextWriter) header() error {
	if t.wrote {
		return nil
	}
	t.wrote = true
	_, err := t.w.WriteString(textHeader)
	return err
}

// Write encodes one record.
func (t *TextWriter) Write(rec *trace.Record) error {
	if !rec.Kind.Valid() {
		return fmt.Errorf("traceio: invalid kind %d", rec.Kind)
	}
	if !rec.Taken && rec.Kind != trace.CondBranch {
		return fmt.Errorf("traceio: %s record marked not-taken", rec.Kind)
	}
	if err := t.header(); err != nil {
		return err
	}
	flag := byte('T')
	if !rec.Taken {
		flag = 'N'
	}
	_, err := fmt.Fprintf(t.w, "%x %x %s %c %d\n", rec.PC, rec.Target, rec.Kind, flag, rec.Instrs)
	return err
}

// Close flushes the output (writing the header if no records were).
func (t *TextWriter) Close() error {
	if err := t.header(); err != nil {
		return err
	}
	return t.w.Flush()
}
