package traceio

import (
	"bytes"
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
)

// fuzzSeedTexts are the in-code text seeds (the committed corpus under
// testdata/fuzz adds binary-leaning inputs).
var fuzzSeedTexts = []string{
	"",
	"# whisper branch trace v1\n# from to kind taken instrs\n400010 400070 cond T 5\n",
	"400010 400070 cond T 5\n400070 400088 cond N 0\n400090 401000 call T 3\n",
	"0x400010 0X400070 COND t 5 # comment\n\n# blank above\n",
	"401040 3f0000 jmp T 12\n3f0010 400098 ret 1 2\n4000a0 deadbeefcafe ijmp T 4294967295\n",
	"400070 400088 cond\n",
	"40zz10 400070 cond T 5\n",
	"400090 401000 call N 3\n",
}

// FuzzTextImporter: the text reader must never panic, and any input it
// accepts must survive a convert round trip: text -> binary -> text ->
// reparse yields the same records, and the first text encode is
// already canonical (stable under re-encode).
func FuzzTextImporter(f *testing.F) {
	for _, s := range fuzzSeedTexts {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, err := ReadAll(bytes.NewReader(data), FormatText)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		var bin bytes.Buffer
		if err := WriteAll(&bin, FormatBinary, recs); err != nil {
			t.Fatalf("accepted text failed binary encode: %v", err)
		}
		var text bytes.Buffer
		n, _, err := Convert(&text, bytes.NewReader(bin.Bytes()), FormatBinary, FormatText)
		if err != nil || n != len(recs) {
			t.Fatalf("binary->text convert: n=%d err=%v", n, err)
		}
		got, _, err := ReadAll(bytes.NewReader(text.Bytes()), FormatText)
		if err != nil {
			t.Fatalf("canonical text failed to reparse: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip changed record count: %d vs %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("round trip changed record %d: %+v vs %+v", i, got[i], recs[i])
			}
		}
		var text2 bytes.Buffer
		if err := WriteAll(&text2, FormatText, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(text.Bytes(), text2.Bytes()) {
			t.Fatal("canonical text form is not stable")
		}
	})
}

// FuzzBinaryImporter: the WSPT reader must never panic, and any byte
// string that decodes cleanly must re-encode to the identical bytes
// (decode -> encode -> decode identity), the same bijection
// internal/store pins for artifacts.
func FuzzBinaryImporter(f *testing.F) {
	var seeds [][]trace.Record
	seeds = append(seeds, nil, sampleRecords())
	long := make([]trace.Record, blockRecords+3)
	for i := range long {
		long[i] = trace.Record{
			PC:     0x400000 + uint64(i*4),
			Target: 0x400000 + uint64((i*7)%512),
			Kind:   trace.CondBranch,
			Taken:  i%2 == 0,
			Instrs: uint32(i % 5),
		}
	}
	seeds = append(seeds, long)
	for _, recs := range seeds {
		var buf bytes.Buffer
		if err := WriteAll(&buf, FormatBinary, recs); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("WSPT"))
	f.Add([]byte("WSPT\x01"))
	f.Add([]byte("WSPT\x01\x07\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, err := ReadAll(bytes.NewReader(data), FormatBinary)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		var enc bytes.Buffer
		if err := WriteAll(&enc, FormatBinary, recs); err != nil {
			t.Fatalf("clean decode failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc.Bytes(), data) {
			t.Fatalf("decode->encode not byte-identical:\n in %x\nout %x", data, enc.Bytes())
		}
		got, _, err := ReadAll(bytes.NewReader(enc.Bytes()), FormatBinary)
		if err != nil || len(got) != len(recs) {
			t.Fatalf("re-decode: %d records, err %v", len(got), err)
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("re-decode changed record %d", i)
			}
		}
	})
}
