package traceio

import (
	"fmt"
	"io"

	"github.com/whisper-sim/whisper/internal/trace"
)

// Convert transcodes a trace stream from one format to another,
// returning the record count and the concrete input format (after
// FormatAuto detection). Conversion is streaming and lossless: every
// record field survives, so text->binary->text of canonical inputs is
// bit-exact (comments in hand-written text are dropped — the canonical
// text form carries only the standard header comments).
func Convert(dst io.Writer, src io.Reader, from, to Format) (int, Format, error) {
	dec, detected, err := NewReader(src, from)
	if err != nil {
		return 0, detected, err
	}
	if to == FormatAuto {
		return 0, detected, fmt.Errorf("traceio: output format must be explicit (text, binary or wbt)")
	}
	enc, err := NewWriter(dst, to)
	if err != nil {
		return 0, detected, err
	}
	n := 0
	var rec trace.Record
	for dec.Next(&rec) {
		if err := enc.Write(&rec); err != nil {
			return n, detected, err
		}
		n++
	}
	if err := dec.Err(); err != nil {
		return n, detected, err
	}
	return n, detected, enc.Close()
}
