// Package frontend models the decoupled FDIP (Fetch-Directed Instruction
// Prefetching) frontend of the simulated machine (paper §I/§II-B, Table
// II: 24-entry FTQ).
//
// The model captures the property the paper's limit study depends on: as
// long as the branch predictor steers the fetch target queue down the
// correct path, FDIP runs ahead and hides instruction-cache misses; a
// pipeline squash empties the FTQ, and until it refills, demand fetches
// are exposed to the cache hierarchy's latency. Branch mispredictions
// therefore cost both the squash penalty *and* a window of exposed
// I-cache misses — which is why eliminating them also removes "frontend"
// stall cycles (paper Fig 1).
package frontend

import (
	"github.com/whisper-sim/whisper/internal/btb"
	"github.com/whisper-sim/whisper/internal/cache"
	"github.com/whisper-sim/whisper/internal/trace"
)

// Config tunes the FDIP model.
type Config struct {
	// FTQDepth is the fetch-target-queue depth in fetch blocks
	// (Table II: 24).
	FTQDepth int
	// ExposedBlocks is how many fetch blocks after a squash see demand
	// I-cache latency before FDIP is running ahead again. It defaults
	// to FTQDepth/3: the queue needs only a partial refill before
	// prefetches lead demand again.
	ExposedBlocks int
	// BTBMissPenalty is the frontend bubble (cycles) when a taken
	// control transfer misses the BTB and fetch must redirect.
	BTBMissPenalty int
	// Latency gives the cache hierarchy's per-level costs.
	Latency cache.Latency
	// MaxLinesPerRun caps the I-cache walks of one sequential run.
	MaxLinesPerRun int
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{
		FTQDepth:       24,
		ExposedBlocks:  10,
		BTBMissPenalty: 3,
		Latency:        cache.DefaultLatency(),
		MaxLinesPerRun: 16,
	}
}

// Stats are the frontend's cycle-attribution counters.
type Stats struct {
	// ExposedMissCycles are demand I-cache miss cycles paid while the
	// FTQ refilled after squashes (the "frontend stall" bucket).
	ExposedMissCycles uint64
	// BTBMissCycles are redirect bubbles.
	BTBMissCycles uint64
	// L1iAccesses / L1iMisses count cache-line traffic.
	L1iAccesses, L1iMisses uint64
	// ExposedMisses counts misses that actually stalled the pipeline.
	ExposedMisses uint64
	// TargetMispredicts counts wrong target predictions (returns and
	// indirect jumps) which squash like direction mispredictions.
	TargetMispredicts uint64
}

// FDIP is the decoupled-frontend model.
type FDIP struct {
	cfg     Config
	icache  *cache.Hierarchy
	targets *btb.Frontend

	// exposed counts fetch blocks still demand-exposed after a squash.
	exposed int

	Stats Stats
}

// New builds the frontend with a fresh Table II cache hierarchy and
// target structures.
func New(cfg Config) *FDIP {
	if cfg.FTQDepth <= 0 {
		cfg.FTQDepth = 24
	}
	if cfg.ExposedBlocks <= 0 {
		cfg.ExposedBlocks = cfg.FTQDepth / 3
	}
	if cfg.MaxLinesPerRun <= 0 {
		cfg.MaxLinesPerRun = 16
	}
	if cfg.Latency == (cache.Latency{}) {
		cfg.Latency = cache.DefaultLatency()
	}
	return &FDIP{
		cfg:     cfg,
		icache:  cache.NewHierarchy("L1i"),
		targets: btb.NewFrontend(),
	}
}

// ICache exposes the hierarchy for reporting.
func (f *FDIP) ICache() *cache.Hierarchy { return f.icache }

// OnSquash models a pipeline squash: the FTQ drains and the next
// ExposedBlocks fetch blocks pay demand latency.
func (f *FDIP) OnSquash() {
	f.exposed = f.cfg.ExposedBlocks
}

// FetchRun walks the I-cache lines of a sequential run of instrs
// instructions starting at startPC and returns the stall cycles the run
// contributes. While FDIP runs ahead (no recent squash) misses are
// prefetched and hidden; during the post-squash window they stall.
func (f *FDIP) FetchRun(startPC uint64, instrs uint32) (stall uint64) {
	bytes := uint64(instrs) * 4
	if bytes == 0 {
		bytes = 4
	}
	first := startPC / cache.LineSize
	last := (startPC + bytes - 1) / cache.LineSize
	lines := int(last - first + 1)
	if lines > f.cfg.MaxLinesPerRun {
		lines = f.cfg.MaxLinesPerRun
	}
	demandExposed := f.exposed > 0
	for i := 0; i < lines; i++ {
		addr := (first + uint64(i)) * cache.LineSize
		f.Stats.L1iAccesses++
		if demandExposed {
			lvl := f.icache.Access(addr)
			if lvl != cache.L1 {
				f.Stats.L1iMisses++
				f.Stats.ExposedMisses++
				c := uint64(f.cfg.Latency.Cycles(lvl))
				stall += c
				f.Stats.ExposedMissCycles += c
			}
		} else {
			// FDIP prefetches ahead: the fill happens early enough to
			// hide the latency, but the traffic still shapes cache
			// contents.
			lvl := f.icache.Prefetch(addr)
			if lvl != cache.L1 {
				f.Stats.L1iMisses++
			}
		}
	}
	// One fetch block consumed; the FTQ refills one block per run.
	if f.exposed > 0 {
		f.exposed--
	}
	return stall
}

// OnControlFlow models target prediction for a control-flow record and
// returns (stall cycles, squash) where squash reports a wrong-target
// resteer that empties the FTQ (returns and indirect jumps with wrong
// predictions).
func (f *FDIP) OnControlFlow(rec *trace.Record) (stall uint64, squash bool) {
	tgt, ok := f.targets.PredictTarget(rec)
	switch rec.Kind {
	case trace.CondBranch:
		// Direction prediction is handled by the pipeline; here only the
		// BTB presence matters for taken branches.
		if rec.Taken && !ok {
			stall = uint64(f.cfg.BTBMissPenalty)
			f.Stats.BTBMissCycles += stall
		}
	case trace.UncondDirect, trace.Call:
		if !ok {
			stall = uint64(f.cfg.BTBMissPenalty)
			f.Stats.BTBMissCycles += stall
		}
	case trace.Return, trace.IndirectJump:
		if !ok || tgt != rec.Target {
			f.Stats.TargetMispredicts++
			squash = true
		}
	}
	f.targets.UpdateTarget(rec)
	return stall, squash
}
