package frontend

import "github.com/whisper-sim/whisper/internal/snap"

// Clone returns a deep copy of the frontend, including the current
// Stats. The clone and the original share no mutable state, so both
// can simulate independently — the basis of the windowed engine's
// speculative workers.
func (f *FDIP) Clone() *FDIP {
	return &FDIP{
		cfg:     f.cfg,
		icache:  f.icache.Clone(),
		targets: f.targets.Clone(),
		exposed: f.exposed,
		Stats:   f.Stats,
	}
}

// AppendState encodes the frontend's functional state — everything
// that influences future fetch/target behavior: the exposure counter,
// the I-cache hierarchy contents, and the target structures. Stats are
// excluded: they are additive outputs, accounted as per-window deltas
// by the windowed engine. Two frontends with equal AppendState bytes
// produce identical stalls, squashes, and Stats deltas on any future
// record sequence.
func (f *FDIP) AppendState(b []byte) []byte {
	b = snap.U32(b, uint32(f.exposed))
	b = f.icache.AppendState(b)
	return f.targets.AppendState(b)
}

// ReadState restores state written by AppendState into a frontend
// built with the same Config.
func (f *FDIP) ReadState(r *snap.Reader) error {
	f.exposed = int(r.U32())
	if err := f.icache.ReadState(r); err != nil {
		return err
	}
	return f.targets.ReadState(r)
}
