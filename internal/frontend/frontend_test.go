package frontend

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/cache"
	"github.com/whisper-sim/whisper/internal/trace"
)

func TestDefaultsApplied(t *testing.T) {
	f := New(Config{})
	if f.cfg.FTQDepth != 24 || f.cfg.ExposedBlocks != 8 || f.cfg.MaxLinesPerRun != 16 {
		t.Fatalf("defaults not applied: %+v", f.cfg)
	}
	if f.cfg.Latency.Memory == 0 {
		t.Fatal("latency default missing")
	}
}

func TestFetchRunHiddenWhileAhead(t *testing.T) {
	f := New(DefaultConfig())
	// No squash yet: cold misses are prefetched, not exposed.
	stall := f.FetchRun(0x400000, 10)
	if stall != 0 {
		t.Fatalf("stall %d while running ahead", stall)
	}
	if f.Stats.L1iMisses == 0 {
		t.Fatal("cold lines should miss (but be hidden)")
	}
	if f.Stats.ExposedMisses != 0 {
		t.Fatal("hidden misses recorded as exposed")
	}
}

func TestSquashExposesMisses(t *testing.T) {
	f := New(DefaultConfig())
	f.OnSquash()
	stall := f.FetchRun(0x800000, 10)
	if stall == 0 {
		t.Fatal("post-squash cold fetch did not stall")
	}
	if f.Stats.ExposedMisses == 0 || f.Stats.ExposedMissCycles == 0 {
		t.Fatal("exposure not recorded")
	}
}

func TestExposureWindowExpires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExposedBlocks = 2
	f := New(cfg)
	f.OnSquash()
	f.FetchRun(0x900000, 4) // exposed block 1
	f.FetchRun(0x910000, 4) // exposed block 2
	before := f.Stats.ExposedMisses
	stall := f.FetchRun(0x920000, 4) // window expired: hidden again
	if stall != 0 || f.Stats.ExposedMisses != before {
		t.Fatalf("exposure did not expire: stall=%d", stall)
	}
}

func TestWarmLinesDontStallEvenExposed(t *testing.T) {
	f := New(DefaultConfig())
	f.FetchRun(0xA00000, 10) // warm the lines
	f.OnSquash()
	stall := f.FetchRun(0xA00000, 10)
	if stall != 0 {
		t.Fatalf("warm lines stalled %d cycles", stall)
	}
}

func TestBTBMissPenaltyOnTakenBranch(t *testing.T) {
	f := New(DefaultConfig())
	rec := trace.Record{PC: 0x1000, Target: 0x2000, Kind: trace.CondBranch, Taken: true}
	stall, squash := f.OnControlFlow(&rec)
	if squash {
		t.Fatal("BTB miss must not squash")
	}
	if stall == 0 {
		t.Fatal("cold taken branch paid no redirect bubble")
	}
	// Trained: second time no bubble.
	stall2, _ := f.OnControlFlow(&rec)
	if stall2 != 0 {
		t.Fatalf("warm BTB still stalls %d", stall2)
	}
}

func TestNotTakenBranchNoBTBPenalty(t *testing.T) {
	f := New(DefaultConfig())
	rec := trace.Record{PC: 0x1000, Target: 0x2000, Kind: trace.CondBranch, Taken: false}
	if stall, _ := f.OnControlFlow(&rec); stall != 0 {
		t.Fatal("not-taken branch paid a redirect bubble")
	}
}

func TestReturnMispredictSquashes(t *testing.T) {
	f := New(DefaultConfig())
	// Return with an empty RAS: wrong target, must squash.
	ret := trace.Record{PC: 0x3000, Target: 0x4000, Kind: trace.Return, Taken: true}
	_, squash := f.OnControlFlow(&ret)
	if !squash {
		t.Fatal("cold return did not squash")
	}
	if f.Stats.TargetMispredicts != 1 {
		t.Fatalf("target mispredicts %d", f.Stats.TargetMispredicts)
	}
	// Call then return: correct target prediction, no squash.
	call := trace.Record{PC: 0x5000, Target: 0x6000, Kind: trace.Call, Taken: true}
	f.OnControlFlow(&call)
	ret2 := trace.Record{PC: 0x6100, Target: 0x5004, Kind: trace.Return, Taken: true}
	if _, squash := f.OnControlFlow(&ret2); squash {
		t.Fatal("paired return squashed")
	}
}

func TestICacheAccessor(t *testing.T) {
	f := New(DefaultConfig())
	if f.ICache() == nil {
		t.Fatal("nil icache")
	}
	f.FetchRun(0x100, 4)
	if f.ICache().L1c.Accesses()+f.Stats.L1iAccesses == 0 {
		t.Fatal("no cache traffic")
	}
	_ = cache.LineSize
}

func TestMaxLinesPerRunCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLinesPerRun = 2
	f := New(cfg)
	f.FetchRun(0x400000, 1000) // would span many lines
	if f.Stats.L1iAccesses > 2 {
		t.Fatalf("run walked %d lines, cap 2", f.Stats.L1iAccesses)
	}
}
