package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterSet(t *testing.T) {
	var s Set
	s.Counter("a").Add(3)
	s.Counter("a").Inc()
	s.Counter("b").Inc()
	if got := s.Value("a"); got != 4 {
		t.Fatalf("a = %d, want 4", got)
	}
	if got := s.Value("b"); got != 1 {
		t.Fatalf("b = %d, want 1", got)
	}
	if got := s.Value("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	// Non-positive entries must not produce NaN.
	if v := GeoMean([]float64{0, 1}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("GeoMean with zero = %v", v)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {50, 3}, {100, 5}, {25, 2}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePropertyBounded(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		v := Percentile(xs, p)
		min, max := MinMax(xs)
		return v >= min && v <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "app", "mpki")
	tb.AddRow("mysql", "4.5")
	tb.AddRow("kafka", "0.5")
	out := tb.String()
	for _, want := range []string{"Fig X", "app", "mpki", "mysql", "4.5", "kafka"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestTableRowTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb := NewTable("t", "a")
	tb.AddRow("x", "y")
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("t", "name", "val")
	tb.AddRow(`has "quote"`, "a,b")
	csv := tb.CSV()
	if !strings.Contains(csv, `"has ""quote"""`) {
		t.Fatalf("bad quote escaping: %s", csv)
	}
	if !strings.Contains(csv, `"a,b"`) {
		t.Fatalf("bad comma quoting: %s", csv)
	}
}

func TestAddRowValues(t *testing.T) {
	tb := NewTable("t", "label", "v1", "v2")
	tb.AddRowValues("row", 2, 1.234, 5.678)
	if tb.Rows[0][1] != "1.23" || tb.Rows[0][2] != "5.68" {
		t.Fatalf("formatted row = %v", tb.Rows[0])
	}
}

func TestFormatFloatNegativeZero(t *testing.T) {
	if got := FormatFloat(-0.0001, 1); got != "0.0" {
		t.Fatalf("FormatFloat(-0.0001, 1) = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.168); got != "16.8" {
		t.Fatalf("Pct = %q", got)
	}
}
