// Package stats provides the metric containers and table formatting the
// experiment harness uses to print paper-style result tables.
//
// Every experiment driver in internal/experiments returns a *Table; the
// command-line tools render it as aligned text or CSV. Aggregates (mean,
// geometric mean) are computed here so each experiment reports "Avg"
// columns exactly the way the paper's figures do.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple named event counter.
type Counter struct {
	Name  string
	Value int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Set is a collection of counters addressed by name. The zero value is
// ready to use.
type Set struct {
	counters map[string]*Counter
	order    []string
}

// Counter returns (creating if needed) the counter with the given name.
func (s *Set) Counter(name string) *Counter {
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{Name: name}
		s.counters[name] = c
		s.order = append(s.order, name)
	}
	return c
}

// Value returns the current value of the named counter (0 if absent).
func (s *Set) Value(name string) int64 {
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Names returns counter names in creation order.
func (s *Set) Names() []string { return append([]string(nil), s.order...) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny positive value so a single zero does not collapse the
// aggregate; callers reporting speedup ratios should pass values > 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// MinMax returns the smallest and largest elements of xs.
// It panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table is a simple column-oriented result table with a title, suitable
// for rendering the rows/series a paper figure reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// panic, since that is always a programming error in an experiment driver.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowValues appends a row whose first cell is label and remaining cells
// are formatted floats with the given precision.
func (t *Table) AddRowValues(label string, prec int, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, FormatFloat(v, prec))
	}
	t.AddRow(cells...)
}

// FormatFloat renders v with prec decimal places, trimming negative zero.
func FormatFloat(v float64, prec int) string {
	s := fmt.Sprintf("%.*f", prec, v)
	if s == "-0" || strings.HasPrefix(s, "-0.") && strings.Trim(s[3:], "0") == "" {
		s = s[1:]
	}
	return s
}

// String renders the table as aligned text with a title line and a
// separator, the way the experiment CLI prints it.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas or quotes), one header row then data rows. The title is omitted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal place,
// e.g. Pct(0.168) == "16.8".
func Pct(frac float64) string { return FormatFloat(frac*100, 1) }
