// Package cliflags is the shared flag vocabulary of the whisper CLIs.
//
// Every subcommand of cmd/whisper and cmd/experiments spells the common
// flags identically — same name, same default, same usage string — by
// registering them through this package instead of calling fs.String
// inline. The table-driven tests in both commands assert that the
// shared set (Common) registers on every subcommand and that any
// subcommand offering trace input uses the canonical -trace-file /
// -trace-format pair, so a renamed or re-worded flag fails CI instead
// of drifting per subcommand.
package cliflags

import "flag"

// Canonical usage strings, exported so the per-command tests can assert
// a registered flag carries exactly this wording.
const (
	UsageTraceFile   = "imported branch trace file (text, WSPT binary, or legacy WBT; see docs/traces.md)"
	UsageTraceFormat = "imported trace format: auto, text, binary, or wbt"
	UsageJournal     = "write a JSONL run journal (manifest, per-unit events, final snapshot) to this file"
	UsageDebugAddr   = "serve /metrics, /debug/vars and /debug/pprof on this address for the duration of the run"
	UsageChromeTrace = "write the run's phase/window spans as Chrome trace-event JSON to this file"
)

// Obs carries the observability flags every subcommand shares.
type Obs struct {
	Journal     *string
	DebugAddr   *string
	ChromeTrace *string
}

// Trace carries the canonical trace-input flag pair.
type Trace struct {
	File   *string
	Format *string
}

// Common registers the shared observability set (-journal, -debug-addr,
// -chrome-trace) on fs. Every subcommand of every whisper CLI registers
// this set.
func Common(fs *flag.FlagSet) Obs {
	return Obs{
		Journal:     fs.String("journal", "", UsageJournal),
		DebugAddr:   fs.String("debug-addr", "", UsageDebugAddr),
		ChromeTrace: fs.String("chrome-trace", "", UsageChromeTrace),
	}
}

// TraceInput registers the canonical -trace-file/-trace-format pair on
// fs, for subcommands that accept an imported trace window.
func TraceInput(fs *flag.FlagSet) Trace {
	return Trace{
		File:   fs.String("trace-file", "", UsageTraceFile),
		Format: fs.String("trace-format", "auto", UsageTraceFormat),
	}
}

// CommonNames lists the shared observability flag names, in registration
// order, for the per-command table tests.
func CommonNames() []string { return []string{"journal", "debug-addr", "chrome-trace"} }

// TraceNames lists the canonical trace-input flag names.
func TraceNames() []string { return []string{"trace-file", "trace-format"} }

// Usage maps every canonical flag name to its required usage string.
func Usage() map[string]string {
	return map[string]string{
		"trace-file":   UsageTraceFile,
		"trace-format": UsageTraceFormat,
		"journal":      UsageJournal,
		"debug-addr":   UsageDebugAddr,
		"chrome-trace": UsageChromeTrace,
	}
}
