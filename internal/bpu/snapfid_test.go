package bpu_test

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/snaptest"
)

// TestSnapshotFidelity locks the bpu.Snapshotter contract for the
// simple reference predictors.
func TestSnapshotFidelity(t *testing.T) {
	t.Run("bimodal", func(t *testing.T) {
		snaptest.Fidelity(t, func() bpu.Predictor { return bpu.NewBimodal(12) }, nil)
	})
	t.Run("gshare", func(t *testing.T) {
		snaptest.Fidelity(t, func() bpu.Predictor { return bpu.NewGShare(12, 10) }, nil)
	})
}
