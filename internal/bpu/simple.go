package bpu

// Bimodal is a classic PC-indexed table of 2-bit saturating counters.
// It serves as a sanity baseline and as the base component of TAGE.
type Bimodal struct {
	table []Counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^logSize entries.
func NewBimodal(logSize int) *Bimodal {
	if logSize < 1 || logSize > 24 {
		panic("bpu: bimodal logSize out of range")
	}
	n := 1 << uint(logSize)
	t := make([]Counter, n)
	for i := range t {
		t[i] = NewCounter(2)
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.idx(pc)].Taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) { b.table[b.idx(pc)].Update(taken) }

// GShare is the classic global-history XOR predictor (McFarling 1993).
type GShare struct {
	table   []Counter
	mask    uint64
	histLen int
	hist    History
}

// NewGShare returns a gshare predictor with 2^logSize entries using
// histLen history bits (histLen <= 16 to match the Raw window).
func NewGShare(logSize, histLen int) *GShare {
	if histLen < 1 || histLen > 16 {
		panic("bpu: gshare history length out of range")
	}
	n := 1 << uint(logSize)
	t := make([]Counter, n)
	for i := range t {
		t[i] = NewCounter(2)
	}
	return &GShare{table: t, mask: uint64(n - 1), histLen: histLen}
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) idx(pc uint64) uint64 {
	return ((pc >> 2) ^ uint64(g.hist.Raw(g.histLen))) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.idx(pc)].Taken() }

// Update implements Predictor.
func (g *GShare) Update(pc uint64, taken bool) {
	g.table[g.idx(pc)].Update(taken)
	g.hist.Push(taken)
}

// Oracle is the ideal direction predictor of the paper's limit study
// (§II-B): only the direction is ideal. The simulator primes it with the
// resolved outcome before each Predict.
type Oracle struct {
	next bool
}

// Name implements Predictor.
func (o *Oracle) Name() string { return "ideal" }

// Prime implements OraclePrimer.
func (o *Oracle) Prime(taken bool) { o.next = taken }

// Predict implements Predictor.
func (o *Oracle) Predict(uint64) bool { return o.next }

// Update implements Predictor.
func (o *Oracle) Update(uint64, bool) {}

// Static always predicts a fixed direction; useful in tests and as a
// degenerate baseline.
type Static struct {
	Taken bool
}

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// Predict implements Predictor.
func (s *Static) Predict(uint64) bool { return s.Taken }

// Update implements Predictor.
func (s *Static) Update(uint64, bool) {}
