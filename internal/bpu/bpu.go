// Package bpu defines the branch-prediction plumbing shared by every
// direction predictor in the repository: the Predictor interface the
// simulator drives, n-bit saturating counters, and the global history
// register with the chunked XOR folding Whisper uses to hash long
// histories down to 8 bits (paper §III-A).
package bpu

// Predictor is a conditional-branch direction predictor.
//
// The simulator calls Predict immediately followed by Update for each
// retired conditional branch; implementations may carry prediction
// metadata between the two calls (the harness is single-threaded per
// simulation). Update is also where a predictor advances any internal
// history it keeps — the trace-driven harness models perfect history
// repair on mispredictions, the standard practice for trace simulation.
type Predictor interface {
	// Name identifies the predictor in result tables.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// OraclePrimer is implemented by predictors that need the resolved
// outcome before Predict (the ideal direction predictor). The simulator
// type-asserts for it and calls Prime before each Predict.
type OraclePrimer interface {
	Prime(taken bool)
}

// Counter is an n-bit saturating up/down counter.
type Counter struct {
	v    int16
	max  int16
	init int16
}

// NewCounter returns an n-bit counter (2 <= n <= 8) initialized to the
// weak-taken value 2^(n-1).
func NewCounter(nbits int) Counter {
	if nbits < 1 || nbits > 8 {
		panic("bpu: counter width out of range")
	}
	max := int16(1<<uint(nbits) - 1)
	return Counter{v: (max + 1) / 2, max: max, init: (max + 1) / 2}
}

// Value returns the raw counter value.
func (c *Counter) Value() int16 { return c.v }

// Taken reports the predicted direction (counter in the upper half).
func (c *Counter) Taken() bool { return c.v > c.max/2 }

// Confident reports whether the counter is saturated at either extreme.
func (c *Counter) Confident() bool { return c.v == 0 || c.v == c.max }

// Update moves the counter toward the outcome, saturating.
func (c *Counter) Update(taken bool) {
	if taken {
		if c.v < c.max {
			c.v++
		}
	} else if c.v > 0 {
		c.v--
	}
}

// Reset returns the counter to its initial weak state.
func (c *Counter) Reset() { c.v = c.init }

// SetStrong saturates the counter in the given direction.
func (c *Counter) SetStrong(taken bool) {
	if taken {
		c.v = c.max
	} else {
		c.v = 0
	}
}

// HistoryCapacity is the depth of the global history register: the
// maximum correlation length Whisper considers (paper Table III).
const HistoryCapacity = 1024

const historyWords = HistoryCapacity / 64

// History is a 1024-deep global branch-history register. Bit 0 is the
// most recently retired branch outcome (1 = taken).
//
// Fold implements Whisper's hashed-history mechanism: the most recent L
// outcomes are split into 8-bit chunks and XOR-folded into a single byte,
// the "hashed history" every Boolean formula evaluates on.
type History struct {
	w     [historyWords]uint64
	count uint64 // total pushes, for tests and warm-up logic
}

// Push records a branch outcome as the new most-recent history bit.
func (h *History) Push(taken bool) {
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := 0; i < historyWords; i++ {
		next := h.w[i] >> 63
		h.w[i] = h.w[i]<<1 | carry
		carry = next
	}
	h.count++
}

// Len returns the number of outcomes pushed so far (not capped).
func (h *History) Len() uint64 { return h.count }

// Bit returns the outcome of the i-th most recent branch (0-based).
// It panics if i >= HistoryCapacity.
func (h *History) Bit(i int) bool {
	if i < 0 || i >= HistoryCapacity {
		panic("bpu: history index out of range")
	}
	return h.w[i>>6]&(1<<(uint(i)&63)) != 0
}

// extract returns n (<= 16) history bits starting at position pos, with
// the bit at pos in the least-significant position.
func (h *History) extract(pos, n int) uint64 {
	word := pos >> 6
	shift := uint(pos) & 63
	v := h.w[word] >> shift
	if shift+uint(n) > 64 && word+1 < historyWords {
		v |= h.w[word+1] << (64 - shift)
	}
	return v & (1<<uint(n) - 1)
}

// Raw returns the most recent n (<= 16) outcomes as an integer, bit i
// being the i-th most recent outcome. This is the raw history view the
// ROMBF baseline predicts on.
func (h *History) Raw(n int) uint16 {
	if n < 1 || n > 16 {
		panic("bpu: Raw supports 1..16 bits")
	}
	return uint16(h.extract(0, n))
}

// Fold hashes the most recent length outcomes into 8 bits by XOR-folding
// consecutive 8-bit chunks (paper §III-A "history hashing"). A trailing
// partial chunk participates unshifted. length must be in
// [1, HistoryCapacity].
func (h *History) Fold(length int) uint8 {
	if length < 1 || length > HistoryCapacity {
		panic("bpu: fold length out of range")
	}
	var f uint8
	for off := 0; off < length; off += 8 {
		n := length - off
		if n > 8 {
			n = 8
		}
		f ^= uint8(h.extract(off, n))
	}
	return f
}

// HashFast computes exactly the same value as Hash, reading whole
// history words directly instead of assembling chunks from 16-bit
// extracts. It is the kernel of the predictors' batched fast paths;
// Hash stays as the readable reference the property tests compare
// against (TestHashFastMatchesHash).
func (h *History) HashFast(pc uint64, length int) uint64 {
	if length < 1 || length > HistoryCapacity {
		panic("bpu: hash length out of range")
	}
	x := pc * 0x9E3779B97F4A7C15
	for off := 0; off < length; off += 64 {
		chunk := h.w[off>>6]
		if n := length - off; n < 64 {
			chunk &= 1<<uint(n) - 1
		}
		x ^= chunk + 0x9E3779B97F4A7C15 + (x << 6) + (x >> 2)
	}
	return x
}

// HashMany computes Hash(pc, lengths[i]) into out[i] for every i,
// bit-identical to calling Hash once per length but sharing the
// full-word prefix chain across all lengths: the mix state after k
// whole history words is the same for every length >= 64k, so the
// common prefixes are mixed once instead of once per length. This is
// the batched predictors' kernel for the 12-28 hashes they need per
// record (TAGE table indices and tags, SC features, MTAGE keys).
func (h *History) HashMany(pc uint64, lengths []int, out []uint64) {
	maxWords := 0
	for _, l := range lengths {
		if l < 1 || l > HistoryCapacity {
			panic("bpu: hash length out of range")
		}
		if w := l >> 6; w > maxWords {
			maxWords = w
		}
	}
	// prefix[k] is the mix state after k full 64-bit history words.
	var prefix [historyWords + 1]uint64
	prefix[0] = pc * 0x9E3779B97F4A7C15
	for k := 0; k < maxWords; k++ {
		prefix[k+1] = hashMix(prefix[k], h.w[k])
	}
	for i, l := range lengths {
		full := l >> 6
		x := prefix[full]
		if rem := l & 63; rem != 0 {
			x = hashMix(x, h.w[full]&(1<<uint(rem)-1))
		}
		out[i] = x
	}
}

// hashMix is the chunk-combining step shared by Hash, HashFast and
// HashMany.
func hashMix(x, chunk uint64) uint64 {
	return x ^ (chunk + 0x9E3779B97F4A7C15 + (x << 6) + (x >> 2))
}

// HashPlan precompiles a fixed set of hash lengths: the full-word count
// and tail mask of every length, and the deepest shared prefix. Batched
// predictors build one plan per length set at construction and call
// History.HashPlanned per record, avoiding HashMany's per-call length
// decoding.
type HashPlan struct {
	maxWords int
	full     []int
	mask     []uint64 // tail mask; 0 = length is word-aligned, no tail
}

// MakeHashPlan compiles lengths (each in [1, HistoryCapacity]).
func MakeHashPlan(lengths []int) *HashPlan {
	p := &HashPlan{
		full: make([]int, len(lengths)),
		mask: make([]uint64, len(lengths)),
	}
	for i, l := range lengths {
		if l < 1 || l > HistoryCapacity {
			panic("bpu: hash length out of range")
		}
		p.full[i] = l >> 6
		if rem := l & 63; rem != 0 {
			p.mask[i] = 1<<uint(rem) - 1
		}
		if p.full[i] > p.maxWords {
			p.maxWords = p.full[i]
		}
	}
	return p
}

// HashPlanned is HashMany over a precompiled plan: out[i] receives
// Hash(pc, lengths[i]) for the plan's i-th length, bit for bit.
func (h *History) HashPlanned(pc uint64, p *HashPlan, out []uint64) {
	var prefix [historyWords + 1]uint64
	prefix[0] = pc * 0x9E3779B97F4A7C15
	for k := 0; k < p.maxWords; k++ {
		prefix[k+1] = hashMix(prefix[k], h.w[k])
	}
	for i, full := range p.full {
		x := prefix[full]
		if m := p.mask[i]; m != 0 {
			x = hashMix(x, h.w[full]&m)
		}
		out[i] = x
	}
}

// Hash mixes the most recent length outcomes with a PC into a uint64,
// used by table-indexed predictors. It folds at word granularity.
func (h *History) Hash(pc uint64, length int) uint64 {
	if length < 1 || length > HistoryCapacity {
		panic("bpu: hash length out of range")
	}
	x := pc * 0x9E3779B97F4A7C15
	for off := 0; off < length; off += 64 {
		n := length - off
		if n > 64 {
			n = 64
		}
		var chunk uint64
		if n <= 16 {
			chunk = h.extract(off, n)
		} else {
			// Assemble from 16-bit extracts to reuse the bounds-checked
			// primitive.
			for k := 0; k < n; k += 16 {
				m := n - k
				if m > 16 {
					m = 16
				}
				chunk |= h.extract(off+k, m) << uint(k)
			}
		}
		x ^= chunk + 0x9E3779B97F4A7C15 + (x << 6) + (x >> 2)
	}
	return x
}
