package bpu

// BatchPredictor is the optional block fast path of the simulation hot
// loop. PredictUpdateBatch must be semantically identical to calling
// Predict(pcs[i]) followed by Update(pcs[i], taken[i]) for every i in
// order — same predictions, same internal state afterwards — but a
// single dynamic dispatch covers the whole span, which lets heavy
// predictors hoist history-hash computation and bookkeeping out of the
// per-record path. The batched engine verifies equivalence with
// differential tests at every block size; predictors that do not
// implement the interface run through the Batch adapter below.
type BatchPredictor interface {
	Predictor
	// PredictUpdateBatch predicts and trains on len(pcs) conditional
	// branch records, setting miss[i] to whether the prediction for
	// pcs[i] differed from taken[i]. The three slices share a length.
	PredictUpdateBatch(pcs []uint64, taken, miss []bool)
}

// scalarBatch adapts any Predictor to BatchPredictor with the reference
// per-record loop, including OraclePrimer priming.
type scalarBatch struct {
	Predictor
}

// PredictUpdateBatch implements BatchPredictor.
func (s scalarBatch) PredictUpdateBatch(pcs []uint64, taken, miss []bool) {
	p := s.Predictor
	primer, _ := p.(OraclePrimer)
	for i, pc := range pcs {
		if primer != nil {
			primer.Prime(taken[i])
		}
		miss[i] = p.Predict(pc) != taken[i]
		p.Update(pc, taken[i])
	}
}

// Batch returns p itself when it already implements BatchPredictor, or
// wraps it in the scalar fallback adapter otherwise. The result is
// always safe to drive through PredictUpdateBatch.
func Batch(p Predictor) BatchPredictor {
	if bp, ok := p.(BatchPredictor); ok {
		return bp
	}
	return scalarBatch{p}
}
