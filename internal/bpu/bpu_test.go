package bpu

import (
	"testing"
	"testing/quick"

	"github.com/whisper-sim/whisper/internal/xrand"
)

func TestCounterSaturation(t *testing.T) {
	c := NewCounter(2)
	for i := 0; i < 10; i++ {
		c.Update(true)
	}
	if c.Value() != 3 || !c.Taken() || !c.Confident() {
		t.Fatalf("counter after 10 taken: v=%d", c.Value())
	}
	for i := 0; i < 10; i++ {
		c.Update(false)
	}
	if c.Value() != 0 || c.Taken() || !c.Confident() {
		t.Fatalf("counter after 10 not-taken: v=%d", c.Value())
	}
}

func TestCounterInitWeak(t *testing.T) {
	c := NewCounter(3)
	if c.Value() != 4 || !c.Taken() || c.Confident() {
		t.Fatalf("3-bit counter init v=%d", c.Value())
	}
	c.SetStrong(false)
	if c.Value() != 0 {
		t.Fatal("SetStrong(false) failed")
	}
	c.Reset()
	if c.Value() != 4 {
		t.Fatal("Reset failed")
	}
}

func TestCounterWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCounter(9)
}

func TestHistoryPushBit(t *testing.T) {
	var h History
	// Push T, NT, T, T: most recent is T (bit0), then T, NT, T.
	h.Push(true)
	h.Push(false)
	h.Push(true)
	h.Push(true)
	want := []bool{true, true, false, true}
	for i, w := range want {
		if h.Bit(i) != w {
			t.Fatalf("Bit(%d) = %v, want %v", i, h.Bit(i), w)
		}
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHistoryShiftAcrossWords(t *testing.T) {
	var h History
	h.Push(true)
	for i := 0; i < 200; i++ {
		h.Push(false)
	}
	if !h.Bit(200) {
		t.Fatal("taken bit lost after crossing word boundary")
	}
	for i := 0; i < 200; i++ {
		if h.Bit(i) {
			t.Fatalf("unexpected taken bit at %d", i)
		}
	}
}

func TestHistoryRaw(t *testing.T) {
	var h History
	// Raw bit i = i-th most recent. Push NT,T,T,NT => recent-first: NT,T,T,NT
	h.Push(false)
	h.Push(true)
	h.Push(true)
	h.Push(false)
	if got := h.Raw(4); got != 0b0110 {
		t.Fatalf("Raw(4) = %04b, want 0110", got)
	}
}

func TestHistoryFoldShortEqualsRaw(t *testing.T) {
	var h History
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		h.Push(r.Bool(0.5))
	}
	// For length <= 8, the fold is the raw bits themselves.
	for l := 1; l <= 8; l++ {
		if got, want := h.Fold(l), uint8(h.Raw(l)); got != want {
			t.Fatalf("Fold(%d) = %#x, want raw %#x", l, got, want)
		}
	}
}

func TestHistoryFoldChunked(t *testing.T) {
	var h History
	// Build a known 16-bit history: chunk0 (most recent 8) and chunk1.
	// Push oldest first.
	bitsOldFirst := []uint8{ // 16 bits; index 15 pushed last = most recent
		1, 0, 1, 1, 0, 0, 1, 0, // these end up as positions 15..8
		0, 1, 1, 0, 1, 0, 0, 1, // positions 7..0
	}
	for _, b := range bitsOldFirst {
		h.Push(b == 1)
	}
	var chunk0, chunk1 uint8
	for i := 0; i < 8; i++ {
		if h.Bit(i) {
			chunk0 |= 1 << uint(i)
		}
		if h.Bit(i + 8) {
			chunk1 |= 1 << uint(i)
		}
	}
	if got := h.Fold(16); got != chunk0^chunk1 {
		t.Fatalf("Fold(16) = %#x, want %#x", got, chunk0^chunk1)
	}
}

func TestHistoryFoldPartialChunk(t *testing.T) {
	var h History
	for i := 0; i < 32; i++ {
		h.Push(i%3 == 0)
	}
	// length 11: chunk of 8 + partial chunk of 3 (unshifted).
	var c0, c1 uint8
	for i := 0; i < 8; i++ {
		if h.Bit(i) {
			c0 |= 1 << uint(i)
		}
	}
	for i := 0; i < 3; i++ {
		if h.Bit(8 + i) {
			c1 |= 1 << uint(i)
		}
	}
	if got := h.Fold(11); got != c0^c1 {
		t.Fatalf("Fold(11) = %#x, want %#x", got, c0^c1)
	}
}

func TestHistoryFoldDepthProperty(t *testing.T) {
	// Property: Fold(L) depends only on the most recent L outcomes.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var a, b History
		// Different prefixes deeper than L.
		for i := 0; i < 50; i++ {
			a.Push(r.Bool(0.5))
			b.Push(!a.Bit(0))
		}
		// Then 1024 shared recent outcomes.
		for i := 0; i < HistoryCapacity; i++ {
			v := r.Bool(0.5)
			a.Push(v)
			b.Push(v)
		}
		for _, l := range []int{8, 64, 200, 1024} {
			if a.Fold(l) != b.Fold(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryPanics(t *testing.T) {
	var h History
	for _, fn := range []func(){
		func() { h.Bit(HistoryCapacity) },
		func() { h.Fold(0) },
		func() { h.Fold(HistoryCapacity + 1) },
		func() { h.Raw(17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHashVariesWithHistory(t *testing.T) {
	var h History
	x := h.Hash(0x400100, 256)
	h.Push(true)
	y := h.Hash(0x400100, 256)
	if x == y {
		t.Fatal("hash unchanged after history push")
	}
	if h.Hash(0x400100, 256) != y {
		t.Fatal("hash not deterministic")
	}
	if h.Hash(0x400104, 256) == y {
		t.Fatal("hash ignores pc")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x401000)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("bimodal did not learn taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("bimodal did not learn not-taken bias")
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	g := NewGShare(12, 8)
	pc := uint64(0x402000)
	// Alternating pattern: gshare distinguishes via history.
	correct := 0
	taken := false
	for i := 0; i < 2000; i++ {
		taken = !taken
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
	}
	// After warm-up it should be nearly perfect; require > 90% overall.
	if float64(correct)/2000 < 0.9 {
		t.Fatalf("gshare accuracy on alternation: %d/2000", correct)
	}
}

func TestBimodalCannotLearnAlternation(t *testing.T) {
	b := NewBimodal(10)
	pc := uint64(0x402000)
	correct := 0
	taken := false
	for i := 0; i < 2000; i++ {
		taken = !taken
		if b.Predict(pc) == taken {
			correct++
		}
		b.Update(pc, taken)
	}
	if float64(correct)/2000 > 0.7 {
		t.Fatalf("bimodal implausibly good on alternation: %d/2000", correct)
	}
}

func TestOracle(t *testing.T) {
	var o Oracle
	var p Predictor = &o
	if _, ok := p.(OraclePrimer); !ok {
		t.Fatal("Oracle does not implement OraclePrimer")
	}
	o.Prime(true)
	if !p.Predict(0) {
		t.Fatal("oracle wrong after Prime(true)")
	}
	o.Prime(false)
	if p.Predict(0) {
		t.Fatal("oracle wrong after Prime(false)")
	}
}

func TestStatic(t *testing.T) {
	s := &Static{Taken: true}
	if !s.Predict(1) || s.Name() != "static-taken" {
		t.Fatal("static taken misbehaves")
	}
	n := &Static{}
	if n.Predict(1) || n.Name() != "static-not-taken" {
		t.Fatal("static not-taken misbehaves")
	}
}

func BenchmarkHistoryPush(b *testing.B) {
	var h History
	for i := 0; i < b.N; i++ {
		h.Push(i&1 == 0)
	}
}

func BenchmarkFold1024(b *testing.B) {
	var h History
	for i := 0; i < HistoryCapacity; i++ {
		h.Push(i%3 == 0)
	}
	for i := 0; i < b.N; i++ {
		h.Fold(HistoryCapacity)
	}
}

func TestGeomLengths(t *testing.T) {
	ls := GeomLengths(8, 1024, 16)
	if len(ls) != 16 {
		t.Fatalf("got %d lengths", len(ls))
	}
	if ls[0] != 8 || ls[15] != 1024 {
		t.Fatalf("endpoints %d..%d, want 8..1024", ls[0], ls[15])
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatalf("series not strictly increasing at %d: %v", i, ls)
		}
	}
	// Ratio between consecutive terms should be roughly constant (~1.38).
	for i := 2; i < len(ls); i++ {
		r := float64(ls[i]) / float64(ls[i-1])
		if r < 1.2 || r > 1.6 {
			t.Fatalf("ratio %v at index %d outside geometric band: %v", r, i, ls)
		}
	}
}

func TestGeomLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeomLengths(0, 1024, 16)
}

// TestHashFastMatchesHash locks the word-direct hash kernel to the
// extract-based reference for every length and random histories.
func TestHashFastMatchesHash(t *testing.T) {
	rng := xrand.New(42)
	var h History
	for step := 0; step < 2000; step++ {
		h.Push(rng.Bool(0.5))
		pc := rng.Uint64()
		for _, l := range []int{1, 2, 7, 8, 15, 16, 17, 63, 64, 65, 127, 128, 129, 320, 500, 1023, 1024} {
			if got, want := h.HashFast(pc, l), h.Hash(pc, l); got != want {
				t.Fatalf("step %d len %d: HashFast %#x != Hash %#x", step, l, got, want)
			}
		}
	}
}

// TestHashManyMatchesHash locks the prefix-shared multi-hash kernel to
// per-length Hash calls.
func TestHashManyMatchesHash(t *testing.T) {
	rng := xrand.New(7)
	lens := []int{4, 6, 9, 13, 19, 29, 43, 64, 96, 143, 214, 320, 480, 720, 1024, 8, 16, 32}
	out := make([]uint64, len(lens))
	var h History
	for step := 0; step < 2000; step++ {
		h.Push(rng.Bool(0.5))
		pc := rng.Uint64()
		h.HashMany(pc, lens, out)
		for i, l := range lens {
			if want := h.Hash(pc, l); out[i] != want {
				t.Fatalf("step %d len %d: HashMany %#x != Hash %#x", step, l, out[i], want)
			}
		}
	}
}

// TestScalarBatchAdapter locks the Batch fallback adapter to the
// per-record reference, including oracle priming.
func TestScalarBatchAdapter(t *testing.T) {
	rng := xrand.New(9)
	pcs := make([]uint64, 500)
	taken := make([]bool, 500)
	miss := make([]bool, 500)
	for i := range pcs {
		pcs[i] = 0x1000 + uint64(rng.Intn(64))*4
		taken[i] = rng.Bool(0.5)
	}
	ref := NewGShare(10, 8)
	bat := Batch(NewGShare(10, 8))
	if _, ok := bat.(BatchPredictor); !ok {
		t.Fatal("Batch did not return a BatchPredictor")
	}
	bat.PredictUpdateBatch(pcs, taken, miss)
	for i := range pcs {
		if got := ref.Predict(pcs[i]) != taken[i]; got != miss[i] {
			t.Fatalf("record %d: adapter miss %v != scalar %v", i, miss[i], got)
		}
		ref.Update(pcs[i], taken[i])
	}
	// Oracle through the adapter never misses.
	ob := Batch(&Oracle{})
	ob.PredictUpdateBatch(pcs, taken, miss)
	for i := range miss {
		if miss[i] {
			t.Fatalf("oracle missed at %d", i)
		}
	}
}

// TestHashPlannedMatchesHash locks the precompiled plan kernel to Hash.
func TestHashPlannedMatchesHash(t *testing.T) {
	rng := xrand.New(11)
	lens := []int{4, 6, 9, 13, 19, 29, 43, 64, 96, 143, 214, 320, 480, 720, 1024, 8, 16, 32, 1, 63, 65}
	plan := MakeHashPlan(lens)
	out := make([]uint64, len(lens))
	var h History
	for step := 0; step < 2000; step++ {
		h.Push(rng.Bool(0.5))
		pc := rng.Uint64()
		h.HashPlanned(pc, plan, out)
		for i, l := range lens {
			if want := h.Hash(pc, l); out[i] != want {
				t.Fatalf("step %d len %d: HashPlanned %#x != Hash %#x", step, l, out[i], want)
			}
		}
	}
}
