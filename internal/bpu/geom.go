package bpu

import "math"

// Whisper's hashed-history correlation parameters (paper Table III).
const (
	// GeomMin is the minimum history length a.
	GeomMin = 8
	// GeomMax is the maximum history length N.
	GeomMax = 1024
	// GeomCount is the number of different history lengths m.
	GeomCount = 16
)

// GeomLengths returns the m history lengths of the geometric series
// a, a*r, a*r^2, ..., with r = (N/a)^(1/(m-1)) (paper §III-A). Terms are
// rounded to the nearest integer, deduplicated upward, and the last term
// is exactly N.
func GeomLengths(a, n, m int) []int {
	if a < 1 || n < a || m < 2 {
		panic("bpu: invalid geometric series parameters")
	}
	r := math.Pow(float64(n)/float64(a), 1/float64(m-1))
	out := make([]int, 0, m)
	prev := 0
	for i := 0; i < m; i++ {
		v := int(math.Round(float64(a) * math.Pow(r, float64(i))))
		if v <= prev {
			v = prev + 1
		}
		if v > n {
			v = n
		}
		out = append(out, v)
		prev = v
	}
	out[m-1] = n
	return out
}

// DefaultGeomLengths is the Table III series: 16 lengths from 8 to 1024.
// The slice must not be mutated.
var DefaultGeomLengths = GeomLengths(GeomMin, GeomMax, GeomCount)
