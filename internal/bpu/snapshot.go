package bpu

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/snap"
)

// Snapshotter is implemented by predictors (and the core runtime) that
// can serialize their mutable state to a canonical byte string and
// restore it into a fresh instance built with the same configuration.
//
// The contract, enforced by each package's snapshot property tests:
//
//   - Snapshot is canonical: the same logical state always yields the
//     same bytes (map contents are emitted in a fixed order), so two
//     snapshots can be compared with bytes.Equal.
//   - Restore(s.Snapshot()) into a same-config instance makes it
//     behaviorally identical to s: any record suffix produces the same
//     predictions and the same final Snapshot bytes.
//   - Snapshot after Restore re-encodes to the identical byte string
//     (encode -> decode -> re-encode identity), so snapshots are safe
//     to content-address or persist next to store artifacts.
//
// Restore must not retain the input slice.
type Snapshotter interface {
	Snapshot() []byte
	Restore([]byte) error
}

// RawValue returns the counter's raw value for snapshot encoding.
func (c *Counter) RawValue() int16 { return c.v }

// SetRawValue restores a counter value captured with RawValue. The
// value must lie within the counter's range.
func (c *Counter) SetRawValue(v int16) error {
	if v < 0 || v > c.max {
		return fmt.Errorf("bpu: counter value %d out of range [0,%d]", v, c.max)
	}
	c.v = v
	return nil
}

// State exposes the raw history words and push count for snapshots.
func (h *History) State() (w [historyWords]uint64, count uint64) {
	return h.w, h.count
}

// SetState restores history state captured with State.
func (h *History) SetState(w [historyWords]uint64, count uint64) {
	h.w = w
	h.count = count
}

// appendHistory / readHistory are the shared History codec used by the
// predictors' snapshot implementations.

// AppendHistory encodes h in canonical form.
func AppendHistory(b []byte, h *History) []byte {
	for _, w := range h.w {
		b = snap.U64(b, w)
	}
	return snap.U64(b, h.count)
}

// ReadHistory decodes state written by AppendHistory into h.
func ReadHistory(r *snap.Reader, h *History) {
	for i := range h.w {
		h.w[i] = r.U64()
	}
	h.count = r.U64()
}

// appendCounters encodes a counter table (values only; widths are
// construction-time configuration).
func appendCounters(b []byte, tbl []Counter) []byte {
	b = snap.U32(b, uint32(len(tbl)))
	for i := range tbl {
		b = snap.I16(b, tbl[i].v)
	}
	return b
}

func readCounters(r *snap.Reader, tbl []Counter) error {
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(tbl) {
		return fmt.Errorf("bpu: counter table size %d, want %d", n, len(tbl))
	}
	for i := range tbl {
		if err := tbl[i].SetRawValue(r.I16()); err != nil {
			return err
		}
	}
	return r.Err()
}

const (
	bimodalSnapVersion = 1
	gshareSnapVersion  = 1
)

// Snapshot implements Snapshotter for the bimodal predictor.
func (b *Bimodal) Snapshot() []byte {
	return snap.Seal(snap.KindBimodal, bimodalSnapVersion, appendCounters(nil, b.table))
}

// Restore implements Snapshotter for the bimodal predictor.
func (b *Bimodal) Restore(s []byte) error {
	payload, err := snap.Open(snap.KindBimodal, bimodalSnapVersion, s)
	if err != nil {
		return err
	}
	r := snap.NewReader(payload)
	if err := readCounters(r, b.table); err != nil {
		return err
	}
	return r.Done()
}

// Snapshot implements Snapshotter for the gshare predictor.
func (g *GShare) Snapshot() []byte {
	out := appendCounters(nil, g.table)
	out = AppendHistory(out, &g.hist)
	return snap.Seal(snap.KindGShare, gshareSnapVersion, out)
}

// Restore implements Snapshotter for the gshare predictor.
func (g *GShare) Restore(s []byte) error {
	payload, err := snap.Open(snap.KindGShare, gshareSnapVersion, s)
	if err != nil {
		return err
	}
	r := snap.NewReader(payload)
	if err := readCounters(r, g.table); err != nil {
		return err
	}
	ReadHistory(r, &g.hist)
	return r.Done()
}
