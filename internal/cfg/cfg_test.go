package cfg

import (
	"testing"

	"github.com/whisper-sim/whisper/internal/trace"
	"github.com/whisper-sim/whisper/internal/workload"
)

// chain builds a stream where branch A (pc 0x1000) is always followed by
// branch B (pc 0x1100), with occasional noise branch C.
func chain(n int) trace.Stream {
	var recs []trace.Record
	for i := 0; i < n; i++ {
		recs = append(recs,
			trace.Record{PC: 0x1000, Target: 0x1010, Kind: trace.CondBranch, Taken: true, Instrs: 3},
			trace.Record{PC: 0x1100, Target: 0x1110, Kind: trace.CondBranch, Taken: true, Instrs: 3},
		)
		if i%4 == 0 {
			recs = append(recs, trace.Record{PC: 0x9000, Target: 0x9010, Kind: trace.CondBranch, Instrs: 3})
		}
	}
	return trace.NewSliceStream(recs)
}

func TestBuildCounts(t *testing.T) {
	g := Build(chain(100))
	if g.Execs(0x1000) != 100 || g.Execs(0x1100) != 100 {
		t.Fatalf("execs %d,%d", g.Execs(0x1000), g.Execs(0x1100))
	}
	if g.EdgeCount(0x1000, 0x1100) != 100 {
		t.Fatalf("edge A->B = %d", g.EdgeCount(0x1000, 0x1100))
	}
	if g.TotalRecords() == 0 {
		t.Fatal("no records counted")
	}
	if len(g.Nodes()) != 3 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
}

func TestPlaceFindsStablePredecessor(t *testing.T) {
	g := Build(chain(100))
	p, ok := g.Place(0x1100, DefaultPlacementOptions())
	if !ok {
		t.Fatal("no placement for B")
	}
	if p.HostPC != 0x1000 {
		t.Fatalf("host = %#x, want 0x1000", p.HostPC)
	}
	if p.Precision < 0.99 || p.Recall < 0.99 {
		t.Fatalf("precision=%v recall=%v", p.Precision, p.Recall)
	}
	if p.HostExecs != 100 {
		t.Fatalf("host execs %d", p.HostExecs)
	}
}

func TestPlaceRespectsOffsetRange(t *testing.T) {
	// Predecessor 64KB away: outside the 12-bit pointer reach.
	var recs []trace.Record
	for i := 0; i < 50; i++ {
		recs = append(recs,
			trace.Record{PC: 0x10000, Kind: trace.CondBranch, Taken: true, Instrs: 2},
			trace.Record{PC: 0x20000, Kind: trace.CondBranch, Taken: true, Instrs: 2},
		)
	}
	g := Build(trace.NewSliceStream(recs))
	if _, ok := g.Place(0x20000, DefaultPlacementOptions()); ok {
		t.Fatal("placement beyond offset range accepted")
	}
	opt := DefaultPlacementOptions()
	opt.MaxOffset = 1 << 20
	if _, ok := g.Place(0x20000, opt); !ok {
		t.Fatal("placement rejected with relaxed offset")
	}
}

func TestPlaceRejectsWeakCorrelation(t *testing.T) {
	// B follows A only 10% of the time; A mostly leads elsewhere.
	var recs []trace.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, trace.Record{PC: 0x1000, Kind: trace.CondBranch, Instrs: 2})
		if i%10 == 0 {
			recs = append(recs, trace.Record{PC: 0x1100, Kind: trace.CondBranch, Instrs: 2})
		} else {
			recs = append(recs, trace.Record{PC: 0x1200, Kind: trace.CondBranch, Instrs: 2})
		}
	}
	g := Build(trace.NewSliceStream(recs))
	if _, ok := g.Place(0x1100, DefaultPlacementOptions()); ok {
		t.Fatal("weakly correlated predecessor accepted")
	}
}

func TestPlaceSelfLoop(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 300; i++ {
		recs = append(recs, trace.Record{PC: 0x3000, Kind: trace.CondBranch, Taken: i%30 != 29, Instrs: 2})
	}
	g := Build(trace.NewSliceStream(recs))
	p, ok := g.Place(0x3000, DefaultPlacementOptions())
	if !ok || p.HostPC != 0x3000 {
		t.Fatalf("self placement = %+v, %v", p, ok)
	}
	opt := DefaultPlacementOptions()
	opt.AllowSelf = false
	if p2, ok2 := g.Place(0x3000, opt); ok2 && p2.HostPC == 0x3000 {
		t.Fatal("self placement accepted with AllowSelf=false")
	}
}

func TestPlaceUnknownBranch(t *testing.T) {
	g := Build(chain(10))
	if _, ok := g.Place(0xDEAD, DefaultPlacementOptions()); ok {
		t.Fatal("placement for unseen branch")
	}
}

func TestPlaceDeterministicTieBreak(t *testing.T) {
	// Two equally good predecessors: the lower PC must win every time.
	mk := func() *Graph {
		var recs []trace.Record
		for i := 0; i < 100; i++ {
			pre := uint64(0x1000)
			if i%2 == 0 {
				pre = 0x1040
			}
			recs = append(recs,
				trace.Record{PC: pre, Kind: trace.CondBranch, Instrs: 2},
				trace.Record{PC: 0x1100, Kind: trace.CondBranch, Instrs: 2},
				trace.Record{PC: 0x8000, Kind: trace.CondBranch, Instrs: 2},
			)
		}
		return Build(trace.NewSliceStream(recs))
	}
	opt := DefaultPlacementOptions()
	opt.MinPrecision, opt.MinRecall = 0.2, 0.2
	first, _ := mk().Place(0x1100, opt)
	for i := 0; i < 5; i++ {
		p, ok := mk().Place(0x1100, opt)
		if !ok || p.HostPC != first.HostPC {
			t.Fatalf("tie-break not deterministic: %#x vs %#x", p.HostPC, first.HostPC)
		}
	}
}

func TestCoverageOnRealWorkload(t *testing.T) {
	app := workload.DataCenterApp("kafka")
	g := Build(app.Stream(0, 60000))
	// Collect executed conditional branch PCs.
	var pcs []uint64
	seen := map[uint64]bool{}
	s := app.Stream(0, 60000)
	var rec trace.Record
	for s.Next(&rec) {
		if rec.Kind == trace.CondBranch && !seen[rec.PC] {
			seen[rec.PC] = true
			pcs = append(pcs, rec.PC)
		}
	}
	cov := g.Coverage(pcs, DefaultPlacementOptions())
	// Paper: the 12-bit offset covers the vast majority (>80%) of
	// branches. Our synthetic CFG should land in the same regime.
	if cov < 0.6 {
		t.Fatalf("placement coverage %v too low", cov)
	}
	if cov > 1.0 {
		t.Fatalf("coverage %v out of range", cov)
	}
}

func TestPlaceAll(t *testing.T) {
	g := Build(chain(100))
	m := g.PlaceAll([]uint64{0x1100, 0xDEAD}, DefaultPlacementOptions())
	if _, ok := m[0x1100]; !ok {
		t.Fatal("B not placed")
	}
	if _, ok := m[0xDEAD]; ok {
		t.Fatal("bogus branch placed")
	}
}

func BenchmarkBuild(b *testing.B) {
	app := workload.DataCenterApp("kafka")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(app.Stream(0, 20000))
	}
}
