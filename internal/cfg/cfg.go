// Package cfg reconstructs a dynamic control-flow graph from a retired
// branch trace and implements the conditional-probability predecessor
// correlation that Whisper uses to place brhint instructions at link time
// (paper §IV "hint injection", following the I-SPY/Ripple/Twig line of
// profile-guided injection).
//
// The graph's nodes are control-flow instruction PCs; an edge u→v counts
// how often v was the next retired control-flow instruction after u.
// For a branch B, a good hint host is a predecessor P with high
//
//	precision = count(P→B) / execs(P)   (hints rarely fire uselessly)
//	recall    = count(P→B) / execs(B)   (hints usually arrive in time)
//
// subject to the brhint PC-pointer range: the 12-bit offset field can only
// address branches within ±2KB of the hint (paper Fig 11), which is why
// the paper covers "the vast majority (>80%)" rather than all branches.
package cfg

import (
	"sort"

	"github.com/whisper-sim/whisper/internal/trace"
)

// OffsetRange is the reach of the brhint 12-bit PC pointer in bytes
// (signed 12-bit offset: ±2KB).
const OffsetRange = 2048

// Graph is a dynamic CFG with edge and node execution counts.
type Graph struct {
	execs map[uint64]uint64            // node -> executions
	succ  map[uint64]map[uint64]uint64 // u -> v -> count(u→v)
	pred  map[uint64]map[uint64]uint64 // v -> u -> count(u→v)
	kinds map[uint64]trace.Kind
	total uint64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		execs: make(map[uint64]uint64),
		succ:  make(map[uint64]map[uint64]uint64),
		pred:  make(map[uint64]map[uint64]uint64),
		kinds: make(map[uint64]trace.Kind),
	}
}

// Build consumes a stream and returns its dynamic CFG.
func Build(s trace.Stream) *Graph {
	g := NewGraph()
	var rec trace.Record
	prev := uint64(0)
	havePrev := false
	for s.Next(&rec) {
		g.Add(prev, havePrev, &rec)
		prev = rec.PC
		havePrev = true
	}
	return g
}

// Add records one retirement with its dynamic predecessor.
func (g *Graph) Add(prevPC uint64, havePrev bool, rec *trace.Record) {
	g.execs[rec.PC]++
	g.kinds[rec.PC] = rec.Kind
	g.total++
	if !havePrev {
		return
	}
	sm := g.succ[prevPC]
	if sm == nil {
		sm = make(map[uint64]uint64)
		g.succ[prevPC] = sm
	}
	sm[rec.PC]++
	pm := g.pred[rec.PC]
	if pm == nil {
		pm = make(map[uint64]uint64)
		g.pred[rec.PC] = pm
	}
	pm[prevPC]++
}

// Execs returns how many times pc retired.
func (g *Graph) Execs(pc uint64) uint64 { return g.execs[pc] }

// TotalRecords returns the number of records consumed.
func (g *Graph) TotalRecords() uint64 { return g.total }

// Nodes returns all PCs in ascending order.
func (g *Graph) Nodes() []uint64 {
	out := make([]uint64, 0, len(g.execs))
	for pc := range g.execs {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeCount returns count(u→v).
func (g *Graph) EdgeCount(u, v uint64) uint64 {
	if m := g.succ[u]; m != nil {
		return m[v]
	}
	return 0
}

// Placement is a chosen hint host for a branch.
type Placement struct {
	// BranchPC is the hinted branch.
	BranchPC uint64
	// HostPC is the control-flow instruction after which the brhint
	// executes.
	HostPC uint64
	// Precision and Recall are the correlation scores of the host.
	Precision, Recall float64
	// HostExecs is how many times the host retires (each retirement
	// executes the hint: the dynamic instruction overhead).
	HostExecs uint64
}

// PlacementOptions tunes the correlation algorithm.
type PlacementOptions struct {
	// MinPrecision and MinRecall reject hosts with weak correlation.
	MinPrecision, MinRecall float64
	// MaxOffset restricts the host-to-branch distance in bytes
	// (default OffsetRange).
	MaxOffset uint64
	// AllowSelf permits hosting a hint in the branch's own block
	// (useful for loop branches whose strongest predecessor is
	// themselves).
	AllowSelf bool
}

// DefaultPlacementOptions mirror the paper's setup.
func DefaultPlacementOptions() PlacementOptions {
	return PlacementOptions{
		MinPrecision: 0.25,
		MinRecall:    0.25,
		MaxOffset:    OffsetRange,
		AllowSelf:    true,
	}
}

// Place selects the best hint host for branchPC, or ok=false when no
// predecessor satisfies the constraints (the branch then stays with the
// dynamic predictor).
func (g *Graph) Place(branchPC uint64, opt PlacementOptions) (Placement, bool) {
	if opt.MaxOffset == 0 {
		opt.MaxOffset = OffsetRange
	}
	bx := g.execs[branchPC]
	if bx == 0 {
		return Placement{}, false
	}
	var best Placement
	found := false
	for host, cnt := range g.pred[branchPC] {
		if host == branchPC && !opt.AllowSelf {
			continue
		}
		var dist uint64
		if host > branchPC {
			dist = host - branchPC
		} else {
			dist = branchPC - host
		}
		if dist > opt.MaxOffset {
			continue
		}
		hx := g.execs[host]
		if hx == 0 {
			continue
		}
		prec := float64(cnt) / float64(hx)
		rec := float64(cnt) / float64(bx)
		if prec < opt.MinPrecision || rec < opt.MinRecall {
			continue
		}
		cand := Placement{
			BranchPC:  branchPC,
			HostPC:    host,
			Precision: prec,
			Recall:    rec,
			HostExecs: hx,
		}
		if !found || score(cand) > score(best) ||
			(score(cand) == score(best) && cand.HostPC < best.HostPC) {
			best = cand
			found = true
		}
	}
	return best, found
}

// score ranks placements by F1 (harmonic mean of precision and recall).
func score(p Placement) float64 {
	if p.Precision+p.Recall == 0 {
		return 0
	}
	return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
}

// PlaceAll runs Place for every branch in pcs and returns the
// successful placements keyed by branch PC.
func (g *Graph) PlaceAll(pcs []uint64, opt PlacementOptions) map[uint64]Placement {
	out := make(map[uint64]Placement, len(pcs))
	for _, pc := range pcs {
		if p, ok := g.Place(pc, opt); ok {
			out[pc] = p
		}
	}
	return out
}

// Coverage returns the fraction of branches in pcs that received a
// placement, the paper's ">80% of all branch instructions" check.
func (g *Graph) Coverage(pcs []uint64, opt PlacementOptions) float64 {
	if len(pcs) == 0 {
		return 0
	}
	placed := 0
	for _, pc := range pcs {
		if _, ok := g.Place(pc, opt); ok {
			placed++
		}
	}
	return float64(placed) / float64(len(pcs))
}
