package core

// Link-time hint injection (paper §IV "hint injection"): each trained
// hint is hosted in a suitable predecessor basic block chosen with the
// conditional-probability correlation algorithm of internal/cfg, and the
// 12-bit PC pointer constraint drops hints whose branch is out of reach.

import (
	"sort"

	"github.com/whisper-sim/whisper/internal/cfg"
	"github.com/whisper-sim/whisper/internal/hint"
)

// PlacedHint is a hint bound to its host location in the updated binary.
type PlacedHint struct {
	Hint      Hint
	Placement cfg.Placement
	Encoded   hint.BrHint
}

// Binary is the "updated binary": the hint program keyed by host PC, plus
// the overhead accounting of paper Fig 19.
type Binary struct {
	// ByHost maps a host control-flow PC to the hints executing after it
	// retires.
	ByHost map[uint64][]PlacedHint
	// Placed counts injected hints; Dropped counts trained hints that
	// found no host within reach.
	Placed, Dropped int
	// StaticInstrs is the static instruction count of the original
	// binary estimate; StaticOverhead = Placed / StaticInstrs.
	StaticInstrs uint64
	// DynamicHintExecs estimates hint executions per profile window
	// (sum of host execution counts).
	DynamicHintExecs uint64
	// WindowInstrs is the profiled window's retired instructions, for
	// the dynamic overhead ratio.
	WindowInstrs uint64
}

// StaticOverhead returns injected hints per original static instruction.
func (b *Binary) StaticOverhead() float64 {
	if b.StaticInstrs == 0 {
		return 0
	}
	return float64(b.Placed) / float64(b.StaticInstrs)
}

// DynamicOverhead returns extra dynamic instructions per retired
// instruction of the profiled window.
func (b *Binary) DynamicOverhead() float64 {
	if b.WindowInstrs == 0 {
		return 0
	}
	return float64(b.DynamicHintExecs) / float64(b.WindowInstrs)
}

// InjectOptions tune placement.
type InjectOptions struct {
	Placement cfg.PlacementOptions
	// StaticInstrs is the original binary's static instruction count
	// estimate used for the static overhead ratio (Fig 19). When zero,
	// the number of distinct control-flow PCs in the graph times the
	// mean block size observed from the trace is used.
	StaticInstrs uint64
	// WindowInstrs is the profiled window's total retired instructions.
	WindowInstrs uint64
}

// Inject places each trained hint into the dynamic CFG, producing the
// updated binary. Hints whose best host violates the 12-bit PC pointer
// range are dropped (the paper's ~80% coverage effect falls out of the
// placement constraints).
func Inject(res *TrainResult, g *cfg.Graph, opt InjectOptions) *Binary {
	if opt.Placement.MaxOffset == 0 || opt.Placement.MaxOffset > hint.MaxOffset {
		opt.Placement.MaxOffset = hint.MaxOffset
	}
	bin := &Binary{
		ByHost:       make(map[uint64][]PlacedHint),
		StaticInstrs: opt.StaticInstrs,
		WindowInstrs: opt.WindowInstrs,
	}
	pcs := make([]uint64, 0, len(res.Hints))
	for pc := range res.Hints {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	for _, pc := range pcs {
		h := res.Hints[pc]
		place, ok := g.Place(pc, opt.Placement)
		if !ok {
			bin.Dropped++
			continue
		}
		off := int64(pc) - int64(place.HostPC)
		if off < -hint.MaxOffset || off >= hint.MaxOffset {
			bin.Dropped++
			continue
		}
		enc := hint.BrHint{
			HistIdx: uint8(h.LengthIdx),
			Formula: h.Formula,
			Bias:    h.Bias,
			Offset:  int16(off),
		}
		if err := enc.Validate(); err != nil {
			bin.Dropped++
			continue
		}
		bin.ByHost[place.HostPC] = append(bin.ByHost[place.HostPC], PlacedHint{
			Hint:      h,
			Placement: place,
			Encoded:   enc,
		})
		bin.Placed++
		bin.DynamicHintExecs += place.HostExecs
	}
	return bin
}

// HintedPCs returns the branch PCs covered by the placed hints.
func (b *Binary) HintedPCs() []uint64 {
	var out []uint64
	for _, hs := range b.ByHost {
		for _, ph := range hs {
			out = append(out, ph.Hint.PC)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
