package core

import (
	"fmt"

	"github.com/whisper-sim/whisper/internal/bpu"
	"github.com/whisper-sim/whisper/internal/snap"
)

const snapVersion = 1

// Snapshot implements bpu.Snapshotter: hint-buffer contents, history,
// the hint counters, and the underlying predictor's state (which must
// itself be a Snapshotter). The binary's hint placement and the history
// length series are construction-time configuration and not encoded.
func (r *Runtime) Snapshot() []byte {
	under, ok := r.under.(bpu.Snapshotter)
	if !ok {
		panic(fmt.Sprintf("core: underlying predictor %s is not a Snapshotter", r.under.Name()))
	}
	var b []byte
	b = r.buffer.AppendState(b)
	b = bpu.AppendHistory(b, &r.hist)
	b = snap.U64(b, r.HintPredictions)
	b = snap.U64(b, r.HintExecutions)
	us := under.Snapshot()
	b = snap.U32(b, uint32(len(us)))
	b = append(b, us...)
	return snap.Seal(snap.KindRuntime, snapVersion, b)
}

// Restore implements bpu.Snapshotter. The receiver must wrap the same
// binary and an identically configured underlying predictor.
func (r *Runtime) Restore(s []byte) error {
	under, ok := r.under.(bpu.Snapshotter)
	if !ok {
		return fmt.Errorf("core: underlying predictor %s is not a Snapshotter", r.under.Name())
	}
	payload, err := snap.Open(snap.KindRuntime, snapVersion, s)
	if err != nil {
		return err
	}
	rd := snap.NewReader(payload)
	if err := r.buffer.ReadState(rd); err != nil {
		return err
	}
	bpu.ReadHistory(rd, &r.hist)
	hp := rd.U64()
	he := rd.U64()
	n := int(rd.U32())
	if rd.Err() != nil {
		return rd.Err()
	}
	us := make([]byte, n)
	for i := range us {
		us[i] = rd.U8()
	}
	if err := rd.Done(); err != nil {
		return err
	}
	if err := under.Restore(us); err != nil {
		return err
	}
	r.HintPredictions = hp
	r.HintExecutions = he
	return nil
}
